"""Tests for ProfilerConfig validation and derived quantities."""

import pytest

from repro.common.config import ProfilerConfig
from repro.common.errors import ProfilerError


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = ProfilerConfig()
        assert cfg.workers == 1
        assert cfg.lock_free_queues

    @pytest.mark.parametrize(
        "field",
        ["signature_slots", "workers", "chunk_size", "queue_depth",
         "rebalance_interval_chunks"],
    )
    def test_positive_fields_reject_zero_and_negative(self, field):
        for bad in (0, -1):
            with pytest.raises(ProfilerError):
                ProfilerConfig(**{field: bad})

    def test_hot_addresses_allows_zero(self):
        assert ProfilerConfig(hot_addresses=0).hot_addresses == 0

    def test_hot_addresses_rejects_negative(self):
        with pytest.raises(ProfilerError):
            ProfilerConfig(hot_addresses=-1)


class TestDerived:
    def test_slots_per_worker_divides_total(self):
        cfg = ProfilerConfig(signature_slots=1_000_000, workers=16)
        assert cfg.slots_per_worker == 62_500

    def test_slots_per_worker_never_zero(self):
        cfg = ProfilerConfig(signature_slots=3, workers=8)
        assert cfg.slots_per_worker == 1

    def test_with_returns_modified_copy(self):
        cfg = ProfilerConfig()
        cfg2 = cfg.with_(workers=8, lock_free_queues=False)
        assert cfg2.workers == 8
        assert not cfg2.lock_free_queues
        assert cfg.workers == 1  # original untouched

    def test_with_validates(self):
        with pytest.raises(ProfilerError):
            ProfilerConfig().with_(workers=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            ProfilerConfig().workers = 2  # type: ignore[misc]
