"""Tests for deterministic RNG streams."""

import numpy as np

from repro.common.rng import make_rng


def test_same_seed_same_stream_reproduces():
    a = make_rng(42, "workload").integers(0, 1 << 30, 64)
    b = make_rng(42, "workload").integers(0, 1 << 30, 64)
    assert np.array_equal(a, b)


def test_different_streams_decorrelated():
    a = make_rng(42, "workload").integers(0, 1 << 30, 64)
    b = make_rng(42, "scheduler").integers(0, 1 << 30, 64)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = make_rng(1).integers(0, 1 << 30, 64)
    b = make_rng(2).integers(0, 1 << 30, 64)
    assert not np.array_equal(a, b)


def test_unknown_stream_names_are_stable_and_distinct():
    a1 = make_rng(7, "custom-x").integers(0, 1 << 30, 16)
    a2 = make_rng(7, "custom-x").integers(0, 1 << 30, 16)
    b = make_rng(7, "custom-y").integers(0, 1 << 30, 16)
    assert np.array_equal(a1, a2)
    assert not np.array_equal(a1, b)
