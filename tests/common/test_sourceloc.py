"""Tests for source-location packing."""

import pytest
from hypothesis import given, strategies as st

from repro.common.sourceloc import (
    LINE_MASK,
    MAX_FILE_ID,
    NO_LOC,
    SourceLocation,
    decode_location,
    encode_location,
    format_location,
)


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        enc = encode_location(1, 60)
        assert decode_location(enc) == SourceLocation(1, 60)

    def test_zero_is_valid(self):
        assert decode_location(encode_location(0, 0)) == SourceLocation(0, 0)

    def test_extremes(self):
        enc = encode_location(MAX_FILE_ID, LINE_MASK)
        assert enc < 2**31  # fits int32
        assert decode_location(enc) == SourceLocation(MAX_FILE_ID, LINE_MASK)

    @given(
        file_id=st.integers(min_value=0, max_value=MAX_FILE_ID),
        line=st.integers(min_value=0, max_value=LINE_MASK),
    )
    def test_roundtrip_property(self, file_id, line):
        assert decode_location(encode_location(file_id, line)) == (file_id, line)

    @given(
        a=st.tuples(
            st.integers(min_value=0, max_value=MAX_FILE_ID),
            st.integers(min_value=0, max_value=LINE_MASK),
        ),
        b=st.tuples(
            st.integers(min_value=0, max_value=MAX_FILE_ID),
            st.integers(min_value=0, max_value=LINE_MASK),
        ),
    )
    def test_encoding_is_injective_and_order_preserving(self, a, b):
        ea, eb = encode_location(*a), encode_location(*b)
        assert (ea == eb) == (a == b)
        assert (ea < eb) == (a < b)  # lexicographic (file, line) order

    def test_file_id_out_of_range(self):
        with pytest.raises(ValueError):
            encode_location(MAX_FILE_ID + 1, 0)
        with pytest.raises(ValueError):
            encode_location(-1, 0)

    def test_line_out_of_range(self):
        with pytest.raises(ValueError):
            encode_location(0, LINE_MASK + 1)
        with pytest.raises(ValueError):
            encode_location(0, -1)

    def test_decode_rejects_negative(self):
        with pytest.raises(ValueError):
            decode_location(NO_LOC)


class TestFormat:
    def test_format_matches_paper_style(self):
        assert format_location(encode_location(1, 60)) == "1:60"

    def test_format_sentinel_is_star(self):
        assert format_location(NO_LOC) == "*"

    def test_sourcelocation_str(self):
        assert str(SourceLocation(4, 77)) == "4:77"

    def test_encode_method_matches_function(self):
        loc = SourceLocation(3, 75)
        assert loc.encode() == encode_location(3, 75)
