"""mmap trace spill tier: format, streaming writes, zero-copy transport."""

import numpy as np
import pytest

from repro.common.errors import TraceFormatError
from repro.trace import (
    READ,
    WRITE,
    SpilledTraceBatch,
    TraceBuilder,
    TraceSpillWriter,
    attach_batch,
    is_spill,
    open_spill,
    share_batch,
    spill_batch,
)


def small_batch(n=64):
    b = TraceBuilder()
    for i in range(n):
        b.append(
            kind=READ if i % 2 else WRITE,
            tid=0,
            loc=i,
            addr=8 * (i % 7),
            aux=0,
            var=i % 3,
            ts=i,
            ctx=-1,
        )
    return b.build()


COLUMNS = ("kind", "tid", "loc", "addr", "aux", "var", "ts", "ctx")


class TestSpillFormat:
    def test_round_trip_preserves_columns_and_tables(self, tmp_path):
        batch = small_batch()
        sp = spill_batch(batch, tmp_path / "t.trace.spill")
        assert isinstance(sp, SpilledTraceBatch)
        assert len(sp) == len(batch)
        for name in COLUMNS:
            assert np.array_equal(
                np.asarray(getattr(sp, name)), np.asarray(getattr(batch, name))
            )
        assert sp.var_names == batch.var_names
        assert sp.file_names == batch.file_names

    def test_segmented_writes_concatenate(self, tmp_path):
        batch = small_batch(10)
        with TraceSpillWriter(tmp_path / "seg.spill") as w:
            w.append_batch(batch)
            w.append_batch(batch)
        sp = open_spill(tmp_path / "seg.spill")
        assert len(sp) == 20
        assert np.array_equal(np.asarray(sp.ts[10:]), np.asarray(batch.ts))

    def test_unique_hint_overrides_exact_scan(self, tmp_path):
        batch = small_batch()
        with TraceSpillWriter(tmp_path / "h.spill") as w:
            w.append_batch(batch)
            w.set_unique_hint(12345)
        assert open_spill(tmp_path / "h.spill").n_unique_addresses == 12345

    def test_no_hint_falls_back_to_exact(self, tmp_path):
        batch = small_batch()
        with TraceSpillWriter(tmp_path / "nh.spill") as w:
            w.append_batch(batch)
        sp = open_spill(tmp_path / "nh.spill")
        assert sp.n_unique_addresses == batch.n_unique_addresses

    def test_uncommitted_writer_is_not_a_spill(self, tmp_path):
        w = TraceSpillWriter(tmp_path / "x.spill")
        w.append_batch(small_batch(4))
        assert not is_spill(tmp_path / "x.spill")
        with pytest.raises(TraceFormatError):
            open_spill(tmp_path / "x.spill")
        w.abort()
        assert not (tmp_path / "x.spill").exists()

    def test_truncated_column_detected(self, tmp_path):
        spill_batch(small_batch(), tmp_path / "t.spill")
        with open(tmp_path / "t.spill" / "addr.bin", "r+b") as f:
            f.truncate(8)
        with pytest.raises(TraceFormatError, match="addr"):
            open_spill(tmp_path / "t.spill")

    def test_mismatched_segment_lengths_rejected(self, tmp_path):
        w = TraceSpillWriter(tmp_path / "m.spill")
        cols = {
            name: np.zeros(4, dtype=np.int64) for name in COLUMNS
        }
        cols["kind"] = np.zeros(3, dtype=np.uint8)
        with pytest.raises(TraceFormatError, match="unequal"):
            w.append_columns(**cols)
        w.abort()

    def test_empty_spill(self, tmp_path):
        with TraceSpillWriter(tmp_path / "e.spill") as w:
            pass
        sp = open_spill(tmp_path / "e.spill")
        assert len(sp) == 0 and sp.n_unique_addresses == 0


class TestReleaseWindow:
    def test_release_is_nondestructive(self, tmp_path):
        batch = small_batch(4096)
        sp = spill_batch(batch, tmp_path / "r.spill")
        before = np.asarray(sp.addr).copy()
        sp.release_window(0, 2048)
        sp.release_window(0, len(sp))  # whole trace, page-rounded
        sp.release_window(100, 100)  # empty range is a no-op
        assert np.array_equal(np.asarray(sp.addr), before)


class TestSharedTransport:
    def test_spilled_batch_ships_by_path_not_copy(self, tmp_path):
        sp = spill_batch(small_batch(), tmp_path / "s.trace.spill")
        shared = share_batch(sp)
        assert shared.nbytes == 0  # no shm block allocated
        assert shared.meta.path == str(tmp_path / "s.trace.spill")
        batch, shm = attach_batch(shared.meta)
        assert shm is None
        assert isinstance(batch, SpilledTraceBatch)
        assert np.array_equal(np.asarray(batch.ts), np.asarray(sp.ts))
        shared.close()  # must be a no-op, not an error

    def test_in_memory_batch_still_uses_shm(self):
        batch = small_batch()
        shared = share_batch(batch)
        try:
            assert shared.meta.path is None
            assert shared.nbytes > 0
            attached, shm = attach_batch(shared.meta)
            assert shm is not None
            assert np.array_equal(np.asarray(attached.addr), np.asarray(batch.addr))
            shm.close()
        finally:
            shared.close()
