"""Tests for the structure-of-arrays trace storage."""

import numpy as np
import pytest

from repro.common.errors import TraceFormatError
from repro.trace import READ, WRITE, LOOP_ENTER, TraceBatch, TraceBuilder


def make_simple_batch():
    b = TraceBuilder()
    v = b.intern_var("x")
    b.append(WRITE, 0, 100, 0x1000, 0, v, 0, -1)
    b.append(READ, 0, 101, 0x1000, 0, v, 1, -1)
    b.append(READ, 1, 102, 0x2000, 0, v, 2, -1)
    return b.build()


class TestBuilder:
    def test_empty_build(self):
        batch = TraceBuilder().build()
        assert len(batch) == 0
        assert batch.n_accesses == 0
        assert batch.n_threads == 0
        assert batch.n_unique_addresses == 0

    def test_append_and_lengths(self):
        batch = make_simple_batch()
        assert len(batch) == 3
        assert batch.n_accesses == 3
        assert batch.n_threads == 2
        assert batch.n_unique_addresses == 2

    def test_growth_beyond_initial_capacity(self):
        b = TraceBuilder(capacity=4)
        for i in range(1000):
            b.append(READ, 0, i, i * 8, 0, -1, i, -1)
        batch = b.build()
        assert len(batch) == 1000
        assert batch.addr[999] == 999 * 8
        assert np.array_equal(batch.ts, np.arange(1000))

    def test_intern_var_is_idempotent(self):
        b = TraceBuilder()
        assert b.intern_var("x") == b.intern_var("x")
        assert b.intern_var("y") != b.intern_var("x")

    def test_intern_ctx(self):
        b = TraceBuilder()
        c1 = b.intern_ctx((100, 200))
        c2 = b.intern_ctx((100, 200))
        c3 = b.intern_ctx((100,))
        assert c1 == c2 != c3
        assert b.ctx_stacks[c3] == (100,)

    def test_extend_columns_bulk(self):
        b = TraceBuilder()
        n = 500
        b.extend_columns(
            kind=np.full(n, READ, dtype=np.uint8),
            addr=np.arange(n, dtype=np.int64) * 8,
            loc=np.full(n, 42, dtype=np.int32),
        )
        batch = b.build()
        assert len(batch) == n
        assert batch.loc[0] == 42
        assert batch.var[0] == -1  # defaulted
        assert batch.ts[n - 1] == n - 1  # default monotone ts

    def test_extend_columns_rejects_ragged(self):
        b = TraceBuilder()
        with pytest.raises(TraceFormatError):
            b.extend_columns(
                kind=np.zeros(3, dtype=np.uint8),
                addr=np.zeros(4, dtype=np.int64),
            )

    def test_extend_then_append_interleave(self):
        b = TraceBuilder(capacity=2)
        b.append(WRITE, 0, 1, 8, 0, -1, 0, -1)
        b.extend_columns(
            kind=np.full(10, READ, dtype=np.uint8),
            addr=np.arange(10, dtype=np.int64),
            ts=np.arange(1, 11, dtype=np.int64),
        )
        b.append(WRITE, 0, 2, 16, 0, -1, 11, -1)
        batch = b.build()
        assert len(batch) == 12
        assert batch.kind[0] == WRITE and batch.kind[11] == WRITE


class TestAppendRows:
    def test_scalars_broadcast(self):
        b = TraceBuilder()
        b.append_rows(4, kind=READ, tid=2, addr=np.arange(4, dtype=np.int64))
        batch = b.build()
        assert batch.kind.tolist() == [READ] * 4
        assert batch.tid.tolist() == [2] * 4
        assert batch.addr.tolist() == [0, 1, 2, 3]

    def test_defaults(self):
        b = TraceBuilder()
        b.append_rows(3, kind=WRITE)
        batch = b.build()
        assert batch.loc.tolist() == [-1, -1, -1]
        assert batch.var.tolist() == [-1, -1, -1]
        assert batch.ctx.tolist() == [-1, -1, -1]
        assert batch.aux.tolist() == [0, 0, 0]
        assert batch.ts.tolist() == [0, 1, 2]

    def test_default_ts_continues_monotone_after_append(self):
        b = TraceBuilder()
        b.append(WRITE, 0, 1, 8, 0, -1, 0, -1)
        b.append_rows(3, kind=READ)
        assert b.build().ts.tolist() == [0, 1, 2, 3]

    def test_length_mismatch_rejected(self):
        b = TraceBuilder()
        with pytest.raises(TraceFormatError):
            b.append_rows(3, addr=np.zeros(4, dtype=np.int64))

    def test_unknown_column_rejected(self):
        b = TraceBuilder()
        with pytest.raises(TraceFormatError):
            b.append_rows(2, bogus=np.zeros(2))

    def test_negative_count_rejected(self):
        b = TraceBuilder()
        with pytest.raises(TraceFormatError):
            b.append_rows(-1)

    def test_zero_rows_is_noop(self):
        b = TraceBuilder()
        b.append_rows(0, kind=READ)
        assert len(b.build()) == 0

    def test_grows_capacity(self):
        b = TraceBuilder(capacity=2)
        b.append_rows(1000, kind=READ, addr=np.arange(1000, dtype=np.int64) * 8)
        batch = b.build()
        assert len(batch) == 1000
        assert batch.addr[999] == 999 * 8

    def test_matches_per_row_appends(self):
        rows = [(READ, 0, 10, 8 * i, i, 1, i, 0) for i in range(50)]
        a = TraceBuilder()
        for r in rows:
            a.append(*r)
        bb = TraceBuilder()
        bb.append_rows(
            50,
            kind=READ,
            tid=0,
            loc=10,
            addr=np.arange(50, dtype=np.int64) * 8,
            aux=np.arange(50, dtype=np.int64),
            var=1,
            ts=np.arange(50, dtype=np.int64),
            ctx=0,
        )
        one, two = a.build(), bb.build()
        for name in ("kind", "tid", "loc", "addr", "aux", "var", "ts", "ctx"):
            assert np.array_equal(getattr(one, name), getattr(two, name))


class TestBatch:
    def test_mismatched_columns_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceBatch(
                kind=np.zeros(2, dtype=np.uint8),
                tid=np.zeros(3, dtype=np.int32),
                loc=np.zeros(2, dtype=np.int32),
                addr=np.zeros(2, dtype=np.int64),
                aux=np.zeros(2, dtype=np.int64),
                var=np.zeros(2, dtype=np.int32),
                ts=np.zeros(2, dtype=np.int64),
                ctx=np.zeros(2, dtype=np.int32),
            )

    def test_access_mask_excludes_control_events(self):
        b = TraceBuilder()
        b.append(LOOP_ENTER, 0, 5, 5, 0, -1, 0, 0)
        b.append(READ, 0, 6, 0x10, 0, -1, 1, 0)
        batch = b.build()
        assert batch.access_mask().tolist() == [False, True]
        assert batch.n_accesses == 1

    def test_select_preserves_intern_tables(self):
        batch = make_simple_batch()
        sub = batch.select(np.array([0, 2]))
        assert len(sub) == 2
        assert sub.var_names == batch.var_names
        assert sub.addr.tolist() == [0x1000, 0x2000]

    def test_event_decoding(self):
        batch = make_simple_batch()
        e = batch.event(0)
        assert e.is_write and e.is_memory_access
        assert e.addr == 0x1000 and e.kind_name == "WRITE"
        e2 = batch.event(1)
        assert not e2.is_write and e2.is_memory_access

    def test_iter_events_order(self):
        batch = make_simple_batch()
        ts = [e.ts for e in batch.iter_events()]
        assert ts == [0, 1, 2]

    def test_var_name_lookup(self):
        batch = make_simple_batch()
        assert batch.var_name(0) == "x"
        assert batch.var_name(-1) == "*"
        assert batch.var_name(99) == "*"

    def test_summary_mentions_counts(self):
        s = make_simple_batch().summary()
        assert "READ=2" in s and "WRITE=1" in s
