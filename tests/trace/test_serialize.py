"""Round-trip tests for trace (de)serialization."""

import numpy as np
import pytest

from repro.common.errors import TraceFormatError
from repro.trace import READ, WRITE, TraceRecorder, load_trace, save_trace


def make_batch():
    r = TraceRecorder()
    v = r.intern_var("buf")
    r.loop_enter(500)
    for i in range(20):
        r.loop_iter(500)
        r.write(0x100 + 8 * i, loc=10, var=v)
        r.read(0x100 + 8 * i, loc=11, var=v)
    r.loop_exit(500)
    return r.build()


def test_roundtrip(tmp_path):
    batch = make_batch()
    path = tmp_path / "t.npz"
    save_trace(batch, path)
    loaded = load_trace(path)
    for col in ("kind", "tid", "loc", "addr", "aux", "var", "ts", "ctx"):
        assert np.array_equal(getattr(batch, col), getattr(loaded, col)), col
    assert loaded.var_names == batch.var_names
    assert loaded.ctx_stacks == batch.ctx_stacks


def test_roundtrip_empty(tmp_path):
    from repro.trace import TraceBuilder

    path = tmp_path / "empty.npz"
    save_trace(TraceBuilder().build(), path)
    assert len(load_trace(path)) == 0


def test_bad_file_raises(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez(path, kind=np.zeros(1, dtype=np.uint8))  # missing everything else
    with pytest.raises(TraceFormatError):
        load_trace(path)
