"""Tests for the instrumentation runtime (TraceRecorder)."""

import pytest

from repro.common.errors import MiniVmError
from repro.common.sourceloc import encode_location
from repro.trace import (
    LOOP_ENTER,
    LOOP_EXIT,
    LOOP_ITER,
    READ,
    WRITE,
    TraceRecorder,
)


class TestBasicRecording:
    def test_read_write_rows(self):
        r = TraceRecorder()
        v = r.intern_var("a")
        r.write(0x100, loc=10, var=v)
        r.read(0x100, loc=11, var=v)
        batch = r.build()
        assert batch.kind.tolist() == [WRITE, READ]
        assert batch.ts.tolist() == [0, 1]
        assert batch.var_names == ("a",)

    def test_timestamps_monotone_by_default(self):
        r = TraceRecorder()
        for i in range(10):
            r.read(i * 8, loc=1)
        assert r.build().ts.tolist() == list(range(10))

    def test_explicit_ts_for_delayed_push(self):
        """Models Section V: access happens, push comes later (no lock)."""
        r = TraceRecorder()
        ts_a = r.next_ts()  # thread 1 accesses first...
        ts_b = r.next_ts()  # ...then thread 2 accesses...
        r.write(0x8, loc=2, tid=2, ts=ts_b)  # ...but thread 2 pushes first
        r.write(0x8, loc=1, tid=1, ts=ts_a)
        batch = r.build()
        # Stream order differs from timestamp order: a race-detectable reversal.
        assert batch.ts.tolist() == [1, 0]


class TestLoopTracking:
    def test_loop_events_and_iteration_counts(self):
        r = TraceRecorder()
        site = encode_location(1, 60)
        r.loop_enter(site)
        for it in range(3):
            r.loop_iter(site)
            r.read(0x10, loc=site + 1)
        r.loop_exit(site)
        batch = r.build()
        kinds = batch.kind.tolist()
        assert kinds.count(LOOP_ITER) == 3
        exit_row = kinds.index(LOOP_EXIT)
        assert batch.aux[exit_row] == 3  # iterations executed, Fig. 1 "END loop 1200"

    def test_ctx_interning_tracks_nesting(self):
        r = TraceRecorder()
        outer, inner = encode_location(1, 10), encode_location(1, 20)
        r.read(0x8, loc=1)  # outside any loop
        r.loop_enter(outer)
        r.loop_iter(outer)
        r.read(0x10, loc=2)
        r.loop_enter(inner)
        r.loop_iter(inner)
        r.read(0x18, loc=3)
        r.loop_exit(inner)
        r.loop_exit(outer)
        batch = r.build()
        reads = batch.kind == READ
        ctxs = batch.ctx[reads].tolist()
        assert ctxs[0] == -1
        assert batch.ctx_stacks[ctxs[1]] == (outer,)
        assert batch.ctx_stacks[ctxs[2]] == (outer, inner)

    def test_reentering_same_loop_reuses_ctx(self):
        r = TraceRecorder()
        site = encode_location(1, 5)
        for _ in range(2):
            r.loop_enter(site)
            r.loop_iter(site)
            r.read(0x8, loc=6)
            r.loop_exit(site)
        batch = r.build()
        reads = batch.ctx[batch.kind == READ]
        assert reads[0] == reads[1]

    def test_mismatched_loop_exit_raises(self):
        r = TraceRecorder()
        r.loop_enter(100)
        with pytest.raises(MiniVmError):
            r.loop_exit(200)

    def test_loop_iter_without_enter_raises(self):
        r = TraceRecorder()
        with pytest.raises(MiniVmError):
            r.loop_iter(100)

    def test_build_rejects_open_loops(self):
        r = TraceRecorder()
        r.loop_enter(100)
        with pytest.raises(MiniVmError):
            r.build()

    def test_per_thread_loop_stacks_independent(self):
        r = TraceRecorder()
        s1, s2 = encode_location(1, 1), encode_location(1, 2)
        r.loop_enter(s1, tid=1)
        r.loop_enter(s2, tid=2)
        r.loop_iter(s1, tid=1)
        r.loop_iter(s2, tid=2)
        r.read(0x8, loc=3, tid=1)
        r.read(0x10, loc=4, tid=2)
        r.loop_exit(s1, tid=1)
        r.loop_exit(s2, tid=2)
        batch = r.build()
        reads = batch.kind == READ
        c1, c2 = batch.ctx[reads].tolist()
        assert batch.ctx_stacks[c1] == (s1,)
        assert batch.ctx_stacks[c2] == (s2,)


class TestThreadLifecycle:
    def test_thread_events(self):
        r = TraceRecorder()
        r.thread_start(1, parent_tid=0)
        r.write(0x8, loc=1, tid=1)
        r.thread_end(1)
        batch = r.build()
        assert batch.n_threads == 1

    def test_thread_end_inside_loop_raises(self):
        r = TraceRecorder()
        r.thread_start(1)
        r.loop_enter(50, tid=1)
        with pytest.raises(MiniVmError):
            r.thread_end(1)


class TestAllocFree:
    def test_alloc_free_rows(self):
        r = TraceRecorder()
        r.alloc(0x1000, 64, loc=1)
        r.free(0x1000, 64, loc=2)
        batch = r.build()
        assert batch.aux.tolist() == [64, 64]

    def test_lock_events(self):
        r = TraceRecorder()
        r.lock_acquire(7, loc=1, tid=3)
        r.lock_release(7, loc=2, tid=3)
        batch = r.build()
        assert batch.addr.tolist() == [7, 7]
        assert batch.tid.tolist() == [3, 3]
