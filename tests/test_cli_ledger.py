"""End-to-end CLI tests of the run ledger and ``ddprof runs`` commands."""

import json

import pytest

from repro.cli import main
from repro.obs import load_bundle


def profile(tmp_path, *extra):
    assert main(["profile", "cg", "--ledger", str(tmp_path), *extra]) == 0


class TestLedgerWrites:
    def test_profile_writes_ok_bundle(self, tmp_path, capsys):
        profile(tmp_path, "--run-id", "a")
        doc = load_bundle(tmp_path / "a")
        assert doc["status"] == "ok"
        assert doc["meta"]["command"] == "profile"
        assert doc["meta"]["workload"] == "cg"
        assert doc["dependences"]["n_edges"] > 0
        assert doc["report"]["counters"]

    def test_no_ledger_opts_out(self, tmp_path, capsys):
        profile(tmp_path, "--no-ledger", "--run-id", "a")
        assert not (tmp_path / "a").exists()

    def test_run_id_with_separator_is_rejected_by_argparse(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as err:
            main(["profile", "cg", "--run-id", "a/b"])
        assert err.value.code == 2
        assert "path separators" in capsys.readouterr().err

    def test_env_default_ledger_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("DDPROF_LEDGER", str(tmp_path / "envled"))
        assert main(["profile", "cg", "--run-id", "a"]) == 0
        assert load_bundle(tmp_path / "envled" / "a")["status"] == "ok"

    def test_cli_crash_finalizes_crashed_bundle(self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli_mod

        def boom(args, reg, batch):
            raise RuntimeError("injected cli crash")

        monkeypatch.setattr(cli_mod, "_profile_for", boom)
        with pytest.raises(RuntimeError, match="injected cli crash"):
            main(["profile", "cg", "--ledger", str(tmp_path), "--run-id", "a"])
        doc = load_bundle(tmp_path / "a")
        assert doc["status"] == "crashed"
        assert "RuntimeError: injected cli crash" in doc["error"]


class TestRunsCommands:
    def test_list_text_and_json(self, tmp_path, capsys):
        profile(tmp_path, "--run-id", "a")
        capsys.readouterr()
        assert main(["runs", "list", "--ledger", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "a" in out and "cg" in out
        assert main(["runs", "list", "--ledger", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "ddprof.run-list/1"
        assert [r["run_id"] for r in doc["runs"]] == ["a"]

    def test_show(self, tmp_path, capsys):
        profile(tmp_path, "--run-id", "a")
        capsys.readouterr()
        assert main(["runs", "show", "a", "--ledger", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "run a [ok]" in out and "dependences:" in out
        assert main(["runs", "show", "nope", "--ledger", str(tmp_path)]) == 2

    def test_gc(self, tmp_path, capsys):
        profile(tmp_path, "--run-id", "a")
        profile(tmp_path, "--run-id", "b")
        capsys.readouterr()
        assert main(
            ["runs", "gc", "--ledger", str(tmp_path), "--keep", "1", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["removed"] == ["a"] and doc["kept"] == 1


class TestDiffExitContract:
    def test_identical_config_runs_diff_empty_exit_zero(self, tmp_path, capsys):
        profile(tmp_path, "--run-id", "a")
        profile(tmp_path, "--run-id", "b")
        capsys.readouterr()
        assert main(["runs", "diff", "a", "b", "--ledger", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dependences: identical" in out
        assert "verdict: identical" in out

    def test_verdict_flip_exits_nonzero_naming_the_loop(self, tmp_path, capsys):
        """rgbyuv under 64 signature slots deterministically conflates the
        frame loop's accesses into carried dependences: 0:23 flips
        doall -> sequential, and the diff must gate on it by name."""
        assert main(
            ["profile", "rgbyuv", "--ledger", str(tmp_path), "--run-id", "a"]
        ) == 0
        assert main(
            ["profile", "rgbyuv", "--ledger", str(tmp_path), "--run-id", "b",
             "--slots", "64"]
        ) == 0
        capsys.readouterr()
        assert main(["runs", "diff", "a", "b", "--ledger", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "loop 0:23 doall -> sequential" in out
        assert "REGRESSED" in out

    def test_metric_delta_noticed_without_regression(self, tmp_path, capsys):
        """Perturbing slot count moves tracker memory (outside the noise
        band) but must not flag a verdict regression on cg."""
        assert main(
            ["profile", "cg", "--ledger", str(tmp_path), "--run-id", "a",
             "--slots", "65536"]
        ) == 0
        assert main(
            ["profile", "cg", "--ledger", str(tmp_path), "--run-id", "b",
             "--slots", "262144"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["runs", "diff", "a", "b", "--ledger", str(tmp_path), "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        # More slots can only sharpen verdicts (fewer conflation FPs): any
        # flip here is an improvement, and improvements never gate.
        assert all(
            f["direction"] == "improvement" for f in doc["verdict_flips"]
        )
        assert doc["regressions"] == []
        changed = {m["name"] for m in doc["metrics"]["changed"]}
        assert "engine.tracker_memory_bytes" in changed

    def test_missing_operand_exits_two(self, tmp_path, capsys):
        profile(tmp_path, "--run-id", "a")
        capsys.readouterr()
        assert main(["runs", "diff", "a", "nope", "--ledger", str(tmp_path)]) == 2
        assert "not found" in capsys.readouterr().err
