"""Tracer behaviour and Chrome trace_event export."""

import json

import pytest

from repro.common.config import ProfilerConfig
from repro.obs import (
    MAIN_TRACK,
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    chrome_trace_dict,
    validate_chrome_trace,
    validate_chrome_trace_file,
    worker_track,
    write_chrome_trace,
)
from repro.parallel import ParallelProfiler
from tests.trace_helpers import seq_trace


def small_trace(n_addr=32, rounds=4):
    ops = []
    for _ in range(rounds):
        for i in range(n_addr):
            a = 0x1000 + 8 * i
            ops.append(("w", a, 10 + i % 7, "x"))
            ops.append(("r", a, 20 + i % 5, "x"))
    return seq_trace(ops)


class TestTracer:
    def test_instant_and_complete(self):
        tr = Tracer()
        tr.instant("chunk.push", MAIN_TRACK, worker=1, seq=0)
        t0 = tr.now()
        tr.complete("chunk.process", worker_track(1), t0, t0 + 0.25, seq=0)
        assert tr.n_events == 2
        inst, comp = tr.events
        assert inst.dur is None and not inst.is_complete
        assert inst.args == {"worker": 1, "seq": 0}
        assert comp.is_complete
        assert comp.dur == pytest.approx(0.25)
        assert comp.track == worker_track(1)

    def test_slice_records_body_duration(self):
        tr = Tracer()
        with tr.slice("merge", MAIN_TRACK, n=3):
            pass
        (ev,) = tr.events
        assert ev.name == "merge" and ev.is_complete and ev.args == {"n": 3}

    def test_shared_epoch_orders_events(self):
        tr = Tracer()
        tr.instant("a")
        tr.instant("b")
        a, b = tr.events
        assert a.ts <= b.ts

    def test_event_cap_counts_drops(self):
        tr = Tracer(max_events=2)
        for _ in range(5):
            tr.instant("e")
        assert tr.n_events == 2
        assert tr.n_dropped == 3
        assert tr.summary()["n_dropped"] == 3

    def test_track_views(self):
        tr = Tracer()
        tr.instant("a", MAIN_TRACK)
        tr.instant("b", worker_track(0))
        tr.instant("a", worker_track(0))
        assert len(tr.events_on(worker_track(0))) == 2
        assert [e.name for e in tr.of_name("a")] == ["a", "a"]

    def test_summary_busy_stall_idle_fractions(self):
        tr = Tracer()
        tr.set_track(worker_track(0), "worker 0")
        epoch = tr.epoch
        tr.complete("chunk.process", worker_track(0), epoch, epoch + 0.6)
        tr.complete("queue.pop_stall", worker_track(0), epoch + 0.6, epoch + 0.8)
        tr.complete("route", MAIN_TRACK, epoch, epoch + 1.0)
        s = tr.summary()
        assert s["wall_seconds"] == pytest.approx(1.0)
        w = s["tracks"]["worker 0"]
        assert w["busy_frac"] == pytest.approx(0.6)
        assert w["stall_frac"] == pytest.approx(0.2)
        assert w["idle_frac"] == pytest.approx(0.2)
        assert s["tracks"]["main"]["busy_frac"] == pytest.approx(1.0)

    def test_null_tracer_counts_calls_but_records_nothing(self):
        tr = NullTracer()
        assert not tr.enabled
        tr.instant("a")
        tr.complete("b", 0, 0.0, 1.0)
        with tr.slice("c"):
            pass
        tr.set_track(1, "w")
        assert tr.record_calls == 4
        assert tr.events == ()
        assert tr.summary() == {}

    def test_registry_defaults_to_shared_null_tracer(self):
        assert MetricsRegistry().tracer is NULL_TRACER

    def test_registry_span_feeds_tracer(self):
        reg = MetricsRegistry(tracer=Tracer())
        with reg.span("merge", n=2):
            pass
        (ev,) = reg.tracer.of_name("merge")
        assert ev.is_complete and ev.track == MAIN_TRACK


class TestChromeTraceExport:
    def test_dict_shape_and_validation(self):
        tr = Tracer()
        tr.set_track(worker_track(0), "worker 0")
        tr.instant("chunk.push", MAIN_TRACK, worker=0)
        t0 = tr.now()
        tr.complete("chunk.process", worker_track(0), t0, t0 + 0.01, seq=0)
        obj = chrome_trace_dict(tr, meta={"workload": "unit"})
        assert validate_chrome_trace(obj) == []
        phases = sorted(e["ph"] for e in obj["traceEvents"])
        assert "M" in phases and "X" in phases and "i" in phases
        assert obj["otherData"]["workload"] == "unit"

    def test_validator_flags_garbage(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
        bad_dur = {"traceEvents": [
            {"ph": "X", "name": "e", "pid": 1, "tid": 0, "ts": 0.0}
        ]}
        assert any("dur" in e for e in validate_chrome_trace(bad_dur))

    def test_write_and_validate_file(self, tmp_path):
        tr = Tracer()
        tr.instant("a")
        path = tmp_path / "run.trace.json"
        write_chrome_trace(path, tr, meta={"workload": "unit"})
        assert validate_chrome_trace_file(path) == []
        json.loads(path.read_text())  # plain JSON, loadable anywhere


class TestPipelineTimeline:
    def test_pipeline_emits_one_track_per_worker(self):
        batch = small_trace()
        cfg = ProfilerConfig(perfect_signature=True, workers=3, chunk_size=16)
        reg = MetricsRegistry(tracer=Tracer())
        ParallelProfiler(cfg, registry=reg).profile(batch)
        tr = reg.tracer
        assert tr.track_names[MAIN_TRACK] == "main"
        for w in range(3):
            assert tr.track_names[worker_track(w)] == f"worker {w}"
            names = {e.name for e in tr.events_on(worker_track(w))}
            assert "chunk.process" in names
        main_names = {e.name for e in tr.events_on(MAIN_TRACK)}
        assert {"chunk.push", "route", "push", "drain", "merge"} <= main_names
        obj = chrome_trace_dict(tr, meta={})
        assert validate_chrome_trace(obj) == []
        # One metadata row and >= one event row per worker track.
        tids = {e["tid"] for e in obj["traceEvents"] if e["ph"] != "M"}
        assert {worker_track(w) for w in range(3)} <= tids

    def test_push_stall_intervals_recorded_when_queue_fills(self):
        batch = small_trace(rounds=8)
        cfg = ProfilerConfig(
            perfect_signature=True, workers=2, chunk_size=4, queue_depth=2
        )
        reg = MetricsRegistry(tracer=Tracer())
        ParallelProfiler(cfg, registry=reg).profile(batch)
        stalls = reg.tracer.of_name("queue.push_stall")
        assert stalls, "tiny queues must produce push-stall intervals"
        assert all(e.is_complete and e.track == MAIN_TRACK for e in stalls)

    def test_untraced_pipeline_never_touches_the_tracer(self):
        batch = small_trace()
        cfg = ProfilerConfig(perfect_signature=True, workers=2, chunk_size=16)
        before = NULL_TRACER.record_calls
        ParallelProfiler(cfg).profile(batch)
        ParallelProfiler(cfg, registry=MetricsRegistry()).profile(batch)
        assert NULL_TRACER.record_calls == before

    def test_traced_and_untraced_results_identical(self):
        batch = small_trace()
        cfg = ProfilerConfig(perfect_signature=True, workers=3, chunk_size=16)
        plain, _ = ParallelProfiler(cfg).profile(batch)
        reg = MetricsRegistry(tracer=Tracer())
        traced, _ = ParallelProfiler(cfg, registry=reg).profile(batch)
        assert traced.store == plain.store
        assert reg.tracer.n_events > 0
