"""Bundle round-trip fidelity: write → read → diff-against-self is empty
for every bundled workload in all three pipeline modes, and a worker crash
still leaves a valid (never torn) partial bundle behind."""

import json

import pytest

from repro.common.config import ProfilerConfig
from repro.common.errors import ProfilerError
from repro.obs import (
    MetricsRegistry,
    RunLedger,
    RunReport,
    diff_bundles,
    load_bundle,
)
from repro.obs.ledger import BUNDLE_NAME
from repro.parallel import ParallelProfiler
from repro.workloads import get_trace, workload_names

ALL_WORKLOADS = [
    name
    for suite in ("nas", "starbench", "splash2x")
    for name in workload_names(suite)
]

PERFECT = ProfilerConfig(perfect_signature=True, workers=2, chunk_size=2048)


def _bundle_for(tmp_path, name, mode, rid):
    reg = MetricsRegistry(run_id=rid)
    led = RunLedger(tmp_path, rid, meta={"workload": name, "mode": mode})
    result, info = ParallelProfiler(
        PERFECT, mode=mode, registry=reg, ledger=led
    ).profile(get_trace(name, scale=1))
    report = RunReport.build(reg, result=result, info=info)
    led.finalize(reg, report=report, result=result, info=info)
    return load_bundle(led.path)


@pytest.mark.parametrize("mode", ["deterministic", "threads", "processes"])
@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_roundtrip_self_diff_is_empty(tmp_path, name, mode):
    doc = _bundle_for(tmp_path, name, mode, "a")
    again = load_bundle(tmp_path / "a")
    diff = diff_bundles(doc, again)
    assert diff.identical, diff.render()
    assert diff.regressions == []
    assert doc["dependences"]["n_edges"] > 0
    assert doc["loops"], "every workload profiles at least one loop"


@pytest.mark.parametrize("mode", ["deterministic", "threads"])
def test_two_identical_runs_diff_empty(tmp_path, mode):
    """The determinism contract behind the exit-code gate: two separate
    profiles of the same workload+config agree edge-for-edge."""
    a = _bundle_for(tmp_path, "cg", mode, "a")
    b = _bundle_for(tmp_path, "cg", mode, "b")
    assert a["dependences"]["digest"] == b["dependences"]["digest"]
    diff = diff_bundles(a, b)
    assert not diff.edges_added and not diff.edges_removed
    assert not diff.verdict_flips
    assert diff.regressions == []


class TestCrashPath:
    def test_worker_crash_leaves_valid_partial_bundle(
        self, monkeypatch, tmp_path
    ):
        """A worker crash in processes mode must still commit a parseable
        ``status: "partial"`` bundle from the engine's finally path — no
        torn JSON, no stranded tmp files."""
        import repro.parallel.worker as worker_mod

        def boom(self, batch, rows, seq=-1):
            raise RuntimeError("injected worker crash")

        monkeypatch.setattr(worker_mod.Worker, "process_rows", boom)
        reg = MetricsRegistry(run_id="crashy")
        led = RunLedger(tmp_path, "crashy", meta={"workload": "ep"})
        with pytest.raises(ProfilerError, match="injected worker crash"):
            ParallelProfiler(
                PERFECT.with_(chunk_size=512),
                mode="processes",
                registry=reg,
                ledger=led,
            ).profile(get_trace("ep"))
        raw = led.path.read_text()
        doc = json.loads(raw)  # parses or raises: never torn
        assert doc["status"] == "partial"
        assert doc["run_id"] == "crashy"
        assert doc["dependences"] is None
        assert list(led.path.parent.glob("*.tmp")) == []
        # The reader side accepts it too (schema-checked).
        assert load_bundle(led.path)["meta"]["workload"] == "ep"

    def test_thread_mode_crash_also_checkpoints(self, monkeypatch, tmp_path):
        import repro.parallel.worker as worker_mod

        def boom(self, batch, rows, seq=-1):
            raise RuntimeError("injected worker crash")

        monkeypatch.setattr(worker_mod.Worker, "process_rows", boom)
        reg = MetricsRegistry(run_id="crashy2")
        led = RunLedger(tmp_path, "crashy2")
        with pytest.raises(RuntimeError, match="injected worker crash"):
            ParallelProfiler(
                PERFECT, mode="threads", registry=reg, ledger=led
            ).profile(get_trace("ep"))
        assert load_bundle(led.path)["status"] == "partial"

    def test_partial_bundle_diffs_against_full_one(self, tmp_path):
        """A partial bundle is still a usable diff operand: metrics-only
        comparison, no dependence/loop sections to crash on."""
        full = _bundle_for(tmp_path, "ep", "deterministic", "full")
        reg = MetricsRegistry(run_id="part")
        led = RunLedger(tmp_path, "part")
        led.checkpoint(reg)
        partial = load_bundle(led.path)
        diff = diff_bundles(full, partial)
        assert diff.verdict_flips == [] and diff.regressions == []


def test_engine_checkpoint_fires_without_finalize(tmp_path):
    """The engine-side safety net alone (no CLI finalize) leaves a bundle."""
    reg = MetricsRegistry(run_id="engine-only")
    led = RunLedger(tmp_path, "engine-only")
    ParallelProfiler(PERFECT, registry=reg, ledger=led).profile(get_trace("ep"))
    doc = load_bundle(tmp_path / "engine-only" / BUNDLE_NAME)
    assert doc["status"] == "partial"
    assert doc["metrics"]["counters"]
