"""Sink behaviour: JSONL event log and Prometheus text export round-trips."""

import json

import pytest

from repro.common.errors import ObsError
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    TeeSink,
    parse_prometheus,
    prometheus_text,
    read_jsonl,
)
from repro.obs.export import escape_label_value, sanitize_label_name


class TestJsonlSink:
    def test_one_event_per_line_and_roundtrip(self, tmp_path):
        path = tmp_path / "run.metrics.jsonl"
        sink = JsonlSink(path)
        reg = MetricsRegistry(sink)
        reg.emit({"type": "span", "phase": "route", "seconds": 0.25})
        reg.emit({"type": "sample", "seq": 1, "values": {"q": 3}})
        reg.close()

        lines = path.read_text().splitlines()
        assert len(lines) == 2
        events = [json.loads(l) for l in lines]  # every line parses alone
        assert events == read_jsonl(path)
        assert events[0]["type"] == "span"
        assert events[0]["phase"] == "route"
        assert events[1]["values"] == {"q": 3}
        assert all("ts" in e for e in events)

    def test_stable_field_order(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = JsonlSink(path)
        sink.emit({"b": 1, "a": 2, "type": "x"})
        sink.close()
        line = path.read_text().strip()
        assert line == '{"a":2,"b":1,"type":"x"}'

    def test_empty_run_still_creates_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        JsonlSink(path).close()
        assert path.exists() and path.read_text() == ""

    def test_counts_events(self, tmp_path):
        sink = JsonlSink(tmp_path / "n.jsonl")
        for i in range(5):
            sink.emit({"type": "e", "i": i})
        assert sink.n_events == 5
        sink.close()


class TestTeeAndNull:
    def test_tee_fans_out(self, tmp_path):
        mem = MemorySink()
        jsonl = JsonlSink(tmp_path / "t.jsonl")
        tee = TeeSink(mem, jsonl)
        tee.emit({"type": "e"})
        tee.close()
        assert len(mem.events) == 1
        assert len(read_jsonl(tmp_path / "t.jsonl")) == 1

    def test_tee_drops_disabled_members(self):
        tee = TeeSink(NullSink())
        assert not tee.enabled  # nothing enabled -> emit is skipped upstream

    def test_null_sink_is_disabled(self):
        assert not NullSink().enabled


class TestPrometheusExport:
    @pytest.fixture
    def registry(self):
        reg = MetricsRegistry()
        reg.counter("queue.push_stalls", worker=0).inc(3)
        reg.counter("queue.push_stalls", worker=1).inc(4)
        reg.gauge("chunkpool.allocated").set(16)
        h = reg.histogram("worker.chunk_seconds", buckets=(0.001, 0.01), worker=0)
        h.observe(0.0005)
        h.observe(0.5)
        return reg

    def test_text_format_shape(self, registry):
        text = prometheus_text(registry)
        lines = text.splitlines()
        assert "# TYPE ddprof_queue_push_stalls counter" in lines
        assert 'ddprof_queue_push_stalls{worker="0"} 3' in lines
        assert 'ddprof_queue_push_stalls{worker="1"} 4' in lines
        assert "# TYPE ddprof_chunkpool_allocated gauge" in lines
        assert "ddprof_chunkpool_allocated 16" in lines
        # histogram series: cumulative buckets + sum + count
        assert 'ddprof_worker_chunk_seconds_bucket{worker="0",le="0.001"} 1' in lines
        assert 'ddprof_worker_chunk_seconds_bucket{worker="0",le="0.01"} 1' in lines
        assert 'ddprof_worker_chunk_seconds_bucket{worker="0",le="+Inf"} 2' in lines
        assert 'ddprof_worker_chunk_seconds_count{worker="0"} 2' in lines

    def test_parse_roundtrip(self, registry):
        samples = parse_prometheus(prometheus_text(registry))
        assert samples['ddprof_queue_push_stalls{worker="0"}'] == 3.0
        assert samples['ddprof_queue_push_stalls{worker="1"}'] == 4.0
        assert samples["ddprof_chunkpool_allocated"] == 16.0
        assert samples['ddprof_worker_chunk_seconds_sum{worker="0"}'] == (
            pytest.approx(0.5005)
        )

    def test_each_type_header_once(self, registry):
        text = prometheus_text(registry)
        assert text.count("# TYPE ddprof_queue_push_stalls ") == 1

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("!!! not a sample")


class TestSinkCloseSemantics:
    def test_jsonl_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "m.jsonl")
        sink.emit({"type": "x"})
        sink.close()
        sink.close()  # second close: no error, no re-open
        assert len(read_jsonl(tmp_path / "m.jsonl")) == 1

    def test_jsonl_emit_after_close_raises_obs_error(self, tmp_path):
        sink = JsonlSink(tmp_path / "m.jsonl")
        sink.close()
        with pytest.raises(ObsError, match="closed JsonlSink"):
            sink.emit({"type": "x"})

    def test_jsonl_flush_every(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = JsonlSink(path, flush_every=2)
        sink.emit({"type": "a"})
        sink.emit({"type": "b"})  # second event triggers a flush
        assert len(read_jsonl(path)) == 2  # durable without close()
        with pytest.raises(ValueError):
            JsonlSink(path, flush_every=-1)

    def test_jsonl_eventless_close_touches_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        JsonlSink(path).close()
        assert path.exists() and read_jsonl(path) == []

    def test_tee_emit_after_close_raises(self):
        tee = TeeSink(MemorySink())
        tee.close()
        with pytest.raises(ObsError, match="closed TeeSink"):
            tee.emit({"type": "x"})

    def test_tee_close_is_exception_safe(self):
        class BrokenSink(MemorySink):
            def close(self):
                raise OSError("disk gone")

        good = JsonlSinkSpy()
        tee = TeeSink(BrokenSink(), good)
        with pytest.raises(OSError, match="disk gone"):
            tee.close()
        assert good.closed  # the failure did not skip the other member
        tee.close()  # already closed: no second raise

    def test_registry_close_propagates(self, tmp_path):
        sink = JsonlSink(tmp_path / "m.jsonl")
        reg = MetricsRegistry(sink)
        reg.emit({"type": "x"})
        reg.close()
        with pytest.raises(ObsError):
            sink.emit({"type": "y"})


class JsonlSinkSpy(MemorySink):
    def __init__(self):
        super().__init__()
        self.closed = False

    def close(self):
        self.closed = True


class TestLabelEscaping:
    def test_escape_rules(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_awkward_values_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("deps.instances", type='say "hi"').inc(1)
        reg.counter("deps.instances", type="back\\slash").inc(2)
        reg.counter("deps.instances", type="two\nlines").inc(3)
        reg.counter("deps.instances", type="closing}brace").inc(4)
        text = prometheus_text(reg)
        assert "\n\n" not in text.strip()  # newline in a value stays escaped
        samples = parse_prometheus(text)
        assert samples['ddprof_deps_instances{type="say \\"hi\\""}'] == 1.0
        assert samples['ddprof_deps_instances{type="back\\\\slash"}'] == 2.0
        assert samples['ddprof_deps_instances{type="two\\nlines"}'] == 3.0
        assert samples['ddprof_deps_instances{type="closing}brace"}'] == 4.0


class TestLabelNameValidation:
    """Label *names* outside the Prometheus grammar: sanitize vs error."""

    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("deps.instances", **{"kind-of": "raw"}).inc(5)
        return reg

    def test_sanitize_label_name_rules(self):
        assert sanitize_label_name("kind-of") == "kind_of"
        assert sanitize_label_name("a.b c") == "a_b_c"
        assert sanitize_label_name("9lives") == "_9lives"
        assert sanitize_label_name("") == "_"
        # idempotent on already-valid names
        assert sanitize_label_name("worker_id") == "worker_id"

    def test_sanitize_policy_rewrites_names(self):
        text = prometheus_text(self.make_registry())  # default policy
        samples = parse_prometheus(text)
        assert samples['ddprof_deps_instances{kind_of="raw"}'] == 5.0

    def test_error_policy_raises(self):
        with pytest.raises(ObsError, match="kind-of"):
            prometheus_text(self.make_registry(), invalid_names="error")

    def test_sanitize_collision_always_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", **{"a-b": "1", "a_b": "2"}).inc()
        with pytest.raises(ObsError, match="a_b"):
            prometheus_text(reg)  # merging two series would be silent loss

    def test_valid_names_untouched_under_both_policies(self):
        reg = MetricsRegistry()
        reg.counter("x", worker="0").inc(3)
        for policy in ("sanitize", "error"):
            samples = parse_prometheus(prometheus_text(reg, invalid_names=policy))
            assert samples['ddprof_x{worker="0"}'] == 3.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            prometheus_text(MetricsRegistry(), invalid_names="ignore")
