"""Sink behaviour: JSONL event log and Prometheus text export round-trips."""

import json

import pytest

from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    TeeSink,
    parse_prometheus,
    prometheus_text,
    read_jsonl,
)


class TestJsonlSink:
    def test_one_event_per_line_and_roundtrip(self, tmp_path):
        path = tmp_path / "run.metrics.jsonl"
        sink = JsonlSink(path)
        reg = MetricsRegistry(sink)
        reg.emit({"type": "span", "phase": "route", "seconds": 0.25})
        reg.emit({"type": "sample", "seq": 1, "values": {"q": 3}})
        reg.close()

        lines = path.read_text().splitlines()
        assert len(lines) == 2
        events = [json.loads(l) for l in lines]  # every line parses alone
        assert events == read_jsonl(path)
        assert events[0]["type"] == "span"
        assert events[0]["phase"] == "route"
        assert events[1]["values"] == {"q": 3}
        assert all("ts" in e for e in events)

    def test_stable_field_order(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = JsonlSink(path)
        sink.emit({"b": 1, "a": 2, "type": "x"})
        sink.close()
        line = path.read_text().strip()
        assert line == '{"a":2,"b":1,"type":"x"}'

    def test_empty_run_still_creates_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        JsonlSink(path).close()
        assert path.exists() and path.read_text() == ""

    def test_counts_events(self, tmp_path):
        sink = JsonlSink(tmp_path / "n.jsonl")
        for i in range(5):
            sink.emit({"type": "e", "i": i})
        assert sink.n_events == 5
        sink.close()


class TestTeeAndNull:
    def test_tee_fans_out(self, tmp_path):
        mem = MemorySink()
        jsonl = JsonlSink(tmp_path / "t.jsonl")
        tee = TeeSink(mem, jsonl)
        tee.emit({"type": "e"})
        tee.close()
        assert len(mem.events) == 1
        assert len(read_jsonl(tmp_path / "t.jsonl")) == 1

    def test_tee_drops_disabled_members(self):
        tee = TeeSink(NullSink())
        assert not tee.enabled  # nothing enabled -> emit is skipped upstream

    def test_null_sink_is_disabled(self):
        assert not NullSink().enabled


class TestPrometheusExport:
    @pytest.fixture
    def registry(self):
        reg = MetricsRegistry()
        reg.counter("queue.push_stalls", worker=0).inc(3)
        reg.counter("queue.push_stalls", worker=1).inc(4)
        reg.gauge("chunkpool.allocated").set(16)
        h = reg.histogram("worker.chunk_seconds", buckets=(0.001, 0.01), worker=0)
        h.observe(0.0005)
        h.observe(0.5)
        return reg

    def test_text_format_shape(self, registry):
        text = prometheus_text(registry)
        lines = text.splitlines()
        assert "# TYPE ddprof_queue_push_stalls counter" in lines
        assert 'ddprof_queue_push_stalls{worker="0"} 3' in lines
        assert 'ddprof_queue_push_stalls{worker="1"} 4' in lines
        assert "# TYPE ddprof_chunkpool_allocated gauge" in lines
        assert "ddprof_chunkpool_allocated 16" in lines
        # histogram series: cumulative buckets + sum + count
        assert 'ddprof_worker_chunk_seconds_bucket{worker="0",le="0.001"} 1' in lines
        assert 'ddprof_worker_chunk_seconds_bucket{worker="0",le="0.01"} 1' in lines
        assert 'ddprof_worker_chunk_seconds_bucket{worker="0",le="+Inf"} 2' in lines
        assert 'ddprof_worker_chunk_seconds_count{worker="0"} 2' in lines

    def test_parse_roundtrip(self, registry):
        samples = parse_prometheus(prometheus_text(registry))
        assert samples['ddprof_queue_push_stalls{worker="0"}'] == 3.0
        assert samples['ddprof_queue_push_stalls{worker="1"}'] == 4.0
        assert samples["ddprof_chunkpool_allocated"] == 16.0
        assert samples['ddprof_worker_chunk_seconds_sum{worker="0"}'] == (
            pytest.approx(0.5005)
        )

    def test_each_type_header_once(self, registry):
        text = prometheus_text(registry)
        assert text.count("# TYPE ddprof_queue_push_stalls ") == 1

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("!!! not a sample")
