"""Dependence provenance: attribution records, suspect_fp, oracle check."""

from repro.common.config import ProfilerConfig
from repro.core import profile_trace
from repro.core.deps import DepType, Dependence
from repro.obs import ProvenanceCollector, ProvenanceRecord, oracle_cross_check
from repro.parallel import ParallelProfiler
from repro.sigmem.signature import AccessRecord, ArraySignature
from tests.trace_helpers import seq_trace


def small_trace(n_addr=24, rounds=3):
    ops = []
    for _ in range(rounds):
        for i in range(n_addr):
            a = 0x1000 + 8 * i
            ops.append(("w", a, 10 + i % 3, "x"))
            ops.append(("r", a, 20 + i % 2, "x"))
    return seq_trace(ops)


class TestProvenanceRecord:
    def test_note_widens_window(self):
        rec = ProvenanceRecord(worker=1, chunk=3, ts=100, suspect=False)
        rec.note(worker=2, chunk=1, ts=50, suspect=True)
        rec.note(worker=1, chunk=7, ts=200, suspect=False)
        assert rec.workers == {1, 2}
        assert (rec.first_chunk, rec.last_chunk) == (1, 7)
        assert (rec.first_ts, rec.last_ts) == (50, 200)
        assert rec.count == 3
        assert rec.suspect_fp  # sticky once any instance was suspect

    def test_fold_merges_everything(self):
        a = ProvenanceRecord(worker=0, chunk=2, ts=10, suspect=False)
        b = ProvenanceRecord(worker=3, chunk=0, ts=90, suspect=True)
        b.oracle_spurious = True
        a.fold(b)
        assert a.workers == {0, 3}
        assert (a.first_chunk, a.last_chunk) == (0, 2)
        assert (a.first_ts, a.last_ts) == (10, 90)
        assert a.count == 2 and a.suspect_fp and a.oracle_spurious

    def test_to_dict_schema(self):
        d = ProvenanceRecord(worker=0, chunk=1, ts=5, suspect=False).to_dict()
        assert set(d) == {
            "workers", "chunks", "ts", "count", "suspect_fp", "oracle_spurious"
        }
        assert d["oracle_spurious"] is None  # unknown until the oracle runs


class TestCollector:
    def dep(self, sink=10, source=5, t=DepType.RAW):
        return Dependence(t, sink_loc=sink, sink_tid=0,
                          source_loc=source, source_tid=0, var=1)

    def test_note_and_get(self):
        c = ProvenanceCollector(worker=2)
        c.chunk = 4
        c.note(self.dep(), ts=7)
        c.note(self.dep(), ts=9, suspect=True)
        rec = c.get(self.dep())
        assert rec.count == 2 and rec.workers == {2}
        assert (rec.first_ts, rec.last_ts) == (7, 9)
        assert rec.suspect_fp

    def test_merge_folds_per_dependence(self):
        a, b = ProvenanceCollector(worker=0), ProvenanceCollector(worker=1)
        a.chunk = b.chunk = 0
        a.note(self.dep(), ts=1)
        b.note(self.dep(), ts=5)
        b.note(self.dep(sink=99), ts=2)
        a.merge(b)
        assert len(a) == 2
        assert a.get(self.dep()).workers == {0, 1}
        assert a.get(self.dep(sink=99)).workers == {1}

    def test_to_list_is_sorted_and_json_ready(self):
        import json

        c = ProvenanceCollector()
        c.note(self.dep(sink=20), ts=1)
        c.note(self.dep(sink=10), ts=1)
        rows = c.to_list()
        assert [r["sink_loc"] for r in rows] == [10, 20]
        json.dumps(rows)  # fully serializable
        assert all("provenance" in r for r in rows)


class TestSuspectFalsePositives:
    def test_signature_reports_slot_conflicts(self):
        sig = ArraySignature(1, track_conflicts=True)
        sig.insert(0x1000, AccessRecord(1, 0, 0, 0))
        assert not sig.suspect_source(0x1000)
        assert sig.suspect_source(0x2000)  # live collision: slot owned by 0x1000
        sig.insert(0x2000, AccessRecord(2, 0, 0, 1))  # evicts 0x1000's record
        assert sig.suspect_source(0x1000)
        assert sig.suspect_source(0x2000)  # eviction history taints the slot

    def test_untracked_signature_never_suspects(self):
        sig = ArraySignature(1)
        sig.insert(0x1000, AccessRecord(1, 0, 0, 0))
        assert not sig.suspect_source(0x2000)

    def test_collision_dependence_flagged_and_oracle_confirms_spurious(self):
        """A 1-slot signature conflates two addresses: the second write sees
        the first address's record and fabricates a WAW the perfect oracle
        never produces — flagged suspect, confirmed spurious."""
        batch = seq_trace([("w", 0x1000, 1, "x"), ("w", 0x2000, 2, "y")])
        cfg = ProfilerConfig(signature_slots=1)
        prov = ProvenanceCollector()
        res = profile_trace(batch, cfg, provenance=prov)
        fabricated = [
            d for d in res.store
            if d.dep_type is DepType.WAW and d.sink_loc == 2 and d.source_loc == 1
        ]
        assert fabricated, "1-slot signature must conflate the two addresses"
        rec = prov.get(fabricated[0])
        assert rec is not None and rec.suspect_fp
        assert rec.oracle_spurious is None

        n = oracle_cross_check(prov, batch, cfg)
        assert n >= 1
        assert prov.get(fabricated[0]).oracle_spurious is True
        assert prov.n_oracle_spurious == n

    def test_oracle_clears_genuine_dependences(self):
        batch = seq_trace([("w", 0x1000, 1, "x"), ("r", 0x1000, 2, "x")])
        cfg = ProfilerConfig(signature_slots=64)
        prov = ProvenanceCollector()
        res = profile_trace(batch, cfg, provenance=prov)
        oracle_cross_check(prov, batch, cfg)
        raw = [d for d in res.store if d.dep_type is DepType.RAW]
        assert raw and prov.get(raw[0]).oracle_spurious is False


class TestPipelineProvenance:
    def test_every_dependence_annotated(self):
        batch = small_trace()
        cfg = ProfilerConfig(perfect_signature=True, workers=3, chunk_size=16)
        res, _ = ParallelProfiler(cfg, provenance=True).profile(batch)
        prov = res.provenance
        assert prov is not None
        assert set(res.store) == {dep for dep, _ in prov}
        for _, rec in prov:
            assert rec.workers <= {0, 1, 2}
            assert 0 <= rec.first_chunk <= rec.last_chunk
            assert 0 <= rec.first_ts <= rec.last_ts
            assert rec.count >= 1

    def test_provenance_matches_store_instance_counts(self):
        batch = small_trace()
        cfg = ProfilerConfig(perfect_signature=True, workers=2, chunk_size=16)
        res, _ = ParallelProfiler(cfg, provenance=True).profile(batch)
        for dep, rec in res.provenance:
            assert rec.count == res.store.count(dep)

    def test_pipeline_without_flag_collects_nothing(self):
        batch = small_trace()
        cfg = ProfilerConfig(perfect_signature=True, workers=2)
        res, _ = ParallelProfiler(cfg).profile(batch)
        assert res.provenance is None

    def test_perfect_signature_is_never_suspect(self):
        batch = small_trace()
        cfg = ProfilerConfig(perfect_signature=True, workers=2)
        res, _ = ParallelProfiler(cfg, provenance=True).profile(batch)
        assert res.provenance.n_suspect == 0
