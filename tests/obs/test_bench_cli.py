"""``ddprof bench`` — the compare gate and report renderer as the CI uses them."""

import json

import pytest

from repro.cli import BENCH_SUITES, FAST_SUITES, main
from repro.obs import BenchRecorder


def write_suite(path, suite, values, **record_kwargs):
    r = BenchRecorder(suite, environment={"git_sha": "cafe" * 10})
    for bench_id, v in values.items():
        r.record(bench_id, v, **record_kwargs)
    return r.write(path / f"BENCH_{suite}.json")


@pytest.fixture()
def dirs(tmp_path):
    base = tmp_path / "base"
    cur = tmp_path / "cur"
    base.mkdir()
    cur.mkdir()
    return base, cur


class TestSuiteMap:
    def test_every_benchmark_module_has_a_suite(self):
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        modules = {p.name for p in bench_dir.glob("test_*.py")}
        mapped = {m for files in BENCH_SUITES.values() for m in files}
        assert modules == mapped  # no orphan module, no stale entry
        assert sum(len(v) for v in BENCH_SUITES.values()) == len(mapped)
        assert set(FAST_SUITES) <= set(BENCH_SUITES)


class TestBenchCompare:
    def test_neutral_pair_exits_zero(self, dirs, capsys):
        base, cur = dirs
        write_suite(base, "s", {"m": 100.0})
        write_suite(cur, "s", {"m": 101.0})
        assert main(["bench", "compare", str(base), str(cur)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "neutral" in out

    def test_regression_exits_one(self, dirs, capsys):
        base, cur = dirs
        write_suite(base, "s", {"m": 100.0})
        write_suite(cur, "s", {"m": 300.0})  # the injected 3x slowdown
        assert main(["bench", "compare", str(base), str(cur)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_improvement_and_threshold_flag(self, dirs, capsys):
        base, cur = dirs
        write_suite(base, "s", {"m": 300.0})
        write_suite(cur, "s", {"m": 100.0})
        assert main(["bench", "compare", str(base), str(cur)]) == 0
        assert "improved" in capsys.readouterr().out
        # A huge explicit threshold makes the same pair neutral.
        assert main(
            ["bench", "compare", str(base), str(cur), "--threshold", "5.0"]
        ) == 0
        assert "neutral" in capsys.readouterr().out

    def test_new_suite_without_baseline_is_all_added(self, dirs, capsys):
        base, cur = dirs
        write_suite(cur, "fresh", {"m": 1.0})
        assert main(["bench", "compare", str(base), str(cur)]) == 0
        assert "added" in capsys.readouterr().out

    def test_suite_in_baseline_only(self, dirs, capsys):
        base, cur = dirs
        write_suite(base, "gone", {"m": 1.0})
        assert main(["bench", "compare", str(base), str(cur)]) == 0
        assert "skipped" in capsys.readouterr().out
        write_suite(base, "gone", {"m": 1.0})
        assert main(["bench", "compare", str(base), str(cur), "--strict"]) == 1

    def test_json_output(self, dirs, capsys):
        base, cur = dirs
        write_suite(base, "s", {"m": 100.0})
        write_suite(cur, "s", {"m": 300.0})
        assert main(["bench", "compare", str(base), str(cur), "--json"]) == 1
        docs = json.loads(capsys.readouterr().out)
        assert docs[0]["suite"] == "s" and docs[0]["ok"] is False
        assert docs[0]["results"][0]["status"] == "regressed"

    def test_single_file_arguments(self, dirs, capsys):
        base, cur = dirs
        pb = write_suite(base, "s", {"m": 1.0})
        pc = write_suite(cur, "s", {"m": 1.0})
        assert main(["bench", "compare", str(pb), str(pc)]) == 0

    def test_schema_mismatch_is_loud(self, dirs):
        from repro.common.errors import ObsError

        base, cur = dirs
        (base / "BENCH_s.json").write_text(json.dumps({"schema": "nope"}))
        write_suite(cur, "s", {"m": 1.0})
        with pytest.raises(ObsError, match="regenerate"):
            main(["bench", "compare", str(base), str(cur)])


class TestBenchReport:
    def test_renders_table(self, dirs, capsys):
        base, _ = dirs
        write_suite(base, "s", {"m": 2.5}, unit="x", direction="higher")
        assert main(["bench", "report", str(base)]) == 0
        out = capsys.readouterr().out
        assert "BENCH [s]" in out and "cafecafecafe" in out and "higher" in out

    def test_json_mode(self, dirs, capsys):
        base, _ = dirs
        write_suite(base, "s", {"m": 2.5})
        assert main(["bench", "report", str(base), "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert docs[0]["benchmarks"]["m"]["value"] == 2.5


class TestBenchRun:
    def test_unknown_suite_rejected(self, capsys):
        assert main(["bench", "run", "--suite", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_missing_benchmarks_dir(self, tmp_path, capsys):
        rc = main(
            ["bench", "run", "--benchmarks-dir", str(tmp_path / "nope")]
        )
        assert rc == 2
        assert "not found" in capsys.readouterr().err
