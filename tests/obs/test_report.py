"""Run-report construction, pipeline telemetry views, and the CLI surface.

``TestStatsCli`` is the acceptance check for the telemetry subsystem:
``ddprof stats kmeans --metrics-out FILE`` must produce valid JSONL with
per-phase span durations, per-worker queue occupancy samples, stall
counters, and signature fill gauges.
"""

import json

import pytest

from repro import (
    MemorySink,
    MetricsRegistry,
    ParallelProfiler,
    ProfilerConfig,
    ProfilerConfig as _PC,
    RunReport,
    profile_trace,
)
from repro.cli import main
from repro.obs import read_jsonl

PERFECT = ProfilerConfig(perfect_signature=True)


@pytest.fixture(scope="module")
def mg_trace():
    from repro.workloads import get_trace

    return get_trace("mg")


class TestRunReport:
    def test_build_from_sequential_run(self, mg_trace):
        reg = MetricsRegistry()
        res = profile_trace(mg_trace, PERFECT, registry=reg)
        report = RunReport.build(reg, res, workload="mg", engine="vectorized")
        d = report.to_dict()
        assert d["schema"] == "ddprof.run-report/1"
        assert d["meta"] == {"workload": "mg", "engine": "vectorized"}
        assert d["profile"]["accesses"] == res.stats.n_accesses
        assert d["profile"]["merged_dependences"] == res.store.n_entries
        assert d["parallel"] is None
        phases = {p["phase"] for p in d["phases"]}
        assert "engine" in phases
        # to_json parses back identically
        assert json.loads(report.to_json()) == d

    def test_build_from_pipeline_run(self, mg_trace):
        reg = MetricsRegistry()
        res, info = ParallelProfiler(
            PERFECT.with_(workers=4), registry=reg
        ).profile(mg_trace)
        report = RunReport.build(reg, res, info, workload="mg")
        d = report.to_dict()
        assert d["parallel"]["workers"] == 4
        assert d["parallel"]["chunks"] == info.n_chunks
        assert d["parallel"]["push_stalls"] == info.push_stalls
        assert {"route", "push", "drain", "merge"} <= {
            p["phase"] for p in d["phases"]
        }
        assert d["counters"]['worker.accesses{worker="0"}'] == (
            info.per_worker_accesses[0]
        )

    def test_render_is_human_readable(self, mg_trace):
        reg = MetricsRegistry()
        res, info = ParallelProfiler(
            PERFECT.with_(workers=2), registry=reg
        ).profile(mg_trace)
        text = RunReport.build(reg, res, info, workload="mg").render()
        assert "run report" in text and "phases:" in text
        assert "pipeline: 2 workers" in text


class TestPipelineTelemetry:
    """The registry is the single source of truth for pipeline statistics."""

    def test_stall_counters_single_source_of_truth(self, mg_trace):
        reg = MetricsRegistry()
        cfg = PERFECT.with_(workers=2, chunk_size=8, queue_depth=1)
        _, info = ParallelProfiler(cfg, registry=reg).profile(mg_trace)
        assert info.push_stalls == reg.sum_counters("queue.push_stalls") > 0
        assert info.pop_stalls == reg.sum_counters("queue.pop_stalls")

    def test_locked_queue_lock_ops_via_registry(self, mg_trace):
        reg = MetricsRegistry()
        cfg = PERFECT.with_(workers=2, lock_free_queues=False)
        _, info = ParallelProfiler(cfg, registry=reg).profile(mg_trace)
        assert info.lock_ops == reg.sum_counters("queue.lock_ops") > 0

    def test_info_views_match_registry(self, mg_trace):
        reg = MetricsRegistry()
        _, info = ParallelProfiler(
            PERFECT.with_(workers=3), registry=reg
        ).profile(mg_trace)
        assert info.n_chunks == reg.counter("pipeline.chunks").value
        assert info.per_worker_accesses == [
            reg.counter("worker.accesses", worker=w).value for w in range(3)
        ]
        assert info.per_worker_chunks == [
            reg.counter("worker.chunks", worker=w).value for w in range(3)
        ]

    def test_stats_equal_unregistered_run(self, mg_trace):
        """Attaching telemetry must not change profiling results."""
        plain_res, plain_info = ParallelProfiler(
            PERFECT.with_(workers=4)
        ).profile(mg_trace)
        reg = MetricsRegistry(MemorySink())
        obs_res, obs_info = ParallelProfiler(
            PERFECT.with_(workers=4), registry=reg
        ).profile(mg_trace)
        assert plain_res.store == obs_res.store
        assert plain_res.stats == obs_res.stats
        assert plain_info.per_worker_accesses == obs_info.per_worker_accesses
        assert plain_info.n_chunks == obs_info.n_chunks

    def test_chunk_latency_histogram_recorded(self, mg_trace):
        reg = MetricsRegistry()
        ParallelProfiler(PERFECT.with_(workers=2), registry=reg).profile(mg_trace)
        h = reg.histogram("worker.chunk_seconds", worker=0)
        assert h.count > 0 and h.sum > 0

    def test_sigmem_eviction_counter(self):
        """A 2-slot signature over many addresses must evict on conflicts."""
        from tests.trace_helpers import seq_trace

        ops = [("w", a, 1) for a in range(64)] + [("r", a, 1) for a in range(64)]
        batch = seq_trace(ops)
        reg = MetricsRegistry()
        profile_trace(
            batch, _PC(signature_slots=2), engine="reference", registry=reg
        )
        assert reg.sum_counters("sigmem.evictions") > 0


class TestStatsCli:
    def test_stats_prints_report(self, capsys):
        assert main(["stats", "mg", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "run report" in out and "phases:" in out and "pipeline:" in out

    def test_stats_json(self, capsys):
        assert main(["stats", "mg", "--workers", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "ddprof.run-report/1"
        assert doc["meta"]["workload"] == "mg"
        assert doc["parallel"]["workers"] == 2

    def test_stats_metrics_out_acceptance(self, tmp_path, capsys):
        """The ISSUE acceptance criterion, verbatim."""
        path = tmp_path / "m.jsonl"
        assert main(["stats", "kmeans", "--metrics-out", str(path)]) == 0
        capsys.readouterr()
        events = read_jsonl(path)  # every line is valid JSON
        assert events

        spans = [e for e in events if e["type"] == "span"]
        span_phases = {e["phase"] for e in spans}
        assert {"trace-build", "route", "push", "drain", "merge"} <= span_phases
        assert all(e["seconds"] >= 0 for e in spans)

        samples = [e for e in events if e["type"] == "sample"]
        assert samples
        sample_keys = set().union(*(e["values"].keys() for e in samples))
        assert 'queue.occupancy{worker="0"}' in sample_keys
        assert 'queue.occupancy{worker="3"}' in sample_keys
        assert any(k.startswith("sigmem.occupied{") for k in sample_keys)

        snapshots = [e for e in events if e["type"] == "snapshot"]
        assert len(snapshots) == 1
        counters = snapshots[0]["counters"]
        assert 'queue.push_stalls{worker="0"}' in counters
        assert 'queue.pop_stalls{worker="0"}' in counters
        gauges = snapshots[0]["gauges"]
        assert any(g.startswith("sigmem.occupied{") for g in gauges)

    def test_stats_prometheus_out(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        assert main(["stats", "mg", "--prometheus-out", str(path)]) == 0
        capsys.readouterr()
        from repro.obs import parse_prometheus

        samples = parse_prometheus(path.read_text())
        assert any(k.startswith("ddprof_queue_push_stalls") for k in samples)

    def test_stats_with_signature_slots_has_fill_ratio(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        assert main(
            ["stats", "mg", "--slots", "4096", "--metrics-out", str(path)]
        ) == 0
        capsys.readouterr()
        samples = [e for e in read_jsonl(path) if e["type"] == "sample"]
        keys = set().union(*(e["values"].keys() for e in samples))
        assert any(k.startswith("sigmem.fill_ratio{") for k in keys)

    def test_profile_json_flag(self, capsys):
        assert main(["profile", "ep", "--json"]) == 0
        out = capsys.readouterr().out
        assert "NOM" in out  # dependences still printed
        json_start = out.index('{\n  "schema"')
        doc = json.loads(out[json_start:])
        assert doc["schema"] == "ddprof.run-report/1"
        assert doc["profile"]["accesses"] > 0
        assert {"trace-build", "engine"} <= {p["phase"] for p in doc["phases"]}

    def test_profile_metrics_out(self, tmp_path, capsys):
        path = tmp_path / "p.jsonl"
        assert main(["profile", "ep", "--metrics-out", str(path)]) == 0
        capsys.readouterr()
        events = read_jsonl(path)
        assert any(e["type"] == "span" for e in events)
        assert any(e["type"] == "snapshot" for e in events)

    def test_loops_json_flag(self, capsys):
        """loops --json emits a single ddprof.loops/1 document (the run
        report stays off stdout: the loop table *is* the output here)."""
        assert main(["loops", "mg", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "ddprof.loops/1"
        assert doc["workload"] == "mg"
        assert doc["loops"]
        row = doc["loops"][0]
        assert {"site", "end", "executions", "total_iterations",
                "parallelizable", "verdict", "note"} <= set(row)
        assert {r["verdict"] for r in doc["loops"]} <= {
            "doall", "reduction", "pipeline", "sequential", None
        }


class TestProducerCoverageSurface:
    """producer.fastpath_coverage is a first-class metric: a gauge in the
    registry, a field in the run report's producer section, and a line in
    the rendered ``ddprof stats`` output."""

    @pytest.fixture(scope="class")
    def cg_registry(self):
        from repro.minivm import run_program
        from repro.workloads import get_workload

        wl = get_workload("cg")
        program, _meta = wl.build_seq(wl.default_scale)
        reg = MetricsRegistry()
        run_program(program, fastpath=True, registry=reg)
        return reg

    def test_coverage_gauge_matches_counters(self, cg_registry):
        snap = cg_registry.snapshot()
        fast = snap["counters"]["producer.events_fastpath"]
        interp = snap["counters"]["producer.events_interpreted"]
        cov = snap["gauges"]["producer.fastpath_coverage"]
        assert cov == pytest.approx(fast / (fast + interp))
        assert cov > 0.3  # cg's reductions vectorize now

    def test_verdict_counters_published(self, cg_registry):
        counters = cg_registry.snapshot()["counters"]
        assert counters['producer.loop_verdicts{verdict="reduction"}'] > 0
        assert counters['producer.loop_verdicts{verdict="doall"}'] > 0

    def test_report_producer_section(self, cg_registry):
        prod = RunReport.build(cg_registry).producer_summary()
        assert prod["fastpath_coverage"] == pytest.approx(
            prod["events_fastpath"] / prod["events_total"]
        )
        assert prod["loop_verdicts"].get("reduction", 0) > 0
        assert "classify_cache_hits" in prod

    def test_render_has_coverage_and_verdict_lines(self, cg_registry):
        text = RunReport.build(cg_registry).render()
        assert "fastpath coverage" in text
        assert "loop verdicts:" in text and "reduction=" in text


class TestProducerSectionCacheHitOnly:
    """Regression: a run served entirely from the trace cache has only
    ``producer.trace_cache_hits`` — no events_* counters, no coverage gauge
    — and must still render its producer section."""

    @pytest.fixture()
    def cache_hit_registry(self):
        reg = MetricsRegistry(run_id="cached")
        reg.counter("producer.trace_cache_hits").inc()
        return reg

    def test_summary_not_none(self, cache_hit_registry):
        prod = RunReport.build(cache_hit_registry).producer_summary()
        assert prod is not None
        assert prod["trace_cache_hits"] == 1
        assert prod["events_total"] == 0
        assert prod["fastpath_coverage"] == 0.0

    def test_render_includes_producer_line(self, cache_hit_registry):
        text = RunReport.build(cache_hit_registry).render()
        assert "producer:" in text

    def test_no_producer_instruments_still_omits_section(self):
        reg = MetricsRegistry(run_id="bare")
        reg.counter("worker.accesses", worker=0).inc()
        report = RunReport.build(reg)
        assert report.producer_summary() is None
        assert "producer:" not in report.render()
