"""The memory observability plane: address heatmaps.

Bucketing exactness (integer searchsorted, never float), the recording
paths (bulk accesses, scalar conflicts, occupancy), the decoded summary
documents, and — because heat series are ordinary registry histograms —
the cross-process ``merge_state`` semantics on heat-shaped layouts.
"""

import numpy as np
import pytest

from repro.obs import MetricsRegistry, peak_rss_bytes
from repro.obs.heatmap import (
    HEAT_BOUNDS,
    N_BOUNDS,
    SCHEMA,
    AddressHeatmap,
    bucket_of,
    bucket_range,
    heatmap_dict,
    heatmap_summary,
)


class TestBucketing:
    def test_edge_addresses(self):
        # bucket 0 = [0, 1]; bucket i = (2^(i-1), 2^i]; bucket 63 = overflow
        assert bucket_of(0) == 0
        assert bucket_of(1) == 0
        assert bucket_of(2) == 1
        assert bucket_of(3) == 2
        assert bucket_of(4) == 2
        assert bucket_of(5) == 3
        assert bucket_of(1 << 62) == 62
        assert bucket_of((1 << 62) + 1) == 63  # overflow bucket

    def test_matches_histogram_observe_semantics(self):
        # The registry histogram and the integer bulk path must agree for
        # every float-exact address, or merged counts would drift.
        reg = MetricsRegistry()
        h = reg.histogram("ref", buckets=HEAT_BOUNDS)
        for addr in (0, 1, 2, 3, 7, 8, 9, 1023, 1024, 1025, 1 << 40):
            h.counts = [0] * (N_BOUNDS + 1)
            h.observe(float(addr))
            assert h.counts[bucket_of(addr)] == 1, addr

    def test_beyond_float_precision(self):
        # 2^53 + 1 is not representable in float64; the integer path must
        # still bucket it correctly.
        addr = (1 << 53) + 1
        assert bucket_of(addr) == 54
        assert float(addr) == float(1 << 53)  # the hazard being avoided

    def test_bucket_range_inverts_bucket_of(self):
        for i in range(N_BOUNDS + 1):
            lo, hi = bucket_range(i)
            assert bucket_of(lo) == i
            if hi is not None:
                assert bucket_of(hi) == i
        assert bucket_range(N_BOUNDS)[1] is None


class TestRecording:
    def test_bulk_reads_writes(self):
        reg = MetricsRegistry()
        heat = AddressHeatmap(reg, worker=0)
        addrs = np.array([8, 8, 8, 1024, 1 << 20], dtype=np.int64)
        is_write = np.array([False, False, True, True, False])
        heat.record_accesses(addrs, is_write)
        assert heat.total_reads == 3
        assert heat.total_writes == 2
        r = reg.histogram("heat.reads", buckets=HEAT_BOUNDS, worker=0)
        assert r.counts[bucket_of(8)] == 2
        assert r.counts[bucket_of(1 << 20)] == 1
        # Heat sums stay 0.0 by design: address sums are meaningless and
        # float accumulation order would break cross-mode exactness.
        assert r.sum == 0.0
        assert all(isinstance(c, int) for c in r.counts)  # JSON-clean

    def test_conflicts_scalar_path(self):
        reg = MetricsRegistry()
        heat = AddressHeatmap(reg, worker=1)
        heat.record_conflict(12)
        heat.record_conflict((1 << 53) + 1)
        assert heat.total_conflicts == 2
        h = reg.histogram("heat.conflicts", buckets=HEAT_BOUNDS, worker=1)
        assert h.counts[bucket_of(12)] == 1
        assert h.counts[54] == 1

    def test_occupancy_per_kind(self):
        reg = MetricsRegistry()
        heat = AddressHeatmap(reg, worker=0)
        heat.record_occupancy(np.array([16, 32], dtype=np.int64), "read")
        heat.record_occupancy(np.array([16], dtype=np.int64), "write")
        doc = heatmap_summary(reg)
        occ = doc["workers"]["0"]["occupancy"]
        assert sum(occ["read"]) == 2
        assert sum(occ["write"]) == 1

    def test_empty_batch_is_noop(self):
        reg = MetricsRegistry()
        heat = AddressHeatmap(reg, worker=0)
        heat.record_accesses(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))
        assert heat.total_reads == 0 and heat.total_writes == 0


class TestSummary:
    def test_none_without_heat(self):
        reg = MetricsRegistry()
        reg.counter("worker.accesses", worker=0).inc(5)  # unrelated series
        assert heatmap_summary(reg) is None

    def test_document_shape(self):
        reg = MetricsRegistry(run_id="heatrun")
        heat = AddressHeatmap(reg, worker=0)
        heat.record_accesses(
            np.array([100, 100, 200], dtype=np.int64),
            np.array([False, True, False]),
        )
        doc = heatmap_summary(reg)
        assert doc["schema"] == SCHEMA
        assert doc["n_buckets"] == N_BOUNDS + 1
        assert doc["total_reads"] == 2 and doc["total_writes"] == 1
        assert doc["totals"]["reads"][bucket_of(100)] == 1
        hot = doc["hottest"][0]
        assert hot["lo"] <= 100 <= hot["hi"]

    def test_heatmap_dict_always_valid(self):
        reg = MetricsRegistry(run_id="emptyrun")
        doc = heatmap_dict(reg)
        assert doc["schema"] == SCHEMA
        assert doc["run_id"] == "emptyrun"
        assert doc["workers"] == {} and doc["hottest"] == []
        assert doc["total_reads"] == 0
        import json

        json.dumps(doc)  # JSON-serializable even when empty

    def test_hottest_ranks_by_traffic(self):
        reg = MetricsRegistry()
        heat = AddressHeatmap(reg, worker=0)
        heat.record_accesses(
            np.array([10] * 5 + [5000] * 2, dtype=np.int64),
            np.zeros(7, dtype=bool),
        )
        doc = heatmap_summary(reg)
        assert doc["hottest"][0]["bucket"] == bucket_of(10)
        assert doc["hottest"][1]["bucket"] == bucket_of(5000)


class TestMergeState:
    """Heat histograms ride the existing cross-process merge machinery."""

    def _heat_registry(self, worker, addrs):
        reg = MetricsRegistry()
        heat = AddressHeatmap(reg, worker=worker)
        heat.record_accesses(
            np.asarray(addrs, dtype=np.int64),
            np.zeros(len(addrs), dtype=bool),
        )
        return reg

    def test_merge_empty_into_full(self):
        full = self._heat_registry(0, [64, 128])
        before = heatmap_summary(full)
        full.merge_state(MetricsRegistry().state())
        assert heatmap_summary(full) == before

    def test_merge_disjoint_workers(self):
        a = self._heat_registry(0, [64, 64])
        b = self._heat_registry(1, [1 << 30])
        a.merge_state(b.state())
        doc = heatmap_summary(a)
        assert sorted(doc["workers"]) == ["0", "1"]
        assert doc["total_reads"] == 3
        assert doc["totals"]["reads"][bucket_of(64)] == 2
        assert doc["totals"]["reads"][bucket_of(1 << 30)] == 1

    def test_merge_same_worker_adds_bucketwise(self):
        a = self._heat_registry(0, [64])
        b = self._heat_registry(0, [64, 128])
        a.merge_state(b.state())
        h = a.histogram("heat.reads", buckets=HEAT_BOUNDS, worker=0)
        assert h.counts[bucket_of(64)] == 2
        assert h.counts[bucket_of(128)] == 1
        assert h.count == 3

    def test_merge_bucket_mismatch_raises(self):
        a = self._heat_registry(0, [64])
        bad = MetricsRegistry()
        bad.histogram("heat.reads", buckets=(1.0, 2.0, 4.0), worker=0).observe(1)
        with pytest.raises(ValueError, match="bucket layout mismatch"):
            a.merge_state(bad.state())


class TestPeakRss:
    def test_positive_and_plausible(self):
        rss = peak_rss_bytes()
        # This test process holds numpy + pytest: well above 10 MiB, and a
        # sane high-water is below 100 GiB (catches KiB/bytes unit slips).
        assert rss > 10 * (1 << 20)
        assert rss < 100 * (1 << 30)
