"""``ddprof top``: snapshot/heatmap parsing and frame rendering."""

import io

import numpy as np

from repro.obs import (
    AddressHeatmap,
    MetricsRegistry,
    TelemetryHTTPServer,
    heatmap_dict,
)
from repro.obs.top import parse_metric_name, render_top, run_top


def make_registry():
    reg = MetricsRegistry(run_id="toprun")
    reg.counter("pipeline.chunks").inc(7)
    reg.counter("worker.accesses", worker=0).inc(1200)
    reg.counter("worker.accesses", worker=1).inc(800)
    reg.counter("worker.chunks", worker=0).inc(4)
    reg.counter("worker.chunks", worker=1).inc(3)
    reg.counter("queue.push_stalls", worker=0).inc(2)
    reg.counter("rebalance.rounds").inc(1)
    reg.counter("rebalance.moves").inc(3)
    reg.gauge("queue.occupancy", worker=0).set(5)
    reg.gauge("worker.heartbeat.state", worker=0).set(0)
    reg.gauge("worker.heartbeat.state", worker=1).set(2)
    reg.gauge("sigmem.fill_ratio", worker=0, kind="read").set(0.5)
    reg.gauge("process.peak_rss_bytes", worker=0).set(64 * (1 << 20))
    heat = AddressHeatmap(reg, worker=0)
    heat.record_accesses(
        np.array([64, 64, 64, 4096], dtype=np.int64),
        np.array([False, False, True, False]),
    )
    return reg


class TestParsing:
    def test_parse_metric_name(self):
        assert parse_metric_name("pipeline.chunks") == ("pipeline.chunks", {})
        name, labels = parse_metric_name('worker.accesses{kind="read",worker="3"}')
        assert name == "worker.accesses"
        assert labels == {"kind": "read", "worker": "3"}


class TestRender:
    def test_frame_contents(self):
        reg = make_registry()
        frame = render_top(
            {"run_id": "toprun", **reg.snapshot()}, heatmap_dict(reg)
        )
        assert "run toprun" in frame
        assert "7 chunks pushed" in frame
        assert "live" in frame and "dead" in frame  # heartbeat verdicts
        assert "1200" in frame  # worker 0 accesses
        assert "rebalances 1 (3 moved)" in frame
        assert "hottest address buckets" in frame
        assert "peak rss: w0=64MiB" in frame

    def test_render_without_heatmap(self):
        reg = make_registry()
        frame = render_top({"run_id": "toprun", **reg.snapshot()}, None)
        assert "run toprun" in frame
        assert "hottest" not in frame

    def test_render_empty_snapshot(self):
        frame = render_top({"counters": {}, "gauges": {}}, None)
        assert frame.startswith("ddprof top")


class TestLoop:
    def test_once_against_live_server(self):
        reg = make_registry()
        with TelemetryHTTPServer(reg, port=0) as srv:
            out = io.StringIO()
            rc = run_top(srv.url, once=True, out=out)
        assert rc == 0
        assert "run toprun" in out.getvalue()
        assert "hottest address buckets" in out.getvalue()

    def test_once_unreachable_exits_nonzero(self):
        rc = run_top("http://127.0.0.1:9", once=True, out=io.StringIO())
        assert rc == 1


class TestProducerLine:
    def test_coverage_from_gauge(self):
        reg = make_registry()
        reg.gauge("producer.fastpath_coverage").set(0.378)
        reg.counter("producer.events_fastpath").inc(26592)
        reg.counter("producer.events_interpreted").inc(43799)
        frame = render_top(reg.snapshot())
        assert "producer: fastpath coverage 37.8%" in frame
        assert "27k fast / 44k interpreted" in frame

    def test_coverage_derived_from_counters_when_gauge_absent(self):
        reg = make_registry()
        reg.counter("producer.events_fastpath").inc(75)
        reg.counter("producer.events_interpreted").inc(25)
        frame = render_top(reg.snapshot())
        assert "producer: fastpath coverage 75.0%" in frame

    def test_no_producer_metrics_no_line(self):
        frame = render_top(make_registry().snapshot())
        assert "producer:" not in frame
