"""Bank observability: heat.banks family, summary doc, and ddprof top."""

import numpy as np

from repro.obs.heatmap import AddressHeatmap, heatmap_summary
from repro.obs.metrics import MetricsRegistry
from repro.obs.top import render_top


class TestBankHeat:
    def test_record_bank_occupancy_lands_in_summary(self):
        reg = MetricsRegistry()
        heat = AddressHeatmap(reg, worker=0)
        heat.record_occupancy(np.array([8, 16], dtype=np.int64), "read")
        heat.record_bank_occupancy(np.array([3, 0, 5, 1]), "read")
        heat.record_bank_occupancy(np.array([2, 0, 0, 0]), "write")
        doc = heatmap_summary(reg)
        assert doc is not None and "banks" in doc
        banks = doc["banks"]
        assert banks["n_banks"] == 4
        assert banks["total"] == [5, 0, 5, 1]
        assert banks["occupied_banks"] == 3
        # skew = max/mean over occupied-or-not bank totals
        assert abs(banks["skew"] - (5 / (11 / 4))) < 1e-9
        assert banks["per_worker"]["0"]["read"] == [3, 0, 5, 1]

    def test_bank_occupancy_merges_across_workers(self):
        reg = MetricsRegistry()
        AddressHeatmap(reg, worker=0).record_bank_occupancy(np.array([1, 2]), "read")
        AddressHeatmap(reg, worker=1).record_bank_occupancy(np.array([4, 0]), "read")
        banks = heatmap_summary(reg)["banks"]
        assert banks["total"] == [5, 2]
        assert set(banks["per_worker"]) == {"0", "1"}

    def test_no_banks_no_section(self):
        reg = MetricsRegistry()
        heat = AddressHeatmap(reg, worker=0)
        heat.record_occupancy(np.array([8], dtype=np.int64), "read")
        doc = heatmap_summary(reg)
        assert doc is not None and "banks" not in doc


class TestTopRendering:
    def test_banks_line_rendered(self):
        snapshot = {"run_id": "r1", "counters": {}, "gauges": {}}
        heatmap = {
            "workers": {},
            "hottest": [],
            "banks": {
                "n_banks": 8,
                "per_worker": {},
                "total": [0, 120, 0, 80, 0, 0, 3, 0],
                "occupied_banks": 3,
                "skew": 4.73,
            },
        }
        out = render_top(snapshot, heatmap)
        assert "banks: 3/8 occupied" in out
        assert "skew 4.73" in out
        assert "b1=120" in out and "b3=80" in out

    def test_bank_moves_in_rebalance_line(self):
        snapshot = {
            "run_id": "r1",
            "counters": {
                "rebalance.rounds": 2,
                "rebalance.moves": 5,
                "rebalance.bank_moves": 3,
                "pipeline.backpressure_stalls": 7,
            },
            "gauges": {},
        }
        out = render_top(snapshot, None)
        assert "(5 moved, 3 banks)" in out
        assert "backpressure=7" in out

    def test_no_banks_no_line(self):
        out = render_top({"counters": {}, "gauges": {}}, {"workers": {}})
        assert "banks:" not in out
        assert "backpressure=" not in out
