"""HTTP exporter: /metrics, /healthz, /snapshot over a live registry."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    TelemetryHTTPServer,
    healthz_dict,
    parse_prometheus,
)


def get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode("utf-8")


@pytest.fixture()
def registry():
    reg = MetricsRegistry(run_id="httprun")
    reg.counter("queue.push_stalls", worker=0).inc(3)
    reg.gauge("sigmem.fill_ratio", worker=0).set(0.25)
    reg.histogram("span.seconds", phase="route").observe(0.01)
    return reg


@pytest.fixture()
def server(registry):
    srv = TelemetryHTTPServer(registry, port=0)
    srv.start()
    yield srv
    srv.stop()


class TestEndpoints:
    def test_metrics_is_prometheus_text(self, server):
        status, body = get(server.url + "/metrics")
        assert status == 200
        samples = parse_prometheus(body)
        assert samples['ddprof_queue_push_stalls{worker="0"}'] == 3
        assert samples['ddprof_sigmem_fill_ratio{worker="0"}'] == 0.25

    def test_healthz_ok(self, server):
        status, body = get(server.url + "/healthz")
        doc = json.loads(body)
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["run_id"] == "httprun"
        assert doc["liveness"] is None  # no heartbeat gauges in this run

    def test_healthz_degraded_on_stalled_worker(self, registry, server):
        from repro.obs import HEARTBEAT_STATES

        registry.gauge("worker.heartbeat.state", worker=0).set(
            HEARTBEAT_STATES.index("stalled")
        )
        registry.gauge("worker.heartbeat.state", worker=1).set(
            HEARTBEAT_STATES.index("live")
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/healthz")
        assert err.value.code == 503
        doc = json.loads(err.value.read().decode("utf-8"))
        assert doc["status"] == "degraded"
        assert doc["liveness"]["stalled"] == 1 and doc["liveness"]["live"] == 1
        assert doc["liveness"]["workers"]["0"]["state"] == "stalled"

    def test_snapshot_json(self, server):
        status, body = get(server.url + "/snapshot")
        doc = json.loads(body)
        assert status == 200
        assert doc["run_id"] == "httprun"
        assert doc["counters"]['queue.push_stalls{worker="0"}'] == 3

    def test_scrape_sees_live_updates(self, registry, server):
        registry.counter("queue.push_stalls", worker=0).inc(7)
        _, body = get(server.url + "/metrics")
        assert parse_prometheus(body)['ddprof_queue_push_stalls{worker="0"}'] == 10

    def test_heatmap_endpoint(self, registry, server):
        import numpy as np

        from repro.obs import AddressHeatmap

        heat = AddressHeatmap(registry, worker=0)
        heat.record_accesses(
            np.array([64, 64, 4096], dtype=np.int64),
            np.array([False, True, False]),
        )
        status, body = get(server.url + "/heatmap")
        doc = json.loads(body)
        assert status == 200
        assert doc["schema"] == "ddprof.heatmap/1"
        assert doc["run_id"] == "httprun"
        assert doc["total_reads"] == 2 and doc["total_writes"] == 1
        assert "0" in doc["workers"]

    def test_heatmap_endpoint_valid_when_empty(self, server):
        status, body = get(server.url + "/heatmap")
        doc = json.loads(body)
        assert status == 200
        assert doc["schema"] == "ddprof.heatmap/1"
        assert doc["workers"] == {}
        assert doc["total_reads"] == 0

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/nope")
        assert err.value.code == 404


class TestLifecycle:
    def test_ephemeral_port_bound_and_reported(self, registry):
        srv = TelemetryHTTPServer(registry, port=0)
        try:
            port = srv.start()
            assert port > 0 and srv.port == port
            assert srv.running
            assert srv.url.endswith(str(port))
        finally:
            srv.stop()
        assert not srv.running

    def test_stop_is_idempotent_and_start_twice_keeps_port(self, registry):
        srv = TelemetryHTTPServer(registry, port=0)
        port = srv.start()
        assert srv.start() == port
        srv.stop()
        srv.stop()

    def test_healthz_dict_without_socket(self, registry):
        doc = healthz_dict(registry)
        assert doc["status"] == "ok" and doc["run_id"] == "httprun"


class TestRunsEndpoints:
    @pytest.fixture()
    def ledger_server(self, registry, tmp_path):
        from repro.obs import RunLedger

        RunLedger(tmp_path, "r1", meta={"workload": "cg"}).finalize(
            MetricsRegistry(run_id="r1")
        )
        srv = TelemetryHTTPServer(registry, port=0, ledger_dir=tmp_path)
        srv.start()
        yield srv
        srv.stop()

    def test_runs_lists_the_ledger(self, ledger_server):
        status, body = get(ledger_server.url + "/runs")
        doc = json.loads(body)
        assert status == 200
        assert doc["schema"] == "ddprof.run-list/1"
        assert [r["run_id"] for r in doc["runs"]] == ["r1"]

    def test_runs_by_id_returns_the_bundle(self, ledger_server):
        status, body = get(ledger_server.url + "/runs/r1")
        doc = json.loads(body)
        assert status == 200
        assert doc["schema"] == "ddprof.run-bundle/1"
        assert doc["run_id"] == "r1" and doc["meta"]["workload"] == "cg"

    @pytest.mark.parametrize("rid", ["nope", "..%2F..%2Fetc"])
    def test_unknown_or_traversal_id_404s(self, ledger_server, rid):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(ledger_server.url + "/runs/" + rid)
        assert err.value.code == 404

    def test_default_ledger_dir_honours_env(self, registry, tmp_path, monkeypatch):
        from repro.obs import RunLedger

        monkeypatch.setenv("DDPROF_LEDGER", str(tmp_path))
        RunLedger(tmp_path, "envrun").finalize(MetricsRegistry(run_id="envrun"))
        srv = TelemetryHTTPServer(registry, port=0)  # no ledger_dir given
        srv.start()
        try:
            _, body = get(srv.url + "/runs")
            assert [r["run_id"] for r in json.loads(body)["runs"]] == ["envrun"]
        finally:
            srv.stop()
