"""The run ledger: bundle writing, digests, listing, and LRU gc."""

import json
import os

import pytest

from repro.common.config import ProfilerConfig
from repro.common.errors import ObsError
from repro.obs import (
    MetricsRegistry,
    RunLedger,
    RunReport,
    bundle_summary,
    default_ledger_dir,
    dependence_digest,
    dependence_edges,
    gc_ledger,
    list_runs,
    load_bundle,
    resolve_bundle,
    validate_run_id,
)
from repro.obs.ledger import BUNDLE_NAME, SCHEMA, write_atomic
from repro.parallel import ParallelProfiler
from repro.workloads import get_trace

PERFECT = ProfilerConfig(perfect_signature=True, workers=2)


class TestRunId:
    @pytest.mark.parametrize("rid", ["a", "run-1", "2026-08-08T12.00.00-ab12"])
    def test_accepts_safe_components(self, rid):
        assert validate_run_id(rid) == rid

    @pytest.mark.parametrize(
        "rid", ["", ".", "..", "a/b", "a\\b", "../evil", "x\x00y"]
    )
    def test_rejects_unsafe_components(self, rid):
        with pytest.raises(ObsError):
            validate_run_id(rid)

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("DDPROF_LEDGER", str(tmp_path / "led"))
        assert default_ledger_dir() == tmp_path / "led"


class TestAtomicWrite:
    def test_no_tmp_leftovers(self, tmp_path):
        path = tmp_path / "runs" / "r1" / BUNDLE_NAME
        write_atomic(path, {"schema": SCHEMA, "x": (1, 2), "s": {3, 1}})
        doc = json.loads(path.read_text())
        assert doc["x"] == [1, 2] and doc["s"] == [1, 3]
        assert list(path.parent.glob("*.tmp")) == []

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / BUNDLE_NAME
        write_atomic(path, {"v": 1})
        write_atomic(path, {"v": 2})
        assert json.loads(path.read_text())["v"] == 2
        assert list(tmp_path.glob("*.tmp")) == []


class TestLifecycle:
    def test_checkpoint_then_finalize(self, tmp_path):
        reg = MetricsRegistry(run_id="r1")
        reg.counter("worker.accesses", worker=0).inc(7)
        led = RunLedger(tmp_path, "r1", meta={"workload": "cg"})
        led.checkpoint(reg)
        doc = load_bundle(led.path)
        assert doc["status"] == "partial"
        assert doc["report"] is None and doc["dependences"] is None
        assert doc["metrics"]["counters"]  # telemetry so far is present
        led.finalize(reg, status="ok")
        doc = load_bundle(led.path)
        assert doc["status"] == "ok" and doc["meta"]["workload"] == "cg"

    def test_checkpoint_never_regresses_a_finalized_bundle(self, tmp_path):
        reg = MetricsRegistry(run_id="r1")
        led = RunLedger(tmp_path, "r1")
        led.finalize(reg, status="ok")
        led.checkpoint(reg)  # engine finally firing after CLI finalize
        assert load_bundle(led.path)["status"] == "ok"

    def test_crash_finalize_records_error(self, tmp_path):
        reg = MetricsRegistry(run_id="r1")
        led = RunLedger(tmp_path, "r1")
        led.finalize(reg, status="crashed", error="RuntimeError: boom")
        doc = load_bundle(led.path)
        assert doc["status"] == "crashed"
        assert "boom" in doc["error"]

    def test_rejects_bad_run_id_at_construction(self, tmp_path):
        with pytest.raises(ObsError):
            RunLedger(tmp_path, "a/b")


class TestDigest:
    def test_digest_is_order_insensitive_and_stable(self):
        edges = [
            {"type": "RAW", "source": "0:1|0", "sink": "0:2|0",
             "var": "x", "carried": ["0:1"], "race": False},
            {"type": "WAR", "source": "0:3|0", "sink": "0:1|0",
             "var": "y", "carried": [], "race": False},
        ]
        d1 = dependence_digest(edges)
        assert d1.startswith("sha256:")
        # race is a per-run annotation, not part of the identity
        edges[0]["race"] = True
        assert dependence_digest(edges) == d1
        edges[0]["var"] = "z"
        assert dependence_digest(edges) != d1

    def test_same_profile_twice_same_digest(self):
        batch = get_trace("ep")
        runs = []
        for _ in range(2):
            result, _ = ParallelProfiler(PERFECT).profile(batch)
            runs.append(dependence_edges(result))
        assert runs[0] == runs[1]
        assert dependence_digest(runs[0]) == dependence_digest(runs[1])


def _write_run(root, rid, mtime, workload="cg", pad=0):
    led = RunLedger(root, rid, meta={"workload": workload})
    led.finalize(MetricsRegistry(run_id=rid))
    if pad:
        (led.path.parent / "pad.bin").write_bytes(b"\0" * pad)
    os.utime(led.path, (mtime, mtime))
    return led


class TestListingAndGc:
    def test_list_runs_newest_first(self, tmp_path):
        for i, rid in enumerate(["old", "mid", "new"]):
            _write_run(tmp_path, rid, 1000.0 + i)
        rows = list_runs(tmp_path)
        assert [r["run_id"] for r in rows] == ["new", "mid", "old"]
        assert rows[0]["status"] == "ok" and rows[0]["bytes"] > 0

    def test_list_skips_corrupt_bundles(self, tmp_path):
        _write_run(tmp_path, "good", 1000.0)
        bad = tmp_path / "bad" / BUNDLE_NAME
        bad.parent.mkdir()
        bad.write_text("{ torn")
        assert [r["run_id"] for r in list_runs(tmp_path)] == ["good"]

    def test_gc_keep_evicts_oldest_first(self, tmp_path):
        for i, rid in enumerate(["a", "b", "c", "d"]):
            _write_run(tmp_path, rid, 1000.0 + i)
        removed = gc_ledger(tmp_path, keep=2)
        assert removed == ["a", "b"]
        assert [r["run_id"] for r in list_runs(tmp_path)] == ["d", "c"]

    def test_gc_limit_bytes(self, tmp_path):
        for i, rid in enumerate(["a", "b", "c"]):
            _write_run(tmp_path, rid, 1000.0 + i, pad=10_000)
        total = sum(r["bytes"] for r in list_runs(tmp_path))
        removed = gc_ledger(tmp_path, limit_bytes=total - 1)
        assert removed == ["a"]

    def test_gc_without_bounds_is_noop(self, tmp_path):
        _write_run(tmp_path, "a", 1000.0)
        assert gc_ledger(tmp_path) == []
        assert len(list_runs(tmp_path)) == 1


class TestLoadResolve:
    def test_load_from_dir_or_file(self, tmp_path):
        led = _write_run(tmp_path, "a", 1000.0)
        assert load_bundle(led.path)["run_id"] == "a"
        assert load_bundle(led.path.parent)["run_id"] == "a"

    def test_load_errors(self, tmp_path):
        with pytest.raises(ObsError, match="no run bundle"):
            load_bundle(tmp_path / "nope")
        p = tmp_path / BUNDLE_NAME
        p.write_text("{ torn")
        with pytest.raises(ObsError, match="corrupt"):
            load_bundle(p)
        p.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ObsError, match="schema"):
            load_bundle(p)

    def test_resolve_by_id_dir_and_path(self, tmp_path):
        led = _write_run(tmp_path, "a", 1000.0)
        assert resolve_bundle(tmp_path, "a") == led.path
        assert resolve_bundle(tmp_path, str(led.path.parent)) == led.path
        assert resolve_bundle(tmp_path, str(led.path)) == led.path
        with pytest.raises(ObsError, match="not found"):
            resolve_bundle(tmp_path, "missing")


class TestSummary:
    def test_full_bundle_summary_sections(self, tmp_path):
        batch = get_trace("ep")
        reg = MetricsRegistry(run_id="s1")
        result, info = ParallelProfiler(PERFECT, registry=reg).profile(batch)
        report = RunReport.build(reg, result=result, info=info)
        led = RunLedger(tmp_path, "s1", meta={"workload": "ep"})
        led.finalize(reg, report=report, result=result, info=info)
        text = bundle_summary(load_bundle(led.path))
        assert "run s1 [ok]" in text
        assert "dependences:" in text and "digest sha256:" in text
        assert "loops:" in text
