"""Gauge-sampler thread lifecycle, including pipeline abort paths."""

import threading

import pytest

from repro.common.config import ProfilerConfig
from repro.obs import MemorySink, MetricsRegistry, Sampler
from repro.parallel import ParallelProfiler
from tests.trace_helpers import seq_trace


def sampler_threads():
    return [t for t in threading.enumerate() if t.name == "obs-sampler"]


def make_sampler(sink=None):
    reg = MetricsRegistry(sink)
    sampler = Sampler(reg)
    sampler.add("probe.value", lambda: 42)
    return reg, sampler


class TestThreadLifecycle:
    def test_stop_joins_thread_and_samples_exactly_once_more(self):
        _, sampler = make_sampler(MemorySink())
        sampler.start(period_s=60)  # period far beyond the test: no timer polls
        assert sampler.running
        sampler.stop()
        assert not sampler.running
        assert sampler_threads() == []
        assert sampler.n_samples == 1  # the single forced final sample

    def test_stop_is_idempotent(self):
        _, sampler = make_sampler(MemorySink())
        sampler.start(period_s=60)
        sampler.stop()
        n = sampler.n_samples
        sampler.stop()
        sampler.stop()
        assert sampler.n_samples == n  # no extra final samples

    def test_stop_without_start_is_a_noop(self):
        _, sampler = make_sampler()
        sampler.stop()
        assert sampler.n_samples == 0

    def test_start_twice_keeps_one_thread(self):
        _, sampler = make_sampler()
        sampler.start(period_s=60)
        t = sampler._thread
        sampler.start(period_s=60)
        assert sampler._thread is t
        sampler.stop()


class TestPipelineAbort:
    def throwing_trace(self):
        ops = []
        for i in range(64):
            a = 0x1000 + 8 * i
            ops += [("w", a, 1, "x"), ("r", a, 2, "x")]
        return seq_trace(ops)

    def test_worker_exception_propagates_without_leaking_sampler(self, monkeypatch):
        """A worker blowing up mid-run must abort the threads-mode pipeline
        cleanly: the error surfaces on the caller, the queues still drain
        (no producer deadlock), and no obs-sampler thread is left behind."""
        from repro.parallel.worker import Worker

        boom = RuntimeError("worker exploded")

        def exploding(self, batch, chunk):
            raise boom

        monkeypatch.setattr(Worker, "process_chunk", exploding)
        sink = MemorySink()
        reg = MetricsRegistry(sink)
        cfg = ProfilerConfig(perfect_signature=True, workers=2, chunk_size=8)
        prof = ParallelProfiler(cfg, mode="threads", registry=reg)
        with pytest.raises(RuntimeError, match="worker exploded"):
            prof.profile(self.throwing_trace())
        assert sampler_threads() == [], "sampler daemon thread leaked"
        # The final forced sample still landed in the event stream.
        assert any(e["type"] == "sample" for e in sink.events)

    def test_clean_threads_run_leaves_no_sampler_thread(self):
        reg = MetricsRegistry(MemorySink())
        cfg = ProfilerConfig(perfect_signature=True, workers=2, chunk_size=8)
        res, _ = ParallelProfiler(cfg, mode="threads", registry=reg).profile(
            self.throwing_trace()
        )
        assert sampler_threads() == []
        assert res.store.n_entries > 0
