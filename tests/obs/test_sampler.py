"""Gauge-sampler thread lifecycle, including pipeline abort paths."""

import threading

import pytest

from repro.common.config import ProfilerConfig
from repro.obs import MemorySink, MetricsRegistry, Sampler, deadline_loop
from repro.parallel import ParallelProfiler
from tests.trace_helpers import seq_trace


def sampler_threads():
    return [t for t in threading.enumerate() if t.name == "obs-sampler"]


def make_sampler(sink=None):
    reg = MetricsRegistry(sink)
    sampler = Sampler(reg)
    sampler.add("probe.value", lambda: 42)
    return reg, sampler


class TestThreadLifecycle:
    def test_stop_joins_thread_and_samples_exactly_once_more(self):
        _, sampler = make_sampler(MemorySink())
        sampler.start(period_s=60)  # period far beyond the test: no timer polls
        assert sampler.running
        sampler.stop()
        assert not sampler.running
        assert sampler_threads() == []
        assert sampler.n_samples == 1  # the single forced final sample

    def test_stop_is_idempotent(self):
        _, sampler = make_sampler(MemorySink())
        sampler.start(period_s=60)
        sampler.stop()
        n = sampler.n_samples
        sampler.stop()
        sampler.stop()
        assert sampler.n_samples == n  # no extra final samples

    def test_stop_without_start_is_a_noop(self):
        _, sampler = make_sampler()
        sampler.stop()
        assert sampler.n_samples == 0

    def test_start_twice_keeps_one_thread(self):
        _, sampler = make_sampler()
        sampler.start(period_s=60)
        t = sampler._thread
        sampler.start(period_s=60)
        assert sampler._thread is t
        sampler.stop()


class FakeTime:
    """Synthetic clock driving :func:`deadline_loop` deterministically.

    ``wait`` advances the clock by the requested delay (a perfect sleep);
    ``tick`` records the fire time and burns ``tick_cost`` simulated
    seconds of work.  The loop stops once ``max_fires`` ticks have fired.
    """

    def __init__(self, tick_cost, max_fires):
        self.t = 0.0
        self.fired = []
        self.tick_cost = tick_cost
        self.max_fires = max_fires
        self.missed = []

    def clock(self):
        return self.t

    def wait(self, delay):
        self.t += delay
        return len(self.fired) >= self.max_fires

    def tick(self):
        self.fired.append(self.t)
        self.t += self.tick_cost

    def on_missed(self, n):
        self.missed.append(n)


class TestDeadlineGrid:
    def test_slow_ticks_do_not_drift_the_grid(self):
        """A tick burning 70% of the period still fires exactly on the
        t0 + k*period grid — a sleep(period)-after-tick loop would fire at
        1.0, 2.7, 4.4 instead."""
        ft = FakeTime(tick_cost=0.7, max_fires=3)
        deadline_loop(ft.tick, 1.0, ft.wait, clock=ft.clock, on_missed=ft.on_missed)
        assert ft.fired == [1.0, 2.0, 3.0]
        assert ft.missed == []

    def test_overrun_fires_once_counts_missed_and_realigns(self):
        """A tick overrunning 2.5 periods fires once, reports the skipped
        grid points, and realigns to the next future grid point — no
        back-to-back catch-up burst."""
        ft = FakeTime(tick_cost=2.5, max_fires=2)
        deadline_loop(ft.tick, 1.0, ft.wait, clock=ft.clock, on_missed=ft.on_missed)
        assert ft.fired == [1.0, 4.0]  # grid points 2.0 and 3.0 skipped
        assert ft.missed == [2, 2]

    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            deadline_loop(lambda: None, 0.0, lambda d: True)
        with pytest.raises(ValueError):
            deadline_loop(lambda: None, -1.0, lambda d: True)

    def test_sampler_counts_missed_ticks_on_fake_clock(self):
        """Sampler._run_loop on a fake clock: a probe that overruns the
        period accumulates ticks_missed instead of silently skewing."""
        ft = FakeTime(tick_cost=0.0, max_fires=0)
        reg = MetricsRegistry(MemorySink())
        sampler = Sampler(reg, clock=ft.clock)

        def slow_probe():
            ft.t += 2.5  # each poll overruns the 1.0s period
            return 42

        sampler.add("probe.slow", slow_probe)

        def wait(delay):
            ft.t += delay
            return sampler.n_samples >= 2

        sampler._run_loop(1.0, wait)
        assert sampler.n_samples == 2
        assert sampler.ticks_missed == 4  # two overruns x two skipped points
        events = [e for e in reg.sink.events if e["type"] == "sample"]
        assert [e["seq"] for e in events] == [1, 2]


class TestPipelineAbort:
    def throwing_trace(self):
        ops = []
        for i in range(64):
            a = 0x1000 + 8 * i
            ops += [("w", a, 1, "x"), ("r", a, 2, "x")]
        return seq_trace(ops)

    def test_worker_exception_propagates_without_leaking_sampler(self, monkeypatch):
        """A worker blowing up mid-run must abort the threads-mode pipeline
        cleanly: the error surfaces on the caller, the queues still drain
        (no producer deadlock), and no obs-sampler thread is left behind."""
        from repro.parallel.worker import Worker

        boom = RuntimeError("worker exploded")

        def exploding(self, batch, chunk):
            raise boom

        monkeypatch.setattr(Worker, "process_chunk", exploding)
        sink = MemorySink()
        reg = MetricsRegistry(sink)
        cfg = ProfilerConfig(perfect_signature=True, workers=2, chunk_size=8)
        prof = ParallelProfiler(cfg, mode="threads", registry=reg)
        with pytest.raises(RuntimeError, match="worker exploded"):
            prof.profile(self.throwing_trace())
        assert sampler_threads() == [], "sampler daemon thread leaked"
        # The final forced sample still landed in the event stream.
        assert any(e["type"] == "sample" for e in sink.events)

    def test_clean_threads_run_leaves_no_sampler_thread(self):
        reg = MetricsRegistry(MemorySink())
        cfg = ProfilerConfig(perfect_signature=True, workers=2, chunk_size=8)
        res, _ = ParallelProfiler(cfg, mode="threads", registry=reg).profile(
            self.throwing_trace()
        )
        assert sampler_threads() == []
        assert res.store.n_entries > 0
