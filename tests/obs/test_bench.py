"""Benchmark telemetry: recorder, schema, and the noise-aware compare gate."""

import json
import math

import pytest

from repro.common.errors import ObsError
from repro.obs import (
    BenchRecorder,
    BenchSession,
    MetricRecord,
    compare,
    environment_fingerprint,
    load_bench,
    repeat_timed,
)
from repro.obs.bench import SCHEMA


def recorder(**kwargs):
    return BenchRecorder("t", environment={"git_sha": "deadbeef"}, **kwargs)


# -- repeat_timed -------------------------------------------------------------


def test_repeat_timed_policy():
    calls = []
    timed = repeat_timed(lambda: calls.append(len(calls)) or len(calls), repeats=3, warmup=2)
    assert len(calls) == 5  # 2 warmup + 3 timed
    assert len(timed.seconds) == 3
    assert all(s >= 0 for s in timed.seconds)
    assert timed.last == 5  # results kept, warmup calls discarded
    assert timed.results == [3, 4, 5]
    assert timed.best <= timed.median


def test_repeat_timed_rejects_zero_repeats():
    with pytest.raises(ObsError):
        repeat_timed(lambda: None, repeats=0)


# -- recording ----------------------------------------------------------------


def test_record_scalar_and_samples():
    r = recorder()
    a = r.record("a", 3.0, unit="x", direction="higher")
    assert a.value == 3.0 and a.mad == 0.0 and a.repeats == 1
    b = r.record("b", samples=[2.0, 1.0, 10.0], unit="s")
    assert b.value == 2.0  # median, not mean
    assert b.mad == 1.0  # median(|1-2|, |2-2|, |10-2|) = median(1,0,8)
    assert b.repeats == 3 and b.samples == [2.0, 1.0, 10.0]


def test_record_rejects_bad_calls():
    r = recorder()
    with pytest.raises(ObsError, match="direction"):
        r.record("a", 1.0, direction="bigger")
    with pytest.raises(ObsError, match="exactly one"):
        r.record("a", 1.0, samples=[1.0])
    with pytest.raises(ObsError, match="exactly one"):
        r.record("a")
    with pytest.raises(ObsError, match="empty samples"):
        r.record("a", samples=[])
    r.record("a", 1.0)
    with pytest.raises(ObsError, match="duplicate"):
        r.record("a", 2.0)
    with pytest.raises(ObsError, match="suite"):
        BenchRecorder("bad suite")


def test_measure_records_seconds_samples():
    r = recorder()
    rec, timed = r.measure("m", lambda: 42, repeats=4, warmup=0)
    assert rec.repeats == 4 and rec.unit == "seconds" and rec.direction == "lower"
    assert rec.samples == timed.seconds
    assert timed.last == 42


def test_schema_roundtrip(tmp_path):
    r = recorder()
    r.record("x", samples=[1.0, 2.0, 3.0], unit="s", tolerance=0.1, floor=0.5)
    r.table("tbl", ["k", "v"], [["a", 1]], title="T")
    path = r.write(tmp_path / "BENCH_t.json")
    doc = load_bench(path)
    assert doc["schema"] == SCHEMA and doc["suite"] == "t"
    assert doc["environment"]["git_sha"] == "deadbeef"
    x = MetricRecord.from_dict("x", doc["benchmarks"]["x"])
    assert x.value == 2.0 and x.samples == [1.0, 2.0, 3.0]
    assert x.tolerance == 0.1 and x.floor == 0.5 and x.ceiling is None
    assert doc["tables"]["tbl"]["rows"] == [["a", 1]]
    assert doc["artifacts"] == ["tbl.txt"]


def test_table_writes_curated_renderings(tmp_path):
    r = recorder(results_dir=tmp_path)
    r.table("tbl", ["k", "v"], [["a", 1]], csv=True)
    r.text("free.txt", "hello\n")
    assert "a" in (tmp_path / "tbl.txt").read_text()
    assert (tmp_path / "tbl.csv").read_text().startswith("k,v")
    assert (tmp_path / "free.txt").read_text() == "hello\n"
    assert r.artifacts == ["tbl.txt", "tbl.csv", "free.txt"]


def test_load_bench_errors(tmp_path):
    with pytest.raises(ObsError, match="not found"):
        load_bench(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(ObsError, match="not valid JSON"):
        load_bench(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"schema": "ddprof.bench/999", "benchmarks": {}}))
    with pytest.raises(ObsError, match="regenerate the baseline"):
        load_bench(wrong)


def test_history_append(tmp_path):
    hist = tmp_path / "h" / "history.jsonl"
    for v in (1.0, 2.0):
        r = recorder()
        r.record("x", v)
        r.append_history(hist)
    lines = [json.loads(l) for l in hist.read_text().splitlines()]
    assert [l["metrics"]["x"] for l in lines] == [1.0, 2.0]
    assert all(l["suite"] == "t" and l["schema"] == SCHEMA for l in lines)


# -- compare ------------------------------------------------------------------


def pair(base_val, cur_val, *, direction="lower", base_mad=0.0, cur_mad=0.0,
         tolerance=None, **cur_kwargs):
    b, c = recorder(), recorder()
    if base_val is not None:
        rb = b.record("m", base_val, direction=direction, tolerance=tolerance)
        rb.mad = base_mad
    if cur_val is not None:
        rc = c.record("m", cur_val, direction=direction, tolerance=tolerance,
                      **cur_kwargs)
        rc.mad = cur_mad
    return b, c


def verdict(*args, mad_factor=4.0, tolerance_arg=None, **kwargs):
    b, c = pair(*args, **kwargs)
    cmp = compare(b, c, mad_factor=mad_factor, tolerance=tolerance_arg)
    return cmp.results[0]


def test_compare_direction_aware():
    # direction="lower": bigger is worse.
    assert verdict(1.0, 2.0, direction="lower").status == "regressed"
    assert verdict(2.0, 1.0, direction="lower").status == "improved"
    # direction="higher": bigger is better.
    assert verdict(1.0, 2.0, direction="higher").status == "improved"
    assert verdict(2.0, 1.0, direction="higher").status == "regressed"


def test_compare_neutral_within_relative_band():
    r = verdict(100.0, 110.0)  # +10% < default 25%
    assert r.status == "neutral" and "band" in r.reason
    assert verdict(100.0, 130.0).status == "regressed"  # +30%
    # Per-metric tolerance overrides the default.
    assert verdict(100.0, 110.0, tolerance=0.05).status == "regressed"
    # The CLI --threshold argument overrides everything.
    assert verdict(100.0, 110.0, tolerance=0.05, tolerance_arg=0.5).status == "neutral"


def test_compare_mad_band_rescues_noisy_metrics():
    # +50% exceeds any relative tolerance, but the measured noise says so.
    r = verdict(1.0, 1.5, base_mad=0.1, cur_mad=0.1, tolerance=0.05)
    assert r.status == "neutral"  # band = max(0.05, 4*(0.1+0.1)) = 0.8
    # Zero-variance samples fall back to the relative band alone.
    assert verdict(1.0, 1.5, tolerance=0.05).status == "regressed"


def test_compare_added_removed_never_crash():
    assert verdict(None, 1.0).status == "added"
    r = verdict(2.0, None)
    assert r.status == "removed" and r.base == 2.0 and r.current is None
    # removed/added are not regressions by themselves.
    b, c = pair(None, 1.0)
    assert compare(b, c).ok


def test_compare_non_finite_values():
    assert verdict(1.0, float("nan")).status == "invalid"
    assert verdict(1.0, float("inf")).status == "invalid"
    b, c = pair(1.0, float("nan"))
    assert not compare(b, c).ok  # invalid gates like a regression
    # A non-finite *baseline* treats the current value as new, not broken.
    assert verdict(float("nan"), 1.0).status == "added"


def test_compare_zero_baseline():
    assert verdict(0.0, 0.0).status == "neutral"
    r = verdict(0.0, 1.0)
    assert r.status == "regressed" and r.ratio is None


def test_compare_enforces_declared_bounds():
    # Floor/ceiling fire on the current value regardless of the baseline.
    r = verdict(5.0, 4.0, direction="higher", floor=4.5)
    assert r.status == "regressed" and "floor" in r.reason
    r = verdict(1.0, 3.0, ceiling=2.5, tolerance_arg=10.0)
    assert r.status == "regressed" and "ceiling" in r.reason
    # The baseline's declared bounds apply when the current omits them.
    b, c = recorder(), recorder()
    b.record("m", 5.0, direction="higher", floor=4.5)
    c.record("m", 4.0, direction="higher")
    assert compare(b, c).results[0].status == "regressed"


def test_compare_from_files(tmp_path):
    b, c = pair(1.0, 3.0)
    pb = b.write(tmp_path / "BENCH_base.json")
    pc = c.write(tmp_path / "BENCH_cur.json")
    cmp = compare(pb, pc)
    assert cmp.suite == "t"
    assert cmp.results[0].status == "regressed"
    assert not cmp.ok and cmp.regressions
    d = cmp.to_dict()
    assert d["schema"] == "ddprof.bench-compare/1" and d["ok"] is False
    assert d["results"][0]["ratio"] == 3.0
    assert "REGRESSED" in cmp.render()


def test_compare_schema_mismatch_is_clear_error(tmp_path):
    stale = tmp_path / "BENCH_old.json"
    stale.write_text(json.dumps({"schema": "ddprof.bench/0", "suite": "t"}))
    _, c = pair(None, 1.0)
    with pytest.raises(ObsError, match="ddprof.bench/1"):
        compare(stale, c)


# -- environment fingerprint --------------------------------------------------


def test_fingerprint_injected_not_sampled(monkeypatch):
    monkeypatch.setenv("DDPROF_GIT_SHA", "cafe1234")
    env = environment_fingerprint()
    assert env["git_sha"] == "cafe1234"
    assert "timestamp" not in env  # never samples a clock
    env2 = environment_fingerprint(timestamp="2026-08-06T00:00:00+00:00", sha="abc")
    assert env2["git_sha"] == "abc"
    assert env2["timestamp"] == "2026-08-06T00:00:00+00:00"
    assert env2["cpus"] >= 1 and env2["python"] and env2["numpy"]


def test_run_report_and_bench_share_fingerprint(monkeypatch):
    """Satellite: one helper feeds both planes — the keys can't drift."""
    from repro.obs import MetricsRegistry, RunReport

    monkeypatch.setenv("DDPROF_GIT_SHA", "cafe1234")
    report = RunReport.build(MetricsRegistry())
    rec = BenchRecorder("t")
    shared = set(report.environment) & set(rec.environment)
    assert {"git_sha", "cpus", "platform", "python", "numpy"} <= shared
    assert report.environment["git_sha"] == rec.environment["git_sha"] == "cafe1234"
    assert "environment" in report.to_dict()
    assert "cafe1234"[:12] in report.render()


def test_record_run_report_folds_pipeline_health():
    from repro.common.config import ProfilerConfig
    from repro.obs import MetricsRegistry, RunReport
    from repro.parallel import ParallelProfiler
    from tests.trace_helpers import seq_trace

    batch = seq_trace(
        [("w", 0x1000 + 8 * i, 1, "a") for i in range(64)]
        + [("r", 0x1000 + 8 * i, 2, "a") for i in range(64)]
    )
    reg = MetricsRegistry()
    cfg = ProfilerConfig(perfect_signature=True, workers=2)
    _, info = ParallelProfiler(cfg, registry=reg).profile(batch)
    report = RunReport.build(reg, info=info)
    r = recorder()
    recs = r.record_run_report(report, "pipe")
    ids = {m.id for m in recs}
    assert "pipe.queue_stalls" in ids and "pipe.access_imbalance" in ids
    assert all(math.isfinite(m.value) for m in recs)


# -- BenchSession -------------------------------------------------------------


def test_bench_session_writes_suites_and_history(tmp_path, monkeypatch):
    monkeypatch.setenv("DDPROF_GIT_SHA", "cafe1234")
    sess = BenchSession(
        tmp_path / "out",
        history_path=tmp_path / "history.jsonl",
        timestamp="2026-08-06T00:00:00+00:00",
    )
    sess.recorder("seq").record("a", 1.0)
    assert sess.recorder("seq") is sess.recorder("seq")  # one per suite
    sess.recorder("empty")  # nothing recorded -> no file
    written = sess.finish()
    assert [p.name for p in written] == ["BENCH_seq.json"]
    doc = load_bench(written[0])
    assert doc["environment"]["timestamp"] == "2026-08-06T00:00:00+00:00"
    assert doc["environment"]["git_sha"] == "cafe1234"
    hist = (tmp_path / "history.jsonl").read_text().splitlines()
    assert len(hist) == 1 and json.loads(hist[0])["suite"] == "seq"
