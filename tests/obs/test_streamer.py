"""Telemetry streaming: delta computation, JSONL stream, replay round-trip."""

import threading

import pytest

from repro.obs import (
    MemorySink,
    MetricsRegistry,
    TelemetryStreamer,
    read_jsonl,
    replay_stream,
    state_delta,
)
from repro.obs.streamer import SCHEMA, is_empty_delta


def streamer_threads():
    return [t for t in threading.enumerate() if t.name == "obs-streamer"]


class TestStateDelta:
    def test_counter_increments_only_changes(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.counter("b", worker=0).inc(2)
        prev = reg.state()
        reg.counter("a").inc(3)
        delta = state_delta(prev, reg.state())
        assert delta["counters"] == [("a", (), 3)]
        assert delta["gauges"] == [] and delta["histograms"] == []

    def test_first_delta_against_none_is_full_state(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(4)
        reg.gauge("g").set(1.5)
        delta = state_delta(None, reg.state())
        assert ("a", (), 4) in delta["counters"]
        assert ("g", (), 1.5) in delta["gauges"]

    def test_gauges_report_changed_values_only(self):
        reg = MetricsRegistry()
        reg.gauge("g1").set(1.0)
        reg.gauge("g2").set(2.0)
        prev = reg.state()
        reg.gauge("g2").set(7.0)
        delta = state_delta(prev, reg.state())
        assert delta["gauges"] == [("g2", (), 7.0)]

    def test_histogram_delta_is_bucketwise(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        h.observe(0.5)
        prev = reg.state()
        h.observe(0.5)
        h.observe(100.0)  # overflow bucket
        (entry,) = state_delta(prev, reg.state())["histograms"]
        name, labels, buckets, counts, total, count = entry
        assert name == "h" and counts == [1, 0, 1] and count == 2
        assert total == pytest.approx(100.5)

    def test_span_tail_only(self):
        reg = MetricsRegistry()
        with reg.span("p1"):
            pass
        prev = reg.state()
        with reg.span("p2"):
            pass
        delta = state_delta(prev, reg.state())
        assert [s[0] for s in delta["spans"]] == ["p2"]

    def test_empty_delta_detected(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        st = reg.state()
        assert is_empty_delta(state_delta(st, st))
        assert not is_empty_delta(state_delta(None, st))


class TestStreamerManual:
    def test_tick_emits_only_on_change(self):
        reg = MetricsRegistry(run_id="r1")
        sink = MemorySink()
        s = TelemetryStreamer(reg, sink)
        reg.counter("c").inc()
        assert s.tick() is True
        assert s.tick() is False  # nothing changed
        reg.counter("c").inc()
        assert s.tick() is True
        s.stop()
        kinds = [e["type"] for e in sink.events]
        assert kinds == ["delta", "delta", "final"]
        assert [e["seq"] for e in sink.events] == [1, 2, 3]
        assert all(e["run_id"] == "r1" for e in sink.events)

    def test_stop_is_idempotent_and_final_has_snapshot(self):
        reg = MetricsRegistry()
        sink = MemorySink()
        s = TelemetryStreamer(reg, sink)
        reg.counter("c").inc(9)
        s.stop()
        s.stop()
        finals = [e for e in sink.events if e["type"] == "final"]
        assert len(finals) == 1
        assert finals[0]["counters"] == {"c": 9}

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryStreamer(MetricsRegistry(), MemorySink(), interval_s=0)

    def test_tick_after_stop_is_noop(self):
        reg = MetricsRegistry()
        sink = MemorySink()
        s = TelemetryStreamer(reg, sink)
        s.stop()
        reg.counter("c").inc()
        assert s.tick() is False
        assert [e["type"] for e in sink.events] == ["final"]


class TestStreamerThreaded:
    def test_stream_file_replays_to_final_snapshot(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        reg = MetricsRegistry(run_id="runz")
        with TelemetryStreamer(reg, path, interval_s=0.01) as s:
            assert s.running
            for i in range(4):
                reg.counter("work.items").inc(10)
                reg.gauge("work.phase").set(i)
                reg.histogram("work.h").observe(0.01)
        assert not s.running
        assert streamer_threads() == []

        replayed, info = replay_stream(path)
        assert info["header"]["schema"] == SCHEMA
        assert info["run_ids"] == {"runz"}
        assert info["final"] is not None
        snap = replayed.snapshot()
        assert snap["counters"] == info["final"]["counters"]
        assert snap["gauges"] == info["final"]["gauges"]
        assert snap["histograms"] == info["final"]["histograms"]
        assert snap["counters"]["work.items"] == 40

    def test_every_line_is_valid_json_while_running(self, tmp_path):
        """flush_every=1 on the owned sink: a tail-reader never sees a torn
        line, even mid-run."""
        path = tmp_path / "stream.jsonl"
        reg = MetricsRegistry()
        s = TelemetryStreamer(reg, path, interval_s=0.01)
        s.start()
        try:
            reg.counter("c").inc()
            deadline = 200
            while s.n_records < 2 and deadline:  # header + first delta
                deadline -= 1
                threading.Event().wait(0.005)
            events = read_jsonl(path)  # parses or raises
            assert events and events[0]["type"] == "header"
        finally:
            s.stop()

    def test_quiet_registry_emits_no_deltas(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        reg = MetricsRegistry()
        s = TelemetryStreamer(reg, path, interval_s=0.005)
        s.start()
        threading.Event().wait(0.03)
        s.stop()
        kinds = [e["type"] for e in read_jsonl(path)]
        assert kinds == ["header", "final"]
