"""The cross-run diff engine: edge drift, verdict flips, noise bands."""

import json

from repro.obs import VerdictFlip, classify_delta, diff_bundles
from repro.obs.ledger import SCHEMA, dependence_digest


def edge(type="RAW", source="0:1|0", sink="0:2|0", var="x", carried=()):
    return {
        "type": type,
        "source": source,
        "sink": sink,
        "var": var,
        "carried": list(carried),
        "race": False,
    }


def bundle(
    run_id="r",
    edges=None,
    loops=None,
    counters=None,
    gauges=None,
    coverage=None,
    suspect=None,
    meta=None,
):
    doc = {
        "schema": SCHEMA,
        "run_id": run_id,
        "status": "ok",
        "error": None,
        "meta": meta or {"workload": "cg"},
        "environment": {},
        "metrics": {"counters": [], "gauges": [], "histograms": []},
        "report": {"counters": counters or {}, "gauges": gauges or {}},
        "loops": loops or [],
        "coverage": coverage,
        "heatmap": None,
        "rebalance_audit": [],
        "provenance": (
            None
            if suspect is None
            else {"n_records": len(suspect), "n_suspect": len(suspect),
                  "suspect": list(suspect)}
        ),
    }
    e = edges if edges is not None else []
    doc["dependences"] = {
        "digest": dependence_digest(e),
        "n_edges": len(e),
        "edges": e,
    }
    return doc


def loop(site="0:5", verdict="doall"):
    return {"site": site, "end": None, "executions": 1, "total_iterations": 10,
            "mean_iterations": 10.0, "parallelizable": verdict != "sequential",
            "verdict": verdict, "note": ""}


class TestClassifyDelta:
    def test_within_band_is_neutral(self):
        assert classify_delta(100.0, 110.0)[0] == "neutral"

    def test_directionless_is_changed(self):
        status, why = classify_delta(100.0, 200.0, direction=None)
        assert status == "changed" and "+100.0%" in why

    def test_directed_improved_and_regressed(self):
        assert classify_delta(100.0, 50.0, direction="lower")[0] == "improved"
        assert classify_delta(100.0, 200.0, direction="lower")[0] == "regressed"
        assert classify_delta(100.0, 200.0, direction="higher")[0] == "improved"

    def test_mad_widens_the_band(self):
        assert classify_delta(100.0, 200.0, direction=None)[0] == "changed"
        assert (
            classify_delta(100.0, 200.0, direction=None, base_mad=30.0)[0]
            == "neutral"
        )


class TestSelfDiff:
    def test_identical_bundles_diff_empty(self):
        a = bundle(
            run_id="a",
            edges=[edge(), edge(type="WAR", var="y")],
            loops=[loop(), loop(site="0:9", verdict="reduction")],
            counters={"deps.merged_entries": 5},
            coverage={"fastpath_coverage": 0.5, "events_fastpath": 10,
                      "events_interpreted": 10},
            suspect=["RAW 0:1->0:2 var x"],
        )
        b = json.loads(json.dumps(a))
        b["run_id"] = "b"
        diff = diff_bundles(a, b)
        assert diff.identical
        assert diff.regressions == []
        assert "verdict: identical" in diff.render()
        assert diff.to_dict()["identical"] is True


class TestEdgeDrift:
    def test_added_and_removed_edges(self):
        a = bundle(run_id="a", edges=[edge(), edge(var="y")])
        b = bundle(run_id="b", edges=[edge(), edge(var="z")])
        diff = diff_bundles(a, b)
        assert [e["var"] for e in diff.edges_added] == ["z"]
        assert [e["var"] for e in diff.edges_removed] == ["y"]
        assert not diff.regressions  # edge churn alone never gates
        assert "+1 / -1 edges" in diff.render()

    def test_strict_escalates_added_edges(self):
        a = bundle(run_id="a", edges=[edge()])
        b = bundle(run_id="b", edges=[edge(), edge(var="z")])
        assert diff_bundles(a, b).regressions == []
        strict = diff_bundles(a, b, strict=True)
        assert any("edge(s) added" in r for r in strict.regressions)

    def test_race_annotation_does_not_count_as_drift(self):
        e1, e2 = edge(), edge()
        e2["race"] = True
        diff = diff_bundles(bundle(edges=[e1]), bundle(edges=[e2]))
        assert not diff.edges_added and not diff.edges_removed


class TestVerdictFlips:
    def test_flip_directions(self):
        assert VerdictFlip("0:1", "doall", "sequential").direction == "regression"
        assert VerdictFlip("0:1", "sequential", "doall").direction == "improvement"
        assert VerdictFlip("0:1", "reduction", "pipeline").direction == "regression"
        assert VerdictFlip("0:1", "doall", "weird").direction == "lateral"

    def test_regression_gates_and_names_the_loop(self):
        a = bundle(run_id="a", loops=[loop("0:23", "doall")])
        b = bundle(run_id="b", loops=[loop("0:23", "sequential")])
        diff = diff_bundles(a, b)
        assert diff.regressions == ["loop 0:23 verdict doall -> sequential"]
        out = diff.render()
        assert "loop 0:23 doall -> sequential" in out
        assert "[REGRESSION]" in out and "REGRESSED" in out

    def test_improvement_does_not_gate(self):
        a = bundle(run_id="a", loops=[loop("0:23", "sequential")])
        b = bundle(run_id="b", loops=[loop("0:23", "doall")])
        diff = diff_bundles(a, b)
        assert diff.verdict_flips and not diff.regressions
        assert "OK (no regressions)" in diff.render()

    def test_loops_only_on_one_side_are_reported_not_flipped(self):
        a = bundle(run_id="a", loops=[loop("0:1"), loop("0:2")])
        b = bundle(run_id="b", loops=[loop("0:2")])
        diff = diff_bundles(a, b)
        assert diff.loops_only_a == ["0:1"] and not diff.verdict_flips


class TestMetricAndCoverage:
    def test_metric_outside_band_is_noticed_not_gating(self):
        a = bundle(run_id="a", counters={"engine.tracker_memory_bytes": 1000.0})
        b = bundle(run_id="b", counters={"engine.tracker_memory_bytes": 5000.0})
        diff = diff_bundles(a, b)
        assert [m.name for m in diff.metrics] == ["engine.tracker_memory_bytes"]
        assert diff.metrics[0].status == "changed"
        assert not diff.regressions and not diff.identical

    def test_metric_within_band_is_silent(self):
        a = bundle(run_id="a", gauges={"process.peak_rss_bytes": 100.0})
        b = bundle(run_id="b", gauges={"process.peak_rss_bytes": 110.0})
        diff = diff_bundles(a, b)
        assert diff.metrics == [] and diff.n_metrics_compared == 1

    def test_disjoint_metric_keys_are_skipped(self):
        a = bundle(run_id="a", counters={"only.a": 1.0})
        b = bundle(run_id="b", counters={"only.b": 2.0})
        assert diff_bundles(a, b).n_metrics_compared == 0

    def test_coverage_regression_gates_only_under_strict(self):
        def cov(v):
            return {"fastpath_coverage": v, "events_fastpath": 0,
                    "events_interpreted": 0}
        a = bundle(run_id="a", coverage=cov(0.9))
        b = bundle(run_id="b", coverage=cov(0.2))
        diff = diff_bundles(a, b)
        assert diff.coverage is not None and diff.coverage.status == "regressed"
        assert not diff.regressions
        assert any(
            "coverage" in r for r in diff_bundles(a, b, strict=True).regressions
        )


class TestSuspectDrift:
    def test_suspect_fp_appearing(self):
        a = bundle(run_id="a", suspect=[])
        b = bundle(run_id="b", suspect=["RAW 0:1->0:2 var x"])
        diff = diff_bundles(a, b)
        assert diff.suspect_added == ["RAW 0:1->0:2 var x"]
        assert not diff.regressions
        assert diff_bundles(a, b, strict=True).regressions


class TestSerialization:
    def test_to_json_round_trips(self):
        a = bundle(run_id="a", loops=[loop("0:23", "doall")])
        b = bundle(run_id="b", loops=[loop("0:23", "sequential")])
        doc = json.loads(diff_bundles(a, b).to_json())
        assert doc["schema"] == "ddprof.run-diff/1"
        assert doc["verdict_flips"][0]["direction"] == "regression"
        assert doc["regressions"]

    def test_partial_bundle_falls_back_to_metrics_state(self):
        a = bundle(run_id="a")
        a["report"] = None
        a["metrics"] = {
            "counters": [["worker.accesses", [["worker", "0"]], 100.0]],
            "gauges": [],
        }
        b = json.loads(json.dumps(a))
        b["metrics"]["counters"][0][2] = 900.0
        diff = diff_bundles(a, b)
        assert [m.name for m in diff.metrics] == ['worker.accesses{worker="0"}']
