"""Structured logging: JSON lines, run-id stamping, bound fields."""

import io
import json

import pytest

from repro.obs import NULL_LOG, MetricsRegistry, NullLogger, StructLogger, new_run_id


def lines_of(stream):
    return [json.loads(ln) for ln in stream.getvalue().splitlines()]


class TestStructLogger:
    def test_json_lines_with_run_id_and_fields(self):
        out = io.StringIO()
        log = StructLogger(out, run_id="abc123")
        log.info("worker.started", worker=3)
        log.warning("worker.stalled", worker=3, age_seconds=0.5)
        recs = lines_of(out)
        assert [r["event"] for r in recs] == ["worker.started", "worker.stalled"]
        assert all(r["run_id"] == "abc123" for r in recs)
        assert recs[0]["level"] == "info" and recs[1]["level"] == "warning"
        assert recs[1]["age_seconds"] == 0.5
        assert all("ts" in r for r in recs)
        assert log.n_records == 2

    def test_level_threshold_filters(self):
        out = io.StringIO()
        log = StructLogger(out, level="warning")
        log.debug("noise")
        log.info("still noise")
        log.error("signal")
        recs = lines_of(out)
        assert [r["event"] for r in recs] == ["signal"]
        assert log.n_records == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            StructLogger(io.StringIO(), level="loud")
        with pytest.raises(ValueError):
            StructLogger(io.StringIO()).log("verbose", "x")

    def test_bind_creates_child_with_inherited_fields(self):
        out = io.StringIO()
        root = StructLogger(out, run_id="r1")
        child = root.bind(worker=2)
        grandchild = child.bind(chunk=7)
        grandchild.info("chunk.done", rows=64)
        (rec,) = lines_of(out)
        assert rec["worker"] == 2 and rec["chunk"] == 7 and rec["rows"] == 64
        assert rec["run_id"] == "r1"
        # call fields win over bound fields
        child.info("override", worker=9)
        assert lines_of(out)[-1]["worker"] == 9

    def test_field_order_is_stable(self):
        out = io.StringIO()
        log = StructLogger(out, run_id="r")
        log.info("e", zebra=1, alpha=2)
        line = out.getvalue().splitlines()[0]
        keys = list(json.loads(line))
        assert keys == sorted(keys)


class TestNullLogger:
    def test_disabled_and_silent(self):
        n = NullLogger()
        assert n.enabled is False
        n.info("anything", x=1)
        n.warning("anything")
        assert n.bind(worker=1) is n

    def test_shared_instance_is_registry_default(self):
        reg = MetricsRegistry()
        assert reg.log is NULL_LOG
        reg.log.error("goes nowhere", worker=0)  # must not raise


class TestRunId:
    def test_new_run_id_shape_and_uniqueness(self):
        ids = {new_run_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 12 and i == i.lower() for i in ids)

    def test_registry_stamps_events_with_run_id(self):
        from repro.obs import MemorySink

        sink = MemorySink()
        reg = MetricsRegistry(sink, run_id="runx")
        reg.emit({"type": "sample", "seq": 1})
        assert sink.events[0]["run_id"] == "runx"

    def test_no_run_id_no_stamp(self):
        from repro.obs import MemorySink

        sink = MemorySink()
        reg = MetricsRegistry(sink)
        reg.emit({"type": "sample", "seq": 1})
        assert "run_id" not in sink.events[0]
