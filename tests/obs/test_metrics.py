"""Unit tests for the metrics registry, instruments, spans, and sampler."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MemorySink,
    MetricsRegistry,
    NullSink,
    Sampler,
    format_name,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert int(c) == 6

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a", worker=1) is reg.counter("a", worker=1)
        assert reg.counter("a", worker=1) is not reg.counter("a", worker=2)
        assert reg.counter("a") is not reg.counter("a", worker=1)

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x=1, y=2) is reg.counter("a", y=2, x=1)

    def test_sum_counters_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("q.stalls", worker=0).inc(3)
        reg.counter("q.stalls", worker=1).inc(4)
        reg.counter("other").inc(100)
        assert reg.sum_counters("q.stalls") == 7

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")
        with pytest.raises(TypeError):
            reg.histogram("m")


class TestGauge:
    def test_set_get(self):
        g = Gauge("g")
        g.set(2.5)
        assert g.value == 2.5

    def test_callback_backed(self):
        reg = MetricsRegistry()
        state = {"v": 1}
        g = reg.gauge_fn("live", lambda: state["v"])
        assert g.value == 1.0
        state["v"] = 42
        assert g.value == 42.0


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(106.2)
        assert h.mean == pytest.approx(106.2 / 4)

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))


class TestFormatName:
    def test_plain_and_labelled(self):
        assert format_name("a.b", ()) == "a.b"
        assert format_name("a", (("k", "v"),)) == 'a{k="v"}'


class TestSpan:
    def test_span_records_histogram_and_event(self):
        sink = MemorySink()
        reg = MetricsRegistry(sink)
        with reg.span("route"):
            pass
        assert len(reg.spans) == 1 and reg.spans[0].name == "route"
        h = reg.histogram("span.seconds", phase="route")
        assert h.count == 1
        [ev] = sink.of_type("span")
        assert ev["phase"] == "route" and ev["seconds"] >= 0.0 and "ts" in ev

    def test_span_records_even_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("bad"):
                raise RuntimeError("boom")
        assert reg.phase_totals()["bad"]["count"] == 1

    def test_phase_totals_aggregates(self):
        reg = MetricsRegistry()
        for _ in range(3):
            with reg.span("route"):
                pass
        totals = reg.phase_totals()
        assert totals["route"]["count"] == 3
        assert totals["route"]["seconds"] >= 0.0


class TestNullSinkOverhead:
    def test_null_sink_suppresses_events(self):
        reg = MetricsRegistry()  # defaults to the shared NullSink
        assert isinstance(reg.sink, NullSink)
        assert not reg.sink.enabled
        reg.emit({"type": "x"})  # must be a no-op, not an error

    def test_counters_still_work_without_sink(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        assert reg.snapshot()["counters"]["c"] == 1


class TestSnapshot:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", worker=0).inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {'c{worker="0"}': 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == [1, 0]


class TestSampler:
    def test_manual_poll_emits_sample_events(self):
        sink = MemorySink()
        reg = MetricsRegistry(sink)
        sampler = Sampler(reg)
        values = [10, 20]
        sampler.add("q.occ", lambda: values[0], worker=0)
        sampler.add("q.occ", lambda: values[1], worker=1)
        assert sampler.poll()
        values[0] = 11
        assert sampler.poll()
        events = sink.of_type("sample")
        assert len(events) == 2
        assert events[0]["values"]['q.occ{worker="0"}'] == 10.0
        assert events[1]["values"]['q.occ{worker="0"}'] == 11.0
        assert events[1]["seq"] == 2

    def test_rate_limit(self):
        reg = MetricsRegistry(MemorySink())
        sampler = Sampler(reg, min_interval_s=3600.0)
        sampler.add("g", lambda: 1)
        assert sampler.poll()
        assert not sampler.poll()  # inside the interval
        assert sampler.poll(force=True)

    def test_no_probes_no_samples(self):
        sampler = Sampler(MetricsRegistry(MemorySink()))
        assert not sampler.poll(force=True)

    def test_threaded_sampling(self):
        sink = MemorySink()
        reg = MetricsRegistry(sink)
        sampler = Sampler(reg)
        sampler.add("g", lambda: threading.active_count())
        sampler.start(period_s=0.001)
        try:
            deadline = threading.Event()
            deadline.wait(0.05)
        finally:
            sampler.stop()
        assert len(sink.of_type("sample")) >= 1
        # stop() is idempotent and leaves no thread behind
        sampler.stop()


class TestMergeStateEdgeCases:
    """merge_state edge cases: empty, disjoint, repeated, mismatched."""

    def test_empty_state_is_a_noop(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        before = reg.state()
        reg.merge_state(MetricsRegistry().state())
        assert reg.state() == before

    def test_merge_into_empty_registry_reproduces_source(self):
        src = MetricsRegistry()
        src.counter("a", worker=0).inc(2)
        src.gauge("g").set(1.5)
        src.histogram("h", buckets=(1.0,)).observe(0.5)
        with src.span("p"):
            pass
        dst = MetricsRegistry()
        dst.merge_state(src.state())
        assert dst.snapshot() == src.snapshot()

    def test_disjoint_instrument_sets_union(self):
        a = MetricsRegistry()
        a.counter("only.a").inc(1)
        a.gauge("gauge.a").set(10.0)
        b = MetricsRegistry()
        b.counter("only.b", worker=1).inc(2)
        a.merge_state(b.state())
        snap = a.snapshot()
        assert snap["counters"] == {"only.a": 1, 'only.b{worker="1"}': 2}
        assert snap["gauges"] == {"gauge.a": 10.0}

    def test_repeated_merge_counters_add_gauges_overwrite(self):
        src = MetricsRegistry()
        src.counter("c").inc(5)
        src.gauge("g").set(7.0)
        src.histogram("h", buckets=(1.0,)).observe(0.5)
        dst = MetricsRegistry()
        state = src.state()
        dst.merge_state(state)
        dst.merge_state(state)
        assert dst.counter("c").value == 10  # counters accumulate
        assert dst.gauge("g").value == 7.0  # gauges are point-in-time
        h = dst.histogram("h", buckets=(1.0,))
        assert h.count == 2 and h.sum == pytest.approx(1.0)

    def test_histogram_bucket_layout_mismatch_raises(self):
        src = MetricsRegistry()
        src.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        dst = MetricsRegistry()
        dst.histogram("h", buckets=(5.0, 50.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket layout mismatch"):
            dst.merge_state(src.state())

    def test_merged_spans_do_not_double_feed_span_histogram(self):
        src = MetricsRegistry()
        with src.span("phase.x"):
            pass
        dst = MetricsRegistry()
        dst.merge_state(src.state())
        # Span records arrive, but span.seconds only via the histogram merge.
        assert [s.name for s in dst.spans] == ["phase.x"]
        assert dst.histogram("span.seconds", phase="phase.x").count == 1
