"""Tests for the cost model: calibration anchors, pipeline replay shape
properties, and memory breakdown."""

import pytest

from repro.common.config import ProfilerConfig
from repro.costmodel import (
    CostParams,
    estimate_memory,
    estimate_parallel,
    estimate_serial,
)
from repro.parallel import ParallelProfiler, ParallelRunInfo
from tests.trace_helpers import seq_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def balanced_info(n_workers=8, chunks_per_worker=50, rows=4096):
    info = ParallelRunInfo(n_workers=n_workers)
    for i in range(chunks_per_worker * n_workers):
        info.chunk_log.append((i % n_workers, rows))
    info.per_worker_accesses = [chunks_per_worker * rows] * n_workers
    return info


def skewed_info(n_workers=8, chunks=400, rows=4096, hot_share=0.8):
    info = ParallelRunInfo(n_workers=n_workers)
    hot = int(chunks * hot_share)
    for i in range(chunks):
        w = 0 if i < hot else 1 + (i % (n_workers - 1))
        info.chunk_log.append((w, rows))
    return info


def total_rows(info):
    return sum(r for w, r in info.chunk_log if w >= 0)


class TestCalibrationAnchors:
    """The suite-level anchors from the paper's Section VI-B."""

    def test_serial_anchor_190x(self):
        assert estimate_serial(10**6) == pytest.approx(190.0, rel=0.01)

    def test_8_workers_near_97x(self):
        info = balanced_info(8)
        est = estimate_parallel(info, total_rows(info), store_entries=1000)
        # Balanced pipelines land slightly below the paper's 97x average
        # (which includes imbalanced benchmarks); the band is what matters.
        assert 85 <= est.slowdown <= 105

    def test_16_workers_near_78x(self):
        info = balanced_info(16)
        est = estimate_parallel(info, total_rows(info), store_entries=1000)
        assert 75 <= est.slowdown <= 90

    def test_lock_based_ratio_in_band(self):
        info = balanced_info(8)
        n = total_rows(info)
        free = estimate_parallel(info, n, 1000, lock_free=True).slowdown
        locked = estimate_parallel(info, n, 1000, lock_free=False).slowdown
        assert 1.3 <= locked / free <= 1.6  # the paper's 1.3-1.6x speedup

    def test_mt_target_anchors(self):
        i8, i16 = balanced_info(8), balanced_info(16)
        s8 = estimate_parallel(i8, total_rows(i8), 1000, mt_target=True).slowdown
        s16 = estimate_parallel(i16, total_rows(i16), 1000, mt_target=True).slowdown
        assert 290 <= s8 <= 400  # paper: 346x
        assert 220 <= s16 <= 320  # paper: 261x
        assert s16 < s8

    def test_serial_mt_target_higher(self):
        assert estimate_serial(1000, mt_target=True) > estimate_serial(1000)


class TestShapeProperties:
    def test_parallel_beats_serial(self):
        info = balanced_info(8)
        est = estimate_parallel(info, total_rows(info), 1000)
        assert est.slowdown < estimate_serial(total_rows(info))

    def test_more_workers_help_sublinearly(self):
        s = {}
        for w in (2, 4, 8, 16):
            info = balanced_info(w, chunks_per_worker=400 // w)
            s[w] = estimate_parallel(info, total_rows(info), 1000).slowdown
        assert s[16] < s[8] < s[4] < s[2]
        # Sub-linear: 8x workers give far less than 8x improvement.
        assert s[2] / s[16] < 3.0

    def test_imbalance_hurts(self):
        bal, skew = balanced_info(8, 50), skewed_info(8, 400)
        sb = estimate_parallel(bal, total_rows(bal), 1000).slowdown
        ss = estimate_parallel(skew, total_rows(skew), 1000).slowdown
        assert ss > sb * 1.3

    def test_queue_backpressure_counted(self):
        skew = skewed_info(4, 200, hot_share=1.0)  # everything on worker 0
        est = estimate_parallel(skew, total_rows(skew), 1000, queue_depth=2)
        assert est.queue_wait_time > 0

    def test_rebalance_markers_charge_time(self):
        info = balanced_info(4, 10)
        info.chunk_log.insert(20, (-1, 0))
        info.rebalance_rounds = 1
        info.addresses_migrated = 10
        with_rb = estimate_parallel(info, total_rows(info), 1000)
        assert with_rb.rebalance_time > 0

    def test_merge_cost_scales_with_entries(self):
        info = balanced_info(4)
        n = total_rows(info)
        small = estimate_parallel(info, n, store_entries=10)
        large = estimate_parallel(info, n, store_entries=10**6)
        assert large.makespan > small.makespan

    def test_full_overlap_parameter_lowers_bound(self):
        info = skewed_info(8, 200, hot_share=0.5)
        n = total_rows(info)
        coupled = estimate_parallel(info, n, 0, params=CostParams(overlap=1.0))
        pipelined = estimate_parallel(info, n, 0, params=CostParams(overlap=0.0))
        assert pipelined.slowdown < coupled.slowdown

    def test_replay_from_real_run(self):
        """End-to-end: chunk log from a real deterministic run feeds the model."""
        ops = []
        for r in range(50):
            for i in range(32):
                a = 0x1000 + 8 * i
                ops += [("w", a, 1, "x"), ("r", a, 2, "x")]
        batch = seq_trace(ops)
        for w in (2, 8):
            cfg = PERFECT.with_(workers=w, chunk_size=64)
            res, info = ParallelProfiler(cfg).profile(batch)
            est = estimate_parallel(
                info, res.stats.n_accesses, len(res.store), queue_depth=cfg.queue_depth
            )
            assert 0 < est.slowdown < estimate_serial(res.stats.n_accesses)


class TestMemoryModel:
    def test_signature_bytes_match_paper_config(self):
        """16 threads x 6.25e6 slots x 4 B x 2 signatures = 382 MB? The
        paper says 1e8 aggregated slots consume 382 MB — one read+write pair
        accounted at 4 B/slot overall."""
        cfg = ProfilerConfig(signature_slots=10**8, workers=16)
        est = estimate_memory(cfg, None, 0, 0)
        assert est.signatures == 2 * (10**8 // 16) * 4 * 16

    def test_components_accumulate(self):
        cfg = ProfilerConfig(signature_slots=10**6, workers=8)
        info = ParallelRunInfo(n_workers=8, chunks_allocated=100)
        est = estimate_memory(cfg, info, store_entries=5000, n_unique_addresses=10**5)
        assert est.queues == 100 * cfg.chunk_size * 24
        assert est.dep_store == 5000 * 96
        assert est.total > est.signatures

    def test_serial_has_no_queue_memory(self):
        cfg = ProfilerConfig(signature_slots=10**6, workers=1)
        est = estimate_memory(cfg, None, 100, 100)
        assert est.queues == 0

    def test_mt_target_costs_more(self):
        cfg = ProfilerConfig(signature_slots=10**6, workers=8)
        info = ParallelRunInfo(n_workers=8, chunks_allocated=64)
        seq = estimate_memory(cfg, info, 1000, 1000)
        mt = estimate_memory(cfg, info, 1000, 1000, n_sync_events=500, mt_target=True)
        assert mt.total > seq.total

    def test_more_workers_more_signature_memory(self):
        """Fig. 7's shape: per-worker slots are fixed in the paper's setup,
        so memory grows with the thread count."""
        slots_per_worker = 6_250_000
        m8 = estimate_memory(
            ProfilerConfig(signature_slots=slots_per_worker * 8, workers=8),
            None, 0, 0,
        ).signatures
        m16 = estimate_memory(
            ProfilerConfig(signature_slots=slots_per_worker * 16, workers=16),
            None, 0, 0,
        ).signatures
        assert m16 == 2 * m8
