"""Cross-module integration and property tests.

These exercise full paths a downstream user would take: workload -> trace ->
(save/load) -> profiler (all engines, all pipeline modes) -> analyses ->
text output -> parser, and invariants connecting them.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    DependenceProfiler,
    ParallelProfiler,
    ProfilerConfig,
    format_dependences,
    parse_dependences,
    profile_trace,
)
from repro.core.profiler import make_trackers
from repro.core.reference import ReferenceEngine
from repro.trace import load_trace, save_trace
from tests.core.test_engine_equivalence import random_ops
from tests.trace_helpers import seq_trace

PERFECT = ProfilerConfig(perfect_signature=True)


class TestEndToEnd:
    def test_workload_through_every_path(self, tmp_path):
        """One workload through trace IO, three profilers, and the parser."""
        from repro.workloads import get_trace

        batch = get_trace("mg")
        save_trace(batch, tmp_path / "mg.npz")
        loaded = load_trace(tmp_path / "mg.npz")

        vec = profile_trace(loaded, PERFECT, "vectorized")
        ref = profile_trace(loaded, PERFECT, "reference")
        par, _ = ParallelProfiler(PERFECT.with_(workers=4)).profile(loaded)
        assert vec.store == ref.store == par.store

        parsed = parse_dependences(format_dependences(vec))
        assert len(parsed.nom) == vec.store.n_sinks
        assert len(parsed.loops_begun) == len(vec.loops)

    def test_analyses_compose_on_parallel_workload(self):
        from repro.analyses import (
            analyze_loops,
            build_execution_tree,
            communication_matrix,
            detect_races,
            section_dependences,
        )
        from repro.workloads import get_trace

        batch = get_trace("kmeans", variant="par", threads=4)
        res = profile_trace(batch, PERFECT.with_(multithreaded_target=True))
        assert analyze_loops(res)  # loops classified
        assert communication_matrix(res, n_threads=5).sum() > 0
        report = detect_races(batch, res)
        assert all(c.verdict != "observed" for c in report.candidates)
        trees = build_execution_tree(batch)
        assert sum(t.total_accesses for t in trees.values()) == batch.n_accesses
        section_dependences(res)  # renders without error

    def test_public_api_surface(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestIncrementalProcessing:
    """The worker contract: feeding a trace in chunks must equal one shot."""

    @settings(max_examples=40, deadline=None)
    @given(ops=random_ops(), cut=st.integers(min_value=0, max_value=100))
    def test_incremental_equals_oneshot(self, ops, cut):
        batch = seq_trace(ops)
        k = min(len(batch), cut)
        oneshot = DependenceProfiler(PERFECT, "reference").profile(batch)

        engine = ReferenceEngine(PERFECT, *make_trackers(PERFECT))
        idx = np.arange(len(batch))
        engine.process(batch.select(idx[:k]))
        engine.process(batch.select(idx[k:]))
        assert engine.store == oneshot.store
        assert engine.store.instances == oneshot.store.instances

    @settings(max_examples=15, deadline=None)
    @given(ops=random_ops())
    def test_many_tiny_chunks(self, ops):
        batch = seq_trace(ops)
        oneshot = DependenceProfiler(PERFECT, "reference").profile(batch)
        engine = ReferenceEngine(PERFECT, *make_trackers(PERFECT))
        idx = np.arange(len(batch))
        for s in range(0, len(batch), 3):
            engine.process(batch.select(idx[s : s + 3]))
        assert engine.store == oneshot.store


class TestOutputRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(ops=random_ops())
    def test_format_parse_roundtrip_preserves_records(self, ops):
        batch = seq_trace(ops)
        res = profile_trace(batch, PERFECT)
        mt = batch.n_threads > 1
        parsed = parse_dependences(format_dependences(res, multithreaded=mt))
        # Rebuild the comparable set from the parsed text.
        from repro.common.sourceloc import format_location
        from repro.core import DepType

        expected = set()
        for d in res.store:
            sink = (format_location(d.sink_loc), d.sink_tid if mt else 0)
            if d.dep_type is DepType.INIT:
                expected.add((sink, ("INIT", "*", -1, "*")))
            else:
                expected.add(
                    (
                        sink,
                        (
                            d.dep_type.name,
                            format_location(d.source_loc),
                            d.source_tid if mt else 0,
                            res.var_name(d.var),
                        ),
                    )
                )
        got = {
            (sink, rec) for sink, recs in parsed.nom.items() for rec in recs
        }
        assert got == expected

    @settings(max_examples=25, deadline=None)
    @given(ops=random_ops())
    def test_verbose_output_also_parses(self, ops):
        res = profile_trace(seq_trace(ops), PERFECT)
        parse_dependences(format_dependences(res, verbose=True))


class TestQueueModel:
    """Model-based check of the SPSC ring against a plain deque."""

    @settings(max_examples=60, deadline=None)
    @given(
        actions=st.lists(
            st.one_of(st.integers(min_value=0, max_value=99), st.none()),
            max_size=200,
        ),
        capacity=st.integers(min_value=1, max_value=9),
    )
    def test_ring_matches_deque_model(self, actions, capacity):
        from collections import deque

        from repro.parallel.queues import SpscRingQueue

        q = SpscRingQueue(capacity)
        model: deque = deque()
        cap = q.capacity
        for a in actions:
            if a is None:  # pop
                ok, v = q.try_pop()
                if model:
                    assert ok and v == model.popleft()
                else:
                    assert not ok
            else:  # push
                ok = q.try_push(a)
                if len(model) < cap:
                    assert ok
                    model.append(a)
                else:
                    assert not ok
            assert len(q) == len(model)
