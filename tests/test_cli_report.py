"""Tests for the report renderers and the ddprof CLI."""

import pytest

from repro.cli import main
from repro.report import ascii_table, bar_chart, csv_lines, fmt


class TestFmt:
    def test_float_precision(self):
        assert fmt(3.14159) == "3.142"
        assert fmt(42.123) == "42.1"
        assert fmt(1234.5) == "1,234"
        assert fmt(0.0) == "0"

    def test_bool_and_str(self):
        assert fmt(True) == "yes"
        assert fmt(False) == "no"
        assert fmt("abc") == "abc"


class TestAsciiTable:
    def test_alignment_and_title(self):
        out = ascii_table(["name", "v"], [["a", 1], ["bb", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all(len(l) == len(lines[1]) for l in lines[3:])

    def test_empty_rows(self):
        out = ascii_table(["x"], [])
        assert "x" in out


class TestCsv:
    def test_basic(self):
        out = csv_lines(["a", "b"], [[1, 2.5]])
        assert out.splitlines() == ["a,b", "1,2.500"]

    def test_thousands_commas_stripped(self):
        out = csv_lines(["v"], [[12345.0]])
        assert out.splitlines()[1] == "12345"


class TestBarChart:
    def test_bars_scale(self):
        out = bar_chart([("a", 10.0), ("b", 5.0)], title="chart", unit="x")
        lines = out.splitlines()
        assert lines[0] == "chart"
        assert lines[1].count("#") == 2 * lines[2].count("#")

    def test_zero_and_empty(self):
        assert "(no data)" in bar_chart([], title="t")
        out = bar_chart([("a", 0.0)])
        assert "#" not in out


class TestCli:
    def test_workloads_lists_suites(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "[nas]" in out and "cg" in out and "water-spatial" in out

    def test_profile_sequential(self, capsys):
        assert main(["profile", "ep"]) == 0
        out = capsys.readouterr().out
        assert "NOM" in out and "merged dependences" in out

    def test_profile_with_signature_slots(self, capsys):
        assert main(["profile", "ep", "--slots", "100000"]) == 0
        assert "NOM" in capsys.readouterr().out

    def test_loops_table(self, capsys):
        assert main(["loops", "mg"]) == 0
        out = capsys.readouterr().out
        assert "parallelizable" in out or "parallel" in out

    def test_comm_matrix(self, capsys):
        assert main(["comm", "water-spatial", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "(producers)" in out

    def test_races_clean_program(self, capsys):
        assert main(["races", "md5", "--delay", "0.0", "--threads", "2"]) == 0
        assert "no potential data races" in capsys.readouterr().out

    def test_unknown_workload_errors(self):
        from repro.common.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["profile", "quake"])

    def test_listing(self, capsys):
        assert main(["listing", "ep"]) == 0
        out = capsys.readouterr().out
        assert "def main():" in out and "for " in out

    def test_listing_parallel_variant(self, capsys):
        assert main(["listing", "md5", "--variant", "par", "--threads", "2"]) == 0
        assert "spawn" in capsys.readouterr().out

    def test_tree(self, capsys):
        assert main(["tree", "ep"]) == 0
        out = capsys.readouterr().out
        assert "<root>" in out and "loop" in out

    def test_sections(self, capsys):
        assert main(["sections", "mg"]) == 0
        out = capsys.readouterr().out
        assert "RAW" in out and "loop" in out

    def test_distances(self, capsys):
        assert main(["distances", "cg"]) == 0
        out = capsys.readouterr().out
        assert "DOALL" in out and "serial" in out
        assert "distance 1" in out  # the forward-substitution recurrence


class TestCliTracing:
    def test_trace_subcommand_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "ep.trace.json"
        assert main(["trace", "ep", "--workers", "3", "--out", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "wrote" in printed and "worker 0" in printed
        obj = json.loads(out_path.read_text())
        assert validate_chrome_trace(obj) == []
        # One timeline track per worker plus the main thread.
        tids = {e["tid"] for e in obj["traceEvents"] if e["ph"] != "M"}
        assert {0, 1, 2, 3} <= tids
        names = {
            e["args"].get("name")
            for e in obj["traceEvents"]
            if e["ph"] == "M"
        }
        assert {"main", "worker 0", "worker 1", "worker 2"} <= names

    def test_profile_trace_out_flag(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace_file

        out_path = tmp_path / "p.trace.json"
        assert main(["profile", "ep", "--trace-out", str(out_path)]) == 0
        assert "NOM" in capsys.readouterr().out  # dependence output unchanged
        assert validate_chrome_trace_file(out_path) == []

    def test_profile_provenance_text(self, capsys):
        assert main(["profile", "ep", "--provenance", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "# provenance:" in out
        assert "workers [" in out and "chunks" in out

    def test_profile_provenance_json_report(self, capsys):
        import json

        assert main(["profile", "ep", "--provenance", "--json"]) == 0
        out = capsys.readouterr().out
        # The report starts on its own line, after the dependence listing
        # (whose notation also uses braces).
        report = json.loads(out[out.index("\n{\n") + 1:])
        rows = report["provenance"]
        assert rows and all("provenance" in r for r in rows)
        row = rows[0]["provenance"]
        assert {"workers", "chunks", "ts", "count", "suspect_fp"} <= set(row)

    def test_trace_json_report_has_track_summary(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "t.trace.json"
        assert main(
            ["trace", "ep", "--json", "--workers", "2", "--out", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{"):])
        tracks = report["trace"]["tracks"]
        assert "main" in tracks and "worker 0" in tracks and "worker 1" in tracks
        for t in tracks.values():
            assert {"busy_frac", "stall_frac", "idle_frac"} <= set(t)
