"""Tests for the report renderers and the ddprof CLI."""

import pytest

from repro.cli import main
from repro.report import ascii_table, bar_chart, csv_lines, fmt


class TestFmt:
    def test_float_precision(self):
        assert fmt(3.14159) == "3.142"
        assert fmt(42.123) == "42.1"
        assert fmt(1234.5) == "1,234"
        assert fmt(0.0) == "0"

    def test_bool_and_str(self):
        assert fmt(True) == "yes"
        assert fmt(False) == "no"
        assert fmt("abc") == "abc"


class TestAsciiTable:
    def test_alignment_and_title(self):
        out = ascii_table(["name", "v"], [["a", 1], ["bb", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all(len(l) == len(lines[1]) for l in lines[3:])

    def test_empty_rows(self):
        out = ascii_table(["x"], [])
        assert "x" in out


class TestCsv:
    def test_basic(self):
        out = csv_lines(["a", "b"], [[1, 2.5]])
        assert out.splitlines() == ["a,b", "1,2.500"]

    def test_thousands_commas_stripped(self):
        out = csv_lines(["v"], [[12345.0]])
        assert out.splitlines()[1] == "12345"


class TestBarChart:
    def test_bars_scale(self):
        out = bar_chart([("a", 10.0), ("b", 5.0)], title="chart", unit="x")
        lines = out.splitlines()
        assert lines[0] == "chart"
        assert lines[1].count("#") == 2 * lines[2].count("#")

    def test_zero_and_empty(self):
        assert "(no data)" in bar_chart([], title="t")
        out = bar_chart([("a", 0.0)])
        assert "#" not in out


class TestCli:
    def test_workloads_lists_suites(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "[nas]" in out and "cg" in out and "water-spatial" in out

    def test_profile_sequential(self, capsys):
        assert main(["profile", "ep"]) == 0
        out = capsys.readouterr().out
        assert "NOM" in out and "merged dependences" in out

    def test_profile_with_signature_slots(self, capsys):
        assert main(["profile", "ep", "--slots", "100000"]) == 0
        assert "NOM" in capsys.readouterr().out

    def test_loops_table(self, capsys):
        assert main(["loops", "mg"]) == 0
        out = capsys.readouterr().out
        assert "parallelizable" in out or "parallel" in out

    def test_comm_matrix(self, capsys):
        assert main(["comm", "water-spatial", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "(producers)" in out

    def test_races_clean_program(self, capsys):
        assert main(["races", "md5", "--delay", "0.0", "--threads", "2"]) == 0
        assert "no potential data races" in capsys.readouterr().out

    def test_unknown_workload_errors(self):
        from repro.common.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["profile", "quake"])

    def test_listing(self, capsys):
        assert main(["listing", "ep"]) == 0
        out = capsys.readouterr().out
        assert "def main():" in out and "for " in out

    def test_listing_parallel_variant(self, capsys):
        assert main(["listing", "md5", "--variant", "par", "--threads", "2"]) == 0
        assert "spawn" in capsys.readouterr().out

    def test_tree(self, capsys):
        assert main(["tree", "ep"]) == 0
        out = capsys.readouterr().out
        assert "<root>" in out and "loop" in out

    def test_sections(self, capsys):
        assert main(["sections", "mg"]) == 0
        out = capsys.readouterr().out
        assert "RAW" in out and "loop" in out

    def test_distances(self, capsys):
        assert main(["distances", "cg"]) == 0
        out = capsys.readouterr().out
        assert "DOALL" in out and "serial" in out
        assert "distance 1" in out  # the forward-substitution recurrence
