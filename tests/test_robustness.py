"""Robustness edges: degenerate traces, extreme configurations, and the
failure modes a downstream user will hit first."""

import numpy as np
import pytest

from repro.common.config import ProfilerConfig
from repro.common.errors import ProfilerError
from repro.core import DependenceProfiler, profile_trace
from repro.parallel import ParallelProfiler
from repro.trace import TraceBuilder, TraceRecorder
from tests.trace_helpers import seq_trace

PERFECT = ProfilerConfig(perfect_signature=True)
ENGINES = ["reference", "vectorized"]


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


class TestDegenerateTraces:
    def test_single_event(self, engine):
        res = profile_trace(seq_trace([("w", 0x8, 1)]), PERFECT, engine)
        assert len(res.store) == 1  # just the INIT

    def test_control_only_trace(self, engine):
        ops = [("L+", 10), ("Li", 10), ("Li", 10), ("L-", 10)]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        assert len(res.store) == 0
        assert res.loops and res.stats.n_accesses == 0

    def test_free_only_trace(self, engine):
        res = profile_trace(seq_trace([("free", 0x1000, 64, 1)]), PERFECT, engine)
        assert len(res.store) == 0

    def test_zero_size_free(self, engine):
        ops = [("w", 0x1000, 1, "a"), ("free", 0x1000, 0, 2), ("r", 0x1000, 3, "a")]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        # A zero-byte free removes nothing.
        assert any(d.dep_type.name == "RAW" for d in res.store)

    def test_huge_addresses(self, engine):
        big = (1 << 47) - 8  # top of a canonical userspace address space
        ops = [("w", big, 1, "p"), ("r", big, 2, "p")]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        assert any(d.dep_type.name == "RAW" for d in res.store)

    def test_same_line_everything(self, engine):
        """All accesses on one source line still merge into sane records."""
        ops = [("w", 0x8 * i, 7, "v") for i in range(50)]
        ops += [("r", 0x8 * i, 7, "v") for i in range(50)]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        assert res.store.n_sinks == 1
        assert len(res.store) == 2  # one INIT + one RAW record

    def test_many_threads(self, engine):
        r = TraceRecorder()
        v = r.intern_var("g")
        for tid in range(64):
            r.write(0x8, loc=1, var=v, tid=tid)
        res = profile_trace(
            r.build(), PERFECT.with_(multithreaded_target=True), engine
        )
        assert len(res.store) == 64  # INIT + 63 distinct cross-thread WAWs


class TestExtremeConfigs:
    def test_one_slot_signature(self, engine):
        batch = seq_trace([("w", 0x8 * i, 1) for i in range(20)])
        res = profile_trace(batch, ProfilerConfig(signature_slots=1), engine)
        assert res.stats.n_writes == 20

    def test_parallel_more_workers_than_addresses(self):
        batch = seq_trace([("w", 0x8, 1), ("r", 0x8, 2)])
        par, info = ParallelProfiler(PERFECT.with_(workers=16)).profile(batch)
        seq = profile_trace(batch, PERFECT)
        assert par.store == seq.store
        assert sum(1 for a in info.per_worker_accesses if a) == 1

    def test_parallel_empty_trace(self):
        par, info = ParallelProfiler(PERFECT.with_(workers=4)).profile(
            TraceBuilder().build()
        )
        assert len(par.store) == 0
        assert info.n_chunks == 0

    def test_chunk_size_one(self):
        batch = seq_trace([("w", 0x8 * i, 1) for i in range(10)])
        cfg = PERFECT.with_(workers=2, chunk_size=1, queue_depth=1)
        par, info = ParallelProfiler(cfg).profile(batch)
        assert par.stats.n_writes == 10
        assert info.n_chunks == 10

    def test_profiler_rejects_engine_typo(self):
        with pytest.raises(ProfilerError):
            DependenceProfiler(PERFECT, engine="vectorised")


class TestResultObject:
    def test_merge_reduction_factor_empty(self):
        res = profile_trace(TraceBuilder().build(), PERFECT)
        assert res.merge_reduction_factor == 0.0

    def test_var_name_out_of_range(self):
        res = profile_trace(seq_trace([("w", 0x8, 1, "x")]), PERFECT)
        assert res.var_name(-1) == "*"
        assert res.var_name(10**6) == "*"

    def test_stats_consistency(self, engine):
        ops = [("w", 0x8 * i, 1) for i in range(30)] + [
            ("r", 0x8 * i, 2) for i in range(30)
        ]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        assert res.stats.n_accesses == res.stats.n_reads + res.stats.n_writes
        assert res.stats.total_instances == res.store.instances
        assert res.stats.n_unique_addresses == 30
