"""Tests for chunks, the chunk pool, and the address map."""

import numpy as np
import pytest

from repro.parallel.address_map import AddressMap
from repro.parallel.chunks import Chunk, ChunkPool


class TestChunk:
    def test_append_until_full(self):
        c = Chunk(4)
        for i in range(4):
            assert not c.full
            c.append(i)
        assert c.full
        assert c.view().tolist() == [0, 1, 2, 3]

    def test_view_is_prefix(self):
        c = Chunk(8)
        c.append(7)
        assert c.view().tolist() == [7]

    def test_reset(self):
        c = Chunk(4)
        c.append(1)
        c.seq = 9
        c.reset()
        assert c.count == 0 and c.seq == -1


class TestChunkPool:
    def test_recycling_reuses_buffers(self):
        pool = ChunkPool(16)
        a = pool.acquire()
        pool.release(a)
        b = pool.acquire()
        assert b is a  # the paper's chunk recycling
        assert pool.allocated == 1

    def test_allocation_high_water_mark(self):
        pool = ChunkPool(16)
        chunks = [pool.acquire() for _ in range(5)]
        for c in chunks:
            pool.release(c)
        for _ in range(5):
            pool.acquire()
        assert pool.allocated == 5
        assert pool.memory_bytes == 5 * 16 * 8

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ChunkPool(0)


class TestAddressMap:
    def test_modulo_distribution_on_element_index(self):
        amap = AddressMap(4)
        assert amap.worker_of(0x00) == 0  # element 0
        assert amap.worker_of(0x08) == 1  # element 1
        assert amap.worker_of(0x18) == 3  # element 3
        assert amap.worker_of(0x20) == 0  # element 4 wraps

    def test_vectorized_matches_scalar(self):
        amap = AddressMap(7)
        addrs = np.arange(0, 8 * 200, 8, dtype=np.int64)
        vec = amap.workers_of(addrs)
        assert vec.tolist() == [amap.worker_of(int(a)) for a in addrs]

    def test_redistribution_overrides_modulo(self):
        amap = AddressMap(4)
        old = amap.redistribute(0x40, 3)  # element 8, home = worker 0
        assert old == 0
        assert amap.worker_of(0x40) == 3
        assert amap.n_overrides == 1

    def test_vectorized_respects_overrides(self):
        amap = AddressMap(4)
        amap.redistribute(0x40, 3)
        addrs = np.array([0x40, 0x08, 0x40], dtype=np.int64)
        assert amap.workers_of(addrs).tolist() == [3, 1, 3]

    def test_redistribute_back_home_removes_override(self):
        amap = AddressMap(4)
        amap.redistribute(0x40, 3)
        amap.redistribute(0x40, 0)  # element 8's natural home under W=4
        assert amap.n_overrides == 0
        assert amap.worker_of(0x40) == 0

    def test_even_address_distribution(self):
        """Eq. 1 claim: modulo spreads addresses evenly (8-byte strides)."""
        w = 8
        amap = AddressMap(w)
        addrs = np.arange(0, 8 * 10_000, 8, dtype=np.int64)
        counts = np.bincount(amap.workers_of(addrs), minlength=w)
        assert counts.max() - counts.min() <= counts.mean() * 0.01 + 1

    def test_rejects_bad_worker(self):
        amap = AddressMap(2)
        with pytest.raises(ValueError):
            amap.redistribute(8, 5)
        with pytest.raises(ValueError):
            AddressMap(0)
