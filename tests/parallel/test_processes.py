"""The ``processes`` execution mode: real multi-process workers over one
shared-memory trace block.

Everything here asserts *equality with the deterministic mode* (itself
equivalence-tested against the sequential engines) plus the merge
machinery: per-worker stores, metrics state folding, provenance, tracer
adoption, and shared-memory hygiene.
"""

import os

import numpy as np
import pytest

from repro.common.config import ProfilerConfig
from repro.common.errors import ProfilerError
from repro.core import profile_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.parallel import ParallelProfiler
from repro.trace import attach_batch, share_batch
from repro.workloads import get_trace
from tests.trace_helpers import seq_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def _shm_entries():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: skip the hygiene accounting
        return set()


class TestSharedBatch:
    def test_roundtrip_zero_copy(self):
        batch = get_trace("ep")
        before = _shm_entries()
        shared = share_batch(batch)
        try:
            remote, handle = attach_batch(shared.meta)
            try:
                for col in ("kind", "tid", "loc", "addr", "aux", "var", "ts", "ctx"):
                    np.testing.assert_array_equal(
                        getattr(remote, col), getattr(batch, col)
                    )
                assert remote.var_names == batch.var_names
                assert remote.ctx_stacks == batch.ctx_stacks
                assert not remote.addr.flags.writeable
            finally:
                handle.close()
        finally:
            shared.close()
        assert _shm_entries() == before

    def test_empty_batch(self):
        batch = seq_trace([])
        shared = share_batch(batch)
        try:
            remote, handle = attach_batch(shared.meta)
            assert len(remote) == 0
            handle.close()
        finally:
            shared.close()


class TestProcessesMode:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("engine", ["vectorized", "reference"])
    def test_matches_sequential(self, workers, engine):
        batch = get_trace("ep")
        cfg = PERFECT.with_(
            workers=workers, chunk_size=512, worker_engine=engine
        )
        seq = profile_trace(batch, PERFECT, "reference")
        par, info = ParallelProfiler(cfg, mode="processes").profile(batch)
        assert par.store == seq.store
        assert par.stats.dep_instances == seq.stats.dep_instances
        assert par.stats.n_events == seq.stats.n_events
        assert sum(info.per_worker_accesses) == seq.stats.n_accesses
        assert info.n_chunks == len(info.chunk_log) > 0

    def test_array_signature_matches_deterministic(self):
        batch = get_trace("ep")
        cfg = ProfilerConfig(signature_slots=1 << 12, workers=3, chunk_size=512)
        det, _ = ParallelProfiler(cfg, mode="deterministic").profile(batch)
        par, _ = ParallelProfiler(cfg, mode="processes").profile(batch)
        assert par.store == det.store

    def test_loops_and_lifetime(self):
        ops = [("L+", 10)]
        for _ in range(5):
            ops += [("Li", 10)]
            for i in range(6):
                a = 0x1000 + 8 * i
                ops += [("r", a, 11, "s"), ("w", a, 12, "s")]
        ops += [("L-", 10), ("free", 0x1000, 48, 13), ("w", 0x1000, 14, "z")]
        batch = seq_trace(ops)
        seq = profile_trace(batch, PERFECT, "reference")
        par, _ = ParallelProfiler(
            PERFECT.with_(workers=3, chunk_size=8), mode="processes"
        ).profile(batch)
        assert par.store == seq.store

    def test_backpressure_tiny_task_queue(self):
        """queue_depth=1 task queues force producer-side blocking; results
        must be unaffected."""
        batch = get_trace("ep")
        cfg = PERFECT.with_(workers=2, chunk_size=256, queue_depth=1)
        par, _ = ParallelProfiler(cfg, mode="processes", window=1 << 10).profile(batch)
        seq = profile_trace(batch, PERFECT, "reference")
        assert par.store == seq.store

    def test_metrics_fold_into_parent_registry(self):
        batch = get_trace("ep")
        reg = MetricsRegistry()
        cfg = PERFECT.with_(workers=2, chunk_size=512)
        par, info = ParallelProfiler(cfg, mode="processes", registry=reg).profile(batch)
        # Worker-side counters arrived via merge_state.
        assert reg.sum_counters("worker.accesses") == sum(info.per_worker_accesses)
        assert reg.sum_counters("worker.chunks") == info.n_chunks
        assert reg.counter("pipeline.chunks").value == info.n_chunks
        # Per-chunk latency histograms travelled with their label sets.
        hists = [h for h in reg.histograms() if h.name == "worker.chunk_seconds"]
        assert len(hists) == 2
        assert sum(h.count for h in hists) == info.n_chunks
        # ProfileStats view over the merged registry is coherent.
        assert par.stats.n_accesses == sum(info.per_worker_accesses)
        assert info.signature_memory_bytes > 0

    def test_provenance_merged_across_processes(self):
        batch = get_trace("ep")
        cfg = PERFECT.with_(workers=2, chunk_size=512)
        par, _ = ParallelProfiler(cfg, mode="processes", provenance=True).profile(batch)
        det, _ = ParallelProfiler(cfg, provenance=True).profile(batch)
        assert par.provenance is not None
        assert len(par.provenance) == len(det.provenance)
        assert {w for _, r in par.provenance for w in r.workers} == {0, 1}

    def test_tracer_adopts_child_timelines(self):
        batch = get_trace("ep")
        reg = MetricsRegistry(tracer=Tracer())
        cfg = PERFECT.with_(workers=2, chunk_size=1024)
        ParallelProfiler(cfg, mode="processes", registry=reg).profile(batch)
        tr = reg.tracer
        assert tr.track_names[1] == "worker 0"
        assert tr.track_names[2] == "worker 1"
        chunk_events = tr.of_name("chunk.process")
        assert chunk_events and {e.track for e in chunk_events} == {1, 2}
        # Child events were re-based onto the parent epoch: they must sit
        # inside the parent's own span window, not near their child-local 0.
        spans = [e for e in tr.events if e.track == 0]
        assert spans
        lo = min(e.ts for e in spans) - 1.0
        assert all(e.ts > lo for e in chunk_events)

    def test_worker_failure_surfaces(self, monkeypatch):
        """A crash inside a worker process is shipped back as a traceback
        and re-raised parent-side (fork start method inherits the patch)."""
        import repro.parallel.worker as worker_mod

        def boom(self, batch, rows, seq=-1):
            raise RuntimeError("injected worker crash")

        monkeypatch.setattr(worker_mod.Worker, "process_rows", boom)
        batch = get_trace("ep")
        cfg = PERFECT.with_(workers=2, chunk_size=512)
        with pytest.raises(ProfilerError, match="injected worker crash"):
            ParallelProfiler(cfg, mode="processes").profile(batch)

    def test_worker_failure_flushes_sink_with_complete_jsonl(
        self, monkeypatch, tmp_path
    ):
        """The engine's exception path must flush (not abandon) the metrics
        sink: after a worker crash the JSONL file on disk parses cleanly,
        line by line, with the events emitted before the failure intact."""
        import repro.parallel.worker as worker_mod
        from repro.obs import JsonlSink, read_jsonl

        def boom(self, batch, rows, seq=-1):
            raise RuntimeError("injected worker crash")

        monkeypatch.setattr(worker_mod.Worker, "process_rows", boom)
        path = tmp_path / "metrics.jsonl"
        sink = JsonlSink(path, flush_every=10_000)  # never auto-flushes here
        reg = MetricsRegistry(sink)
        reg.emit({"type": "run.config", "workers": 2})
        batch = get_trace("ep")
        cfg = PERFECT.with_(workers=2, chunk_size=512)
        with pytest.raises(ProfilerError, match="injected worker crash"):
            ParallelProfiler(cfg, mode="processes", registry=reg).profile(batch)
        events = read_jsonl(path)  # parses or raises: no torn/missing lines
        assert any(e["type"] == "run.config" for e in events)
        # The sink survived the abort open for the caller's final report.
        reg.emit({"type": "run.aborted"})
        reg.close()
        assert any(e["type"] == "run.aborted" for e in read_jsonl(path))

    def test_no_shared_memory_leak(self):
        batch = get_trace("ep")
        before = _shm_entries()
        cfg = PERFECT.with_(workers=2, chunk_size=1024)
        ParallelProfiler(cfg, mode="processes").profile(batch)
        assert _shm_entries() == before

    def test_unknown_mode_rejected(self):
        with pytest.raises(ProfilerError):
            ParallelProfiler(PERFECT, mode="hyperthreads")
