"""Worker heartbeats and the liveness watchdog (processes mode).

Unit layer: the shared-memory :class:`HeartbeatBoard` and a
:class:`WorkerWatchdog` driven with a fake clock and synthetic exitcodes.
Integration layer: a real processes-mode run with a deliberately stalled
worker must flag the stall *live* — gauges, stall counter, tracer span —
and still complete without hanging.
"""

import os
import threading
import time

import pytest

from repro.common.config import ProfilerConfig
from repro.obs import HEARTBEAT_STATES, MemorySink, MetricsRegistry, liveness_summary
from repro.obs.tracing import Tracer, worker_track
from repro.parallel import ParallelProfiler
from repro.parallel.heartbeat import (
    STATE_DEAD,
    STATE_LIVE,
    STATE_STALLED,
    HeartbeatBoard,
    WorkerWatchdog,
)
from repro.workloads import get_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def _shm_entries():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:
        return set()


class TestHeartbeatBoard:
    def test_create_beat_age(self):
        board = HeartbeatBoard.create(2)
        try:
            assert board.beats(0) == 0 and board.beats(1) == 0
            board.beat(0)
            board.beat(0)
            assert board.beats(0) == 2 and board.beats(1) == 0
            assert board.age_seconds(0) < 1.0
            # fresh slots age from creation, not from the monotonic epoch
            assert board.age_seconds(1) < 60.0
        finally:
            board.close()

    def test_attach_sees_creator_writes(self):
        board = HeartbeatBoard.create(3)
        other = None
        try:
            other = HeartbeatBoard.attach(board.meta)
            other.beat(2)
            other.beat(2)
            assert board.beats(2) == 2
            assert board.age_seconds(2) < 1.0
        finally:
            if other is not None:
                other.close()
            board.close()

    def test_creator_unlinks_attacher_does_not(self):
        before = _shm_entries()
        board = HeartbeatBoard.create(1)
        after_create = _shm_entries()
        other = HeartbeatBoard.attach(board.meta)
        other.close()  # attachment close must NOT unlink
        assert _shm_entries() == after_create
        board.close()
        assert _shm_entries() == before

    def test_close_idempotent(self):
        board = HeartbeatBoard.create(1)
        board.close()
        board.close()


class FakeClock:
    def __init__(self):
        self.t = 1000.0

    def __call__(self):
        return self.t


class TestWatchdog:
    def make(self, n=2, interval=1.0, stall_after=3.0, tracer=None, sink=None):
        board = HeartbeatBoard.create(n)
        clock = FakeClock()
        board.arr[:, 0] = clock.t  # re-stamp slots onto the fake clock
        reg = MetricsRegistry(sink, tracer=tracer)
        exitcodes = {w: None for w in range(n)}
        wd = WorkerWatchdog(
            board,
            reg,
            lambda w: exitcodes[w],
            interval_s=interval,
            stall_after_s=stall_after,
            clock=clock,
        )
        return board, reg, wd, clock, exitcodes

    @staticmethod
    def fake_beat(board, clock, wid):
        # board.beat() stamps real time.monotonic(); these tests run the
        # watchdog on a fake clock, so stamp the slot onto that clock.
        board.arr[wid, 1] += 1
        board.arr[wid, 0] = clock.t

    def test_fresh_workers_are_live(self):
        board, reg, wd, clock, _ = self.make()
        try:
            wd.tick()
            assert wd.states == [STATE_LIVE, STATE_LIVE]
            lv = liveness_summary(reg)
            assert lv["live"] == 2 and lv["healthy"]
        finally:
            board.close()

    def test_stall_detected_after_threshold(self):
        board, reg, wd, clock, _ = self.make(stall_after=3.0)
        try:
            clock.t += 2.0
            self.fake_beat(board, clock, 0)  # worker 0 beats, worker 1 quiet
            clock.t += 2.5  # worker 1 silent for 4.5s > 3.0
            wd.tick()
            assert wd.states == [STATE_LIVE, STATE_STALLED]
            assert reg.counter("worker.heartbeat.stalls", worker=1).value == 1
            assert reg.gauge("worker.heartbeat.state", worker=1).value == (
                HEARTBEAT_STATES.index("stalled")
            )
            assert reg.gauge(
                "worker.heartbeat.age_seconds", worker=1
            ).value == pytest.approx(4.5)
            # still stalled on the next tick: the counter counts episodes,
            # not ticks
            clock.t += 1.0
            wd.tick()
            assert reg.counter("worker.heartbeat.stalls", worker=1).value == 1
        finally:
            board.close()

    def test_recovery_closes_stall_episode_with_tracer_span(self):
        tracer = Tracer()
        board, reg, wd, clock, _ = self.make(stall_after=3.0, tracer=tracer)
        try:
            clock.t += 5.0
            wd.tick()
            assert wd.states == [STATE_STALLED, STATE_STALLED]
            self.fake_beat(board, clock, 0)
            clock.t += 0.1
            wd.tick()
            assert wd.states[0] == STATE_LIVE
            spans = tracer.of_name("worker.heartbeat_stall")
            assert len(spans) == 1  # worker 0's episode closed on recovery
            assert spans[0].track == worker_track(0)
            assert spans[0].dur == pytest.approx(5.1, abs=0.01)
            # worker 1 still stalled; stop() closes its open episode
            wd.stop()
            spans = tracer.of_name("worker.heartbeat_stall")
            assert {s.track for s in spans} == {worker_track(0), worker_track(1)}
        finally:
            board.close()

    def test_dead_beats_stalled_and_finished_beats_fresh_age(self):
        board, reg, wd, clock, exitcodes = self.make(stall_after=3.0)
        try:
            clock.t += 10.0  # both heartbeat-stale
            exitcodes[0] = 1  # crashed
            exitcodes[1] = 0  # finished cleanly
            wd.tick()
            assert wd.states == [STATE_DEAD, STATE_LIVE]
            lv = liveness_summary(reg)
            assert lv["dead"] == 1 and lv["live"] == 1 and not lv["healthy"]
        finally:
            board.close()

    def test_stall_event_emitted_to_sink(self):
        sink = MemorySink()
        board, reg, wd, clock, _ = self.make(n=1, stall_after=3.0, sink=sink)
        try:
            clock.t += 5.0
            wd.tick()
            events = sink.of_type("heartbeat")
            assert events and events[0]["state"] == "stalled"
            assert events[0]["worker"] == 0
        finally:
            board.close()

    def test_interval_must_be_positive(self):
        board = HeartbeatBoard.create(1)
        try:
            with pytest.raises(ValueError):
                WorkerWatchdog(board, MetricsRegistry(), lambda w: None, interval_s=0)
        finally:
            board.close()

    def test_threaded_lifecycle(self):
        board = HeartbeatBoard.create(1)
        reg = MetricsRegistry()
        wd = WorkerWatchdog(
            board, reg, lambda w: None, interval_s=0.005, stall_after_s=60.0
        )
        try:
            wd.start()
            assert wd.running
            deadline = time.perf_counter() + 2.0
            while wd.n_ticks < 3 and time.perf_counter() < deadline:
                time.sleep(0.005)
            wd.stop()
            assert not wd.running
            assert wd.n_ticks >= 3
            assert [
                t for t in threading.enumerate() if t.name == "obs-watchdog"
            ] == []
        finally:
            board.close()


class TestProcessesIntegration:
    def test_clean_run_reports_all_live(self):
        batch = get_trace("ep")
        reg = MetricsRegistry()
        cfg = PERFECT.with_(workers=2, chunk_size=512)
        ParallelProfiler(
            cfg, mode="processes", registry=reg, heartbeat_interval=0.01
        ).profile(batch)
        lv = liveness_summary(reg)
        assert lv is not None and lv["healthy"]
        assert lv["live"] == 2 and lv["stalled"] == 0 and lv["dead"] == 0
        assert all(w["beats"] > 0 for w in lv["workers"].values())

    def test_heartbeats_disabled_leaves_no_gauges(self):
        batch = get_trace("ep")
        reg = MetricsRegistry()
        cfg = PERFECT.with_(workers=2, chunk_size=512)
        ParallelProfiler(
            cfg, mode="processes", registry=reg, heartbeat_interval=None
        ).profile(batch)
        assert liveness_summary(reg) is None

    def test_stalled_worker_flagged_live_without_hanging(self, monkeypatch):
        """The ISSUE acceptance criterion: a deliberately slow worker is
        flagged through the gauges and a tracer stall span *during* the
        run, and the run still completes (degrade-and-report, no hang)."""
        import repro.parallel.worker as worker_mod

        orig = worker_mod.Worker.process_rows

        def slow(self, batch, rows, seq=-1):
            if self.wid == 1 and seq == 0:
                time.sleep(0.6)  # one long pause >> stall_after (0.1s)
            return orig(self, batch, rows, seq=seq)

        monkeypatch.setattr(worker_mod.Worker, "process_rows", slow)
        batch = get_trace("ep")
        reg = MetricsRegistry(tracer=Tracer())
        cfg = PERFECT.with_(workers=2, chunk_size=2048)
        res, _ = ParallelProfiler(
            cfg, mode="processes", registry=reg, heartbeat_interval=0.01
        ).profile(batch)
        # The stall was observed and attributed to worker 1.
        assert reg.counter("worker.heartbeat.stalls", worker=1).value >= 1
        assert reg.counter("worker.heartbeat.stalls", worker=0).value == 0
        spans = reg.tracer.of_name("worker.heartbeat_stall")
        assert spans and all(s.track == worker_track(1) for s in spans)
        assert max(s.dur for s in spans) >= 0.1
        # ...and the run finished with correct results regardless.
        assert res.store.n_entries > 0
        lv = liveness_summary(reg)
        assert lv["stall_events"] >= 1

    def test_no_shared_memory_leak_with_heartbeats(self):
        batch = get_trace("ep")
        before = _shm_entries()
        cfg = PERFECT.with_(workers=2, chunk_size=1024)
        ParallelProfiler(
            cfg, mode="processes", heartbeat_interval=0.01
        ).profile(batch)
        assert _shm_entries() == before
