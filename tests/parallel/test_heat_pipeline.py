"""Memory-plane acceptance: heat through the full pipeline.

Three contracts from the heatmap design:

* **Exactness** — heat read/write totals equal the producer's event counts
  exactly (no sampling, no loss) in every execution mode.
* **Mode equivalence** — the processes-mode merged heatmap is bit-for-bit
  identical to the threads-mode heatmap on every bundled workload
  (rebalancing suppressed, so per-worker attribution matches the static
  partition both modes then share).
* **Attribution** — signature-conflict heat attributed to address buckets
  sums to the ``sigmem.evictions`` total: the bucket view is a lossless
  decomposition of the suspect-FP conflict count.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.obs import RunReport
from repro.obs.heatmap import HEAT_FAMILIES, heatmap_summary
from repro.obs.metrics import MetricsRegistry
from repro.parallel import ParallelProfiler
from repro.workloads import get_trace, workload_names

ALL = workload_names("nas") + workload_names("starbench") + workload_names("splash2x")


def heat_state(reg: MetricsRegistry):
    """The heat.* histograms as a comparable {(name, labels): layout} map."""
    return {
        (h.name, h.labels): (h.buckets, tuple(h.counts), h.sum, h.count)
        for h in reg.histograms()
        if h.name in HEAT_FAMILIES
    }


def run_mode(batch, mode, workers=2, **cfg_kw):
    reg = MetricsRegistry()
    prof = ParallelProfiler(
        ProfilerConfig(workers=workers, **cfg_kw),
        mode=mode,
        rebalance_threshold=float("inf"),  # static partition in every mode
        registry=reg,
    )
    res, info = prof.profile(batch)
    return reg, res, info


class TestHeatExactness:
    @pytest.mark.parametrize("name", ["rgbyuv", "is"])
    def test_processes_totals_match_producer_counts(self, name):
        batch = get_trace(name)
        reg, res, _ = run_mode(batch, "processes")
        doc = heatmap_summary(reg)
        assert doc["total_reads"] == res.stats.n_reads
        assert doc["total_writes"] == res.stats.n_writes
        # Per-worker heat counts sum to the routed per-worker access loads.
        for w, wdoc in doc["workers"].items():
            per_worker = sum(wdoc["reads"]) + sum(wdoc["writes"])
            assert per_worker == reg.counter("worker.accesses", worker=int(w)).value

    def test_deterministic_totals_match(self):
        batch = get_trace("rgbyuv")
        reg, res, _ = run_mode(batch, "deterministic", workers=4)
        doc = heatmap_summary(reg)
        assert doc["total_reads"] == res.stats.n_reads
        assert doc["total_writes"] == res.stats.n_writes

    def test_heatmap_disabled_by_config(self):
        batch = get_trace("rgbyuv")
        reg, _, _ = run_mode(batch, "deterministic", heatmap=False)
        assert heatmap_summary(reg) is None


class TestModeEquivalence:
    @pytest.mark.parametrize("name", ALL)
    def test_processes_heat_equals_threads_heat(self, name):
        batch = get_trace(name)
        reg_t, _, _ = run_mode(batch, "threads")
        reg_p, _, _ = run_mode(batch, "processes")
        state_t = heat_state(reg_t)
        state_p = heat_state(reg_p)
        assert state_t, f"{name}: no heat recorded"
        assert state_p == state_t  # bit-for-bit: counts, sums, layouts


class TestConflictAttribution:
    def test_bucket_sums_equal_eviction_total(self):
        batch = get_trace("is")
        # Reference engine + a tiny signature forces hash-conflict
        # evictions; each one must land in exactly one address bucket.
        reg, _, _ = run_mode(
            batch,
            "deterministic",
            worker_engine="reference",
            signature_slots=64,
        )
        doc = heatmap_summary(reg)
        evictions = reg.sum_counters("sigmem.evictions")
        assert evictions > 0
        assert doc["total_conflicts"] == evictions
        assert sum(doc["totals"]["conflicts"]) == evictions

    def test_occupancy_attribution_reference_engine(self):
        batch = get_trace("rgbyuv")
        reg, _, _ = run_mode(
            batch, "deterministic", worker_engine="reference", signature_slots=4096
        )
        doc = heatmap_summary(reg)
        # Occupancy recorded per worker per signature kind, bounded by slots.
        for wdoc in doc["workers"].values():
            assert set(wdoc["occupancy"]) == {"read", "write"}
            assert 0 < sum(wdoc["occupancy"]["read"]) <= 4096 // 2

    def test_occupancy_matches_tracker_occupied_vectorized(self):
        batch = get_trace("rgbyuv")
        reg, _, _ = run_mode(batch, "deterministic", workers=2)
        occ_heat = {
            (dict(h.labels)["worker"], dict(h.labels)["kind"]): h.count
            for h in reg.histograms()
            if h.name == "heat.occupancy"
        }
        # Final sampler-scraped occupancy gauges hold the same end state.
        occ_gauge = {
            (dict(g.labels)["worker"], dict(g.labels)["kind"]): int(g.value)
            for g in reg.gauges()
            if g.name == "sigmem.occupied"
        }
        assert occ_heat
        for key, n in occ_heat.items():
            assert occ_gauge[key] == n


class TestReportMemorySection:
    def test_rebalance_audit_reaches_report(self):
        batch = get_trace("is")
        reg = MetricsRegistry()
        prof = ParallelProfiler(
            ProfilerConfig(workers=4, rebalance_interval_chunks=4, chunk_size=256),
            mode="deterministic",
            rebalance_threshold=1.05,
            registry=reg,
        )
        res, info = prof.profile(batch)
        assert info.rebalance_audit, "expected at least one audited round"
        moved = sum(a["n_moves"] for a in info.rebalance_audit)
        assert moved == info.addresses_migrated
        for entry in info.rebalance_audit:
            assert entry["imbalance_before"] >= 1.0
            assert entry["imbalance_after"] >= 1.0
            assert len(entry["moves"]) == entry["n_moves"]
        report = RunReport.build(reg, res, info, workload="is")
        mem = report.to_dict()["memory"]
        assert mem["rebalance_audit"] == info.rebalance_audit
        assert mem["heatmap"]["total_reads"] == res.stats.n_reads
        assert "main" in mem["peak_rss_bytes"]
        assert mem["peak_rss_bytes"]["main"] > 0
        rendered = report.render()
        assert "heat:" in rendered
        assert "rebalance audit:" in rendered
        assert "peak rss:" in rendered

    def test_processes_report_has_per_worker_rss(self):
        batch = get_trace("rgbyuv")
        reg, res, info = run_mode(batch, "processes")
        report = RunReport.build(reg, res, info, workload="rgbyuv")
        rss = report.to_dict()["memory"]["peak_rss_bytes"]
        assert set(rss) == {"main", "0", "1"}
        assert all(v > 10 * (1 << 20) for v in rss.values())
