"""Tests for the lock-free SPSC ring and the locked queue, including a real
two-thread stress test of the lock-free algorithm."""

import threading

import pytest

from repro.common.errors import QueueClosedError
from repro.obs import MetricsRegistry
from repro.parallel.queues import LockedQueue, SpscRingQueue


@pytest.fixture(params=[SpscRingQueue, LockedQueue], ids=["lockfree", "locked"])
def queue_cls(request):
    return request.param


class TestQueueProtocol:
    def test_fifo_order(self, queue_cls):
        q = queue_cls(8)
        for i in range(5):
            assert q.try_push(i)
        out = []
        while True:
            ok, v = q.try_pop()
            if not ok:
                break
            out.append(v)
        assert out == [0, 1, 2, 3, 4]

    def test_pop_empty(self, queue_cls):
        ok, v = queue_cls(4).try_pop()
        assert not ok and v is None

    def test_push_full_fails_without_losing_items(self, queue_cls):
        q = queue_cls(2)
        pushed = 0
        while q.try_push(pushed):
            pushed += 1
        assert pushed >= 2
        assert not q.try_push(99)
        assert q.push_fail_count >= 1
        got = 0
        while q.try_pop()[0]:
            got += 1
        assert got == pushed

    def test_close_then_push_raises(self, queue_cls):
        q = queue_cls(4)
        q.close()
        with pytest.raises(QueueClosedError):
            q.try_push(1)

    def test_drained_semantics(self, queue_cls):
        q = queue_cls(4)
        q.try_push(1)
        q.close()
        assert not q.drained  # closed but still has an item
        q.try_pop()
        assert q.drained

    def test_capacity_positive_required(self, queue_cls):
        with pytest.raises(ValueError):
            queue_cls(0)

    def test_wraparound_many_times(self, queue_cls):
        q = queue_cls(4)
        for i in range(1000):
            assert q.try_push(i)
            ok, v = q.try_pop()
            assert ok and v == i

    def test_wraparound_under_full_ring(self, queue_cls):
        """Keep the queue saturated while draining: cursors wrap the ring
        many times over with the ring at (or near) capacity throughout."""
        q = queue_cls(4)
        cap = q.capacity
        next_in = 0
        while q.try_push(next_in):
            next_in += 1
        assert next_in == cap
        expected = 0
        for _ in range(25 * cap):
            ok, v = q.try_pop()
            assert ok and v == expected
            expected += 1
            assert q.try_push(next_in)  # one slot just freed
            next_in += 1
            assert not q.try_push(-1)  # and it is full again
        # Drain the remainder in order.
        while True:
            ok, v = q.try_pop()
            if not ok:
                break
            assert v == expected
            expected += 1
        assert expected == next_in

    def test_fail_counters_count_every_failed_attempt(self, queue_cls):
        q = queue_cls(2)
        assert q.push_fail_count == 0 and q.pop_fail_count == 0
        while q.try_push(0):
            pass
        cap = q.capacity
        for _ in range(3):
            assert not q.try_push(1)
        assert q.push_fail_count == 1 + 3  # saturating probe + 3 explicit
        for _ in range(cap):
            assert q.try_pop()[0]
        for _ in range(5):
            assert not q.try_pop()[0]
        assert q.pop_fail_count == 5
        # Successful operations never bump the failure counters.
        assert q.try_push(7) and q.try_pop() == (True, 7)
        assert q.push_fail_count == 4 and q.pop_fail_count == 5

    def test_registry_counters_are_shared_source_of_truth(self, queue_cls):
        """Queues wired to registry counters report stalls there, and the
        legacy ``*_fail_count`` attributes read through to the same values."""
        reg = MetricsRegistry()
        q = queue_cls(
            2,
            push_stalls=reg.counter("queue.push_stalls", worker=0),
            pop_stalls=reg.counter("queue.pop_stalls", worker=0),
        )
        while q.try_push(0):
            pass
        assert not q.try_push(1)
        while q.try_pop()[0]:
            pass
        assert q.push_fail_count == reg.counter("queue.push_stalls", worker=0).value
        assert q.pop_fail_count == reg.counter("queue.pop_stalls", worker=0).value
        assert q.push_fail_count == 2 and q.pop_fail_count == 1


class TestSpscSpecific:
    def test_capacity_rounded_to_power_of_two(self):
        assert SpscRingQueue(5).capacity == 8
        assert SpscRingQueue(8).capacity == 8

    def test_len_tracks_in_flight(self):
        q = SpscRingQueue(8)
        q.try_push(1)
        q.try_push(2)
        assert len(q) == 2
        q.try_pop()
        assert len(q) == 1

    def test_pop_clears_slot_reference(self):
        q = SpscRingQueue(2)
        obj = object()
        q.try_push(obj)
        q.try_pop()
        assert all(s is None for s in q._slots)

    @pytest.mark.parametrize("n_items", [10_000])
    def test_two_thread_stress_no_loss_no_dup_in_order(self, n_items):
        """Real producer/consumer threads hammer the ring: every item must
        arrive exactly once, in order, with no locks anywhere."""
        q = SpscRingQueue(16)
        received = []

        def producer():
            i = 0
            while i < n_items:
                if q.try_push(i):
                    i += 1
            q.close()

        def consumer():
            while True:
                ok, v = q.try_pop()
                if ok:
                    received.append(v)
                elif q.drained:
                    return

        threads = [threading.Thread(target=producer), threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert received == list(range(n_items))


class TestPipelineDrainPaths:
    """Whole-pipeline runs sized so the rings wrap around many times and hit
    full-ring backpressure, under each consumer drain path."""

    def _batch(self):
        from repro.workloads import get_trace

        return get_trace("ep")

    def _tiny_cfg(self):
        from repro.common.config import ProfilerConfig

        # 22k events / (chunk_size 64 * depth 2) -> hundreds of wraps per ring.
        return ProfilerConfig(
            perfect_signature=True, workers=2, chunk_size=64, queue_depth=2
        )

    def test_threads_mode_wraparound_and_backpressure(self):
        from repro.core import profile_trace
        from repro.parallel import ParallelProfiler

        batch = self._batch()
        cfg = self._tiny_cfg()
        reg = MetricsRegistry()
        par, info = ParallelProfiler(cfg, mode="threads", registry=reg).profile(batch)
        seq = profile_trace(batch, cfg.with_(workers=1), "reference")
        assert par.store == seq.store
        # The ring held at most queue_depth chunks but carried hundreds.
        assert info.n_chunks > 10 * cfg.queue_depth * cfg.workers

    def test_deterministic_inline_drain_same_counters(self):
        from repro.parallel import ParallelProfiler

        batch = self._batch()
        cfg = self._tiny_cfg()
        det, di = ParallelProfiler(cfg, mode="deterministic").profile(batch)
        thr, ti = ParallelProfiler(cfg, mode="threads").profile(batch)
        assert det.store == thr.store
        assert di.n_chunks == ti.n_chunks
        assert di.per_worker_accesses == ti.per_worker_accesses
        # Inline drain means the full producer stream hit backpressure at
        # least once with a 2-deep ring.
        assert di.push_stalls > 0

    def test_processes_mode_drain_same_result(self):
        from repro.parallel import ParallelProfiler

        batch = self._batch()
        cfg = self._tiny_cfg()
        det, di = ParallelProfiler(cfg, mode="deterministic").profile(batch)
        prc, pi = ParallelProfiler(cfg, mode="processes", window=1 << 11).profile(batch)
        assert prc.store == det.store
        assert pi.per_worker_accesses == di.per_worker_accesses
