"""End-to-end tests of the parallel pipeline: equivalence with the
sequential engines, load balancing in action, both queue types, and real
threaded execution."""

import pytest
from hypothesis import given, settings

from repro.common.config import ProfilerConfig
from repro.core import DependenceProfiler, profile_trace
from repro.parallel import ParallelProfiler
from tests.core.test_engine_equivalence import random_ops
from tests.trace_helpers import seq_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def small_trace(n_addr=32, rounds=4):
    ops = []
    for r in range(rounds):
        for i in range(n_addr):
            a = 0x1000 + 8 * i
            ops.append(("w", a, 10 + i % 7, "x"))
            ops.append(("r", a, 20 + i % 5, "x"))
    return seq_trace(ops)


class TestEquivalenceWithSequential:
    @pytest.mark.parametrize("workers", [1, 2, 3, 8])
    def test_perfect_mode_matches_sequential(self, workers):
        batch = small_trace()
        seq = profile_trace(batch, PERFECT, "reference")
        par, info = ParallelProfiler(PERFECT.with_(workers=workers)).profile(batch)
        assert par.store == seq.store
        assert par.stats.dep_instances == seq.stats.dep_instances
        assert sum(info.per_worker_accesses) == seq.stats.n_accesses

    @pytest.mark.parametrize("lock_free", [True, False])
    def test_both_queue_kinds_same_result(self, lock_free):
        batch = small_trace()
        cfg = PERFECT.with_(workers=4, lock_free_queues=lock_free, chunk_size=16)
        par, info = ParallelProfiler(cfg).profile(batch)
        seq = profile_trace(batch, PERFECT, "reference")
        assert par.store == seq.store
        if not lock_free:
            assert info.lock_ops > 0

    def test_loops_and_lifetime_survive_distribution(self):
        """Loop-carried classification and FREE handling need the broadcast
        rows; with them, any worker count gives sequential results."""
        ops = [("L+", 10)]
        for it in range(6):
            ops += [("Li", 10)]
            for i in range(8):
                a = 0x1000 + 8 * i
                ops += [("r", a, 11, "s"), ("w", a, 12, "s")]
        ops += [("L-", 10), ("free", 0x1000, 64, 13)]
        ops += [("w", 0x1000, 14, "z")]
        batch = seq_trace(ops)
        seq = profile_trace(batch, PERFECT, "reference")
        par, _ = ParallelProfiler(PERFECT.with_(workers=3, chunk_size=8)).profile(batch)
        assert par.store == seq.store

    @settings(max_examples=25, deadline=None)
    @given(ops=random_ops())
    def test_property_equivalence_random_traces(self, ops):
        batch = seq_trace(ops)
        seq = DependenceProfiler(PERFECT, "reference").profile(batch)
        par, _ = ParallelProfiler(
            PERFECT.with_(workers=3, chunk_size=4, queue_depth=2)
        ).profile(batch)
        assert par.store == seq.store

    def test_signature_mode_runs_and_approximates(self):
        batch = small_trace()
        cfg = ProfilerConfig(signature_slots=1 << 18, workers=4)
        par, _ = ParallelProfiler(cfg).profile(batch)
        seq = profile_trace(batch, PERFECT, "reference")
        # Large per-worker signatures: no collisions expected at this scale.
        assert par.store == seq.store


class TestThreadedMode:
    @pytest.mark.parametrize("lock_free", [True, False])
    def test_real_threads_match_sequential(self, lock_free):
        batch = small_trace(n_addr=64, rounds=6)
        cfg = PERFECT.with_(
            workers=4, chunk_size=32, queue_depth=4, lock_free_queues=lock_free
        )
        par, info = ParallelProfiler(cfg, mode="threads").profile(batch)
        seq = profile_trace(batch, PERFECT, "reference")
        assert par.store == seq.store
        assert sum(info.per_worker_accesses) == seq.stats.n_accesses


class TestLoadBalancing:
    def make_skewed_trace(self, hot_rounds=600):
        """A few addresses soak up most accesses, all landing on worker 0."""
        ops = []
        for r in range(hot_rounds):
            for hot in (0x1000, 0x1000 + 32, 0x1000 + 64):  # all ≡ 0 mod 4*8
                ops.append(("w", hot, 5, "h"))
                ops.append(("r", hot, 6, "h"))
        for i in range(64):
            ops.append(("w", 0x9000 + 8 * i, 7, "c"))
        return seq_trace(ops)

    def test_rebalancing_triggers_and_improves_balance(self):
        batch = self.make_skewed_trace()
        cfg = PERFECT.with_(
            workers=4, chunk_size=8, rebalance_interval_chunks=20, hot_addresses=10
        )
        balanced, info = ParallelProfiler(cfg, window=256).profile(batch)
        assert info.rebalance_rounds >= 1
        assert info.addresses_migrated >= 1
        # Compare with rebalancing effectively disabled:
        cfg_off = cfg.with_(rebalance_interval_chunks=10**9)
        _, info_off = ParallelProfiler(cfg_off, window=256).profile(batch)
        assert info.access_imbalance < info_off.access_imbalance

    def test_rebalanced_results_still_exact(self):
        batch = self.make_skewed_trace(hot_rounds=200)
        cfg = PERFECT.with_(
            workers=4, chunk_size=8, rebalance_interval_chunks=10, hot_addresses=10
        )
        par, info = ParallelProfiler(cfg, window=256).profile(batch)
        assert info.rebalance_rounds >= 1
        seq = profile_trace(batch, PERFECT, "reference")
        assert par.store == seq.store  # migration preserved per-address state


class TestRunInfo:
    def test_chunk_accounting(self):
        batch = small_trace()
        cfg = PERFECT.with_(workers=2, chunk_size=16)
        _, info = ParallelProfiler(cfg).profile(batch)
        assert info.n_chunks >= batch.n_accesses // 16 // 2
        assert info.chunks_allocated >= 2
        assert info.queue_memory_bytes == info.chunks_allocated * 16 * 8
        assert len(info.per_worker_accesses) == 2

    def test_imbalance_metric(self):
        from repro.parallel import ParallelRunInfo

        info = ParallelRunInfo(per_worker_accesses=[100, 300])
        assert info.access_imbalance == 1.5
        assert ParallelRunInfo().access_imbalance == 1.0

    def test_unknown_mode_rejected(self):
        from repro.common.errors import ProfilerError

        with pytest.raises(ProfilerError):
            ParallelProfiler(PERFECT, mode="gpu")
