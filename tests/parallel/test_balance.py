"""Tests for access statistics and the hot-address rebalancer."""

import numpy as np

from repro.parallel.address_map import AddressMap
from repro.parallel.balance import COUNT_SATURATION, AccessStats, Rebalancer


def stats_from(counts: dict[int, int]) -> AccessStats:
    s = AccessStats()
    for addr, c in counts.items():
        s.record_many(np.full(c, addr, dtype=np.int64))
    return s


class TestAccessStats:
    def test_record_many_counts(self):
        s = AccessStats()
        s.record_many(np.array([8, 8, 16, 8], dtype=np.int64))
        assert s.count_of(8) == 3
        assert s.count_of(16) == 1
        assert s.total == 4
        assert s.n_addresses == 2

    def test_record_scalar(self):
        s = AccessStats()
        s.record(8)
        s.record(8)
        assert s.count_of(8) == 2

    def test_hottest_ordering_deterministic(self):
        s = stats_from({8: 5, 16: 5, 24: 9})
        hot = s.hottest(3)
        assert hot == [(24, 9), (8, 5), (16, 5)]  # count desc, addr asc ties

    def test_hottest_with_fewer_addresses(self):
        s = stats_from({8: 1})
        assert s.hottest(10) == [(8, 1)]

    def test_hottest_nonpositive_k(self):
        s = stats_from({8: 1})
        assert s.hottest(0) == []
        assert s.hottest(-3) == []

    def test_hottest_tie_break_across_many_ties(self):
        # Regression: the old overfetch-through-most_common path resolved
        # count ties in insertion order and could drop the tied address
        # with the smallest id.  Insert descending so insertion order is
        # the worst case for the (count desc, addr asc) contract.
        s = AccessStats()
        for addr in range(80, 0, -8):  # 80, 72, ..., 8 — all count 1
            s.record(addr)
        assert s.hottest(1) == [(8, 1)]
        assert s.hottest(3) == [(8, 1), (16, 1), (24, 1)]

    def test_counts_saturate_instead_of_wrapping(self):
        # Synthetic 1e8-event replays must pin at int64-max, never wrap
        # negative (which would sort the hottest address *last*).
        s = AccessStats()
        s._counts[8] = COUNT_SATURATION - 2
        s.total = COUNT_SATURATION - 2
        s.record_many(np.full(5, 8, dtype=np.int64))
        assert s.count_of(8) == COUNT_SATURATION
        assert s.total == COUNT_SATURATION
        s.record(8)
        assert s.count_of(8) == COUNT_SATURATION
        assert s.hottest(1) == [(8, COUNT_SATURATION)]


class TestRebalancer:
    def test_imbalance_detected(self):
        # Elements 0, 4, 8, 12 (stride 32 bytes): all home to worker 0 of 4.
        amap = AddressMap(4)
        s = stats_from({0: 1000, 32: 1000, 64: 1000, 96: 1000})
        r = Rebalancer(amap, hot_addresses=4)
        assert r.imbalance(s) == 4.0

    def test_rebalance_spreads_hot_addresses(self):
        amap = AddressMap(4)
        s = stats_from({0: 1000, 32: 1000, 64: 1000, 96: 1000})
        r = Rebalancer(amap, hot_addresses=4)
        decision = r.rebalance(s)
        assert decision.n_moves == 3  # one can stay home
        workers = {amap.worker_of(a) for a in (0, 32, 64, 96)}
        assert workers == {0, 1, 2, 3}
        assert abs(r.imbalance(s) - 1.0) < 1e-9

    def test_rebalance_is_minimal_when_balanced(self):
        amap = AddressMap(4)
        s = stats_from({0: 100, 8: 100, 16: 100, 24: 100})  # already spread
        r = Rebalancer(amap, hot_addresses=4)
        assert r.rebalance(s).n_moves == 0

    def test_skewed_counts_use_lpt_greedy(self):
        """One very hot address alone on a worker; others packed elsewhere."""
        amap = AddressMap(2)
        s = stats_from({0: 1000, 2: 10, 4: 10, 6: 10})  # all on worker 0
        r = Rebalancer(amap, hot_addresses=4)
        r.rebalance(s)
        hot_worker = amap.worker_of(0)
        others = {amap.worker_of(a) for a in (2, 4, 6)}
        assert others == {1 - hot_worker}

    def test_counters_accumulate(self):
        amap = AddressMap(2)
        s = stats_from({0: 10, 2: 10})
        r = Rebalancer(amap, hot_addresses=2)
        r.rebalance(s)
        r.rebalance(s)
        assert r.rounds == 2

    def test_empty_stats_noop(self):
        r = Rebalancer(AddressMap(2))
        assert r.rebalance(AccessStats()).n_moves == 0
        assert r.imbalance(AccessStats()) == 1.0


class TestRebalanceAudit:
    def test_audit_records_every_round(self):
        amap = AddressMap(4)
        s = stats_from({0: 1000, 32: 1000, 64: 1000, 96: 1000})
        r = Rebalancer(amap, hot_addresses=4)
        r.rebalance(s)  # moves 3
        r.rebalance(s)  # already balanced: 0 moves, still audited
        assert len(r.audit) == 2
        first, second = r.audit
        assert first["round"] == 1 and second["round"] == 2
        assert first["n_moves"] == 3 and second["n_moves"] == 0

    def test_audit_imbalance_before_after(self):
        amap = AddressMap(4)
        s = stats_from({0: 1000, 32: 1000, 64: 1000, 96: 1000})
        r = Rebalancer(amap, hot_addresses=4)
        r.rebalance(s)
        entry = r.audit[0]
        assert entry["imbalance_before"] == 4.0
        assert abs(entry["imbalance_after"] - 1.0) < 1e-9
        assert sum(entry["hot_load_before"]) == sum(entry["hot_load_after"]) == 4000
        assert entry["hot_load_before"] == [4000, 0, 0, 0]

    def test_audit_lists_migrated_addresses(self):
        amap = AddressMap(4)
        s = stats_from({0: 1000, 32: 1000, 64: 1000, 96: 1000})
        r = Rebalancer(amap, hot_addresses=4)
        decision = r.rebalance(s)
        moves = r.audit[0]["moves"]
        assert len(moves) == decision.n_moves
        assert {m["addr"] for m in moves} == {a for a, _, _ in decision.moves}
        for m, (addr, old, new) in zip(moves, decision.moves):
            assert m == {"addr": addr, "from": old, "to": new}

    def test_audit_on_empty_round(self):
        r = Rebalancer(AddressMap(2))
        r.rebalance(AccessStats())
        assert r.audit == [
            {
                "round": 1,
                "n_moves": 0,
                "moves": [],
                "n_bank_moves": 0,
                "bank_moves": [],
                "imbalance_before": 1.0,
                "imbalance_after": 1.0,
                "hot_load_before": [],
                "hot_load_after": [],
            }
        ]

    def test_rebalance_event_carries_before_after(self):
        from repro.obs import MemorySink
        from repro.obs.metrics import MetricsRegistry

        sink = MemorySink()
        reg = MetricsRegistry(sink=sink)
        amap = AddressMap(4)
        s = stats_from({0: 1000, 32: 1000, 64: 1000, 96: 1000})
        Rebalancer(amap, hot_addresses=4, registry=reg).rebalance(s)
        events = [e for e in sink.events if e["type"] == "rebalance"]
        assert len(events) == 1
        ev = events[0]
        assert ev["imbalance_before"] == 4.0
        assert abs(ev["imbalance_after"] - 1.0) < 1e-9
        assert ev["imbalance"] == ev["imbalance_after"]  # legacy key kept
        assert sum(ev["hot_load"]) == 4000
