"""Tests for access statistics and the hot-address rebalancer."""

import numpy as np

from repro.parallel.address_map import AddressMap
from repro.parallel.balance import AccessStats, Rebalancer


def stats_from(counts: dict[int, int]) -> AccessStats:
    s = AccessStats()
    for addr, c in counts.items():
        s.record_many(np.full(c, addr, dtype=np.int64))
    return s


class TestAccessStats:
    def test_record_many_counts(self):
        s = AccessStats()
        s.record_many(np.array([8, 8, 16, 8], dtype=np.int64))
        assert s.count_of(8) == 3
        assert s.count_of(16) == 1
        assert s.total == 4
        assert s.n_addresses == 2

    def test_record_scalar(self):
        s = AccessStats()
        s.record(8)
        s.record(8)
        assert s.count_of(8) == 2

    def test_hottest_ordering_deterministic(self):
        s = stats_from({8: 5, 16: 5, 24: 9})
        hot = s.hottest(3)
        assert hot == [(24, 9), (8, 5), (16, 5)]  # count desc, addr asc ties

    def test_hottest_with_fewer_addresses(self):
        s = stats_from({8: 1})
        assert s.hottest(10) == [(8, 1)]


class TestRebalancer:
    def test_imbalance_detected(self):
        # Elements 0, 4, 8, 12 (stride 32 bytes): all home to worker 0 of 4.
        amap = AddressMap(4)
        s = stats_from({0: 1000, 32: 1000, 64: 1000, 96: 1000})
        r = Rebalancer(amap, hot_addresses=4)
        assert r.imbalance(s) == 4.0

    def test_rebalance_spreads_hot_addresses(self):
        amap = AddressMap(4)
        s = stats_from({0: 1000, 32: 1000, 64: 1000, 96: 1000})
        r = Rebalancer(amap, hot_addresses=4)
        decision = r.rebalance(s)
        assert decision.n_moves == 3  # one can stay home
        workers = {amap.worker_of(a) for a in (0, 32, 64, 96)}
        assert workers == {0, 1, 2, 3}
        assert abs(r.imbalance(s) - 1.0) < 1e-9

    def test_rebalance_is_minimal_when_balanced(self):
        amap = AddressMap(4)
        s = stats_from({0: 100, 8: 100, 16: 100, 24: 100})  # already spread
        r = Rebalancer(amap, hot_addresses=4)
        assert r.rebalance(s).n_moves == 0

    def test_skewed_counts_use_lpt_greedy(self):
        """One very hot address alone on a worker; others packed elsewhere."""
        amap = AddressMap(2)
        s = stats_from({0: 1000, 2: 10, 4: 10, 6: 10})  # all on worker 0
        r = Rebalancer(amap, hot_addresses=4)
        r.rebalance(s)
        hot_worker = amap.worker_of(0)
        others = {amap.worker_of(a) for a in (2, 4, 6)}
        assert others == {1 - hot_worker}

    def test_counters_accumulate(self):
        amap = AddressMap(2)
        s = stats_from({0: 10, 2: 10})
        r = Rebalancer(amap, hot_addresses=2)
        r.rebalance(s)
        r.rebalance(s)
        assert r.rounds == 2

    def test_empty_stats_noop(self):
        r = Rebalancer(AddressMap(2))
        assert r.rebalance(AccessStats()).n_moves == 0
        assert r.imbalance(AccessStats()) == 1.0
