"""Differential test: vectorized vs reference worker kernels.

The pipeline's default per-chunk engine is the incremental array kernel
(:class:`~repro.core.vectorized.ChunkKernel`); the event-at-a-time
:class:`~repro.core.reference.ReferenceEngine` is kept as the oracle.  The
two must produce byte-identical dependence stores — merged entries *and*
per-type instance counts — on every MiniVM example program, for both the
perfect and the lossy array signature.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.common.errors import ProfilerError
from repro.parallel import ParallelProfiler
from repro.workloads import get_trace, get_workload, workload_names

ALL_WORKLOADS = [
    name
    for suite in ("nas", "starbench", "splash2x")
    for name in workload_names(suite)
]

PERFECT = ProfilerConfig(perfect_signature=True, workers=2, chunk_size=2048)


def _run(batch, cfg):
    result, _ = ParallelProfiler(cfg).profile(batch)
    return result


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_vectorized_matches_reference_all_programs(name):
    batch = get_trace(name, scale=1)
    vec = _run(batch, PERFECT.with_(worker_engine="vectorized"))
    ref = _run(batch, PERFECT.with_(worker_engine="reference"))
    assert vec.store == ref.store
    assert vec.stats.dep_instances == ref.stats.dep_instances
    assert vec.stats.n_accesses == ref.stats.n_accesses


@pytest.mark.parametrize("name", ["ep", "kmeans", "md5"])
def test_vectorized_matches_reference_array_signature(name):
    """Same equivalence with the conflating fixed-size signature: the slot
    planes must reproduce the array signature's collisions exactly."""
    batch = get_trace(name, scale=1)
    cfg = ProfilerConfig(signature_slots=1 << 12, workers=2, chunk_size=1024)
    vec = _run(batch, cfg.with_(worker_engine="vectorized"))
    ref = _run(batch, cfg.with_(worker_engine="reference"))
    assert vec.store == ref.store
    assert vec.stats.dep_instances == ref.stats.dep_instances


@pytest.mark.parametrize("name", ["md5", "rgbyuv"])
def test_vectorized_matches_reference_parallel_variant(name):
    """Multi-threaded target traces: thread ids and race flags must agree."""
    assert get_workload(name).has_parallel_variant
    batch = get_trace(name, variant="par", scale=1, threads=3)
    cfg = PERFECT.with_(multithreaded_target=True)
    vec = _run(batch, cfg.with_(worker_engine="vectorized"))
    ref = _run(batch, cfg.with_(worker_engine="reference"))
    assert vec.store == ref.store
    assert vec.stats.dep_instances == ref.stats.dep_instances


def test_unknown_worker_engine_rejected():
    with pytest.raises(ProfilerError):
        ProfilerConfig(worker_engine="quantum")


def test_provenance_pins_reference_engine():
    """Per-instance provenance cannot be attributed by the batch kernel, so
    requesting it silently selects the reference engine."""
    from repro.obs.provenance import ProvenanceCollector
    from repro.parallel.worker import Worker

    cfg = PERFECT.with_(worker_engine="vectorized")
    w = Worker(0, cfg, provenance=ProvenanceCollector(worker=0))
    assert w.engine_kind == "reference"
    w2 = Worker(0, cfg)
    assert w2.engine_kind == "vectorized"
