"""Stress/property tests for the real-thread pipeline mode.

The deterministic mode is exhaustively property-tested elsewhere; these
runs put actual ``threading.Thread`` consumers behind the lock-free rings
(and the locked rings) on randomized traces and demand bit-equal results
with the sequential reference — the strongest correctness statement we can
make about the concurrent architecture under the GIL's memory model.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.common.config import ProfilerConfig
from repro.core import profile_trace
from repro.parallel import ParallelProfiler
from tests.core.test_engine_equivalence import random_ops
from tests.trace_helpers import seq_trace

PERFECT = ProfilerConfig(perfect_signature=True)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=random_ops())
def test_threaded_pipeline_equals_sequential(ops):
    batch = seq_trace(ops)
    seq = profile_trace(batch, PERFECT, "reference")
    cfg = PERFECT.with_(workers=3, chunk_size=4, queue_depth=2)
    par, info = ParallelProfiler(cfg, mode="threads").profile(batch)
    assert par.store == seq.store
    assert sum(info.per_worker_accesses) == seq.stats.n_accesses


@pytest.mark.parametrize("lock_free", [True, False])
def test_threaded_pipeline_with_rebalancing(lock_free):
    """Rebalancing quiesces live worker threads before migrating state."""
    ops = []
    hot = [0x1000 + 0x100 * k for k in range(4)]  # same home worker
    for _ in range(400):
        for a in hot:
            ops.append(("w", a, 5, "h"))
            ops.append(("r", a, 6, "h"))
    batch = seq_trace(ops)
    cfg = PERFECT.with_(
        workers=4,
        chunk_size=16,
        queue_depth=2,
        lock_free_queues=lock_free,
        rebalance_interval_chunks=4,
    )
    par, info = ParallelProfiler(cfg, mode="threads", window=512).profile(batch)
    seq = profile_trace(batch, PERFECT, "reference")
    assert par.store == seq.store
    assert info.rebalance_rounds >= 1


def test_threaded_pipeline_large_trace():
    from repro.workloads import get_trace

    batch = get_trace("tinyjpeg")
    cfg = PERFECT.with_(workers=8, chunk_size=128)
    par, _ = ParallelProfiler(cfg, mode="threads").profile(batch)
    seq = profile_trace(batch, PERFECT, "vectorized")
    assert par.store == seq.store
