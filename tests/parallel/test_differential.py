"""Differential suites: rebalancing and execution modes must not change deps.

Bank-granularity migration moves live signature state between workers
mid-run; the whole point of shipping the banks *with* the routing rules is
that the reported dependence set stays exactly what the run without any
rebalancing reports.  Same for the execution modes: threads and processes
partition work differently but must agree dependence-for-dependence.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.parallel.engine import ParallelProfiler
from repro.workloads import get_trace

WORKLOADS = ["ep", "lu", "water-spatial"]


def profile_set(batch, cfg, mode="deterministic", threshold=float("inf")):
    prof = ParallelProfiler(cfg, mode=mode, rebalance_threshold=threshold)
    result, info = prof.profile(batch)
    return result.store.as_set(), info


class TestRebalancingDifferential:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_bank_rebalancing_preserves_deps(self, name):
        batch = get_trace(name)
        cfg = ProfilerConfig(
            workers=4,
            perfect_signature=True,
            signature_banks=8,
            chunk_size=256,
            rebalance_interval_chunks=4,
        )
        off, _ = profile_set(batch, cfg, threshold=float("inf"))
        on, info = profile_set(batch, cfg, threshold=1.0)
        assert on == off
        # the aggressive threshold must actually have exercised migration
        # on at least one of the workloads; asserted per-run where it fires
        if info.rebalance_rounds:
            assert info.banks_migrated >= 0

    def test_bank_migration_fires_on_skewed_trace(self):
        # ep hammers a tiny address set, so a threshold of 1.0 must trigger
        # bank moves (everything homes to few banks under modulo routing).
        batch = get_trace("ep")
        cfg = ProfilerConfig(
            workers=4,
            perfect_signature=True,
            signature_banks=8,
            chunk_size=256,
            rebalance_interval_chunks=4,
        )
        on, info = profile_set(batch, cfg, threshold=1.0)
        assert info.rebalance_rounds >= 1
        assert info.banks_migrated >= 1

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_lossy_signature_rebalancing_matches_unrebalanced(self, name):
        # Same comparison under the lossy array-signature path: both runs
        # share one geometry/salt, so conflation is identical and the dep
        # sets must still agree exactly.
        batch = get_trace(name)
        cfg = ProfilerConfig(
            workers=4,
            signature_slots=4096,
            signature_banks=8,
            worker_engine="reference",
            chunk_size=256,
            rebalance_interval_chunks=4,
        )
        off, _ = profile_set(batch, cfg, threshold=float("inf"))
        on, _ = profile_set(batch, cfg, threshold=1.0)
        assert on == off


class TestModeDifferential:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_threads_equals_processes_with_banks(self, name):
        batch = get_trace(name)
        cfg = ProfilerConfig(
            workers=2, perfect_signature=True, signature_banks=8
        )
        t, _ = profile_set(batch, cfg, mode="threads")
        p, _ = profile_set(batch, cfg, mode="processes")
        assert t == p

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_deterministic_equals_threads_with_banks(self, name):
        batch = get_trace(name)
        cfg = ProfilerConfig(
            workers=2, perfect_signature=True, signature_banks=8
        )
        d, _ = profile_set(batch, cfg, mode="deterministic")
        t, _ = profile_set(batch, cfg, mode="threads")
        assert d == t


class TestFastPathModeDifferential:
    """Traces produced off the vectorized fast path must profile to the
    exact dependence set of interpreter traces — in every execution mode,
    so group-scheduled emission can never skew the parallel pipeline."""

    def _traces(self, name):
        from repro.minivm import run_program
        from repro.workloads import get_workload

        wl = get_workload(name)
        program, _meta = wl.build_seq(wl.default_scale)
        return (
            run_program(program, fastpath=True),
            run_program(program, fastpath=False),
        )

    @pytest.mark.parametrize("name", ["cg", "is"])
    @pytest.mark.parametrize("mode", ["deterministic", "threads", "processes"])
    def test_dependence_sets_equal(self, name, mode):
        fast, slow = self._traces(name)
        cfg = ProfilerConfig(workers=2, perfect_signature=True, chunk_size=512)
        from_fast, _ = profile_set(fast, cfg, mode=mode)
        from_slow, _ = profile_set(slow, cfg, mode=mode)
        assert from_fast == from_slow
