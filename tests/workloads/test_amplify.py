"""Trace amplifier: tiling invariants and dependence-set ground truth."""

import numpy as np
import pytest

from repro.common.config import ProfilerConfig
from repro.common.errors import WorkloadError
from repro.parallel.engine import ParallelProfiler
from repro.trace import LOOP_ENTER, LOOP_EXIT, LOOP_ITER, READ, WRITE
from repro.trace.spill import SpilledTraceBatch
from repro.workloads import (
    amplify_batch,
    amplify_to_spill,
    clear_trace_cache,
    get_trace,
    get_workload,
    strip_loops,
)

BASE = "ft"  # smallest NAS analog with loops and real dependences


def base_trace():
    return get_trace(BASE)


class TestTiling:
    def test_length_and_unique_scale_linearly(self):
        base = base_trace()
        amp = amplify_batch(base, 4)
        assert len(amp) == 4 * len(base)
        assert amp.n_unique_addresses == 4 * base.n_unique_addresses

    def test_tiles_are_address_disjoint(self):
        base = base_trace()
        amp = amplify_batch(base, 3)
        n = len(base)
        kind = np.asarray(amp.kind)
        addr = np.asarray(amp.addr)
        acc = (kind == READ) | (kind == WRITE)
        tiles = [set(addr[i * n : (i + 1) * n][acc[i * n : (i + 1) * n]]) for i in range(3)]
        assert not (tiles[0] & tiles[1])
        assert not (tiles[1] & tiles[2])

    def test_loop_sites_not_shifted(self):
        base = base_trace()
        amp = amplify_batch(base, 2)
        n = len(base)
        kind = np.asarray(amp.kind)
        addr = np.asarray(amp.addr)
        loops = (kind == LOOP_ENTER) | (kind == LOOP_ITER) | (kind == LOOP_EXIT)
        assert loops.any()  # the base really has loop markers
        assert np.array_equal(addr[:n][loops[:n]], addr[n:][loops[n:]])

    def test_timestamps_globally_monotone(self):
        amp = amplify_batch(base_trace(), 3)
        ts = np.asarray(amp.ts)
        assert (np.diff(ts) >= 0).all()

    def test_factor_one_keeps_batch(self):
        base = base_trace()
        assert amplify_batch(base, 1) is base

    def test_factor_must_be_positive(self):
        with pytest.raises(WorkloadError):
            amplify_batch(base_trace(), 0)

    def test_strip_loops_removes_only_markers(self):
        base = base_trace()
        stripped = strip_loops(base)
        kind = np.asarray(stripped.kind)
        assert not ((kind == LOOP_ENTER) | (kind == LOOP_ITER) | (kind == LOOP_EXIT)).any()
        assert (kind == READ).sum() == (np.asarray(base.kind) == READ).sum()


class TestGroundTruth:
    def test_amplified_deps_equal_base_deps(self):
        base = base_trace()
        amp = amplify_batch(base, 4)
        cfg = ProfilerConfig(workers=2, perfect_signature=True)
        r_base, _ = ParallelProfiler(cfg).profile(base)
        r_amp, _ = ParallelProfiler(cfg).profile(amp)
        assert r_base.store.as_set() == r_amp.store.as_set()

    def test_spilled_amplified_deps_equal_stripped_base(self, tmp_path):
        base = base_trace()
        stripped = strip_loops(base)
        sp = amplify_to_spill(base, 4, tmp_path / "amp.trace.spill")
        assert isinstance(sp, SpilledTraceBatch)
        assert sp.n_unique_addresses == 4 * stripped.n_unique_addresses
        cfg = ProfilerConfig(workers=2, perfect_signature=True)
        r_base, _ = ParallelProfiler(cfg).profile(stripped)
        r_amp, _ = ParallelProfiler(cfg).profile(sp)
        assert r_base.store.as_set() == r_amp.store.as_set()


class TestRegisteredWorkloads:
    def test_amp_workload_listed_and_trace_level(self):
        wl = get_workload("amp-cg")
        assert wl.suite == "amplified"
        assert wl.build_trace is not None and wl.build_seq is None

    def test_get_trace_spills_under_cache_dir(self, tmp_path):
        clear_trace_cache()
        try:
            batch = get_trace("amp-cg", scale=2, cache_dir=tmp_path)
            assert isinstance(batch, SpilledTraceBatch)
            assert len(batch) >= 2_000_000
            spills = list(tmp_path.glob("*.trace.spill"))
            assert len(spills) == 1
            # second build re-opens the cached spill
            clear_trace_cache()  # memory layer only: pass no cache_dir
            again = get_trace("amp-cg", scale=2, cache_dir=tmp_path)
            assert again.spill_path == batch.spill_path
        finally:
            clear_trace_cache(tmp_path)

    def test_par_variant_rejected(self):
        clear_trace_cache()
        with pytest.raises(WorkloadError, match="trace-level"):
            get_trace("amp-cg", variant="par")
