"""Tests for the benchmark workload analogs.

Every registered workload must build, run deterministically, and — for the
Table II ground truth — have its annotated loops classified exactly as its
metadata promises (expected_identified == what analyze_loops finds).
"""

import numpy as np
import pytest

from repro.common.config import ProfilerConfig
from repro.core import profile_trace
from repro.analyses import analyze_loops, communication_matrix
from repro.workloads import (
    get_trace,
    get_workload,
    workload_names,
    workloads_in_suite,
)

PERFECT = ProfilerConfig(perfect_signature=True)
NAS = workload_names("nas")
STARBENCH = workload_names("starbench")
ALL_SEQ = NAS + STARBENCH


class TestRegistry:
    def test_all_suites_populated(self):
        assert len(NAS) == 8
        assert len(STARBENCH) == 11
        assert workload_names("splash2x") == [
            "fft-transpose",
            "master-worker",
            "water-spatial",
        ]

    def test_unknown_workload_raises(self):
        from repro.common.errors import WorkloadError

        with pytest.raises(WorkloadError):
            get_workload("doom")

    def test_unknown_variant_raises(self):
        from repro.common.errors import WorkloadError

        with pytest.raises(WorkloadError):
            get_trace("cg", variant="gpu")

    def test_nas_has_no_parallel_variant(self):
        from repro.common.errors import WorkloadError

        assert not get_workload("cg").has_parallel_variant
        with pytest.raises(WorkloadError):
            get_trace("cg", variant="par")

    def test_all_starbench_have_parallel_variants(self):
        for wl in workloads_in_suite("starbench"):
            assert wl.has_parallel_variant, wl.name

    def test_trace_caching_returns_same_object(self):
        a = get_trace("ep")
        b = get_trace("ep")
        assert a is b

    def test_different_scales_differ(self):
        a = get_trace("rotate", scale=1)
        b = get_trace("rotate", scale=2)
        assert len(b) > len(a)


@pytest.mark.parametrize("name", ALL_SEQ)
class TestSequentialWorkloads:
    def test_builds_and_runs(self, name):
        batch = get_trace(name)
        assert len(batch) > 1000
        assert batch.n_unique_addresses > 10
        assert batch.n_threads == 1

    def test_ground_truth_matches_analysis(self, name):
        """The central Table II property: the classification of every
        annotated loop matches the workload's declared ground truth."""
        batch, meta = get_trace(name, with_meta=True)
        res = profile_trace(batch, PERFECT)
        cls = analyze_loops(res)
        sites = meta.annotated_sites()
        assert sites, "workload must declare annotated loops"
        for key, site in sites.items():
            assert site in cls, f"annotated loop {key} was never profiled"
            assert cls[site].parallelizable == (key in meta.expected_identified), (
                f"{name}:{key} classified "
                f"{'parallel' if cls[site].parallelizable else 'blocked'}, "
                f"ground truth says the opposite"
            )

    def test_deterministic_rebuild(self, name):
        from repro.workloads.base import clear_trace_cache

        a = get_trace(name)
        clear_trace_cache()
        b = get_trace(name)
        assert np.array_equal(a.addr, b.addr)
        assert np.array_equal(a.kind, b.kind)


@pytest.mark.parametrize("name", ["c-ray", "kmeans", "md5", "h264dec", "rotate"])
class TestParallelWorkloads:
    def test_runs_multithreaded(self, name):
        batch = get_trace(name, variant="par", threads=4)
        assert batch.n_threads == 5  # main + 4 workers

    def test_no_flagged_races_when_locked(self, name):
        """All pthread analogs synchronize correctly: no timestamp
        reversals without injected push delays."""
        batch = get_trace(name, variant="par", threads=4)
        res = profile_trace(batch, PERFECT.with_(multithreaded_target=True))
        assert res.stats.races_flagged == 0

    def test_cross_thread_dependences_exist(self, name):
        batch = get_trace(name, variant="par", threads=4)
        res = profile_trace(batch, PERFECT.with_(multithreaded_target=True))
        m = communication_matrix(res, n_threads=5)
        assert m.sum() > 0


class TestWaterSpatial:
    def test_neighbor_banded_communication(self):
        """Figure 9's shape: workers talk to spatial neighbours only."""
        threads = 6
        batch = get_trace("water-spatial", variant="par", threads=threads)
        res = profile_trace(batch, PERFECT.with_(multithreaded_target=True))
        m = communication_matrix(res, n_threads=threads + 1)
        w = m[1:, 1:]  # drop the main thread
        band = off_band = 0.0
        for pr in range(threads):
            for co in range(threads):
                if pr == co:
                    continue
                if abs(pr - co) == 1:
                    band += w[pr, co]
                else:
                    off_band += w[pr, co]
        assert band > 0
        assert off_band == 0  # strictly neighbour-banded

    def test_results_deterministic_per_seed(self):
        a = get_trace("water-spatial", variant="par", threads=4, seed=3)
        from repro.workloads.base import clear_trace_cache

        clear_trace_cache()
        b = get_trace("water-spatial", variant="par", threads=4, seed=3)
        assert np.array_equal(a.tid, b.tid)


class TestCommunicationTopologies:
    """The three splash2x analogs produce three distinct matrix shapes."""

    def matrix(self, name, threads=4):
        batch = get_trace(name, variant="par", threads=threads)
        res = profile_trace(batch, PERFECT.with_(multithreaded_target=True))
        return communication_matrix(res, n_threads=batch.n_threads)

    def test_fft_transpose_is_all_to_all(self):
        threads = 4
        m = self.matrix("fft-transpose", threads)[1:, 1:]
        for p in range(threads):
            for c in range(threads):
                if p != c:
                    assert m[p, c] > 0, (p, c)

    def test_master_worker_is_a_star(self):
        threads = 3
        m = self.matrix("master-worker", threads)
        master = 1  # first spawned thread
        workers = range(2, threads + 2)
        for w in workers:
            assert m[master, w] > 0  # tasks flow master -> worker
            assert m[w, master] > 0  # results flow worker -> master
        for a in workers:
            for b in workers:
                if a != b:
                    assert m[a, b] == 0  # workers never talk to each other

    def test_topologies_distinguishable(self):
        """Band vs star vs all-to-all: pairwise different supports."""
        import numpy as np

        def support(name, threads=4):
            m = self.matrix(name, threads)
            full = np.zeros((threads + 1, threads + 1), dtype=bool)
            k = min(m.shape[0], threads + 1)
            full[:k, :k] = m[:k, :k] > 0
            return full

        shapes = {
            name: support(name)
            for name in ("water-spatial", "fft-transpose", "master-worker")
        }
        names = list(shapes)
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                assert not np.array_equal(shapes[names[i]], shapes[names[j]])


class TestWorkloadShapes:
    """Suite-level distribution properties the experiments rely on."""

    def test_rgbyuv_is_address_heavy(self):
        """rgbyuv has the highest address/access ratio (Table I driver)."""
        ratios = {}
        for name in ("rgbyuv", "streamcluster", "tinyjpeg"):
            batch = get_trace(name)
            ratios[name] = batch.n_unique_addresses / batch.n_accesses
        assert ratios["rgbyuv"] > ratios["streamcluster"]
        assert ratios["rgbyuv"] > ratios["tinyjpeg"]

    def test_ep_touches_few_addresses(self):
        assert get_trace("ep").n_unique_addresses < 100

    def test_md5_has_hot_state_addresses(self):
        """md5's four state words soak up a large share of accesses."""
        batch = get_trace("md5")
        mask = batch.access_mask()
        addrs, counts = np.unique(batch.addr[mask], return_counts=True)
        top4 = np.sort(counts)[-4:].sum()
        assert top4 / counts.sum() > 0.1

    def test_nas_identified_ratio_near_paper(self):
        """Aggregate Table II shape: ~92.5% of annotated loops identified."""
        ann = ident = 0
        for name in NAS:
            _, meta = get_trace(name, with_meta=True)
            ann += len(meta.annotated)
            ident += len(meta.expected_identified)
        assert 0.85 <= ident / ann <= 0.98
