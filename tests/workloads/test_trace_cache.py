"""Tests for the two-layer (in-memory + on-disk) workload trace cache."""

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.workloads import clear_trace_cache, get_trace


def _counter_total(reg, prefix):
    snap = reg.snapshot()["counters"]
    return sum(
        v for k, v in snap.items() if k == prefix or k.startswith(prefix + "{")
    )


class TestDiskCache:
    def test_miss_writes_file_then_disk_hit(self, tmp_path):
        clear_trace_cache()
        reg = MetricsRegistry()
        batch = get_trace("ep", cache_dir=tmp_path, registry=reg)
        files = sorted(tmp_path.glob("*.trace.npz"))
        assert len(files) == 1
        assert files[0].name == "ep-seq-s1-t4-r0.trace.npz"
        assert _counter_total(reg, "producer.trace_cache_misses") == 1
        assert _counter_total(reg, "producer.trace_cache_hits") == 0

        # Fresh in-memory layer (new process analog): loads from disk.
        clear_trace_cache()
        reg2 = MetricsRegistry()
        again = get_trace("ep", cache_dir=tmp_path, registry=reg2)
        snap = reg2.snapshot()["counters"]
        assert snap.get('producer.trace_cache_hits{layer="disk"}') == 1
        assert _counter_total(reg2, "producer.trace_cache_misses") == 0
        for name in ("kind", "tid", "loc", "addr", "aux", "var", "ts", "ctx"):
            assert np.array_equal(getattr(batch, name), getattr(again, name))
        assert again.var_names == batch.var_names
        clear_trace_cache()

    def test_memory_hit_counted_and_same_object(self, tmp_path):
        clear_trace_cache()
        reg = MetricsRegistry()
        one = get_trace("ep", cache_dir=tmp_path, registry=reg)
        two = get_trace("ep", cache_dir=tmp_path, registry=reg)
        assert two is one
        snap = reg.snapshot()["counters"]
        assert snap.get('producer.trace_cache_hits{layer="memory"}') == 1
        clear_trace_cache()

    def test_cache_key_separates_parameters(self, tmp_path):
        clear_trace_cache()
        get_trace("ep", cache_dir=tmp_path)
        get_trace("ep", scale=2, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.trace.npz"))) == 2
        clear_trace_cache()

    def test_clear_removes_files_and_reports_count(self, tmp_path):
        clear_trace_cache()
        get_trace("ep", cache_dir=tmp_path)
        get_trace("mg", cache_dir=tmp_path)
        assert clear_trace_cache(cache_dir=tmp_path) == 2
        assert list(tmp_path.glob("*.trace.npz")) == []
        # Idempotent, and a missing directory is fine.
        assert clear_trace_cache(cache_dir=tmp_path / "nope") == 0

    def test_with_meta_rebuilt_on_disk_hit(self, tmp_path):
        clear_trace_cache()
        _, meta = get_trace("ep", with_meta=True, cache_dir=tmp_path)
        clear_trace_cache()
        _, meta2 = get_trace("ep", with_meta=True, cache_dir=tmp_path)
        assert meta2.annotated == meta.annotated
        assert meta2.expected_identified == meta.expected_identified
        clear_trace_cache()

    def test_no_cache_dir_keeps_disk_untouched(self, tmp_path):
        clear_trace_cache()
        get_trace("ep")
        assert list(tmp_path.glob("*.trace.npz")) == []
        clear_trace_cache()
