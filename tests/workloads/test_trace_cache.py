"""Tests for the two-layer (in-memory + on-disk) workload trace cache."""

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.workloads import clear_trace_cache, get_trace


def _counter_total(reg, prefix):
    snap = reg.snapshot()["counters"]
    return sum(
        v for k, v in snap.items() if k == prefix or k.startswith(prefix + "{")
    )


class TestDiskCache:
    def test_miss_writes_file_then_disk_hit(self, tmp_path):
        clear_trace_cache()
        reg = MetricsRegistry()
        batch = get_trace("ep", cache_dir=tmp_path, registry=reg)
        files = sorted(tmp_path.glob("*.trace.npz"))
        assert len(files) == 1
        assert files[0].name == "ep-seq-s1-t4-r0.trace.npz"
        assert _counter_total(reg, "producer.trace_cache_misses") == 1
        assert _counter_total(reg, "producer.trace_cache_hits") == 0

        # Fresh in-memory layer (new process analog): loads from disk.
        clear_trace_cache()
        reg2 = MetricsRegistry()
        again = get_trace("ep", cache_dir=tmp_path, registry=reg2)
        snap = reg2.snapshot()["counters"]
        assert snap.get('producer.trace_cache_hits{layer="disk"}') == 1
        assert _counter_total(reg2, "producer.trace_cache_misses") == 0
        for name in ("kind", "tid", "loc", "addr", "aux", "var", "ts", "ctx"):
            assert np.array_equal(getattr(batch, name), getattr(again, name))
        assert again.var_names == batch.var_names
        clear_trace_cache()

    def test_memory_hit_counted_and_same_object(self, tmp_path):
        clear_trace_cache()
        reg = MetricsRegistry()
        one = get_trace("ep", cache_dir=tmp_path, registry=reg)
        two = get_trace("ep", cache_dir=tmp_path, registry=reg)
        assert two is one
        snap = reg.snapshot()["counters"]
        assert snap.get('producer.trace_cache_hits{layer="memory"}') == 1
        clear_trace_cache()

    def test_cache_key_separates_parameters(self, tmp_path):
        clear_trace_cache()
        get_trace("ep", cache_dir=tmp_path)
        get_trace("ep", scale=2, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.trace.npz"))) == 2
        clear_trace_cache()

    def test_clear_removes_files_and_reports_count(self, tmp_path):
        clear_trace_cache()
        get_trace("ep", cache_dir=tmp_path)
        get_trace("mg", cache_dir=tmp_path)
        assert clear_trace_cache(cache_dir=tmp_path) == 2
        assert list(tmp_path.glob("*.trace.npz")) == []
        # Idempotent, and a missing directory is fine.
        assert clear_trace_cache(cache_dir=tmp_path / "nope") == 0

    def test_with_meta_rebuilt_on_disk_hit(self, tmp_path):
        clear_trace_cache()
        _, meta = get_trace("ep", with_meta=True, cache_dir=tmp_path)
        clear_trace_cache()
        _, meta2 = get_trace("ep", with_meta=True, cache_dir=tmp_path)
        assert meta2.annotated == meta.annotated
        assert meta2.expected_identified == meta.expected_identified
        clear_trace_cache()

    def test_no_cache_dir_keeps_disk_untouched(self, tmp_path):
        clear_trace_cache()
        get_trace("ep")
        assert list(tmp_path.glob("*.trace.npz")) == []
        clear_trace_cache()


class TestLruEviction:
    def _sized(self, tmp_path, *names):
        clear_trace_cache()
        for n in names:
            get_trace(n, cache_dir=tmp_path)
        return sorted(tmp_path.glob("*.trace.npz"))

    def test_limit_evicts_oldest_first(self, tmp_path):
        import os
        import time

        from repro.workloads import enforce_cache_limit, set_trace_cache_limit

        files = self._sized(tmp_path, "ep", "mg", "ft")
        # Make mtimes unambiguous: ep oldest, ft newest.
        now = time.time()
        for i, p in enumerate(sorted(files, key=lambda p: p.name)):
            os.utime(p, (now + i, now + i))
        sizes = {p.name: p.stat().st_size for p in files}
        keep_two = sum(sorted(sizes.values(), reverse=True)[:2])
        reg = MetricsRegistry()
        evicted = enforce_cache_limit(
            tmp_path, limit_bytes=keep_two + 1, registry=reg
        )
        assert evicted >= 1
        survivors = {p.name for p in tmp_path.glob("*.trace.npz")}
        assert "ep-seq-s1-t4-r0.trace.npz" not in survivors  # oldest went
        snap = reg.snapshot()["counters"]
        assert snap.get("producer.cache_evictions") == evicted
        set_trace_cache_limit(None)
        clear_trace_cache(tmp_path)

    def test_disk_hit_refreshes_recency(self, tmp_path):
        import os
        import time

        from repro.workloads import enforce_cache_limit

        files = self._sized(tmp_path, "ep", "mg")
        old = time.time() - 1000
        for p in files:
            os.utime(p, (old, old))
        clear_trace_cache()
        get_trace("ep", cache_dir=tmp_path)  # disk hit bumps ep's mtime
        ep = next(p for p in files if p.name.startswith("ep-"))
        mg = next(p for p in files if p.name.startswith("mg-"))
        assert ep.stat().st_mtime > mg.stat().st_mtime
        evicted = enforce_cache_limit(
            tmp_path, limit_bytes=ep.stat().st_size
        )
        assert evicted == 1
        assert ep.exists() and not mg.exists()
        clear_trace_cache(tmp_path)

    def test_save_path_enforces_installed_limit(self, tmp_path):
        from repro.workloads import set_trace_cache_limit

        clear_trace_cache()
        set_trace_cache_limit(0)  # nothing may stay on disk
        try:
            get_trace("ep", cache_dir=tmp_path)
            assert list(tmp_path.glob("*.trace.npz")) == []
        finally:
            set_trace_cache_limit(None)
            clear_trace_cache(tmp_path)

    def test_spill_directories_count_and_evict(self, tmp_path):
        from repro.workloads import enforce_cache_limit
        from repro.workloads.amplify import amplify_cached

        clear_trace_cache()
        base = get_trace("ep")
        amplify_cached(base, 2, tmp_path, "amp-ep")
        spill = tmp_path / "amp-ep-x2.trace.spill"
        assert spill.is_dir()
        assert enforce_cache_limit(tmp_path, limit_bytes=0) == 1
        assert not spill.exists()
        clear_trace_cache(tmp_path)

    def test_no_limit_is_noop(self, tmp_path):
        from repro.workloads import enforce_cache_limit

        files = self._sized(tmp_path, "ep")
        assert enforce_cache_limit(tmp_path) == 0
        assert all(p.exists() for p in files)
        clear_trace_cache(tmp_path)
