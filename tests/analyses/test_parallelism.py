"""Tests for loop-parallelism discovery on hand-built MiniVM programs with
known ground truth."""

from repro.common.config import ProfilerConfig
from repro.common.sourceloc import encode_location
from repro.core import profile_trace
from repro.analyses import analyze_loops, count_parallelizable
from repro.minivm import ProgramBuilder, run_program

PERFECT = ProfilerConfig(perfect_signature=True)


def classify(build):
    """Build, run, profile, classify; returns (classifications, result, prog)."""
    prog, sites = build()
    res = profile_trace(run_program(prog), PERFECT)
    cls = analyze_loops(res)
    enc = {
        name: encode_location(prog.file_id, line) for name, line in sites.items()
    }
    return cls, res, enc


def build_independent():
    """for i: a[i] = b[i] * 2 — trivially parallel."""
    b = ProgramBuilder("independent")
    a = b.global_array("a", 32)
    src = b.global_array("b", 32)
    with b.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, 32):
            f.store(src, i, i)
        with f.for_loop(i, 0, 32) as loop:
            f.store(a, i, f.load(src, i) * 2)
    return b.build(), {"loop": loop.line}


def build_true_recurrence():
    """for i: a[i] = a[i-1] + 1 — genuinely sequential."""
    b = ProgramBuilder("recurrence")
    a = b.global_array("a", 32)
    with b.function("main") as f:
        f.store(a, 0, 1)
        i = f.reg("i")
        with f.for_loop(i, 1, 32) as loop:
            f.store(a, i, f.load(a, i - 1) + 1)
    return b.build(), {"loop": loop.line}


def build_reduction():
    """for i: s = s + a[i] — parallel with a reduction clause."""
    b = ProgramBuilder("reduction")
    a = b.global_array("a", 32)
    s = b.global_scalar("s")
    with b.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, 32):
            f.store(a, i, i)
        with f.for_loop(i, 0, 32) as loop:
            f.store(s, None, f.load(s) + f.load(a, i))
    return b.build(), {"loop": loop.line}


def build_privatizable():
    """for i: t = a[i]; b[i] = t*t — t is storage reuse, privatizable."""
    b = ProgramBuilder("private")
    a = b.global_array("a", 32)
    out = b.global_array("out", 32)
    t = b.global_scalar("t")
    with b.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, 32):
            f.store(a, i, i + 1)
        with f.for_loop(i, 0, 32) as loop:
            f.store(t, None, f.load(a, i))
            f.store(out, i, f.load(t) * f.load(t))
    return b.build(), {"loop": loop.line}


class TestClassification:
    def test_independent_loop_parallelizable(self):
        cls, res, enc = classify(build_independent)
        c = cls[enc["loop"]]
        assert c.parallelizable
        assert not c.reductions and not c.blocking

    def test_true_recurrence_blocked(self):
        cls, res, enc = classify(build_true_recurrence)
        c = cls[enc["loop"]]
        assert not c.parallelizable
        assert c.blocking
        assert "a" in c.reason(res)

    def test_reduction_recognized(self):
        cls, res, enc = classify(build_reduction)
        c = cls[enc["loop"]]
        assert c.parallelizable
        assert {res.var_name(v) for v in c.reductions} == {"s"}
        assert "reduction(s)" in c.reason(res)

    def test_reduction_rejected_when_disallowed(self):
        prog, sites = build_reduction()
        res = profile_trace(run_program(prog), PERFECT)
        cls = analyze_loops(res, allow_reductions=False)
        site = encode_location(prog.file_id, sites["loop"])
        assert not cls[site].parallelizable

    def test_privatizable_variable_detected(self):
        cls, res, enc = classify(build_privatizable)
        c = cls[enc["loop"]]
        assert c.parallelizable
        assert {res.var_name(v) for v in c.privatizable} == {"t"}
        assert "private(t)" in c.reason(res)

    def test_privatization_disallowed_blocks(self):
        prog, sites = build_privatizable()
        res = profile_trace(run_program(prog), PERFECT)
        cls = analyze_loops(res, allow_privatization=False)
        site = encode_location(prog.file_id, sites["loop"])
        assert not cls[site].parallelizable

    def test_init_loops_parallelizable(self):
        """The plain initialization loops in the fixtures parallelize too."""
        cls, _, enc = classify(build_reduction)
        others = [c for s, c in cls.items() if s != enc["loop"]]
        assert others and all(c.parallelizable for c in others)

    def test_count_helper(self):
        cls, _, _ = classify(build_true_recurrence)
        assert count_parallelizable(cls) == len(cls) - 1

    def test_iteration_counts_attached(self):
        cls, _, enc = classify(build_independent)
        assert cls[enc["loop"]].total_iterations == 32


class TestMixedRealisticKernel:
    def test_stencil_loop_not_flagged_by_read_only_neighbors(self):
        """out[i] = (in[i-1] + in[i] + in[i+1])/3: reads overlap across
        iterations but never after a write in the loop -> parallelizable."""
        b = ProgramBuilder("stencil")
        src = b.global_array("src", 34)
        dst = b.global_array("dst", 34)
        with b.function("main") as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 34):
                f.store(src, i, i * 3)
            with f.for_loop(i, 1, 33) as loop:
                f.store(
                    dst,
                    i,
                    (f.load(src, i - 1) + f.load(src, i) + f.load(src, i + 1)) / 3,
                )
        res = profile_trace(run_program(b.build()), PERFECT)
        cls = analyze_loops(res)
        site = encode_location(0, loop.line)
        assert cls[site].parallelizable

    def test_in_place_stencil_blocked(self):
        """a[i] = (a[i-1] + a[i+1])/2 in place: carried RAW -> blocked."""
        b = ProgramBuilder("inplace")
        a = b.global_array("a", 34)
        with b.function("main") as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 34):
                f.store(a, i, i)
            with f.for_loop(i, 1, 33) as loop:
                f.store(a, i, (f.load(a, i - 1) + f.load(a, i + 1)) / 2)
        res = profile_trace(run_program(b.build()), PERFECT)
        cls = analyze_loops(res)
        site = encode_location(0, loop.line)
        assert not cls[site].parallelizable


def build_pipeline():
    """for i: a[i] = src[i]+1; c[i] = a[i-1]*2 — carried flow runs forward
    between two stages and no stage feeds itself: DSWP-style pipeline."""
    b = ProgramBuilder("pipeline")
    src = b.global_array("src", 33)
    a = b.global_array("a", 33)
    c = b.global_array("c", 33)
    with b.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, 33):
            f.store(src, i, i)
        f.store(a, 0, 0)
        with f.for_loop(i, 1, 33) as loop:
            f.store(a, i, f.load(src, i) + 1)
            f.store(c, i, f.load(a, i - 1) * 2)
    return b.build(), {"loop": loop.line}


class TestVerdicts:
    """The four-way DOALL / reduction / pipeline / sequential classification
    derived from the profiled dependences via the shared graph rule."""

    def test_independent_is_doall(self):
        cls, _, enc = classify(build_independent)
        assert cls[enc["loop"]].verdict == "doall"

    def test_reduction_verdict(self):
        cls, _, enc = classify(build_reduction)
        c = cls[enc["loop"]]
        assert c.verdict == "reduction" and c.parallelizable

    def test_recurrence_is_sequential(self):
        cls, _, enc = classify(build_true_recurrence)
        c = cls[enc["loop"]]
        assert c.verdict == "sequential" and not c.parallelizable

    def test_pipeline_detected(self):
        cls, res, enc = classify(build_pipeline)
        c = cls[enc["loop"]]
        assert c.verdict == "pipeline"
        assert not c.parallelizable  # not DOALL — but stage-parallel
        assert "pipeline-parallel" in c.reason(res)

    def test_privatizable_storage_reuse_stays_doall(self):
        cls, _, enc = classify(build_privatizable)
        assert cls[enc["loop"]].verdict == "doall"


class TestBundledWorkloadVerdicts:
    """Every verdict class is exercised by at least one bundled workload."""

    def _verdicts(self, name):
        from repro.workloads import get_trace

        res = profile_trace(get_trace(name), PERFECT)
        return {c.verdict for c in analyze_loops(res).values()}

    def test_cg_has_doall_reduction_and_sequential_loops(self):
        assert {"doall", "reduction", "sequential"} <= self._verdicts("cg")

    def test_is_histogram_rank_is_a_pipeline(self):
        assert "pipeline" in self._verdicts("is")

    def test_rgbyuv_is_pure_doall(self):
        assert self._verdicts("rgbyuv") == {"doall"}
