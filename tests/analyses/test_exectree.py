"""Tests for the dynamic execution tree and call tree."""

from repro.analyses import build_execution_tree, call_tree
from repro.minivm import ProgramBuilder, run_program


def build_nested_program():
    """main -> helper (called twice), helper contains a loop."""
    b = ProgramBuilder("nested")
    data = b.global_array("data", 8)
    with b.function("helper", params=("base",)) as f:
        i = f.reg("i")
        with f.for_loop(i, 0, 4) as loop:
            f.store(data, f.param("base") + i, i)
    with b.function("main") as f:
        f.call("helper", 0)
        f.call("helper", 4)
    return b.build(), loop


class TestExecutionTree:
    def test_structure(self):
        prog, loop = build_nested_program()
        trees = build_execution_tree(run_program(prog))
        root = trees[0]
        # root -> main -> helper -> loop
        (main,) = root.children.values()
        assert main.kind == "func" and main.visits == 1
        (helper,) = main.children.values()
        assert helper.kind == "func"
        assert helper.visits == 2  # same static context, two dynamic calls
        (loop_node,) = helper.children.values()
        assert loop_node.kind == "loop"
        assert loop_node.visits == 2
        assert loop_node.iterations == 8  # 4 per call

    def test_access_attribution(self):
        prog, _ = build_nested_program()
        trees = build_execution_tree(run_program(prog))
        root = trees[0]
        assert root.total_accesses == 8  # 8 stores, all inside the loop
        (main,) = root.children.values()
        (helper,) = main.children.values()
        (loop_node,) = helper.children.values()
        assert loop_node.direct_accesses == 8
        assert main.direct_accesses == 0

    def test_node_count_and_render(self):
        prog, _ = build_nested_program()
        root = build_execution_tree(run_program(prog))[0]
        assert root.n_nodes == 4  # root, main, helper, loop
        text = root.render()
        assert "<root>" in text and "loop" in text and "iters=8" in text

    def test_per_thread_trees(self):
        b = ProgramBuilder("mt")
        x = b.global_array("x", 4)
        with b.function("worker", params=("wid",)) as f:
            f.store(x, f.param("wid"), 1)
        with b.function("main") as f:
            f.spawn("worker", 0)
            f.spawn("worker", 1)
            f.join_all()
        trees = build_execution_tree(run_program(b.build()))
        assert set(trees) == {0, 1, 2}
        for tid in (1, 2):
            (worker,) = trees[tid].children.values()
            assert worker.kind == "func"
            assert worker.total_accesses == 1


class TestCallTree:
    def test_loops_collapsed_into_functions(self):
        prog, _ = build_nested_program()
        trees = call_tree(run_program(prog))
        root = trees[0]
        (main,) = root.children.values()
        (helper,) = main.children.values()
        assert helper.children == {}  # loop frame gone
        assert helper.direct_accesses == 8  # loop's accesses re-attached
        assert helper.visits == 2

    def test_total_accesses_preserved(self):
        prog, _ = build_nested_program()
        batch = run_program(prog)
        exec_total = build_execution_tree(batch)[0].total_accesses
        call_total = call_tree(batch)[0].total_accesses
        assert exec_total == call_total == 8
