"""Tests for communication-pattern detection."""

import numpy as np

from repro.common.config import ProfilerConfig
from repro.core import profile_trace
from repro.analyses import communication_matrix, render_matrix
from repro.minivm import ProgramBuilder, ScheduleConfig, run_program
from tests.trace_helpers import seq_trace

PERFECT_MT = ProfilerConfig(perfect_signature=True, multithreaded_target=True)


def profile_ops(ops):
    return profile_trace(seq_trace(ops), PERFECT_MT)


class TestMatrixBasics:
    def test_single_producer_consumer(self):
        res = profile_ops(
            [("tid", 1), ("w", 0x8, 1, "d"), ("tid", 2), ("r", 0x8, 2, "d")]
        )
        m = communication_matrix(res, n_threads=3)
        assert m[1, 2] == 1
        assert m.sum() == 1

    def test_intensity_counts_instances(self):
        ops = [("tid", 1), ("w", 0x8, 1, "d")]
        for _ in range(5):
            ops += [("tid", 2), ("r", 0x8, 2, "d")]
        res = profile_ops(ops)
        # Only the first read forms a RAW instance per write; re-reads after
        # the read tracker update are RAR (ignored).  Write again to refresh:
        ops = []
        for k in range(5):
            ops += [("tid", 1), ("w", 0x8, 1, "d"), ("tid", 2), ("r", 0x8, 2, "d")]
        res = profile_ops(ops)
        m = communication_matrix(res, n_threads=3)
        assert m[1, 2] == 5

    def test_self_communication_excluded_by_default(self):
        res = profile_ops([("tid", 1), ("w", 0x8, 1, "d"), ("r", 0x8, 2, "d")])
        assert communication_matrix(res, n_threads=2).sum() == 0
        assert communication_matrix(res, n_threads=2, include_self=True)[1, 1] == 1

    def test_war_waw_do_not_count(self):
        ops = [
            ("tid", 1), ("w", 0x8, 1, "d"), ("r", 0x8, 2, "d"),
            ("tid", 2), ("w", 0x8, 3, "d"),  # WAR + WAW across threads
        ]
        res = profile_ops(ops)
        assert communication_matrix(res, n_threads=3).sum() == 0

    def test_normalize(self):
        ops = []
        for k in range(4):
            ops += [("tid", 1), ("w", 0x8, 1, "d"), ("tid", 2), ("r", 0x8, 2, "d")]
        ops += [("tid", 2), ("w", 0x10, 3, "e"), ("tid", 1), ("r", 0x10, 4, "e")]
        m = communication_matrix(profile_ops(ops), n_threads=3, normalize=True)
        assert m.max() == 1.0
        assert 0 < m[2, 1] < 1

    def test_empty_result(self):
        res = profile_ops([])
        m = communication_matrix(res)
        assert m.size == 0
        assert "no cross-thread" in render_matrix(m)

    def test_render_shapes(self):
        m = np.array([[0.0, 5.0], [1.0, 0.0]])
        text = render_matrix(m)
        lines = text.strip().splitlines()
        assert "(consumers)" in lines[0]
        assert lines[-1] == "(producers)"


class TestEndToEndPipeline:
    def test_pipeline_program_shows_neighbor_pattern(self):
        """4-stage pipeline: each stage reads its predecessor's buffer ->
        the matrix is a sub-diagonal band, like splash2x patterns."""
        n_stage, items = 4, 12
        ops = []
        for s in range(n_stage):
            for i in range(items):
                ops.append(("tid", s + 1))
                if s > 0:
                    ops.append(("r", 0x1000 + 0x100 * s + 8 * i, 10 + s, f"buf{s}"))
                ops.append(("w", 0x1000 + 0x100 * (s + 1) + 8 * i, 20 + s, f"buf{s+1}"))
        res = profile_ops(ops)
        m = communication_matrix(res, n_threads=n_stage + 1)
        # Communication only from stage s to s+1.
        for p in range(1, n_stage + 1):
            for c in range(1, n_stage + 1):
                if c == p + 1:
                    assert m[p, c] > 0
                else:
                    assert m[p, c] == 0

    def test_minivm_shared_grid_program(self):
        """Threads writing a halo read by their neighbour produce a banded
        matrix under real interleaved execution."""
        n, width = 4, 16
        b = ProgramBuilder("grid")
        grid = b.global_array("grid", n * width)
        out = b.global_array("out", n * width)
        with b.function("worker", params=("wid",)) as f:
            i = f.reg("i")
            base = f.reg("base")
            f.set(base, f.param("wid") * width)
            with f.for_loop(i, 0, width):
                f.store(grid, f.reg("base") + i, f.param("wid") + 1)
            f.barrier(0, n)
            # read own strip + left neighbour's last cell
            with f.for_loop(i, 0, width):
                f.store(out, f.reg("base") + i, f.load(grid, f.reg("base") + i))
            with f.if_(f.param("wid").gt(0)):
                f.store(
                    out,
                    f.reg("base"),
                    f.load(out, f.reg("base")) + f.load(grid, f.reg("base") - 1),
                )
        with b.function("main") as f:
            w = f.reg("w")
            with f.for_loop(w, 0, n):
                f.spawn("worker", w)
            f.join_all()
        batch = run_program(b.build(), schedule=ScheduleConfig(policy="roundrobin"))
        res = profile_trace(batch, PERFECT_MT)
        m = communication_matrix(res, n_threads=n + 1)
        # Worker tids are 1..n; each reads from its left neighbour only.
        for c in range(2, n + 1):
            assert m[c - 1, c] > 0
        assert m[n, 1] == 0  # no wraparound
