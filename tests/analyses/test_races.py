"""Tests for the race-detection application (lockset + reversal evidence)."""

import pytest

from repro.common.config import ProfilerConfig
from repro.core import profile_trace
from repro.analyses import detect_races
from repro.analyses.races import lockset_candidates
from repro.minivm import ProgramBuilder, ScheduleConfig, run_program

PERFECT_MT = ProfilerConfig(perfect_signature=True, multithreaded_target=True)


def build_program(protect: str):
    """Two workers touching a shared scalar.

    protect: "locked" | "racy" | "mixed" (locked writer, unlocked reader).
    """
    b = ProgramBuilder(f"prog-{protect}")
    shared = b.global_scalar("shared")
    private = b.global_array("private", 2)
    with b.function("worker", params=("wid",)) as f:
        i = f.reg("i")
        with f.for_loop(i, 0, 5):
            if protect == "locked":
                with f.lock(1):
                    f.store(shared, None, f.load(shared) + 1)
            elif protect == "racy":
                f.store(shared, None, f.load(shared) + 1)
            else:  # mixed discipline: one side locks, the other does not
                with f.if_(f.param("wid").eq(0)):
                    with f.lock(1):
                        f.store(shared, None, f.load(shared) + 1)
                with f.else_():
                    f.set(f.reg("v"), f.load(shared))
            f.store(private, f.param("wid"), i)  # thread-local, never racy
    with b.function("main") as f:
        f.spawn("worker", 0)
        f.spawn("worker", 1)
        f.join_all()
    return b.build()


def analyze(protect: str, delay=0.0, seed=0):
    batch = run_program(
        build_program(protect),
        schedule=ScheduleConfig(policy="roundrobin", seed=seed, delay_probability=delay),
    )
    res = profile_trace(batch, PERFECT_MT)
    return batch, res, detect_races(batch, res)


class TestLockset:
    def test_locked_program_clean(self):
        _, _, report = analyze("locked")
        assert len(report) == 0
        assert "no race candidates" in report.render()

    def test_racy_program_flagged_unprotected(self):
        _, _, report = analyze("racy")
        assert len(report) == 1
        (c,) = report.candidates
        assert c.var_name == "shared"
        assert c.verdict == "unprotected"
        assert c.threads == frozenset({1, 2})
        assert not c.common_lockset

    def test_mixed_discipline_flagged(self):
        """One locked side does not save an unlocked other side."""
        _, _, report = analyze("mixed")
        assert any(c.var_name == "shared" for c in report.candidates)

    def test_thread_local_data_never_flagged(self):
        _, _, report = analyze("racy")
        assert all(c.var_name != "private" for c in report.candidates)

    def test_read_only_sharing_not_flagged(self):
        b = ProgramBuilder("readonly")
        table = b.global_array("table", 8)
        with b.function("worker", params=("wid",)) as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 8):
                f.set(f.reg("v"), f.load(table, i))
        with b.function("main") as f:
            j = f.reg("j")
            with f.for_loop(j, 0, 8):
                f.store(table, j, j)
            f.spawn("worker", 0)
            f.spawn("worker", 1)
            f.join_all()
        batch = run_program(b.build(), schedule=ScheduleConfig(policy="roundrobin"))
        res = profile_trace(batch, PERFECT_MT)
        report = detect_races(batch, res)
        # main wrote before spawning; workers only read -> writes and reads
        # are cross-thread but the writes happened before sharing began.
        # Eraser's basic rule is conservative here: table IS flagged unless
        # initialization is exempted.  We keep the conservative behaviour
        # and simply verify it is not reported as observed.
        assert all(c.verdict != "observed" for c in report.candidates)

    def test_lockset_states_track_protection(self):
        batch, _, _ = analyze("locked")
        states = lockset_candidates(batch)
        shared_states = [
            st for st in states.values()
            if len(st.threads) >= 2 and st.has_write
        ]
        assert shared_states
        assert all(st.lockset for st in shared_states)  # lock 1 everywhere


class TestObservedEvidence:
    def test_reversal_upgrades_verdict(self):
        found_observed = False
        for seed in range(6):
            _, res, report = analyze("racy", delay=0.6, seed=seed)
            if res.stats.races_flagged:
                (c,) = [c for c in report.candidates if c.var_name == "shared"]
                assert c.verdict == "observed"
                found_observed = True
                break
        assert found_observed

    def test_report_ordering_observed_first(self):
        from repro.analyses.races import RaceCandidate, RaceReport

        r = RaceReport(
            candidates=[
                RaceCandidate(1, "b", "unprotected", frozenset(), frozenset(), frozenset(), 1),
                RaceCandidate(0, "a", "observed", frozenset(), frozenset(), frozenset(), 1),
            ]
        )
        r.candidates.sort(key=lambda c: (c.verdict != "observed", c.var_name))
        assert [c.verdict for c in r.candidates] == ["observed", "unprotected"]
        assert len(r.observed) == 1 and len(r.unprotected) == 1

    def test_describe_mentions_threads_and_locs(self):
        _, _, report = analyze("racy")
        text = report.render()
        assert "shared" in text and "no common lock" in text
