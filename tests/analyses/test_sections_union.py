"""Tests for section-level aggregation and multi-run union."""

import pytest

from repro.common.config import ProfilerConfig
from repro.common.errors import ProfilerError
from repro.core import DepType, profile_trace
from repro.analyses import section_dependences, union_of_results
from repro.analyses.sections import TOPLEVEL
from tests.trace_helpers import loc, seq_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def two_loop_trace():
    """Loop A (lines 10-13) writes what loop B (lines 20-23) reads."""
    ops = [("L+", 10)]
    for i in range(4):
        ops += [("Li", 10), ("w", 0x100 + 8 * i, 11, "buf")]
    ops += [("L-", 10, 13), ("L+", 20)]
    for i in range(4):
        ops += [("Li", 20), ("r", 0x100 + 8 * i, 21, "buf")]
    ops += [("L-", 20, 23)]
    return seq_trace(ops)


class TestSections:
    def test_cross_loop_flow_detected(self):
        res = profile_trace(two_loop_trace(), PERFECT)
        deps = section_dependences(res)
        raw = [d for d in deps if d.dep_type is DepType.RAW]
        assert len(raw) == 1
        assert raw[0].source_region == loc(10)
        assert raw[0].sink_region == loc(20)
        assert raw[0].instances == 4

    def test_intra_region_hidden_by_default(self):
        ops = [("L+", 10)]
        for _ in range(3):
            ops += [("Li", 10), ("r", 0x8, 11, "s"), ("w", 0x8, 12, "s")]
        ops += [("L-", 10, 13)]
        res = profile_trace(seq_trace(ops), PERFECT)
        assert section_dependences(res) == []
        intra = section_dependences(res, include_intra=True)
        assert intra and all(
            d.source_region == d.sink_region == loc(10) for d in intra
        )

    def test_toplevel_region(self):
        ops = [("w", 0x8, 1, "g"), ("L+", 10), ("Li", 10), ("r", 0x8, 11, "g"),
               ("L-", 10, 13)]
        res = profile_trace(seq_trace(ops), PERFECT)
        (d,) = [d for d in section_dependences(res) if d.dep_type is DepType.RAW]
        assert d.source_region == TOPLEVEL
        assert d.sink_region == loc(10)
        assert "toplevel" in d.describe()

    def test_init_excluded_by_default(self):
        res = profile_trace(two_loop_trace(), PERFECT)
        assert all(
            d.dep_type is not DepType.INIT for d in section_dependences(res)
        )
        with_init = section_dependences(res, include_init=True, include_intra=True)
        assert any(d.dep_type is DepType.INIT for d in with_init)

    def test_sorted_by_intensity(self):
        res = profile_trace(two_loop_trace(), PERFECT)
        deps = section_dependences(res, include_intra=True, include_init=True)
        counts = [d.instances for d in deps]
        assert counts == sorted(counts, reverse=True)


class TestUnion:
    def test_union_accumulates_new_dependences(self):
        """Different 'inputs' exercise different paths; the union covers both."""
        run_a = profile_trace(
            seq_trace([("w", 0x8, 1, "x"), ("r", 0x8, 2, "x")]), PERFECT
        )
        run_b = profile_trace(
            seq_trace([("w", 0x8, 1, "x"), ("r", 0x8, 3, "x")]), PERFECT
        )
        merged = union_of_results([run_a, run_b])
        sinks = {d.sink_loc for d in merged.store if d.dep_type is DepType.RAW}
        assert sinks == {loc(2), loc(3)}

    def test_union_remaps_variable_ids(self):
        """Runs interning variables in different orders still merge by name."""
        run_a = profile_trace(
            seq_trace([("w", 0x8, 1, "alpha"), ("w", 0x10, 2, "beta"),
                       ("r", 0x8, 3, "alpha")]), PERFECT
        )
        run_b = profile_trace(
            seq_trace([("w", 0x10, 2, "beta"), ("w", 0x8, 1, "alpha"),
                       ("r", 0x8, 3, "alpha")]), PERFECT
        )
        merged = union_of_results([run_a, run_b])
        raws = [d for d in merged.store if d.dep_type is DepType.RAW]
        assert len(raws) == 1  # identical dep despite different intern order
        assert merged.var_name(raws[0].var) == "alpha"

    def test_union_accumulates_loop_iterations(self):
        ops = [("L+", 10), ("Li", 10), ("r", 0x8, 11), ("L-", 10)]
        res = profile_trace(seq_trace(ops), PERFECT)
        merged = union_of_results([res, res, res])
        assert merged.loops[loc(10)].total_iterations == 3
        assert merged.loops[loc(10)].executions == 3

    def test_union_stats_and_instances(self):
        res = profile_trace(
            seq_trace([("w", 0x8, 1, "x"), ("r", 0x8, 2, "x")]), PERFECT
        )
        merged = union_of_results([res, res])
        assert merged.stats.n_accesses == 2 * res.stats.n_accesses
        assert merged.store.instances == 2 * res.store.instances
        assert len(merged.store) == len(res.store)  # same set, just unioned

    def test_union_empty_rejected(self):
        with pytest.raises(ProfilerError):
            union_of_results([])

    def test_union_single_is_identity_on_set(self):
        res = profile_trace(
            seq_trace([("w", 0x8, 1, "x"), ("r", 0x8, 2, "x")]), PERFECT
        )
        merged = union_of_results([res])
        assert merged.store.as_set(with_tids=True, with_carried=True) == {
            d.projected() for d in res.store
        }
