"""Tests for the dependence graph and loop table views."""

from repro.common.config import ProfilerConfig
from repro.core import profile_trace
from repro.analyses import build_dependence_graph, loop_table
from tests.trace_helpers import seq_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def sample_result():
    ops = [("L+", 10)]
    for _ in range(3):
        ops += [("Li", 10), ("r", 0x8, 11, "s"), ("w", 0x8, 12, "s")]
    ops += [("L-", 10, 13)]
    return profile_trace(seq_trace(ops), PERFECT)


class TestDependenceGraph:
    def test_nodes_and_edges(self):
        g = build_dependence_graph(sample_result())
        assert "0:11|0" in g and "0:12|0" in g
        # RAW: write@12 -> read@11; WAR: read@11 -> write@12
        types = {d["dep_type"] for *_, d in g.edges(data=True)}
        assert types == {"RAW", "WAR", "WAW"}

    def test_edge_attributes(self):
        g = build_dependence_graph(sample_result())
        raw_edges = [
            d for *_, d in g.edges(data=True) if d["dep_type"] == "RAW"
        ]
        (raw,) = raw_edges
        assert raw["var"] == "s"
        assert raw["count"] == 2  # iterations 2 and 3
        assert raw["carried"] == ["0:10"]
        assert raw["race"] is False

    def test_init_excluded_by_default_included_on_request(self):
        res = sample_result()
        assert "INIT" not in build_dependence_graph(res)
        g = build_dependence_graph(res, include_init=True)
        assert "INIT" in g

    def test_empty_store(self):
        res = profile_trace(seq_trace([]), PERFECT)
        g = build_dependence_graph(res)
        assert len(g) == 0


class TestLoopTable:
    def test_rows_with_classification(self):
        rows = loop_table(sample_result())
        (row,) = rows
        assert row.site == "0:10"
        assert row.end == "0:13"
        assert row.total_iterations == 3
        assert row.executions == 1
        assert row.mean_iterations == 3.0
        assert row.parallelizable is False  # carried RAW on s, not reduction
        assert "blocked" in row.note

    def test_rows_without_classification(self):
        (row,) = loop_table(sample_result(), classify=False)
        assert row.parallelizable is None
        assert row.note == ""
