"""Tests for dependence-distance analysis and do-across classification."""

import math

from repro.core.deps import DepType
from repro.analyses import dependence_distances, classify_doacross
from repro.analyses.distance import DistanceKey
from repro.common.sourceloc import encode_location
from repro.minivm import ProgramBuilder, run_program
from tests.trace_helpers import loc, seq_trace


class TestDistances:
    def test_distance_one_recurrence(self):
        # a[i] = a[i-1]: every iteration depends on the previous one.
        ops = [("L+", 10)]
        for i in range(1, 6):
            ops += [
                ("Li", 10),
                ("r", 0x100 + 8 * (i - 1), 11, "a"),
                ("w", 0x100 + 8 * i, 12, "a"),
            ]
        ops += [("L-", 10)]
        d = dependence_distances(seq_trace(ops), loc(10))
        key = DistanceKey(DepType.RAW, loc(12), loc(11), 0)
        assert d.min_distance[key] == 1
        assert d.doacross_degree == 1.0

    def test_distance_k_skewed_recurrence(self):
        # a[i] = a[i-3]: three iterations can be in flight.
        k = 3
        ops = [("L+", 10)]
        for i in range(k, 12):
            ops += [
                ("Li", 10),
                ("r", 0x100 + 8 * (i - k), 11, "a"),
                ("w", 0x100 + 8 * i, 12, "a"),
            ]
        ops += [("L-", 10)]
        d = dependence_distances(seq_trace(ops), loc(10))
        assert d.doacross_degree == float(k)

    def test_doall_loop_infinite_degree(self):
        ops = [("L+", 10)]
        for i in range(5):
            ops += [("Li", 10), ("w", 0x100 + 8 * i, 11, "a"),
                    ("r", 0x100 + 8 * i, 12, "a")]
        ops += [("L-", 10)]
        d = dependence_distances(seq_trace(ops), loc(10))
        assert math.isinf(d.doacross_degree)
        assert d.n_independent == 5  # the intra-iteration RAWs

    def test_minimum_over_mixed_distances(self):
        # reads of i-1 and i-4: the min (1) is the schedulability bound.
        ops = [("L+", 10)]
        for i in range(4, 12):
            ops += [
                ("Li", 10),
                ("r", 0x100 + 8 * (i - 1), 11, "a"),
                ("r", 0x100 + 8 * (i - 4), 13, "a"),
                ("w", 0x100 + 8 * i, 12, "a"),
            ]
        ops += [("L-", 10)]
        d = dependence_distances(seq_trace(ops), loc(10))
        assert d.doacross_degree == 1.0
        k4 = DistanceKey(DepType.RAW, loc(12), loc(13), 0)
        assert d.min_distance[k4] == 4

    def test_war_waw_distances_tracked_separately(self):
        # scalar accumulator: RAW/WAR/WAW all at distance 1 (except the
        # intra-iteration WAR).
        ops = [("L+", 10)]
        for _ in range(4):
            ops += [("Li", 10), ("r", 0x8, 11, "s"), ("w", 0x8, 12, "s")]
        ops += [("L-", 10)]
        d = dependence_distances(seq_trace(ops), loc(10))
        types = {k.dep_type for k in d.min_distance}
        assert DepType.RAW in types and DepType.WAW in types
        assert d.min_distance[DistanceKey(DepType.RAW, loc(12), loc(11), 0)] == 1

    def test_accesses_outside_loop_ignored(self):
        ops = [("w", 0x8, 1, "x"), ("L+", 10), ("Li", 10),
               ("r", 0x8, 11, "x"), ("L-", 10), ("r", 0x8, 2, "x")]
        d = dependence_distances(seq_trace(ops), loc(10))
        assert d.min_distance == {}  # pre-loop write isn't an intra-loop dep

    def test_multiple_dynamic_executions_reset_state(self):
        """The last iteration of execution 1 must not link to the first
        iteration of execution 2."""
        ops = []
        for _ in range(2):
            ops += [("L+", 10), ("Li", 10), ("r", 0x8, 11, "s"),
                    ("w", 0x8, 12, "s"), ("L-", 10)]
        d = dependence_distances(seq_trace(ops), loc(10))
        assert d.min_distance == {}  # within one iteration only -> distance 0

    def test_minivm_end_to_end(self):
        b = ProgramBuilder("skew")
        a = b.global_array("a", 32)
        with b.function("main") as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 32):
                f.store(a, i, i)
            with f.for_loop(i, 2, 32) as skewed:
                f.store(a, i, f.load(a, i - 2) + 1)
        batch = run_program(b.build())
        site = encode_location(0, skewed.line)
        d = dependence_distances(batch, site)
        assert d.doacross_degree == 2.0

    def test_classify_many(self):
        batch = seq_trace(
            [("L+", 10), ("Li", 10), ("r", 0x8, 11), ("L-", 10),
             ("L+", 20), ("Li", 20), ("w", 0x10, 21), ("L-", 20)]
        )
        result = classify_doacross(batch, [loc(10), loc(20)])
        assert set(result) == {loc(10), loc(20)}
        assert all(math.isinf(r.doacross_degree) for r in result.values())
