"""Tests for dependence records and the merging store."""

from repro.core.deps import DepType, Dependence, DependenceStore, set_rates


def dep(t=DepType.RAW, sink=10, src=5, var=0, tid=0, stid=0, carried=(), race=False):
    return Dependence(
        t, sink_loc=sink, sink_tid=tid, source_loc=src, source_tid=stid,
        var=var, carried=frozenset(carried), race=race,
    )


class TestDependence:
    def test_hashable_and_equal(self):
        assert dep() == dep()
        assert hash(dep()) == hash(dep())
        assert dep() != dep(src=6)

    def test_carried_query(self):
        d = dep(carried=(100, 200))
        assert d.is_carried_for(100)
        assert not d.is_carried_for(300)

    def test_projection_levels(self):
        d = dep(tid=1, stid=2, carried=(7,))
        full = d.projected()
        no_tid = d.projected(with_tids=False)
        assert len(full) > len(no_tid)
        assert d.projected(with_carried=False) != full


class TestStore:
    def test_merging_identical_instances(self):
        s = DependenceStore()
        for _ in range(1000):
            s.add(dep())
        assert len(s) == 1
        assert s.instances == 1000

    def test_distinct_entries_kept(self):
        s = DependenceStore()
        s.add(dep(src=1))
        s.add(dep(src=2))
        s.add(dep(t=DepType.WAW, src=1))
        assert len(s) == 3

    def test_at_sink_grouping(self):
        s = DependenceStore()
        s.add(dep(sink=10))
        s.add(dep(sink=10, src=9))
        s.add(dep(sink=20))
        assert len(s.at_sink(10)) == 2
        assert len(s.at_sink(20)) == 1
        assert s.at_sink(99) == set()
        assert s.n_sinks == 2

    def test_merge_stores(self):
        a, b = DependenceStore(), DependenceStore()
        a.add(dep(src=1))
        b.add(dep(src=1))  # duplicate across stores
        b.add(dep(src=2))
        a.merge(b)
        assert len(a) == 2
        assert a.instances == 3

    def test_count_by_type(self):
        s = DependenceStore()
        s.add(dep(t=DepType.RAW))
        s.add(dep(t=DepType.WAR))
        s.add(dep(t=DepType.WAR, src=9))
        counts = s.count_by_type()
        assert counts[DepType.RAW] == 1
        assert counts[DepType.WAR] == 2
        assert counts[DepType.INIT] == 0

    def test_races_listing(self):
        s = DependenceStore()
        s.add(dep())
        s.add(dep(src=99, race=True))
        assert [d.source_loc for d in s.races()] == [99]

    def test_sorted_entries_deterministic(self):
        s1, s2 = DependenceStore(), DependenceStore()
        deps = [dep(src=i % 3, sink=10 + i % 2) for i in range(10)]
        for d in deps:
            s1.add(d)
        for d in reversed(deps):
            s2.add(d)
        assert s1.sorted_entries() == s2.sorted_entries()

    def test_equality(self):
        s1, s2 = DependenceStore(), DependenceStore()
        s1.add(dep())
        s2.add(dep())
        s2.add(dep())  # merged away
        assert s1 == s2

    def test_add_merged_counts(self):
        s = DependenceStore()
        s.add_merged(dep(), count=500)
        assert len(s) == 1
        assert s.instances == 500


class TestSetRates:
    def test_identical_sets_zero_rates(self):
        a, b = DependenceStore(), DependenceStore()
        for d in (dep(src=1), dep(src=2)):
            a.add(d)
            b.add(d)
        r = set_rates(a, b)
        assert r.fpr == 0.0 and r.fnr == 0.0

    def test_false_positive_counted(self):
        rep, base = DependenceStore(), DependenceStore()
        rep.add(dep(src=1))
        rep.add(dep(src=999))  # spurious
        base.add(dep(src=1))
        r = set_rates(rep, base)
        assert r.false_positives == 1
        assert r.fpr == 0.5
        assert r.fnr == 0.0

    def test_false_negative_counted(self):
        rep, base = DependenceStore(), DependenceStore()
        base.add(dep(src=1))
        base.add(dep(src=2))
        rep.add(dep(src=1))
        r = set_rates(rep, base)
        assert r.false_negatives == 1
        assert r.fnr == 0.5

    def test_empty_sets(self):
        r = set_rates(DependenceStore(), DependenceStore())
        assert r.fpr == 0.0 and r.fnr == 0.0

    def test_projection_can_forgive_tids(self):
        rep, base = DependenceStore(), DependenceStore()
        rep.add(dep(tid=1))
        base.add(dep(tid=2))
        assert set_rates(rep, base).fpr == 1.0
        assert set_rates(rep, base, with_tids=False).fpr == 0.0
