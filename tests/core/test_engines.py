"""Semantic tests of Algorithm 1, run against BOTH engines.

Every test in ``TestAlgorithmSemantics`` is parameterized over the reference
and vectorized engines — they must agree on everything down to instance
counts.
"""

import pytest

from repro.common.config import ProfilerConfig
from repro.core import DepType, profile_trace
from repro.core.deps import Dependence

from tests.trace_helpers import loc, seq_trace

PERFECT = ProfilerConfig(perfect_signature=True)
ENGINES = ["reference", "vectorized"]


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


def deps_of(result, dep_type):
    return {
        (d.sink_loc, d.source_loc, d.var)
        for d in result.store
        if d.dep_type == dep_type
    }


class TestAlgorithmSemantics:
    def test_raw(self, engine):
        batch = seq_trace([("w", 0x100, 1, "x"), ("r", 0x100, 2, "x")])
        res = profile_trace(batch, PERFECT, engine)
        assert deps_of(res, DepType.RAW) == {(loc(2), loc(1), 0)}

    def test_war_requires_prior_write(self, engine):
        """Algorithm 1 suppresses the WAR a *first* write would form: the
        INIT branch returns early (see the pseudocode's else-structure)."""
        batch = seq_trace([("r", 0x100, 1, "x"), ("w", 0x100, 2, "x")])
        res = profile_trace(batch, PERFECT, engine)
        assert deps_of(res, DepType.WAR) == set()
        assert deps_of(res, DepType.INIT) == {(loc(2), -1, -1)}

    def test_war_after_init(self, engine):
        batch = seq_trace(
            [("w", 0x100, 1, "x"), ("r", 0x100, 2, "x"), ("w", 0x100, 3, "x")]
        )
        res = profile_trace(batch, PERFECT, engine)
        assert deps_of(res, DepType.WAR) == {(loc(3), loc(2), 0)}
        assert deps_of(res, DepType.WAW) == {(loc(3), loc(1), 0)}

    def test_waw(self, engine):
        batch = seq_trace([("w", 0x100, 1, "x"), ("w", 0x100, 2, "x")])
        res = profile_trace(batch, PERFECT, engine)
        assert deps_of(res, DepType.WAW) == {(loc(2), loc(1), 0)}

    def test_init_only_for_first_write(self, engine):
        batch = seq_trace([("w", 0x100, 1), ("w", 0x100, 2), ("w", 0x200, 3)])
        res = profile_trace(batch, PERFECT, engine)
        assert deps_of(res, DepType.INIT) == {(loc(1), -1, -1), (loc(3), -1, -1)}

    def test_rar_ignored(self, engine):
        batch = seq_trace([("r", 0x100, 1), ("r", 0x100, 2)])
        res = profile_trace(batch, PERFECT, engine)
        assert len(res.store) == 0

    def test_raw_source_is_last_write(self, engine):
        batch = seq_trace(
            [("w", 0x100, 1, "x"), ("w", 0x100, 2, "x"), ("r", 0x100, 3, "x")]
        )
        res = profile_trace(batch, PERFECT, engine)
        assert deps_of(res, DepType.RAW) == {(loc(3), loc(2), 0)}

    def test_war_source_is_last_read(self, engine):
        batch = seq_trace(
            [
                ("w", 0x100, 1, "x"),
                ("r", 0x100, 2, "x"),
                ("r", 0x100, 3, "x"),
                ("w", 0x100, 4, "x"),
            ]
        )
        res = profile_trace(batch, PERFECT, engine)
        assert deps_of(res, DepType.WAR) == {(loc(4), loc(3), 0)}

    def test_addresses_independent(self, engine):
        batch = seq_trace([("w", 0x100, 1), ("r", 0x200, 2)])
        res = profile_trace(batch, PERFECT, engine)
        assert deps_of(res, DepType.RAW) == set()

    def test_dep_instances_counted(self, engine):
        ops = [("w", 0x100, 1)] + [("r", 0x100, 2)] * 50
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        assert res.stats.dep_instances[DepType.RAW] == 50
        assert len(res.store) == 2  # one INIT + one merged RAW
        assert res.merge_reduction_factor > 20

    def test_variable_name_from_source_access(self, engine):
        batch = seq_trace([("w", 0x100, 1, "alpha"), ("r", 0x100, 2, "beta")])
        res = profile_trace(batch, PERFECT, engine)
        (d,) = [d for d in res.store if d.dep_type == DepType.RAW]
        assert res.var_name(d.var) == "alpha"

    def test_stats_counts(self, engine):
        batch = seq_trace([("w", 0x100, 1), ("r", 0x100, 2), ("r", 0x200, 3)])
        res = profile_trace(batch, PERFECT, engine)
        assert res.stats.n_writes == 1
        assert res.stats.n_reads == 2
        assert res.stats.n_accesses == 3
        assert res.stats.n_unique_addresses == 2


class TestLifetimeAnalysis:
    def test_free_breaks_dependences_across_lifetimes(self, engine):
        """After free(), a reused address must not link to the old variable
        (Section III-B variable lifetime analysis)."""
        batch = seq_trace(
            [
                ("alloc", 0x1000, 64, 1),
                ("w", 0x1000, 2, "a"),
                ("free", 0x1000, 64, 3),
                ("alloc", 0x1000, 64, 4),
                ("r", 0x1000, 5, "b"),  # fresh lifetime: no RAW from line 2
            ]
        )
        res = profile_trace(batch, PERFECT, engine)
        assert deps_of(res, DepType.RAW) == set()

    def test_free_applies_to_whole_range(self, engine):
        ops = [("w", 0x1000 + 8 * i, 1) for i in range(8)]
        ops.append(("free", 0x1000, 64, 2))
        ops += [("w", 0x1000 + 8 * i, 3) for i in range(8)]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        # Second round of writes are INITs again, not WAWs.
        assert deps_of(res, DepType.WAW) == set()
        assert deps_of(res, DepType.INIT) == {(loc(1), -1, -1), (loc(3), -1, -1)}

    def test_free_outside_range_keeps_deps(self, engine):
        batch = seq_trace(
            [
                ("w", 0x1000, 1, "a"),
                ("free", 0x2000, 64, 2),  # different range
                ("r", 0x1000, 3, "a"),
            ]
        )
        res = profile_trace(batch, PERFECT, engine)
        assert deps_of(res, DepType.RAW) == {(loc(3), loc(1), 0)}

    def test_lifetime_disabled_keeps_stale_deps(self, engine):
        cfg = PERFECT.with_(track_lifetime=False)
        batch = seq_trace(
            [("w", 0x1000, 1, "a"), ("free", 0x1000, 64, 2), ("r", 0x1000, 3, "b")]
        )
        res = profile_trace(batch, cfg, engine)
        assert deps_of(res, DepType.RAW) == {(loc(3), loc(1), 0)}


class TestLoopCarried:
    def test_carried_raw_across_iterations(self, engine):
        # for i: { read s (line 11); write s (line 12) }  -- s carried
        ops = [("L+", 10)]
        for _ in range(3):
            ops += [("Li", 10), ("r", 0x100, 11, "s"), ("w", 0x100, 12, "s")]
        ops += [("L-", 10)]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        raws = [d for d in res.store if d.dep_type == DepType.RAW]
        assert len(raws) == 1
        assert raws[0].carried == frozenset({loc(10)})

    def test_intra_iteration_dep_not_carried(self, engine):
        # for i: { write t (line 11); read t (line 12) } -- t private-ish
        ops = [("L+", 10)]
        for it in range(3):
            addr = 0x100  # same address but written before read each iter
            ops += [("Li", 10), ("w", addr, 11, "t"), ("r", addr, 12, "t")]
        ops += [("L-", 10)]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        raws = [d for d in res.store if d.dep_type == DepType.RAW]
        assert len(raws) == 1
        assert raws[0].carried == frozenset()
        # but the write-after-read ACROSS iterations is carried:
        wars = [d for d in res.store if d.dep_type == DepType.WAR]
        assert len(wars) == 1
        assert wars[0].carried == frozenset({loc(10)})

    def test_independent_iterations_produce_no_carried_deps(self, engine):
        ops = [("L+", 10)]
        for it in range(4):
            addr = 0x100 + 8 * it  # disjoint element per iteration
            ops += [("Li", 10), ("w", addr, 11, "a"), ("r", addr, 12, "a")]
        ops += [("L-", 10)]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        assert all(d.carried == frozenset() for d in res.store)

    def test_nested_loops_carried_on_correct_level(self, engine):
        # outer loop 10, inner loop 20; dep crosses inner iterations only.
        ops = [("L+", 10)]
        for _ in range(2):
            ops += [("Li", 10), ("L+", 20)]
            for _ in range(2):
                ops += [("Li", 20), ("r", 0x100, 21, "s"), ("w", 0x100, 22, "s")]
            ops += [("L-", 20)]
        ops += [("L-", 10)]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        raws = [d for d in res.store if d.dep_type == DepType.RAW]
        carried_sets = {d.carried for d in raws}
        # Reads in inner iteration 2 see the write of inner iteration 1:
        # carried w.r.t. the inner loop only.
        assert frozenset({loc(20)}) in carried_sets
        # The first read of the second outer iteration sees the write of the
        # previous OUTER iteration; the inner loop was re-entered after that
        # write, so the dep is carried w.r.t. the outer loop only.
        assert frozenset({loc(10)}) in carried_sets
        # WARs pair each write with the same-iteration read: never carried.
        wars = [d for d in res.store if d.dep_type == DepType.WAR]
        assert {d.carried for d in wars} == {frozenset()}

    def test_dep_to_preloop_source_not_carried(self, engine):
        ops = [("w", 0x100, 1, "s"), ("L+", 10), ("Li", 10), ("r", 0x100, 11, "s"), ("L-", 10)]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        (d,) = [d for d in res.store if d.dep_type == DepType.RAW]
        assert d.carried == frozenset()

    def test_loop_info_iteration_counts(self, engine):
        ops = [("L+", 10)]
        for _ in range(7):
            ops += [("Li", 10), ("r", 0x8, 11)]
        ops += [("L-", 10)]
        res = profile_trace(seq_trace(ops), PERFECT, engine)
        assert res.loops[loc(10)].total_iterations == 7


class TestMultithreadedTargets:
    def test_cross_thread_dep_records_tids(self, engine):
        batch = seq_trace(
            [("tid", 1), ("w", 0x100, 1, "g"), ("tid", 2), ("r", 0x100, 2, "g")]
        )
        res = profile_trace(batch, PERFECT.with_(multithreaded_target=True), engine)
        (d,) = [d for d in res.store if d.dep_type == DepType.RAW]
        assert (d.sink_tid, d.source_tid) == (2, 1)
        assert res.multithreaded

    def test_timestamp_reversal_flags_race(self, engine):
        from repro.trace import TraceRecorder

        r = TraceRecorder()
        v = r.intern_var("flag")
        ts1 = r.next_ts()  # thread 1's access happens first...
        ts2 = r.next_ts()  # ...then thread 2's...
        r.write(0x8, loc=loc(5), var=v, tid=2, ts=ts2)  # ...but pushes first
        r.read(0x8, loc=loc(6), var=v, tid=1, ts=ts1)
        res = profile_trace(r.build(), PERFECT.with_(multithreaded_target=True), engine)
        (d,) = [d for d in res.store if d.dep_type == DepType.RAW]
        assert d.race
        assert res.stats.races_flagged == 1

    def test_ordered_pushes_not_flagged(self, engine):
        batch = seq_trace(
            [("tid", 1), ("w", 0x8, 5, "f"), ("tid", 2), ("r", 0x8, 6, "f")]
        )
        res = profile_trace(batch, PERFECT.with_(multithreaded_target=True), engine)
        assert res.stats.races_flagged == 0
        assert all(not d.race for d in res.store)


class TestSignatureMode:
    def test_large_signature_matches_perfect(self, engine):
        ops = []
        for i in range(40):
            ops.append(("w", 0x1000 + 8 * i, 1, "arr"))
            ops.append(("r", 0x1000 + 8 * i, 2, "arr"))
        batch = seq_trace(ops)
        sig = profile_trace(batch, ProfilerConfig(signature_slots=1 << 20), engine)
        per = profile_trace(batch, PERFECT, engine)
        assert sig.store == per.store

    def test_tiny_signature_conflates(self, engine):
        """With one slot everything collides: reads see the last write to
        *any* address (false positives, Table I mechanism)."""
        batch = seq_trace([("w", 0x100, 1, "a"), ("r", 0x999000, 2, "b")])
        res = profile_trace(batch, ProfilerConfig(signature_slots=1), engine)
        assert deps_of(res, DepType.RAW) == {(loc(2), loc(1), 0)}

    def test_empty_trace(self, engine):
        from repro.trace import TraceBuilder

        res = profile_trace(TraceBuilder().build(), PERFECT, engine)
        assert len(res.store) == 0
        assert res.stats.n_accesses == 0


def test_unknown_engine_rejected():
    from repro.common.errors import ProfilerError
    from repro.core import DependenceProfiler

    with pytest.raises(ProfilerError):
        DependenceProfiler(engine="quantum")
