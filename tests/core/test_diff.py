"""Tests for the dependence-listing diff tool."""

from repro.common.config import ProfilerConfig
from repro.core import diff_outputs, format_dependences, profile_trace
from tests.trace_helpers import seq_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def listing(ops):
    return format_dependences(profile_trace(seq_trace(ops), PERFECT))


class TestDiffOutputs:
    def test_identical(self):
        a = listing([("w", 0x8, 1, "x"), ("r", 0x8, 2, "x")])
        d = diff_outputs(a, a)
        assert d.identical
        assert "identical" in d.render()
        assert len(d.common) == 2  # INIT + RAW

    def test_asymmetric_difference(self):
        a = listing([("w", 0x8, 1, "x"), ("r", 0x8, 2, "x")])
        b = listing([("w", 0x8, 1, "x"), ("r", 0x8, 3, "x")])
        d = diff_outputs(a, b)
        assert not d.identical
        assert len(d.only_a) == 1 and len(d.only_b) == 1
        text = d.render("runA", "runB")
        assert "only runA" in text and "only runB" in text
        assert "0:2" in text and "0:3" in text

    def test_iteration_counts_ignored(self):
        """Loop iteration totals differ across inputs; records do not."""
        def run(n):
            ops = [("L+", 10)]
            for _ in range(n):
                ops += [("Li", 10), ("r", 0x8, 11, "s"), ("w", 0x8, 12, "s")]
            ops += [("L-", 10)]
            return listing(ops)

        d = diff_outputs(run(3), run(7))
        assert d.identical

    def test_superset_detected(self):
        a = listing([("w", 0x8, 1, "x")])
        b = listing([("w", 0x8, 1, "x"), ("r", 0x8, 2, "x")])
        d = diff_outputs(a, b)
        assert not d.only_a and len(d.only_b) == 1

    def test_cli_diff(self, tmp_path, capsys):
        from repro.cli import main

        fa = tmp_path / "a.deps"
        fb = tmp_path / "b.deps"
        fa.write_text(listing([("w", 0x8, 1, "x"), ("r", 0x8, 2, "x")]))
        fb.write_text(listing([("w", 0x8, 1, "x"), ("r", 0x8, 3, "x")]))
        assert main(["diff", str(fa), str(fb)]) == 1
        assert "only" in capsys.readouterr().out
        fb.write_text(fa.read_text())
        assert main(["diff", str(fa), str(fb)]) == 0
