"""Tests for the Figure 1/3 output format writer and parser."""

import pytest

from repro.common.config import ProfilerConfig
from repro.core import format_dependences, parse_dependences, profile_trace
from tests.trace_helpers import seq_trace

PERFECT = ProfilerConfig(perfect_signature=True)


def profile_ops(ops, **cfg):
    return profile_trace(seq_trace(ops), PERFECT.with_(**cfg) if cfg else PERFECT)


class TestSequentialFormat:
    def test_figure1_shape(self):
        ops = [("L+", 60)]
        for _ in range(3):
            ops += [("Li", 60), ("r", 0x100, 63, "temp1"), ("w", 0x100, 67, "temp1")]
        ops += [("L-", 60, 74)]  # loop body ends at line 74
        text = format_dependences(profile_ops(ops))
        lines = text.splitlines()
        assert lines[0] == "0:60 BGN loop"
        assert any(l.startswith("0:63 NOM {RAW 0:67|temp1}") for l in lines)
        assert lines[-1] == "0:74 END loop 3"

    def test_init_record_is_star(self):
        text = format_dependences(profile_ops([("w", 0x100, 5, "x")]))
        assert text == "0:5 NOM {INIT *}\n"

    def test_deps_sorted_raw_war_waw_init(self):
        ops = [
            ("w", 0x200, 1, "y"),
            ("w", 0x100, 1, "x"),
            ("r", 0x100, 2, "x"),
            # line 3 does read+write: gets RAW, WAR, WAW and an INIT at once
            ("r", 0x200, 3, "y"),
            ("w", 0x100, 3, "x"),
            ("w", 0x300, 3, "z"),
        ]
        text = format_dependences(profile_ops(ops))
        line3 = next(l for l in text.splitlines() if l.startswith("0:3 NOM"))
        i_raw = line3.index("{RAW")
        i_war = line3.index("{WAR")
        i_waw = line3.index("{WAW")
        i_init = line3.index("{INIT")
        assert i_raw < i_war < i_waw < i_init

    def test_sequential_sink_has_no_tid(self):
        text = format_dependences(profile_ops([("w", 0x8, 1), ("r", 0x8, 2)]))
        assert "|" not in text.splitlines()[0].split(" NOM")[0]

    def test_empty_result(self):
        assert format_dependences(profile_ops([])) == ""

    def test_end_loop_uses_exit_location_when_distinct(self):
        from repro.trace import TraceRecorder
        from tests.trace_helpers import loc

        # A recorder-level trace where the loop exit has its own line is
        # exercised via LoopInfo.end_loc defaulting to the site here.
        ops = [("L+", 10), ("Li", 10), ("r", 0x8, 11), ("L-", 10)]
        text = format_dependences(profile_ops(ops))
        assert "0:10 END loop 1" in text


class TestMultithreadedFormat:
    def test_figure3_shape(self):
        ops = [("tid", 1), ("w", 0x100, 58, "iter"), ("tid", 2), ("r", 0x100, 64, "iter")]
        text = format_dependences(
            profile_ops(ops, multithreaded_target=True)
        )
        assert "0:64|2 NOM {RAW 0:58|1|iter}" in text

    def test_verbose_race_annotation(self):
        from repro.trace import TraceRecorder
        from tests.trace_helpers import loc

        r = TraceRecorder()
        v = r.intern_var("f")
        t1, t2 = r.next_ts(), r.next_ts()
        r.write(0x8, loc=loc(5), var=v, tid=2, ts=t2)
        r.read(0x8, loc=loc(6), var=v, tid=1, ts=t1)
        res = profile_trace(r.build(), PERFECT.with_(multithreaded_target=True))
        text = format_dependences(res, verbose=True)
        assert "[race]" in text
        # non-verbose output hides the annotation
        assert "[race]" not in format_dependences(res)

    def test_verbose_carried_annotation(self):
        ops = [("L+", 10)]
        for _ in range(2):
            ops += [("Li", 10), ("r", 0x8, 11, "s"), ("w", 0x8, 12, "s")]
        ops += [("L-", 10)]
        text = format_dependences(profile_ops(ops), verbose=True)
        line11 = next(l for l in text.splitlines() if l.startswith("0:11"))
        assert "[carried 0:10]" in line11


class TestParser:
    def test_roundtrip_sequential(self):
        ops = [("L+", 60)]
        for _ in range(2):
            ops += [
                ("Li", 60),
                ("w", 0x100, 61, "i"),
                ("r", 0x100, 62, "i"),
                ("w", 0x200, 63, "j"),
            ]
        ops += [("L-", 60)]
        res = profile_ops(ops)
        parsed = parse_dependences(format_dependences(res))
        assert ("0:62", 0) in parsed.nom
        assert ("RAW", "0:61", 0, "i") in parsed.nom[("0:62", 0)]
        assert parsed.loops_ended["0:60"] == 2
        assert parsed.loops_begun == ["0:60"]

    def test_roundtrip_multithreaded(self):
        ops = [("tid", 1), ("w", 0x100, 58, "z"), ("tid", 2), ("r", 0x100, 64, "z")]
        res = profile_ops(ops, multithreaded_target=True)
        parsed = parse_dependences(format_dependences(res))
        assert ("RAW", "0:58", 1, "z") in parsed.nom[("0:64", 2)]

    def test_roundtrip_verbose(self):
        ops = [("L+", 10), ("Li", 10), ("r", 0x8, 11, "s"), ("Li", 10),
               ("w", 0x8, 12, "s"), ("L-", 10)]
        res = profile_ops(ops)
        parsed = parse_dependences(format_dependences(res, verbose=True))
        assert ("0:12", 0) in parsed.nom

    def test_parse_init(self):
        parsed = parse_dependences("1:5 NOM {INIT *}\n")
        assert parsed.nom[("1:5", 0)] == {("INIT", "*", -1, "*")}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_dependences("1:5 XYZ {RAW 1:1|x}")

    def test_parse_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            parse_dependences("1:5 NOM {WAWAW 1:1|x}")

    def test_parse_paper_figure1_fragment(self):
        """The exact records of Figure 1 parse cleanly."""
        text = (
            "1:60 BGN loop\n"
            "1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}\n"
            "1:63 NOM {RAW 1:59|temp1} {RAW 1:67|temp1}\n"
            "1:74 NOM {RAW 1:41|block}\n"
            "1:74 END loop 1200\n"
        )
        parsed = parse_dependences(text)
        assert ("RAW", "1:59", 0, "temp1") in parsed.nom[("1:63", 0)]
        assert parsed.loops_ended["1:74"] == 1200

    def test_parse_paper_figure3_fragment(self):
        """The exact records of Figure 3 (thread ids) parse cleanly."""
        text = (
            "4:58|2 NOM {WAR 4:77|2|iter}\n"
            "4:64|3 NOM {RAW 3:75|0|maxiter} {RAW 4:58|3|iter}\n"
            "4:80|1 NOM {WAW 4:80|1|green} {INIT *}\n"
        )
        parsed = parse_dependences(text)
        assert ("WAR", "4:77", 2, "iter") in parsed.nom[("4:58", 2)]
        assert ("WAW", "4:80", 1, "green") in parsed.nom[("4:80", 1)]
        assert ("INIT", "*", -1, "*") in parsed.nom[("4:80", 1)]
