"""Property test for the lexsort-based row dedup inside the vectorized
engine — it must agree with numpy's reference implementation exactly."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.vectorized import _unique_rows


@settings(max_examples=100, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.integers(-5, 5), st.integers(0, 3), st.integers(-1, 1)
        ),
        max_size=200,
    )
)
def test_matches_numpy_unique(data):
    if data:
        matrix = np.array(data, dtype=np.int64)
    else:
        matrix = np.zeros((0, 3), dtype=np.int64)
    cols = [matrix[:, j].copy() for j in range(3)]
    got_cols, got_counts = _unique_rows(cols)
    exp_rows, exp_counts = np.unique(matrix, axis=0, return_counts=True)
    got = sorted(zip(map(tuple, zip(*(c.tolist() for c in got_cols))), got_counts.tolist()))
    exp = sorted(zip(map(tuple, exp_rows.tolist()), exp_counts.tolist()))
    assert got == exp
    assert int(got_counts.sum()) == len(data)


def test_single_column():
    (u,), c = _unique_rows([np.array([3, 1, 3, 3], dtype=np.int64)])
    assert u.tolist() == [1, 3]
    assert c.tolist() == [1, 3]


def test_empty():
    cols, counts = _unique_rows([np.zeros(0, dtype=np.int64)] * 4)
    assert all(len(c) == 0 for c in cols)
    assert len(counts) == 0
