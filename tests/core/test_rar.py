"""Tests for the optional read-after-read recording (``ignore_rar=False``)."""

import pytest
from hypothesis import given, settings

from repro.common.config import ProfilerConfig
from repro.core import DependenceProfiler, DepType, profile_trace
from tests.core.test_engine_equivalence import random_ops
from tests.trace_helpers import loc, seq_trace

WITH_RAR = ProfilerConfig(perfect_signature=True, ignore_rar=False)
DEFAULT = ProfilerConfig(perfect_signature=True)
ENGINES = ["reference", "vectorized"]


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


class TestRarSemantics:
    def test_rar_recorded_when_enabled(self, engine):
        batch = seq_trace([("r", 0x8, 1, "x"), ("r", 0x8, 2, "x")])
        res = profile_trace(batch, WITH_RAR, engine)
        rars = [d for d in res.store if d.dep_type is DepType.RAR]
        assert [(d.sink_loc, d.source_loc) for d in rars] == [(loc(2), loc(1))]
        assert res.stats.dep_instances[DepType.RAR] == 1

    def test_rar_ignored_by_default(self, engine):
        """The paper's default: RAR dependences are dropped entirely."""
        batch = seq_trace([("r", 0x8, 1, "x"), ("r", 0x8, 2, "x")])
        res = profile_trace(batch, DEFAULT, engine)
        assert len(res.store) == 0
        assert res.stats.dep_instances[DepType.RAR] == 0

    def test_rar_source_is_last_read(self, engine):
        batch = seq_trace(
            [("r", 0x8, 1, "x"), ("r", 0x8, 2, "x"), ("r", 0x8, 3, "x")]
        )
        res = profile_trace(batch, WITH_RAR, engine)
        sinks = {
            d.sink_loc: d.source_loc
            for d in res.store
            if d.dep_type is DepType.RAR
        }
        assert sinks == {loc(2): loc(1), loc(3): loc(2)}

    def test_rar_does_not_change_other_types(self, engine):
        ops = [("w", 0x8, 1, "x"), ("r", 0x8, 2, "x"), ("r", 0x8, 3, "x"),
               ("w", 0x8, 4, "x")]
        with_r = profile_trace(seq_trace(ops), WITH_RAR, engine)
        without = profile_trace(seq_trace(ops), DEFAULT, engine)
        strip = lambda res: {
            d.projected() for d in res.store if d.dep_type is not DepType.RAR
        }
        assert strip(with_r) == strip(without)

    def test_rar_carried_classification(self, engine):
        ops = [("L+", 10)]
        for _ in range(3):
            ops += [("Li", 10), ("r", 0x8, 11, "t")]
        ops += [("L-", 10)]
        res = profile_trace(seq_trace(ops), WITH_RAR, engine)
        (d,) = [d for d in res.store if d.dep_type is DepType.RAR]
        assert d.carried == frozenset({loc(10)})


@settings(max_examples=30, deadline=None)
@given(ops=random_ops())
def test_rar_engine_equivalence(ops):
    batch = seq_trace(ops)
    ref = DependenceProfiler(WITH_RAR, "reference").profile(batch)
    vec = DependenceProfiler(WITH_RAR, "vectorized").profile(batch)
    assert ref.store == vec.store
    assert ref.stats.dep_instances == vec.stats.dep_instances
    assert ref.stats.races_flagged == vec.stats.races_flagged


def test_rar_in_output_format():
    from repro.core import format_dependences, parse_dependences

    batch = seq_trace([("r", 0x8, 1, "x"), ("r", 0x8, 2, "x")])
    res = profile_trace(batch, WITH_RAR)
    text = format_dependences(res)
    assert "{RAR 0:1|x}" in text
    parsed = parse_dependences(text)
    assert ("RAR", "0:1", 0, "x") in parsed.nom[("0:2", 0)]
