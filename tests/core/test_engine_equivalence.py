"""Property-based equivalence: vectorized engine == reference engine.

Random event streams (reads/writes/frees/loops over a small address pool so
collisions and revisits are frequent) must produce byte-identical dependence
stores, instance counts, and race counts under both engines, for both
perfect and signature tracking.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import ProfilerConfig
from repro.core import DependenceProfiler
from tests.trace_helpers import seq_trace


@st.composite
def random_ops(draw):
    """A well-formed op list mixing accesses, frees, loops, and threads."""
    n = draw(st.integers(min_value=0, max_value=120))
    ops = []
    open_loops: dict[int, list[int]] = {}  # per tid loop stacks
    tid = 0
    next_line = [100]

    def line():
        next_line[0] += 1
        return next_line[0]

    addr_pool = [0x1000 + 8 * i for i in range(12)]
    loop_sites = [10, 20, 30]
    for _ in range(n):
        stack = open_loops.setdefault(tid, [])
        choices = ["r", "w", "free", "tid"]
        if stack:
            choices += ["Li", "L-"]
        if len(stack) < len(loop_sites):
            choices.append("L+")
        op = draw(st.sampled_from(choices))
        if op == "r" or op == "w":
            # accesses inside a loop body require an iteration to have begun
            if stack and not draw(st.booleans()):
                ops.append(("Li", stack[-1]))
            addr = draw(st.sampled_from(addr_pool))
            var = draw(st.sampled_from(["a", "b", "c"]))
            ops.append((op, addr, draw(st.integers(1, 9)), var))
        elif op == "free":
            base = draw(st.sampled_from(addr_pool))
            size = draw(st.sampled_from([8, 16, 64]))
            ops.append(("free", base, size, line()))
        elif op == "L+":
            site = loop_sites[len(stack)]
            stack.append(site)
            ops.append(("L+", site))
            ops.append(("Li", site))  # loops always begin an iteration
        elif op == "Li":
            ops.append(("Li", stack[-1]))
        elif op == "L-":
            ops.append(("L-", stack.pop()))
        elif op == "tid":
            tid = draw(st.integers(0, 2))
            ops.append(("tid", tid))
    # close all loops
    for t, stack in open_loops.items():
        ops.append(("tid", t))
        while stack:
            ops.append(("L-", stack.pop()))
    return ops


CONFIGS = [
    ProfilerConfig(perfect_signature=True),
    ProfilerConfig(signature_slots=1 << 16),
    ProfilerConfig(signature_slots=7),  # heavy collisions
    ProfilerConfig(signature_slots=1 << 16, track_lifetime=False),
]
CONFIG_IDS = ["perfect", "sig-64k", "sig-7", "no-lifetime"]


@pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
@settings(max_examples=60, deadline=None)
@given(ops=random_ops())
def test_engines_equivalent(config, ops):
    batch = seq_trace(ops)
    ref = DependenceProfiler(config, "reference").profile(batch)
    vec = DependenceProfiler(config, "vectorized").profile(batch)
    assert ref.store == vec.store
    assert ref.store.instances == vec.store.instances
    assert ref.stats.dep_instances == vec.stats.dep_instances
    assert ref.stats.races_flagged == vec.stats.races_flagged
    assert ref.stats.n_accesses == vec.stats.n_accesses


@settings(max_examples=25, deadline=None)
@given(ops=random_ops(), salt=st.integers(0, 3))
def test_salt_affects_only_collisions(ops, salt):
    """Different salts may change collision-induced deps, but both engines
    must still agree with each other under the same salt."""
    config = ProfilerConfig(signature_slots=13, hash_salt=salt)
    batch = seq_trace(ops)
    ref = DependenceProfiler(config, "reference").profile(batch)
    vec = DependenceProfiler(config, "vectorized").profile(batch)
    assert ref.store == vec.store
