"""Sharded signature banks: geometry, occupancy, export/import migration."""

import numpy as np
import pytest

from repro.sigmem import (
    ArraySignature,
    BankGeometry,
    ChainedHashTable,
    DenseKeySpace,
    DensePlaneTracker,
    PerfectSignature,
    SlotPlaneTracker,
    payload_size,
)
from repro.sigmem.signature import AccessRecord

GEO = BankGeometry(n_banks=4, shift=12)


def make_trackers(geo=GEO):
    ks = DenseKeySpace()
    return {
        "perfect": PerfectSignature(geometry=geo),
        "chained": ChainedHashTable(64, geometry=geo),
        "array": ArraySignature(64, geometry=geo),
        "dense": DensePlaneTracker(ks, geometry=geo),
        "slots": SlotPlaneTracker(64, geometry=geo),
    }


def fill(tracker, addrs, ts0=0):
    for i, a in enumerate(addrs):
        tracker.insert(a, AccessRecord(loc=100 + i, var=i, tid=0, ts=ts0 + i))


class TestBankGeometry:
    def test_bank_of_stripes_addresses(self):
        g = BankGeometry(n_banks=4, shift=12)
        assert g.bank_of(0) == 0
        assert g.bank_of((1 << 12) - 8) == 0  # same 4 KiB stripe
        assert g.bank_of(1 << 12) == 1
        assert g.bank_of(4 << 12) == 0  # wraps modulo n_banks

    def test_banks_of_vectorized_matches_scalar(self):
        g = BankGeometry(n_banks=3, shift=4)
        addrs = np.arange(0, 512, 8, dtype=np.int64)
        banks = g.banks_of(addrs)
        assert [g.bank_of(int(a)) for a in addrs] == banks.tolist()

    def test_bank_slots_rounding(self):
        g = BankGeometry(n_banks=4, shift=12)
        assert g.bank_slots(10) == 2
        assert g.round_slots(10) == 8


class TestBankOccupancy:
    @pytest.mark.parametrize("kind", ["perfect", "chained", "array", "dense", "slots"])
    def test_occupancy_attributes_to_the_right_bank(self, kind):
        t = make_trackers()[kind]
        # three addresses in bank 1's stripe, one in bank 2's
        fill(t, [1 << 12, (1 << 12) + 8, (1 << 12) + 16, 2 << 12])
        occ = t.bank_occupancy()
        assert occ is not None and len(occ) == GEO.n_banks
        assert occ[1] == 3 and occ[2] == 1
        assert occ[0] == 0 and occ[3] == 0

    def test_unbanked_tracker_has_no_occupancy(self):
        assert PerfectSignature().bank_occupancy() is None


class TestExportImport:
    @pytest.mark.parametrize("kind", ["perfect", "chained", "array", "dense", "slots"])
    def test_round_trip_moves_state(self, kind):
        trackers = make_trackers()
        src, dst = trackers[kind], make_trackers()[kind]
        addrs = [1 << 12, (1 << 12) + 8, 2 << 12]
        fill(src, addrs)
        payload = src.export_bank(1)
        assert payload_size(payload) == 2
        # export clears the source's bank 1 but leaves bank 2 alone
        assert src.lookup(1 << 12) is None
        assert src.lookup(2 << 12) is not None
        dst.import_bank(payload)
        rec = dst.lookup((1 << 12) + 8)
        assert rec is not None and rec.loc == 101

    @pytest.mark.parametrize("kind", ["perfect", "chained", "array", "dense", "slots"])
    def test_import_is_newest_wins(self, kind):
        trackers = make_trackers()
        a, b = trackers[kind], make_trackers()[kind]
        addr = 1 << 12
        a.insert(addr, AccessRecord(loc=1, var=0, tid=0, ts=5))
        b.insert(addr, AccessRecord(loc=2, var=0, tid=0, ts=50))
        b.import_bank(a.export_bank(1))  # older record must not clobber
        assert b.lookup(addr).ts == 50
        # and the newer one wins when shipped the other way
        b2 = make_trackers()[kind]
        b2.insert(addr, AccessRecord(loc=2, var=0, tid=0, ts=50))
        a2 = make_trackers()[kind]
        a2.insert(addr, AccessRecord(loc=1, var=0, tid=0, ts=5))
        a2.import_bank(b2.export_bank(1))
        assert a2.lookup(addr).ts == 50

    def test_array_migration_not_counted_as_eviction(self):
        src = ArraySignature(64, geometry=GEO)
        dst = ArraySignature(64, geometry=GEO)
        fill(src, [1 << 12, (1 << 12) + 8])
        dst.import_bank(src.export_bank(1))
        assert dst.bank_evictions() is not None
        assert int(dst.bank_evictions().sum()) == 0

    def test_export_requires_geometry(self):
        with pytest.raises(Exception):
            PerfectSignature().export_bank(0)
