"""Tests for the Eq. 2 false-positive model and hash quality."""

import math

import numpy as np
import pytest

from repro.common.rng import make_rng
from repro.sigmem import (
    expected_fpr,
    expected_occupancy,
    hash_addresses,
    slots_for_target_fpr,
)


class TestEq2:
    def test_zero_insertions_zero_fpr(self):
        assert expected_fpr(0, 1000) == 0.0

    def test_monotone_in_n(self):
        m = 10_000
        vals = [expected_fpr(n, m) for n in (0, 10, 100, 1000, 10_000, 100_000)]
        assert vals == sorted(vals)

    def test_inverse_in_m(self):
        n = 1000
        assert expected_fpr(n, 100) > expected_fpr(n, 10_000) > expected_fpr(n, 10**8)

    def test_paper_scale_values(self):
        """Table I scale: ~1e6 addresses into 1e6/1e7/1e8 slots."""
        assert expected_fpr(1_100_000, 10**6) > 0.5  # heavily loaded
        assert expected_fpr(1_100_000, 10**8) < 0.02  # nearly collision-free

    def test_matches_naive_formula(self):
        naive = 1 - (1 - 1 / 5000) ** 700
        assert math.isclose(expected_fpr(700, 5000), naive, rel_tol=1e-12)

    def test_precision_at_huge_m(self):
        # naive formula underflows to 0 here; log1p/expm1 must not.
        assert 0 < expected_fpr(10, 10**12) < 1e-10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            expected_fpr(-1, 10)
        with pytest.raises(ValueError):
            expected_fpr(1, 0)

    def test_expected_occupancy_bounds(self):
        occ = expected_occupancy(500, 1000)
        assert 0 < occ < 500  # collisions make it less than n


class TestSizing:
    @pytest.mark.parametrize("n", [100, 10_000, 1_000_000])
    @pytest.mark.parametrize("p", [0.1, 0.01, 0.001])
    def test_sizing_meets_target(self, n, p):
        m = slots_for_target_fpr(n, p)
        assert expected_fpr(n, m) <= p
        # and is tight: one order of magnitude fewer slots would violate it
        assert expected_fpr(n, max(1, m // 10)) > p

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            slots_for_target_fpr(100, 0.0)
        with pytest.raises(ValueError):
            slots_for_target_fpr(100, 1.0)

    def test_zero_addresses(self):
        assert slots_for_target_fpr(0, 0.01) == 1


class TestHashUniformity:
    def test_strided_addresses_spread(self):
        """Array traversals produce strided addresses; the hash must spread
        them instead of mapping them to a few slots (Eq. 2 assumes uniform)."""
        m = 1024
        addrs = np.arange(0, 8 * 100_000, 8, dtype=np.int64)
        slots = hash_addresses(addrs, m)
        counts = np.bincount(slots, minlength=m)
        mean = len(addrs) / m
        assert counts.max() < 2.0 * mean
        assert counts.min() > 0.3 * mean

    def test_random_addresses_match_eq2(self):
        """Measured slot occupancy after n random inserts tracks Eq. 2."""
        rng = make_rng(0, "hash")
        m, n = 4096, 3000
        addrs = rng.integers(0, 2**40, n, dtype=np.int64) * 8
        slots = hash_addresses(addrs, m)
        occupancy = len(np.unique(slots)) / m
        predicted = expected_fpr(n, m)
        assert abs(occupancy - predicted) < 0.03
