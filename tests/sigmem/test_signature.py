"""Tests for the array signature and the tracker protocol."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sigmem import (
    AccessRecord,
    ArraySignature,
    ChainedHashTable,
    PerfectSignature,
    ShadowMemory,
)

REC = AccessRecord(loc=100, var=3, tid=1, ts=42)
REC2 = AccessRecord(loc=200, var=4, tid=2, ts=99)

ALL_TRACKERS = [
    lambda: ArraySignature(1 << 16),
    lambda: PerfectSignature(),
    lambda: ShadowMemory(),
    lambda: ChainedHashTable(1 << 12),
]
TRACKER_IDS = ["signature", "perfect", "shadow", "hashtable"]


@pytest.fixture(params=ALL_TRACKERS, ids=TRACKER_IDS)
def tracker(request):
    return request.param()


class TestTrackerProtocol:
    """Behaviour every AccessTracker implementation must share."""

    def test_lookup_missing_is_none(self, tracker):
        assert tracker.lookup(0x1234) is None
        assert not tracker.contains(0x1234)

    def test_insert_then_lookup(self, tracker):
        tracker.insert(0x1000, REC)
        assert tracker.lookup(0x1000) == REC
        assert tracker.contains(0x1000)

    def test_insert_overwrites(self, tracker):
        tracker.insert(0x1000, REC)
        tracker.insert(0x1000, REC2)
        assert tracker.lookup(0x1000) == REC2
        assert tracker.occupied() == 1

    def test_remove(self, tracker):
        tracker.insert(0x1000, REC)
        tracker.remove(0x1000)
        assert tracker.lookup(0x1000) is None

    def test_remove_missing_is_noop(self, tracker):
        tracker.remove(0x5555)  # must not raise
        assert tracker.occupied() == 0

    def test_remove_range(self, tracker):
        for i in range(16):
            tracker.insert(0x2000 + 8 * i, REC)
        tracker.remove_range(0x2000, 0x2000 + 8 * 8, stride=8)
        # First 8 removed, rest intact (exact trackers); the array signature
        # may additionally evict colliding addresses, but never *keeps* a
        # removed one.
        for i in range(8):
            assert tracker.lookup(0x2000 + 8 * i) is None

    def test_remove_empty_range_is_noop(self, tracker):
        tracker.insert(0x100, REC)
        tracker.remove_range(0x200, 0x200)
        assert tracker.lookup(0x100) == REC

    def test_clear(self, tracker):
        for i in range(10):
            tracker.insert(8 * i, REC)
        tracker.clear()
        assert tracker.occupied() == 0
        for i in range(10):
            assert tracker.lookup(8 * i) is None

    def test_memory_bytes_positive(self, tracker):
        tracker.insert(0x10, REC)
        assert tracker.memory_bytes > 0


class TestArraySignatureSpecific:
    def test_rejects_nonpositive_slots(self):
        with pytest.raises(ValueError):
            ArraySignature(0)

    def test_collision_conflates_addresses(self):
        """Two addresses in one slot overwrite each other — by design."""
        sig = ArraySignature(1)  # everything collides
        sig.insert(0x1000, REC)
        sig.insert(0x2000, REC2)
        # Membership for the first address now reports the second's payload:
        # the false-positive mechanism behind Table I.
        assert sig.lookup(0x1000) == REC2

    def test_fixed_memory_footprint(self):
        sig = ArraySignature(1000)
        before = sig.memory_bytes
        for i in range(10_000):
            sig.insert(i * 8, REC)
        assert sig.memory_bytes == before  # bounded state, Section III-B

    def test_slot_get_set_roundtrip(self):
        sig = ArraySignature(64)
        sig.insert(0x40, REC)
        i = sig.slot_of(0x40)
        assert sig.get_slot(i) == REC
        sig.set_slot(i, None)
        assert sig.get_slot(i) is None
        sig.set_slot(i, REC2)
        assert sig.lookup(0x40) == REC2

    def test_vectorized_slots_match_scalar(self):
        sig = ArraySignature(12345, salt=7)
        addrs = np.arange(0, 8 * 1000, 8, dtype=np.int64)
        vec = sig.slots_of(addrs)
        scalars = [sig.slot_of(int(a)) for a in addrs]
        assert vec.tolist() == scalars

    def test_intersection_contains_common_elements(self):
        """Disambiguation guarantee: common inserts appear in the intersection."""
        a, b = ArraySignature(256), ArraySignature(256)
        common = [8 * i for i in range(20)]
        for addr in common:
            a.insert(addr, REC)
            b.insert(addr, REC2)
        a.insert(0x9000, REC)
        inter = set(a.intersect(b).tolist())
        for addr in common:
            assert a.slot_of(addr) in inter

    def test_intersect_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArraySignature(64).intersect(ArraySignature(128))

    def test_salt_changes_layout(self):
        a, b = ArraySignature(1 << 20, salt=0), ArraySignature(1 << 20, salt=1)
        addrs = np.arange(0, 8 * 512, 8, dtype=np.int64)
        assert not np.array_equal(a.slots_of(addrs), b.slots_of(addrs))

    def test_occupied_slots_view(self):
        sig = ArraySignature(1 << 12)
        for i in range(5):
            sig.insert(0x100 + 8 * i, REC)
        occ = sig.occupied_slots()
        assert len(occ) == sig.occupied() == 5
        assert dict(sig.iter_occupied())  # iterable, non-empty

    @settings(max_examples=50)
    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=2**40).map(lambda x: x * 8),
            min_size=1, max_size=200, unique=True,
        )
    )
    def test_no_false_negatives_without_removal(self, addrs):
        """A signature never *forgets* an inserted element unless another
        insert/remove touched its slot; with unique records we can check the
        weaker but crucial property: lookup never returns None for a slot
        that was written."""
        sig = ArraySignature(4096)
        for a in addrs:
            sig.insert(a, REC)
        for a in addrs:
            assert sig.lookup(a) is not None


class TestShadowMemorySpecific:
    def test_pages_grow_with_address_spread(self):
        sm = ShadowMemory()
        sm.insert(0, REC)
        one_page = sm.memory_bytes
        sm.insert(10 * 32 * 1024, REC)  # far away -> second page
        assert sm.memory_bytes == 2 * one_page
        assert sm.n_pages == 2

    def test_dense_addresses_share_page(self):
        sm = ShadowMemory()
        for i in range(100):
            sm.insert(8 * i, REC)
        assert sm.n_pages == 1

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            ShadowMemory(granularity=0)


class TestChainedHashTableSpecific:
    def test_chains_preserve_exactness_under_collision(self):
        ht = ChainedHashTable(1)  # single bucket: worst case
        ht.insert(0x10, REC)
        ht.insert(0x20, REC2)
        assert ht.lookup(0x10) == REC
        assert ht.lookup(0x20) == REC2
        assert ht.max_chain_length == 2

    def test_remove_from_chain_middle(self):
        ht = ChainedHashTable(1)
        ht.insert(0x10, REC)
        ht.insert(0x20, REC2)
        ht.insert(0x30, REC)
        ht.remove(0x20)
        assert ht.lookup(0x20) is None
        assert ht.lookup(0x10) == REC and ht.lookup(0x30) == REC

    def test_rejects_nonpositive_buckets(self):
        with pytest.raises(ValueError):
            ChainedHashTable(0)
