"""Compact trace construction helpers shared by test modules.

``seq_trace`` turns a list of micro-ops into a TraceBatch:

    ("r", addr, line)            read            (var optional 4th field)
    ("w", addr, line)            write
    ("alloc", base, size, line)  allocation
    ("free", base, size, line)   deallocation
    ("L+", line)                 loop enter   (site = file 0, given line)
    ("Li", line)                 loop iteration start
    ("L-", line)                 loop exit
    ("tid", t)                   switch current thread for subsequent ops

Lines are encoded with file id 0, so ``loc == line`` for readability in
assertions (line < 2**20).
"""

from __future__ import annotations

from repro.common.sourceloc import encode_location
from repro.trace import TraceBatch, TraceRecorder


def seq_trace(ops, file_name: str = "test.c") -> TraceBatch:
    r = TraceRecorder()
    r.intern_file(file_name)
    tid = 0
    for op in ops:
        code = op[0]
        if code == "r":
            _, addr, line = op[:3]
            var = r.intern_var(op[3]) if len(op) > 3 else -1
            r.read(addr, loc=encode_location(0, line), var=var, tid=tid)
        elif code == "w":
            _, addr, line = op[:3]
            var = r.intern_var(op[3]) if len(op) > 3 else -1
            r.write(addr, loc=encode_location(0, line), var=var, tid=tid)
        elif code == "alloc":
            _, base, size, line = op
            r.alloc(base, size, loc=encode_location(0, line), tid=tid)
        elif code == "free":
            _, base, size, line = op
            r.free(base, size, loc=encode_location(0, line), tid=tid)
        elif code == "L+":
            r.loop_enter(encode_location(0, op[1]), tid=tid)
        elif code == "Li":
            r.loop_iter(encode_location(0, op[1]), tid=tid)
        elif code == "L-":
            end = encode_location(0, op[2]) if len(op) > 2 else None
            r.loop_exit(encode_location(0, op[1]), tid=tid, end_loc=end)
        elif code == "tid":
            tid = op[1]
        else:
            raise ValueError(f"unknown op {op!r}")
    return r.build()


def loc(line: int) -> int:
    """Encoded location for file 0 at ``line``."""
    return encode_location(0, line)
