"""Tests for multi-threaded MiniVM execution: scheduling, locks, barriers,
delayed pushes, and end-to-end race flagging through the profiler."""

import numpy as np
import pytest

from repro.common.config import ProfilerConfig
from repro.common.errors import MiniVmError
from repro.core import DepType, profile_trace
from repro.minivm import ProgramBuilder, ScheduleConfig, run_program
from repro.trace import LOCK_ACQ, LOCK_REL, THREAD_END, THREAD_START, WRITE

PERFECT_MT = ProfilerConfig(perfect_signature=True, multithreaded_target=True)


def build_locked_counter(n_threads=3, increments=5):
    """Each worker increments a shared counter under a lock."""
    b = ProgramBuilder("counter")
    counter = b.global_scalar("counter")
    with b.function("worker", params=("wid",)) as f:
        i = f.reg("i")
        with f.for_loop(i, 0, increments):
            with f.lock(1):
                f.set(f.reg("t"), f.load(counter))
                f.store(counter, None, f.reg("t") + 1)
    with b.function("main") as f:
        w = f.reg("w")
        with f.for_loop(w, 0, n_threads):
            f.spawn("worker", w)
        f.join_all()
    return b.build(), counter


def build_racy_counter(n_threads=2, increments=4):
    """Unsynchronized read-modify-write on a shared counter."""
    b = ProgramBuilder("racy")
    counter = b.global_scalar("counter")
    with b.function("worker", params=("wid",)) as f:
        i = f.reg("i")
        with f.for_loop(i, 0, increments):
            f.set(f.reg("t"), f.load(counter))
            f.store(counter, None, f.reg("t") + 1)
    with b.function("main") as f:
        w = f.reg("w")
        with f.for_loop(w, 0, n_threads):
            f.spawn("worker", w)
        f.join_all()
    return b.build(), counter


def final_value(prog, var_name, schedule=None):
    from repro.minivm.scheduler import Scheduler

    sched = Scheduler(prog, schedule=schedule)
    sched.run(())
    base, _ = sched.interp._global_bases[var_name]
    return sched.memory.read(base)


class TestThreadLifecycle:
    def test_spawn_join_events(self):
        prog, _ = build_locked_counter(n_threads=3, increments=1)
        batch = run_program(prog)
        assert int(np.count_nonzero(batch.kind == THREAD_START)) == 3
        assert int(np.count_nonzero(batch.kind == THREAD_END)) == 3
        assert batch.n_threads == 4  # main + 3 workers

    def test_lock_events_emitted(self):
        prog, _ = build_locked_counter(n_threads=2, increments=2)
        batch = run_program(prog)
        assert int(np.count_nonzero(batch.kind == LOCK_ACQ)) == 4
        assert int(np.count_nonzero(batch.kind == LOCK_REL)) == 4

    @pytest.mark.parametrize("policy", ["roundrobin", "random", "serial"])
    def test_locked_counter_correct_under_all_policies(self, policy):
        prog, _ = build_locked_counter(n_threads=3, increments=5)
        v = final_value(prog, "counter", ScheduleConfig(policy=policy, seed=7))
        assert v == 15

    def test_random_policy_seeded_reproducible(self):
        prog, _ = build_locked_counter(2, 3)
        a = run_program(prog, schedule=ScheduleConfig(policy="random", seed=5))
        b = run_program(prog, schedule=ScheduleConfig(policy="random", seed=5))
        assert np.array_equal(a.tid, b.tid)
        c = run_program(prog, schedule=ScheduleConfig(policy="random", seed=6))
        assert not np.array_equal(a.tid, c.tid)

    def test_interleaving_actually_happens_roundrobin(self):
        prog, _ = build_racy_counter(2, 4)
        batch = run_program(prog, schedule=ScheduleConfig(policy="roundrobin"))
        writer_tids = batch.tid[batch.kind == WRITE]
        switches = np.count_nonzero(writer_tids[1:] != writer_tids[:-1])
        assert switches > 1  # threads alternate, not serialized

    def test_racy_counter_loses_updates_under_interleaving(self):
        """The classic lost-update anomaly must be reproducible."""
        prog, _ = build_racy_counter(2, 10)
        v = final_value(prog, "counter", ScheduleConfig(policy="roundrobin"))
        assert v < 20  # some increments lost

    def test_serial_policy_no_lost_updates(self):
        prog, _ = build_racy_counter(2, 10)
        v = final_value(prog, "counter", ScheduleConfig(policy="serial"))
        assert v == 20


class TestLockSemantics:
    def test_release_unowned_lock_raises(self):
        b = ProgramBuilder("bad")
        with b.function("main") as f:
            f.release(1)
        with pytest.raises(MiniVmError):
            run_program(b.build())

    def test_finish_holding_lock_raises(self):
        b = ProgramBuilder("bad")
        with b.function("main") as f:
            f.acquire(1)
        with pytest.raises(MiniVmError):
            run_program(b.build())

    def test_deadlock_detected(self):
        """Classic AB-BA deadlock, made deterministic with a barrier."""
        b = ProgramBuilder("deadlock")
        with b.function("w1") as f:
            f.acquire(1)
            f.barrier(0, 2)  # both threads now hold their first lock
            f.acquire(2)
            f.release(2)
            f.release(1)
        with b.function("w2") as f:
            f.acquire(2)
            f.barrier(0, 2)
            f.acquire(1)
            f.release(1)
            f.release(2)
        with b.function("main") as f:
            f.spawn("w1")
            f.spawn("w2")
            f.join_all()
        with pytest.raises(MiniVmError, match="deadlock"):
            run_program(b.build(), schedule=ScheduleConfig(policy="roundrobin"))

    def test_lock_mutual_exclusion_holds(self):
        """Mutual exclusion: value is exact under every seed."""
        prog, _ = build_locked_counter(4, 8)
        for seed in range(3):
            v = final_value(
                prog, "counter", ScheduleConfig(policy="random", seed=seed)
            )
            assert v == 32


class TestBarrier:
    def test_barrier_synchronizes_phases(self):
        """Phase 2 reads must see every thread's phase-1 write."""
        n = 3
        b = ProgramBuilder("phases")
        stage = b.global_array("stage", n)
        ok = b.global_array("ok", n)
        with b.function("worker", params=("wid",)) as f:
            f.store(stage, f.param("wid"), 1)
            f.barrier(0, n)
            # After the barrier, sum of stage[] must be n for everyone.
            s = f.reg("s")
            f.set(s, 0)
            j = f.reg("j")
            with f.for_loop(j, 0, n):
                f.set(s, f.reg("s") + f.load(stage, j))
            f.store(ok, f.param("wid"), f.reg("s"))
        with b.function("main") as f:
            w = f.reg("w")
            with f.for_loop(w, 0, n):
                f.spawn("worker", w)
            f.join_all()
        from repro.minivm.scheduler import Scheduler

        sched = Scheduler(b.build(), schedule=ScheduleConfig(policy="roundrobin"))
        sched.run(())
        base, _ = sched.interp._global_bases["ok"]
        assert [sched.memory.read(base + 8 * i) for i in range(n)] == [n] * n


class TestDelayedPushRaces:
    def test_no_delay_no_races_flagged(self):
        prog, _ = build_racy_counter(2, 6)
        batch = run_program(prog, schedule=ScheduleConfig(policy="roundrobin"))
        res = profile_trace(batch, PERFECT_MT)
        assert res.stats.races_flagged == 0

    def test_delayed_pushes_expose_races(self):
        """With delayed pushes on unsynchronized accesses, some run should
        flag a timestamp reversal on the contended counter."""
        prog, _ = build_racy_counter(2, 10)
        flagged = 0
        for seed in range(6):
            batch = run_program(
                prog,
                schedule=ScheduleConfig(
                    policy="roundrobin", seed=seed, delay_probability=0.5
                ),
            )
            res = profile_trace(batch, PERFECT_MT)
            flagged += res.stats.races_flagged
        assert flagged > 0

    def test_lock_protected_accesses_never_delayed(self):
        """Figure 4: in a lock region access+push are atomic, so a fully
        locked program shows no reversals even with delays enabled."""
        prog, _ = build_locked_counter(3, 6)
        for seed in range(4):
            batch = run_program(
                prog,
                schedule=ScheduleConfig(
                    policy="roundrobin", seed=seed, delay_probability=0.9
                ),
            )
            res = profile_trace(batch, PERFECT_MT)
            assert res.stats.races_flagged == 0

    def test_ts_column_still_a_permutation(self):
        prog, _ = build_racy_counter(2, 8)
        batch = run_program(
            prog,
            schedule=ScheduleConfig(policy="roundrobin", delay_probability=0.7),
        )
        assert sorted(batch.ts.tolist()) == list(range(len(batch)))


class TestCrossThreadDeps:
    def test_producer_consumer_dep_has_tids(self):
        b = ProgramBuilder("pc")
        flag = b.global_scalar("flag")
        data = b.global_scalar("data")
        with b.function("producer") as f:
            with f.lock(1):
                f.store(data, None, 99)
                f.store(flag, None, 1)
        with b.function("consumer") as f:
            with f.while_loop(f.load(flag).eq(0)):
                f.set(f.reg("spin"), 0)
            with f.lock(1):
                f.set(f.reg("v"), f.load(data))
        with b.function("main") as f:
            f.spawn("producer")
            f.spawn("consumer")
            f.join_all()
        batch = run_program(b.build(), schedule=ScheduleConfig(policy="roundrobin"))
        res = profile_trace(batch, PERFECT_MT)
        raws = [
            d
            for d in res.store
            if d.dep_type == DepType.RAW and res.var_name(d.var) == "data"
        ]
        assert raws
        assert all(d.source_tid == 1 and d.sink_tid == 2 for d in raws)
