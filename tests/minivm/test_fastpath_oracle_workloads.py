"""Workload-wide differential oracle for the affine producer fast path.

The tree-walking interpreter is the oracle: for every bundled workload
(sequential and, where available, parallel variant) the trace produced
with the fast path enabled must be **bit-for-bit identical** — all eight
columns plus all three intern tables — to the trace produced with the
fast path disabled.  A final aggregate test asserts the fast path is not
vacuously passing (it must actually vectorize loops somewhere).
"""

import numpy as np
import pytest

from repro.minivm import ScheduleConfig, Scheduler
from repro.workloads import get_workload, workload_names

ALL = workload_names("nas") + workload_names("starbench") + workload_names("splash2x")
PAR = [n for n in ALL if get_workload(n).has_parallel_variant]

COLUMNS = ("kind", "tid", "loc", "addr", "aux", "var", "ts", "ctx")


def _run(program, schedule, fastpath):
    sched = Scheduler(program, schedule=schedule, fastpath=fastpath)
    sched.run()
    return sched.interp.fastpath_stats, sched.recorder.build()


def _assert_identical(fast, slow, label):
    for name in COLUMNS:
        a, b = getattr(fast, name), getattr(slow, name)
        assert a.dtype == b.dtype, (label, name)
        mism = np.flatnonzero(a != b)
        assert mism.size == 0, (
            f"{label}: column {name} differs at row {mism[0]} "
            f"(fast={a[mism[0]]!r} interp={b[mism[0]]!r})"
        )
    assert fast.var_names == slow.var_names, label
    assert fast.file_names == slow.file_names, label
    assert fast.ctx_stacks == slow.ctx_stacks, label


def _check(name, variant):
    wl = get_workload(name)
    if variant == "seq":
        build = lambda: wl.build_seq(wl.default_scale)[0]  # noqa: E731
        schedule = None
    else:
        build = lambda: wl.build_par(wl.default_scale, 4)[0]  # noqa: E731
        schedule = ScheduleConfig(policy="roundrobin", seed=0)
    stats, fast = _run(build(), schedule, fastpath=True)
    _, slow = _run(build(), schedule, fastpath=False)
    _assert_identical(fast, slow, f"{name}/{variant}")
    return stats, len(fast)


class TestOracleAllWorkloads:
    @pytest.mark.parametrize("name", ALL)
    def test_sequential_bit_identical(self, name):
        _check(name, "seq")

    @pytest.mark.parametrize("name", PAR)
    def test_parallel_bit_identical(self, name):
        _check(name, "par")

    def test_fastpath_actually_engages(self):
        """Guard against the oracle passing vacuously: across the
        sequential suite, a meaningful share of events must come off the
        vectorized path."""
        total_fast = total_events = total_loops = 0
        for name in ALL:
            stats, n_events = _check(name, "seq")
            total_fast += stats.events
            total_events += n_events
            total_loops += stats.loops
        assert total_loops > 0
        assert total_fast / total_events > 0.05, (
            f"fast path covered only {total_fast}/{total_events} events"
        )
