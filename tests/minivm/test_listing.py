"""Tests for the MiniVM source-listing renderer."""

import re

from repro.minivm import ProgramBuilder
from repro.minivm.listing import listing_loc, source_listing


def build_sample():
    b = ProgramBuilder("sample")
    data = b.global_array("data", 8)
    total = b.global_scalar("total")
    with b.function("helper", params=("k",)) as f:
        f.store(total, None, f.load(total) + f.param("k"))
    with b.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, 8):
            f.store(data, i, i * 2)
            with f.if_((i % 2).eq(0)):
                f.call("helper", f.load(data, i))
        buf = f.heap_var("buf")
        f.alloc(buf, 4)
        f.free(buf)
    return b.build()


class TestListing:
    def test_all_lines_numbered_and_sorted(self):
        text = source_listing(build_sample())
        nums = [int(m.group(1)) for m in re.finditer(r"^\s*(\d+) \|", text, re.M)]
        assert nums == sorted(nums)
        assert len(set(nums)) == len(nums)  # one entry per line

    def test_declarations_rendered(self):
        text = source_listing(build_sample())
        assert "global data[8]" in text
        assert "global total" in text
        assert "def helper(k):" in text
        assert "def main():" in text

    def test_statements_rendered(self):
        text = source_listing(build_sample())
        assert "for i in range(0, 8):" in text
        assert "data[i] = (i * 2)" in text
        assert "total = (total + k)" in text
        assert "helper(data[i])" in text
        assert "buf = malloc(4)" in text
        assert "free(buf)" in text
        assert "# end for" in text

    def test_line_numbers_match_trace_locations(self):
        """A dependence's reported line must point at the right listing row."""
        from repro.common.config import ProfilerConfig
        from repro.common.sourceloc import decode_location
        from repro.core import DepType, profile_trace
        from repro.minivm import run_program

        prog = build_sample()
        res = profile_trace(run_program(prog), ProfilerConfig(perfect_signature=True))
        listing = {
            int(m.group(1)): m.group(2)
            for m in re.finditer(r"^\s*(\d+) \| (.*)$", source_listing(prog), re.M)
        }
        raws = [d for d in res.store if d.dep_type is DepType.RAW]
        assert raws
        for d in raws:
            line = decode_location(d.sink_loc).line
            assert "total" in listing[line] or "data" in listing[line]

    def test_loc_counter(self):
        prog = build_sample()
        assert listing_loc(prog) == prog.n_lines > 8

    def test_workload_listings_render(self):
        """Every registered workload's program pretty-prints cleanly."""
        from repro.workloads import get_workload, workload_names

        for name in workload_names("nas")[:3] + ["kmeans", "h264dec"]:
            wl = get_workload(name)
            prog, _ = wl.build_seq(1)
            text = source_listing(prog)
            assert "def main():" in text
            assert text.count("\n") >= prog.n_lines // 2

    def test_mt_constructs_rendered(self):
        b = ProgramBuilder("mt")
        x = b.global_scalar("x")
        with b.function("w", params=("wid",)) as f:
            with f.lock(3):
                f.store(x, None, 1)
            f.barrier(0, 2)
        with b.function("main") as f:
            f.spawn("w", 0)
            f.spawn("w", 1)
            f.join_all()
        text = source_listing(b.build())
        assert "lock(3)" in text and "unlock(3)" in text
        assert "barrier(0, parties=2)" in text
        assert "spawn w(0)" in text and "join_all()" in text
