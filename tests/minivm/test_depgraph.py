"""Unit tests for the per-loop dependence-graph IR and group scheduler.

These pin down the *static* layer in isolation: edge construction (RAW /
WAR / WAW with distances and carried flags), load/register bindings, the
Tarjan condensation, group-mode assignment, the reduction matcher, and the
shared DOALL / reduction / pipeline / sequential verdict rule.  Runtime
trace equality is covered by ``test_affine_fastpath.py``.
"""

from repro.minivm import ProgramBuilder
from repro.minivm import affine
from repro.minivm.astnodes import BinOp, For, UnOp
from repro.minivm.depgraph import (
    AFFINE,
    DYNAMIC,
    SLOT,
    GroupScheduler,
    _tarjan_sccs,
    carried_graph_verdict,
    loop_verdict,
)


def graph_of(body_fn, n=32, trip=16):
    """Build a one-loop program, classify it, return its AffineTemplate."""
    b = ProgramBuilder("depgraph-case")
    arrs = {name: b.global_array(name, n) for name in ("a", "b", "c")}
    arrs["s"] = b.global_scalar("s")
    with b.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, trip):
            body_fn(f, i, arrs)
    prog = b.build()
    loop = next(s for s in prog.function("main").body if isinstance(s, For))
    tmpl, reason = affine.classify_loop(loop)
    assert tmpl is not None, f"unexpected rejection: {reason}"
    return tmpl


def edge_set(graph, dep=None):
    return {
        (e.src, e.dst, e.dep, e.carried, e.distance)
        for e in graph.edges
        if dep is None or e.dep == dep
    }


class TestTarjan:
    def test_chain_is_singletons_in_reverse_topo(self):
        sccs = _tarjan_sccs(3, {0: {1}, 1: {2}})
        assert sccs == [[2], [1], [0]]

    def test_cycle_condenses(self):
        sccs = _tarjan_sccs(3, {0: {1}, 1: {0}, 2: {0}})
        assert [2] in sccs and [0, 1] in sccs
        # 2 feeds the cycle, so in reverse topo order the cycle comes first.
        assert sccs.index([0, 1]) < sccs.index([2])

    def test_self_loop_is_its_own_component(self):
        assert _tarjan_sccs(1, {0: {0}}) == [[0]]

    def test_disconnected_nodes_all_appear(self):
        assert sorted(map(tuple, _tarjan_sccs(3, {}))) == [(0,), (1,), (2,)]


class TestCarriedGraphVerdict:
    def test_no_carried_edges_is_doall(self):
        assert carried_graph_verdict(2, [(0, 1, False)]) == "doall"
        assert carried_graph_verdict(3, []) == "doall"

    def test_carried_forward_flow_is_pipeline(self):
        # Stage 0 writes, stage 1 reads it next iteration: DSWP-able.
        assert carried_graph_verdict(2, [(0, 1, True)]) == "pipeline"

    def test_carried_self_cycle_is_sequential(self):
        assert carried_graph_verdict(1, [(0, 0, True)]) == "sequential"

    def test_carried_edge_inside_larger_cycle_is_sequential(self):
        edges = [(0, 1, False), (1, 0, True)]
        assert carried_graph_verdict(2, edges) == "sequential"


class TestGraphConstruction:
    def test_forwarded_intra_iteration_raw(self):
        """a[i] = b[i]+1; c[i] = a[i]*2 — stmt1 loads stmt0's store."""
        tmpl = graph_of(
            lambda f, i, v: (
                f.store(v["a"], i, f.load(v["b"], i) + 1),
                f.store(v["c"], i, f.load(v["a"], i) * 2),
            )
        )
        assert (0, 1, "RAW", False, 0) in edge_set(tmpl.graph, "RAW")
        (ld,) = [ld for ld in tmpl.graph.nodes[1].loads if ld.var.name == "a"]
        assert ld.binding == ("fwd", 0)
        assert not [e for e in tmpl.graph.raw_edges() if e.carried]
        assert tmpl.verdict == "doall"

    def test_slot_recurrence_binds_to_previous_iteration(self):
        """s = s + a[i] — the self-load sees last iteration's store."""
        tmpl = graph_of(
            lambda f, i, v: f.store(v["s"], None, f.load(v["s"]) + f.load(v["a"], i))
        )
        (node,) = tmpl.graph.nodes
        (self_ld,) = [ld for ld in node.loads if ld.var.name == "s"]
        assert self_ld.binding == ("pre", 0)
        assert (0, 0, "RAW", True, 1) in edge_set(tmpl.graph, "RAW")
        assert node.store.key in tmpl.graph.slot_keys

    def test_access_shapes(self):
        """Slot, affine, and dynamic index shapes are told apart statically."""
        tmpl = graph_of(
            lambda f, i, v: (
                f.store(v["s"], None, f.load(v["a"], i)),
                f.store(v["b"], i * 2 + 1, 7),
                f.store(v["c"], i * i % 8, 1),
            ),
            trip=8,
        )
        shapes = {n.store.var.name: n.store.shape for n in tmpl.graph.nodes if n.store}
        assert shapes == {"s": SLOT, "b": AFFINE, "c": DYNAMIC}

    def test_cross_key_shift_gets_carried_distance(self):
        """a[i] written, a[i-1] read elsewhere — carried RAW, distance 1."""
        tmpl = graph_of(
            lambda f, i, v: (
                f.store(v["a"], i, f.load(v["b"], i)),
                f.store(v["c"], i, f.load(v["a"], i - 1) * 2),
            ),
            trip=10,
        )
        assert (0, 1, "RAW", True, 1) in edge_set(tmpl.graph, "RAW")
        assert tmpl.verdict == "pipeline"

    def test_interleaved_progressions_do_not_alias(self):
        """a[2i] written, a[2i+1] read: disjoint progressions, no edge."""
        tmpl = graph_of(
            lambda f, i, v: (
                f.store(v["a"], i * 2, 1),
                f.store(v["c"], i, f.load(v["a"], i * 2 + 1)),
            ),
            trip=10,
        )
        assert not [e for e in tmpl.graph.raw_edges() if e.carried]
        assert tmpl.verdict == "doall"

    def test_war_edge_on_load_before_store(self):
        """c[i] read then written: anti-dependence only, still doall."""
        tmpl = graph_of(
            lambda f, i, v: (
                f.store(v["a"], i, f.load(v["c"], i) + 1),
                f.store(v["c"], i, 0),
            )
        )
        assert (0, 1, "WAR", False, 0) in edge_set(tmpl.graph, "WAR")
        assert tmpl.verdict == "doall"

    def test_dynamic_load_before_store_gets_may_raw(self):
        """Histogram shape: dynamic reads may revisit written cells, so the
        graph adds a carried may-RAW (distance unknown) to stay safe."""
        def body(f, i, v):
            k = f.reg("k")
            f.set(k, f.load(v["b"], i) % 8)
            f.store(v["a"], k, f.load(v["a"], k) + 1)

        tmpl = graph_of(body, trip=8)
        assert any(
            e.carried and e.distance is None for e in tmpl.graph.raw_edges()
        )

    def test_register_recurrence_carried_raw(self):
        """x = x*3+1 before first def: distance-1 register recurrence."""
        def body(f, i, v):
            x = f.reg("x")
            f.set(x, x * 3 + 1)
            f.store(v["a"], i, x)

        tmpl = graph_of(body)
        assert (0, 0, "RAW", True, 1) in edge_set(tmpl.graph, "RAW")
        assert (0, 1, "RAW", False, 0) in edge_set(tmpl.graph, "RAW")


class TestGroupScheduler:
    def test_independent_body_is_single_vector_wave(self):
        tmpl = graph_of(
            lambda f, i, v: (
                f.store(v["a"], i, i * 2),
                f.store(v["b"], i, i + 1),
            )
        )
        assert [g.mode for g in tmpl.groups] == ["vector", "vector"]
        assert tmpl.verdict == "doall"

    def test_scalar_sum_is_reduction_group(self):
        tmpl = graph_of(
            lambda f, i, v: f.store(v["s"], None, f.load(v["s"]) + f.load(v["a"], i))
        )
        (grp,) = tmpl.groups
        assert grp.mode == "reduction"
        assert grp.reduction.op == "+"
        assert grp.reduction.slot_kind == "mem"
        assert tmpl.verdict == "reduction"

    def test_register_product_is_reduction_group(self):
        def body(f, i, v):
            x = f.reg("x")
            f.set(x, x * (i + 1))
            f.store(v["a"], i, x)

        tmpl = graph_of(body)
        modes = [g.mode for g in tmpl.groups]
        assert modes == ["reduction", "vector"]
        assert tmpl.groups[0].reduction.slot_kind == "reg"
        assert tmpl.verdict == "reduction"

    def test_min_reduction_recognized(self):
        tmpl = graph_of(
            lambda f, i, v: f.store(
                v["s"], None, BinOp("min", f.load(v["s"]), f.load(v["a"], i))
            )
        )
        assert tmpl.groups[0].mode == "reduction"
        assert tmpl.groups[0].reduction.op == "min"

    def test_subtract_needs_self_on_lhs(self):
        """s = a[i] - s is not a left-fold subtraction: sequential lane."""
        tmpl = graph_of(
            lambda f, i, v: f.store(v["s"], None, f.load(v["a"], i) - f.load(v["s"]))
        )
        assert tmpl.groups[0].mode == "sequential"
        assert tmpl.verdict == "sequential"

    def test_self_reference_inside_term_rejects_reduction(self):
        """s = s + s*0 reads the slot twice — not a clean x = x ⊕ term."""
        tmpl = graph_of(
            lambda f, i, v: f.store(
                v["s"], None, f.load(v["s"]) + f.load(v["s"]) * 0
            )
        )
        assert tmpl.groups[0].mode == "sequential"

    def test_multi_statement_cycle_is_one_sequential_group(self):
        """Two statements feeding each other condense into one group."""
        def body(f, i, v):
            x = f.reg("x")
            y = f.reg("y")
            f.set(x, y + 1)  # reads y from previous iteration
            f.set(y, x * 2)
            f.store(v["a"], i, y)

        tmpl = graph_of(body)
        seq = [g for g in tmpl.groups if g.mode == "sequential"]
        assert len(seq) == 1 and seq[0].stmts == [0, 1]
        assert tmpl.verdict == "sequential"

    def test_downstream_of_recurrence_still_vectorizes(self):
        """An LCG chain feeds a store: the store is its own vector group."""
        def body(f, i, v):
            x = f.reg("x")
            f.set(x, (x * 1103515245 + 12345) % 2147483648)
            f.store(v["a"], i, x % 100)

        tmpl = graph_of(body)
        modes = {tuple(g.stmts): g.mode for g in tmpl.groups}
        assert modes[(0,)] == "sequential"
        assert modes[(1,)] == "vector"

    def test_schedule_orders_producers_first(self):
        tmpl = graph_of(
            lambda f, i, v: (
                f.store(v["a"], i, f.load(v["b"], i) + 1),
                f.store(v["c"], i, f.load(v["a"], i) * 2),
            )
        )
        order = [g.stmts[0] for g in tmpl.groups]
        assert order.index(0) < order.index(1)

    def test_libm_blocks_vector_groups_only(self):
        """sin() cannot vectorize bit-identically; classification rejects
        the vector group but the scheduler itself flags the reason."""
        b = ProgramBuilder("libm")
        a = b.global_array("a", 16)
        with b.function("main") as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 16):
                f.store(a, i, UnOp("sin", i))
        prog = b.build()
        loop = next(s for s in prog.function("main").body if isinstance(s, For))
        tmpl, reason = affine.classify_loop(loop)
        assert tmpl is None and reason == "libm_op"

    def test_scheduler_exposed_via_graph(self):
        """GroupScheduler can be re-driven from a template's graph."""
        tmpl = graph_of(
            lambda f, i, v: f.store(v["s"], None, f.load(v["s"]) + 1)
        )
        groups, reason = GroupScheduler(tmpl.graph).schedule()
        assert reason is None
        assert [g.mode for g in groups] == ["reduction"]
        assert loop_verdict(tmpl.graph, groups) == "reduction"
