"""Tests for the MiniVM memory model."""

import pytest

from repro.common.errors import MiniVmError
from repro.minivm.memory import ELEM_SIZE, GLOBAL_BASE, Memory


class TestGlobals:
    def test_sequential_allocation(self):
        m = Memory()
        a = m.alloc_global(4)
        b = m.alloc_global(1)
        assert a == GLOBAL_BASE
        assert b == a + 4 * ELEM_SIZE


class TestHeap:
    def test_malloc_disjoint(self):
        m = Memory()
        a = m.malloc(10)
        b = m.malloc(10)
        assert abs(b - a) >= 10 * ELEM_SIZE

    def test_free_then_malloc_reuses_address(self):
        """Address recycling is what variable-lifetime analysis exists for."""
        m = Memory()
        a = m.malloc(10)
        m.mfree(a)
        b = m.malloc(10)
        assert b == a

    def test_reused_block_reads_zero(self):
        m = Memory()
        a = m.malloc(2)
        m.write(a, 42)
        m.mfree(a)
        b = m.malloc(2)
        assert b == a
        assert m.read(b) == 0

    def test_smaller_request_fits_freed_block(self):
        m = Memory()
        a = m.malloc(10)
        m.mfree(a)
        assert m.malloc(4) == a

    def test_larger_request_skips_freed_block(self):
        m = Memory()
        a = m.malloc(4)
        m.mfree(a)
        assert m.malloc(100) != a

    def test_double_free_raises(self):
        m = Memory()
        a = m.malloc(4)
        m.mfree(a)
        with pytest.raises(MiniVmError):
            m.mfree(a)

    def test_free_unallocated_raises(self):
        with pytest.raises(MiniVmError):
            Memory().mfree(0xDEAD)

    def test_malloc_zero_raises(self):
        with pytest.raises(MiniVmError):
            Memory().malloc(0)

    def test_live_block_count(self):
        m = Memory()
        a = m.malloc(1)
        b = m.malloc(1)
        assert m.n_live_heap_blocks == 2
        m.mfree(a)
        assert m.n_live_heap_blocks == 1


class TestStacks:
    def test_frames_reuse_addresses_across_calls(self):
        m = Memory()
        f1 = m.push_frame(0, 8)
        m.pop_frame(0)
        f2 = m.push_frame(0, 8)
        assert f1 == f2

    def test_nested_frames_disjoint(self):
        m = Memory()
        f1 = m.push_frame(0, 8)
        f2 = m.push_frame(0, 8)
        assert f2 == f1 + 8 * ELEM_SIZE

    def test_per_thread_stacks_disjoint(self):
        m = Memory()
        a = m.push_frame(0, 8)
        b = m.push_frame(1, 8)
        assert abs(a - b) >= 8 * ELEM_SIZE

    def test_popped_frame_values_cleared(self):
        m = Memory()
        base = m.push_frame(0, 2)
        m.write(base, 7)
        m.pop_frame(0)
        m.push_frame(0, 2)
        assert m.read(base) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(MiniVmError):
            Memory().pop_frame(0)

    def test_uninitialized_reads_zero(self):
        assert Memory().read(0x123456) == 0
