"""Tests for the affine-loop producer fast path.

The contract under test: with ``fastpath=True`` the interpreter may execute
whole loops as array operations, but the resulting trace must be
*bit-for-bit* identical (all eight columns plus the three intern tables) to
the tree-walking path, and memory/registers must end in value- and
type-identical states.  Classification and bailout edge cases are pinned
down by reason string so a regression shows up as the wrong reason, not
just as "didn't vectorize".
"""

import numpy as np
import pytest

from repro.common.errors import MiniVmError
from repro.minivm import ProgramBuilder, ScheduleConfig, Scheduler, run_program
from repro.minivm import affine
from repro.minivm.astnodes import For, UnOp


def first_for(program, func="main"):
    """The first (outermost) For statement of ``func``."""
    for s in program.function(func).body:
        if isinstance(s, For):
            return s
    raise AssertionError("program has no For loop")


def run_both(program, schedule=None, args=()):
    """Run fast-path and interpreted; return (fast_sched, slow_sched, batches)."""
    fast = Scheduler(program, schedule=schedule, fastpath=True)
    fast_batch = fast.run(args)
    slow = Scheduler(program, schedule=schedule, fastpath=False)
    slow_batch = slow.run(args)
    return fast, slow, fast_batch, slow_batch


def assert_traces_identical(a, b):
    for col in ("kind", "tid", "loc", "addr", "aux", "var", "ts", "ctx"):
        x, y = getattr(a, col), getattr(b, col)
        assert len(x) == len(y), f"column {col}: {len(x)} vs {len(y)} rows"
        if not np.array_equal(x, y):
            i = int(np.argmax(x != y))
            raise AssertionError(
                f"column {col} differs first at row {i}: {x[i]} vs {y[i]}"
            )
        assert x.dtype == y.dtype, col
    assert a.var_names == b.var_names
    assert a.file_names == b.file_names
    assert a.ctx_stacks == b.ctx_stacks


def memory_state(sched):
    """Type-exact memory snapshot: float 2.0 != int 2."""
    return {
        addr: (type(v).__name__, repr(v))
        for addr, v in sched.memory._values.items()
    }


def assert_equivalent(program, schedule=None, args=()):
    fast, slow, fb, sb = run_both(program, schedule=schedule, args=args)
    assert_traces_identical(fb, sb)
    assert memory_state(fast) == memory_state(slow)
    return fast.interp.fastpath_stats


N = 70  # global array extent used by most programs here


def build(body_fn, n=N, trip=16, step=1, start=None):
    """One-loop program over arrays a,b,c and scalar s; body_fn(f, i, vars)."""
    b = ProgramBuilder("affine-case")
    arrs = {name: b.global_array(name, n) for name in ("a", "b", "c")}
    arrs["s"] = b.global_scalar("s")
    with b.function("main") as f:
        i = f.reg("i")
        j = f.reg("j")
        # Seed memory with mixed int/float content through an affine prologue.
        with f.for_loop(j, 0, n):
            f.store(arrs["a"], j, j * 3 - 5)
            f.store(arrs["b"], j, j * 0.5)
        if start is None:
            start = trip - 1 if step < 0 else 0
        end = -1 if step < 0 else trip
        with f.for_loop(i, start, end, step):
            body_fn(f, i, arrs)
    return b.build()


class TestClassification:
    """Static accept/reject decisions, pinned by reason."""

    def classify(self, program):
        # Loops of interest are built second (after the seeding prologue).
        loops = [s for s in program.function("main").body if isinstance(s, For)]
        return affine.classify_loop(loops[-1])

    def test_affine_fill_accepted(self):
        p = build(lambda f, i, v: f.store(v["a"], i, i * 2 + 1))
        tmpl, reason = self.classify(p)
        assert reason is None
        assert tmpl.events_per_iteration == 2  # LOOP_ITER + WRITE

    def test_load_slots_in_emission_order(self):
        p = build(lambda f, i, v: f.store(v["c"], i, f.load(v["a"], i) + f.load(v["b"], i)))
        tmpl, _ = self.classify(p)
        assert [a.var.name for a in tmpl.accesses] == ["a", "b", "c"]

    def test_nested_loop_rejected(self):
        def body(f, i, v):
            k = f.reg("k")
            with f.for_loop(k, 0, 4):
                f.store(v["a"], i, k)

        tmpl, reason = self.classify(build(body))
        assert tmpl is None and reason == "stmt:for"

    def test_if_rejected(self):
        def body(f, i, v):
            with f.if_((i % 2).eq(0)):
                f.store(v["a"], i, 1)

        tmpl, reason = self.classify(build(body))
        assert tmpl is None and reason == "stmt:if"

    def test_induction_reassignment_rejected(self):
        def body(f, i, v):
            f.set(i, i + 1)

        tmpl, reason = self.classify(build(body))
        assert tmpl is None and reason == "induction_reassigned"

    def test_register_reduction_compiles(self):
        def body(f, i, v):
            r = f.reg("r")
            f.set(r, r + f.load(v["a"], i))

        tmpl, reason = self.classify(build(body))
        assert reason is None and tmpl.verdict == "reduction"
        assert [g.mode for g in tmpl.groups] == ["reduction"]

    def test_register_defined_then_used_accepted(self):
        def body(f, i, v):
            r = f.reg("r")
            f.set(r, f.load(v["a"], i) * 2)
            f.store(v["c"], i, r + 1)

        tmpl, reason = self.classify(build(body))
        assert reason is None and tmpl is not None

    def test_indirect_index_rejected(self):
        p = build(lambda f, i, v: f.store(v["c"], f.load(v["a"], i), 1))
        tmpl, reason = self.classify(p)
        assert tmpl is None and reason == "indirect_index"

    def test_quadratic_index_compiles_dynamic(self):
        p = build(lambda f, i, v: f.store(v["a"], i * i % N, 1))
        tmpl, reason = self.classify(p)
        assert reason is None
        assert tmpl.accesses[-1].shape == "dynamic"

    def test_libm_value_rejected(self):
        p = build(lambda f, i, v: f.store(v["a"], i, UnOp("sin", i * 1.0)))
        tmpl, reason = self.classify(p)
        assert tmpl is None and reason == "libm_op"


class TestOracle:
    """Differential equivalence, with the expected dynamic outcome pinned."""

    def check(self, body_fn, expect, trip=16, step=1, **kw):
        stats = assert_equivalent(build(body_fn, trip=trip, step=step, **kw))
        # The seeding prologue loop always hits, so "hit" means both loops
        # vectorized while a bailout reason means only the prologue did.
        if expect == "hit":
            assert stats.loops == 2, (stats.rejects, stats.bailouts)
        else:
            assert stats.loops == 1
            assert expect in stats.bailouts, (stats.rejects, stats.bailouts)
        return stats

    def test_fill_hits(self):
        stats = self.check(lambda f, i, v: f.store(v["a"], i, i * 2), "hit")
        assert stats.iterations == N + 16  # prologue + target
        assert stats.events == N * 3 + 16 * 2

    def test_copy_and_axpy_hit(self):
        def body(f, i, v):
            f.store(v["c"], i, f.load(v["a"], i) * 2 + f.load(v["b"], i))

        self.check(body, "hit")

    def test_negative_stride_hits(self):
        self.check(lambda f, i, v: f.store(v["a"], i, i), "hit", step=-1)

    def test_strided_affine_index_hits(self):
        self.check(lambda f, i, v: f.store(v["a"], 2 * i + 1, i), "hit", trip=30)

    def test_scalar_load_broadcast_hits(self):
        def body(f, i, v):
            f.store(v["c"], i, f.load(v["s"]) + i)

        self.check(body, "hit")

    def test_in_place_update_hits(self):
        # a[i] = a[i] * 2: load and store walk the same progression,
        # load-before-store, so gather-then-scatter is exact.
        self.check(lambda f, i, v: f.store(v["a"], i, f.load(v["a"], i) * 2), "hit")

    def test_float_division_hits(self):
        self.check(lambda f, i, v: f.store(v["c"], i, f.load(v["b"], i) / 3.0), "hit")

    def test_division_by_zero_guard_matches(self):
        # The interpreter's `/` guard returns 0.0 for zero divisors; the
        # vectorized masked division must reproduce that bit-for-bit and
        # leave float-typed zeros in memory.
        self.check(lambda f, i, v: f.store(v["c"], i, 100.0 / (i % 3)), "hit")

    def test_int_floordiv_and_mod_hit(self):
        def body(f, i, v):
            f.store(v["c"], i, f.load(v["a"], i) // 3 + i % 5)

        self.check(body, "hit")

    def test_min_max_comparisons_hit(self):
        from repro.minivm.astnodes import BinOp, Const

        def body(f, i, v):
            f.store(v["c"], i, BinOp("min", i * 7 % 13, Const(6)) + i.lt(8))

        self.check(body, "hit")

    def test_sqrt_of_negative_guard_matches(self):
        def body(f, i, v):
            f.store(v["c"], i, UnOp("sqrt", f.load(v["a"], i)))

        self.check(body, "hit")  # a[] holds negative ints: guard yields 0.0

    def test_short_trip_bails(self):
        stats = self.check(
            lambda f, i, v: f.store(v["a"], i, i), "short_trip",
            trip=affine.MIN_TRIP - 1,
        )
        assert stats.templates == 2  # still classified (prologue + loop)

    def test_shifted_recurrence_sequential_lane_hits(self):
        # Reads a[i], writes a[i+1] — loop-carried distance-1 recurrence.
        # The dependence graph routes it through the exact sequential lane.
        self.check(
            lambda f, i, v: f.store(v["a"], i + 1, f.load(v["a"], i)),
            "hit",
        )

    def test_store_store_same_key_hits(self):
        # Two stores through the same progression: statement-order scatter
        # keeps the interpreter's last-write-wins result.
        def body(f, i, v):
            f.store(v["a"], i, 1)
            f.store(v["a"], i, 2)

        self.check(body, "hit")

    def test_scalar_accumulation_reduction_hits(self):
        # s = s + a[i] through memory: a slot reduction, lowered to
        # ufunc.accumulate (sequential left fold, interpreter-exact).
        def body(f, i, v):
            f.store(v["s"], None, f.load(v["s"]) + f.load(v["a"], i))

        self.check(body, "hit")

    def test_mixed_type_gather_bails(self):
        # c[] holds uninitialized ints (0) after a[] got floats mid-array.
        def body(f, i, v):
            f.store(v["a"], i, f.load(v["c"], i))

        def seed_mixed(f, j, v):
            pass

        b = ProgramBuilder("mixed")
        a = b.global_array("a", N)
        c = b.global_array("c", N)
        with b.function("main") as f:
            j = f.reg("j")
            i = f.reg("i")
            with f.for_loop(j, 0, 8):
                f.store(c, 2 * j, j * 0.5)  # floats at even slots only
            with f.for_loop(i, 0, 16):
                f.store(a, i, f.load(c, i))
        stats = assert_equivalent(b.build())
        assert "mixed_types" in stats.bailouts

    def test_float_intdiv_bails(self):
        # Python floor-divides floats happily (with an int-0 guard value that
        # breaks kind uniformity), so the fast path must hand this back.
        self.check(
            lambda f, i, v: f.store(v["c"], i, f.load(v["b"], i) // 2),
            "float_intdiv",
        )

    def test_out_of_bounds_error_identical(self):
        p = build(lambda f, i, v: f.store(v["a"], i + N - 4, i))
        with pytest.raises(MiniVmError):
            run_program(p, fastpath=True)
        with pytest.raises(MiniVmError):
            run_program(p, fastpath=False)

    def test_bailout_mid_program(self):
        """Affine, then non-affine, then affine again: the fast path must
        resync memory/ts/loop-stack perfectly across the interpreted gap."""
        b = ProgramBuilder("mid")
        a = b.global_array("a", N)
        c = b.global_array("c", N)
        with b.function("main") as f:
            i = f.reg("i")
            r = f.reg("r")
            with f.for_loop(i, 0, 32):
                f.store(a, i, i * 3)
            f.set(r, 0)
            with f.for_loop(i, 0, 32):  # register reduction: accumulate lane
                f.set(r, r + f.load(a, i))
            f.store(c, 0, r)
            with f.for_loop(i, 0, 32):  # affine again, reads updated memory
                f.store(c, i + 1, f.load(a, i) + f.load(c, 0))
        stats = assert_equivalent(b.build())
        assert stats.loops == 3
        assert stats.verdicts.get("reduction") == 1

    def test_register_results_feed_later_addresses(self):
        """Loop-end register values become later indexes: wrong finalization
        would shift subsequent addresses, not just values."""
        b = ProgramBuilder("regfinal")
        a = b.global_array("a", N)
        with b.function("main") as f:
            i = f.reg("i")
            r = f.reg("r")
            with f.for_loop(i, 0, 20):
                f.set(r, i % 7)
                f.store(a, i, r)
            f.store(a, r + 10, 1)  # index uses final r (and i is 19)
            f.store(a, i + 30, 2)
        stats = assert_equivalent(b.build())
        assert stats.loops == 1


class TestSchedulingGates:
    def test_multithreaded_region_interpreted(self):
        b = ProgramBuilder("mt")
        a = b.global_array("a", N)
        with b.function("worker", params=("base",)) as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 16):
                f.store(a, f.param("base") + i, i)
        with b.function("main") as f:
            i = f.reg("i")
            f.spawn("worker", 0)
            f.spawn("worker", 16)
            f.join_all()
            with f.for_loop(i, 0, 16):  # main alone again: eligible
                f.store(a, i + 32, i)
        p = b.build()
        sched = ScheduleConfig(policy="roundrobin", seed=3)
        stats = assert_equivalent(p, schedule=sched)
        # Worker loops ran interpreted (two live threads); the tail loop of
        # main ran fast (sole survivor).
        assert stats.loops == 1

    def test_random_policy_with_spawn_fully_interpreted(self):
        b = ProgramBuilder("mt-random")
        a = b.global_array("a", N)
        with b.function("worker") as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 16):
                f.store(a, i, i)
        with b.function("main") as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 16):
                f.store(a, i + 20, i)
            f.spawn("worker")
            f.join_all()
        p = b.build()
        sched = ScheduleConfig(policy="random", seed=11)
        stats = assert_equivalent(p, schedule=sched)
        assert stats.loops == 0  # RNG-per-pick makes step counts observable

    def test_delay_model_fully_interpreted(self):
        p = build(lambda f, i, v: f.store(v["a"], i, i))
        sched = ScheduleConfig(delay_probability=0.5, seed=7)
        stats = assert_equivalent(p, schedule=sched)
        assert stats.loops == 0


class TestRandomizedPrograms:
    """Randomized builder programs: any mix of affine and non-affine loops
    must produce bit-identical traces and memory."""

    BODIES = [
        lambda f, i, v: f.store(v["a"], i, i * 3 - 7),
        lambda f, i, v: f.store(v["b"], i, f.load(v["a"], i)),
        lambda f, i, v: f.store(v["c"], i, f.load(v["a"], i) * 2 + f.load(v["b"], i)),
        lambda f, i, v: f.store(v["s"], None, f.load(v["s"]) + f.load(v["a"], i)),
        lambda f, i, v: f.store(v["a"], 2 * i, i),
        lambda f, i, v: f.store(v["b"], i + 1, f.load(v["b"], i) + 1),
        lambda f, i, v: f.store(v["c"], i, f.load(v["b"], i) / 4.0),
        lambda f, i, v: f.store(v["c"], i, i % 5 + (i // 3)),
        lambda f, i, v: (f.set(f.reg("t"), f.load(v["a"], i) + 1),
                         f.store(v["c"], i, f.reg("t") * f.reg("t"))),
        lambda f, i, v: f.store(v["a"], i, f.load(v["c"], N - 1 - i)),
    ]

    @pytest.mark.parametrize("seed", range(12))
    def test_random_program(self, seed):
        rng = np.random.default_rng(seed)
        b = ProgramBuilder(f"rand-{seed}")
        v = {name: b.global_array(name, N) for name in ("a", "b", "c")}
        v["s"] = b.global_scalar("s")
        with b.function("main") as f:
            for k in range(int(rng.integers(2, 6))):
                i = f.reg(f"i{k}")
                trip = int(rng.integers(2, 34))
                body = self.BODIES[int(rng.integers(0, len(self.BODIES)))]
                if rng.random() < 0.25:
                    with f.for_loop(i, trip - 1, -1, -1):
                        body(f, i, v)
                else:
                    with f.for_loop(i, 0, trip):
                        body(f, i, v)
        assert_equivalent(b.build())


class TestClassificationMemo:
    """Static classification is memoized per (program structure, loop site):
    rebuilding the same program — the trace amplifier and repeated workload
    builds do this constantly — must not re-run graph construction."""

    def _program(self, trip=16):
        b = ProgramBuilder("memo-case")
        a = b.global_array("a", N)
        s = b.global_scalar("s")
        with b.function("main") as f:
            i = f.reg("i")
            with f.for_loop(i, 0, trip):
                f.store(a, i, i * 2)
                f.store(s, None, f.load(s) + f.load(a, i))
        return b.build()

    def test_second_structural_build_hits_memo(self):
        affine._CLASSIFY_MEMO.clear()
        p1, p2 = self._program(), self._program()
        t1, r1, h1 = affine.classify_loop_cached(p1, first_for(p1))
        assert t1 is not None and not h1
        t2, r2, h2 = affine.classify_loop_cached(p2, first_for(p2))
        assert h2 and t2 is t1  # same template object, zero rebuild cost

    def test_different_structure_misses(self):
        affine._CLASSIFY_MEMO.clear()
        p1, p2 = self._program(), self._program(trip=17)
        _, _, h1 = affine.classify_loop_cached(p1, first_for(p1))
        _, _, h2 = affine.classify_loop_cached(p2, first_for(p2))
        assert not h1 and not h2

    def test_memoized_template_replays_exactly(self):
        """A template memoized from one build must execute another build of
        the same program bit-for-bit (and count the hit)."""
        affine._CLASSIFY_MEMO.clear()
        first = Scheduler(self._program(), fastpath=True)
        first.run(())
        assert first.interp.fastpath_stats.memo_hits == 0
        stats = assert_equivalent(self._program())
        assert stats.memo_hits == 1
        assert stats.loops == 1
