"""Tests for MiniVM program construction and sequential execution."""

import numpy as np
import pytest

from repro.common.config import ProfilerConfig
from repro.common.errors import MiniVmError
from repro.core import DepType, profile_trace
from repro.minivm import ProgramBuilder, run_program
from repro.trace import FREE, LOOP_ENTER, LOOP_EXIT, READ, WRITE

PERFECT = ProfilerConfig(perfect_signature=True)


def build_vecsum(n=16):
    b = ProgramBuilder("vecsum")
    data = b.global_array("data", n)
    total = b.global_scalar("total")
    with b.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, n):
            f.store(data, i, i * 2)
        with f.for_loop(i, 0, n):
            f.store(total, None, f.load(total) + f.load(data, i))
    return b.build(), data, total


class TestBuilder:
    def test_build_requires_main(self):
        b = ProgramBuilder("nomain")
        with b.function("helper"):
            pass
        with pytest.raises(MiniVmError):
            b.build()

    def test_duplicate_global_rejected(self):
        b = ProgramBuilder("p")
        b.global_scalar("x")
        with pytest.raises(MiniVmError):
            b.global_scalar("x")

    def test_duplicate_function_rejected(self):
        b = ProgramBuilder("p")
        with b.function("main"):
            pass
        with pytest.raises(MiniVmError):
            b.function("main")

    def test_call_to_undefined_function_rejected(self):
        b = ProgramBuilder("p")
        with b.function("main") as f:
            f.call("ghost")
        with pytest.raises(MiniVmError):
            b.build()

    def test_call_arity_checked(self):
        b = ProgramBuilder("p")
        with b.function("g", params=("a", "b")):
            pass
        with b.function("main") as f:
            f.call("g", 1)
        with pytest.raises(MiniVmError):
            b.build()

    def test_line_numbers_increase(self):
        prog, *_ = build_vecsum()
        lines = [s.line for s in prog.main.body]
        assert lines == sorted(lines)
        assert prog.n_lines > 0

    def test_else_requires_if(self):
        b = ProgramBuilder("p")
        with b.function("main") as f:
            with pytest.raises(MiniVmError):
                f.else_()

    def test_loop_end_line_after_body(self):
        b = ProgramBuilder("p")
        with b.function("main") as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 3) as loop:
                f.set(f.reg("t"), i)
        assert loop.end_line > loop.line

    def test_param_lookup(self):
        b = ProgramBuilder("p")
        with b.function("g", params=("n",)) as f:
            assert f.param("n").name == "n"
            with pytest.raises(MiniVmError):
                f.param("zzz")


class TestSequentialExecution:
    def test_vecsum_computes_and_traces(self):
        prog, *_ = build_vecsum(8)
        batch = run_program(prog)
        # 8 init writes + (8 reads total + 8 reads data + 8 writes total)
        assert int(np.count_nonzero(batch.kind == WRITE)) == 16
        assert int(np.count_nonzero(batch.kind == READ)) == 16
        assert int(np.count_nonzero(batch.kind == LOOP_ENTER)) == 2

    def test_vecsum_memory_result(self):
        from repro.minivm.scheduler import Scheduler

        prog, data, total = build_vecsum(8)
        sched = Scheduler(prog)
        sched.run(())
        base, _ = sched.interp._global_bases["total"]
        assert sched.memory.read(base) == sum(2 * i for i in range(8))

    def test_profiled_deps_of_vecsum(self):
        prog, *_ = build_vecsum(8)
        res = profile_trace(run_program(prog), PERFECT)
        raws = [d for d in res.store if d.dep_type == DepType.RAW]
        # total accumulation is loop-carried; data reads are not.
        var_names = {res.var_name(d.var) for d in raws}
        assert var_names == {"total", "data"}
        carried = {res.var_name(d.var) for d in raws if d.carried}
        assert carried == {"total"}

    def test_if_else_branches(self):
        b = ProgramBuilder("p")
        out = b.global_array("out", 4)
        with b.function("main") as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 4):
                with f.if_((i % 2).eq(0)):
                    f.store(out, i, 100)
                with f.else_():
                    f.store(out, i, 200)
        from repro.minivm.scheduler import Scheduler

        sched = Scheduler(b.build())
        sched.run(())
        base, _ = sched.interp._global_bases["out"]
        vals = [sched.memory.read(base + 8 * i) for i in range(4)]
        assert vals == [100, 200, 100, 200]

    def test_while_loop_runs_and_counts_iterations(self):
        b = ProgramBuilder("p")
        x = b.global_scalar("x")
        with b.function("main") as f:
            f.store(x, None, 5)
            with f.while_loop(f.load(x).gt(0)):
                f.store(x, None, f.load(x) - 1)
        batch = run_program(b.build())
        exit_rows = np.flatnonzero(batch.kind == LOOP_EXIT)
        assert batch.aux[exit_rows[0]] == 5

    def test_for_loop_zero_iterations(self):
        b = ProgramBuilder("p")
        with b.function("main") as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 0):
                f.set(f.reg("t"), 1)
        batch = run_program(b.build())
        exit_rows = np.flatnonzero(batch.kind == LOOP_EXIT)
        assert batch.aux[exit_rows[0]] == 0

    def test_for_loop_negative_step(self):
        b = ProgramBuilder("p")
        acc = b.global_scalar("acc")
        with b.function("main") as f:
            i = f.reg("i")
            with f.for_loop(i, 5, 0, step=-1):
                f.store(acc, None, f.load(acc) + i)
        from repro.minivm.scheduler import Scheduler

        sched = Scheduler(b.build())
        sched.run(())
        base, _ = sched.interp._global_bases["acc"]
        assert sched.memory.read(base) == 5 + 4 + 3 + 2 + 1

    def test_for_loop_step_zero_raises(self):
        b = ProgramBuilder("p")
        with b.function("main") as f:
            i = f.reg("i")
            with f.for_loop(i, 0, 3, step=0):
                f.set(f.reg("t"), 1)
        with pytest.raises(MiniVmError):
            run_program(b.build())

    def test_out_of_bounds_index_raises(self):
        b = ProgramBuilder("p")
        a = b.global_array("a", 4)
        with b.function("main") as f:
            f.store(a, 9, 1)
        with pytest.raises(MiniVmError):
            run_program(b.build())

    def test_unset_register_raises(self):
        b = ProgramBuilder("p")
        x = b.global_scalar("x")
        with b.function("main") as f:
            f.store(x, None, f.reg("never_set"))
        with pytest.raises(MiniVmError):
            run_program(b.build())

    def test_procedure_call_with_args(self):
        b = ProgramBuilder("p")
        out = b.global_scalar("out")
        with b.function("addto", params=("v",)) as f:
            f.store(out, None, f.load(out) + f.param("v"))
        with b.function("main") as f:
            f.call("addto", 10)
            f.call("addto", 32)
        from repro.minivm.scheduler import Scheduler

        sched = Scheduler(b.build())
        sched.run(())
        base, _ = sched.interp._global_bases["out"]
        assert sched.memory.read(base) == 42

    def test_traced_locals_reuse_addresses_across_calls(self):
        """Two calls' locals share addresses; lifetime comes from the stack."""
        b = ProgramBuilder("p")
        with b.function("work") as f:
            t = f.local_scalar("t")
            f.store(t, None, 1)
            f.set(f.reg("r"), f.load(t))
        with b.function("main") as f:
            f.call("work")
            f.call("work")
        batch = run_program(b.build())
        writes = batch.addr[batch.kind == WRITE]
        assert writes[0] == writes[1]

    def test_heap_alloc_free_events(self):
        b = ProgramBuilder("p")
        with b.function("main") as f:
            buf = f.heap_var("buf")
            f.alloc(buf, 16)
            i = f.reg("i")
            with f.for_loop(i, 0, 16):
                f.store(buf, i, i)
            f.free(buf)
        batch = run_program(b.build())
        assert int(np.count_nonzero(batch.kind == FREE)) == 1
        free_row = np.flatnonzero(batch.kind == FREE)[0]
        assert batch.aux[free_row] == 16 * 8  # bytes

    def test_free_unbound_raises(self):
        b = ProgramBuilder("p")
        with b.function("main") as f:
            buf = f.heap_var("buf")
            f.free(buf)
        with pytest.raises(MiniVmError):
            run_program(b.build())

    def test_heap_reuse_with_lifetime_analysis_no_stale_deps(self):
        b = ProgramBuilder("p")
        with b.function("main") as f:
            a = f.heap_var("a")
            f.alloc(a, 4)
            f.store(a, 0, 7)
            f.free(a)
            b2 = f.heap_var("b2")
            f.alloc(b2, 4)  # reuses a's address
            f.set(f.reg("r"), f.load(b2, 0))
        res = profile_trace(run_program(b.build()), PERFECT)
        assert not [d for d in res.store if d.dep_type == DepType.RAW]

    def test_main_with_arguments(self):
        b = ProgramBuilder("p")
        out = b.global_scalar("out")
        with b.function("main", params=("n",)) as f:
            f.store(out, None, f.param("n") * 2)
        from repro.minivm.scheduler import Scheduler

        sched = Scheduler(b.build())
        sched.run((21,))
        base, _ = sched.interp._global_bases["out"]
        assert sched.memory.read(base) == 42
