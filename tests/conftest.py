"""Shared fixtures for the whole test tree."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_ledger(monkeypatch, tmp_path_factory):
    """Point the run ledger at a per-test tmp dir.

    The ledger is on by default for every profiling command, so without
    this any test that drives the CLI would persist bundles into the real
    ``~/.ddprof/runs``.
    """
    monkeypatch.setenv(
        "DDPROF_LEDGER", str(tmp_path_factory.mktemp("ledger"))
    )
