"""Flagging potential data races from a single run (Section V-B).

Run:  python examples/race_detection.py

Builds two versions of a shared-counter program — one synchronizing its
read-modify-write with a lock, one racing — and executes both under a
scheduler that may delay the instrumentation *push* of unsynchronized
accesses (exactly the hazard Figure 4's lock region prevents).  The
profiler flags dependences whose timestamps arrive reversed: evidence of a
potential race without needing a second run.
"""

from repro.common.config import ProfilerConfig
from repro.common.sourceloc import format_location
from repro.core import profile_trace
from repro.minivm import ProgramBuilder, ScheduleConfig, run_program

CONFIG = ProfilerConfig(perfect_signature=True, multithreaded_target=True)


def build_counter(locked: bool):
    b = ProgramBuilder("locked-counter" if locked else "racy-counter")
    counter = b.global_scalar("counter")
    with b.function("worker", params=("wid",)) as f:
        i = f.reg("i")
        with f.for_loop(i, 0, 10):
            if locked:
                with f.lock(1):
                    f.set(f.reg("t"), f.load(counter))
                    f.store(counter, None, f.reg("t") + 1)
            else:
                f.set(f.reg("t"), f.load(counter))
                f.store(counter, None, f.reg("t") + 1)
    with b.function("main") as f:
        w = f.reg("w")
        with f.for_loop(w, 0, 3):
            f.spawn("worker", w)
        f.join_all()
    return b.build()


def inspect(title: str, locked: bool) -> None:
    program = build_counter(locked)
    flagged_seeds = 0
    sample = None
    for seed in range(6):
        trace = run_program(
            program,
            schedule=ScheduleConfig(
                policy="roundrobin", seed=seed, delay_probability=0.5
            ),
        )
        result = profile_trace(trace, CONFIG)
        races = result.store.races()
        if races:
            flagged_seeds += 1
            sample = sample or (result, races)
    print(f"{title}: potential races flagged in {flagged_seeds}/6 schedules")
    if sample:
        result, races = sample
        for dep in races[:3]:
            print(f"    {dep.dep_type.name} on {result.var_name(dep.var)!r}: "
                  f"{format_location(dep.source_loc)}|thread {dep.source_tid}"
                  f" vs {format_location(dep.sink_loc)}|thread {dep.sink_tid}"
                  " (timestamps reversed)")


def main() -> None:
    inspect("racy counter  ", locked=False)
    inspect("locked counter", locked=True)
    print("\nThe locked version can never be flagged: inside a lock region the "
          "access and its push are atomic (Figure 4), so timestamps always "
          "arrive in order.")


if __name__ == "__main__":
    main()
