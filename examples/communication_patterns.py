"""Detecting communication patterns in multi-threaded code (Section VII-B).

Run:  python examples/communication_patterns.py [threads]

Executes the splash2x.water-spatial analog with N worker threads, profiles
it with thread-aware dependence records, and renders the producer/consumer
matrix the paper shows in Figure 9 — communication is nothing but
cross-thread read-after-write dependences.
"""

import sys

from repro.analyses import communication_matrix, render_matrix
from repro.common.config import ProfilerConfig
from repro.core import DepType, profile_trace
from repro.workloads import get_trace


def main(threads: int = 6) -> None:
    threads = int(threads)
    trace = get_trace("water-spatial", variant="par", threads=threads)
    config = ProfilerConfig(perfect_signature=True, multithreaded_target=True)
    result = profile_trace(trace, config)

    matrix = communication_matrix(result, n_threads=threads + 1)
    print(f"water-spatial analog, {threads} worker threads "
          f"({trace.n_accesses} accesses profiled)\n")
    print("Producer/consumer intensity (workers only; darker = stronger):")
    print(render_matrix(matrix[1:, 1:]))

    # The matrix is derived from ordinary dependence records — show a few.
    cross = [
        (d, result.store.count(d))
        for d in result.store
        if d.dep_type is DepType.RAW and d.source_tid != d.sink_tid
        and d.source_tid > 0
    ]
    cross.sort(key=lambda dc: -dc[1])
    print("Hottest cross-thread RAW records behind the matrix:")
    from repro.common.sourceloc import format_location

    for dep, count in cross[:5]:
        print(f"  thread {dep.source_tid} @ {format_location(dep.source_loc)} "
              f"-> thread {dep.sink_tid} @ {format_location(dep.sink_loc)} "
              f"on {result.var_name(dep.var)!r}  ({count} instances)")
    print("\nEach worker exchanges data only with its spatial neighbours — "
          "the banded structure of the paper's Figure 9.")


if __name__ == "__main__":
    main(*sys.argv[1:2])
