"""Sizing the signature: accuracy vs. memory (Sections III-B and VI-A).

Run:  python examples/signature_tuning.py [workload]

Sweeps the signature slot count for one workload, measuring dependence
accuracy against the perfect baseline at every size, next to the Eq. 2
prediction and the memory the signature would occupy — the trade the paper
quantifies in Table I, plus its sizing rule in action.
"""

import sys

from repro.common.config import ProfilerConfig
from repro.core import instance_rates, profile_trace
from repro.report import ascii_table
from repro.sigmem import expected_fpr, slots_for_target_fpr
from repro.sigmem.signature import SLOT_BYTES
from repro.workloads import get_trace


def main(workload: str = "rotate") -> None:
    trace = get_trace(workload)
    n = trace.n_unique_addresses
    baseline = profile_trace(trace, ProfilerConfig(perfect_signature=True))

    rows = []
    slots = 256
    while slots <= 64 * n:
        reported = profile_trace(trace, ProfilerConfig(signature_slots=slots))
        r = instance_rates(reported.store, baseline.store)
        rows.append([
            slots,
            100 * expected_fpr(n, slots),
            100 * r.fpr,
            100 * r.fnr,
            2 * slots * SLOT_BYTES / 1024,  # read+write pair, KiB
        ])
        slots *= 8

    print(f"{workload}: {n} distinct addresses, "
          f"{trace.n_accesses} accesses, {len(baseline.store)} true dependences\n")
    print(ascii_table(
        ["slots", "Eq.2 slot-occupancy %", "measured FPR %", "measured FNR %",
         "signature KiB"],
        rows,
        title="Signature size sweep",
    ))

    target = 0.01
    rec = slots_for_target_fpr(n, target)
    print(f"Eq. 2 sizing rule: for a {100*target:.0f}% per-lookup false-positive "
          f"target with {n} addresses, use >= {rec} slots "
          f"({2 * rec * SLOT_BYTES / 1024:.0f} KiB for the read/write pair).")
    print("A very practical alternative (Section III-B): give the profiler all "
          "memory left after the target program — more than enough for "
          "perfect dependences.")


if __name__ == "__main__":
    main(*sys.argv[1:2])
