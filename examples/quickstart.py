"""Quickstart: write a tiny program, profile it, read the dependences.

Run:  python examples/quickstart.py

Walks the full pipeline in ~40 lines: build an instrumented target with
MiniVM, execute it to get a trace, profile the trace with the signature
profiler, and print the paper's Figure-1-style output plus a few queries
against the result object.
"""

from repro.common.config import ProfilerConfig
from repro.core import DepType, format_dependences, profile_trace
from repro.minivm import ProgramBuilder, run_program


def build_program():
    """The paper's motivating shape: a loop accumulating through a scalar."""
    b = ProgramBuilder("quickstart")
    data = b.global_array("data", 64)
    total = b.global_scalar("total")
    with b.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, 64):  # initialization loop
            f.store(data, i, i * 3)
        with f.for_loop(i, 0, 64):  # reduction loop
            f.store(total, None, f.load(total) + f.load(data, i))
    return b.build()


def main() -> None:
    program = build_program()

    # 1. Execute under instrumentation -> a trace of every memory access,
    #    loop boundary, and allocation event.
    trace = run_program(program)
    print(trace.summary(), "\n")

    # 2. Profile.  ProfilerConfig(signature_slots=...) selects the paper's
    #    fixed-size signature; perfect_signature=True is the exact baseline.
    config = ProfilerConfig(signature_slots=1 << 20)
    result = profile_trace(trace, config)

    # 3. The paper's output format (Figure 1): BGN/END control regions with
    #    iteration counts, NOM lines with merged pair-wise dependences.
    print(format_dependences(result, verbose=True))

    # 4. Programmatic queries.
    raws = [d for d in result.store if d.dep_type is DepType.RAW]
    carried = [d for d in raws if d.carried]
    print(f"{len(result.store)} merged dependences "
          f"({result.store.instances} instances, "
          f"{result.merge_reduction_factor:.0f}x merge reduction)")
    print(f"loop-carried RAWs: "
          f"{sorted(result.var_name(d.var) for d in carried)}  "
          "<- 'total' serializes the reduction loop; 'data' does not appear")


if __name__ == "__main__":
    main()
