"""Discovering parallelizable loops (the paper's Section VII-A application).

Run:  python examples/parallelism_discovery.py [workload]

Profiles a NAS benchmark analog, classifies every loop (blocked / parallel /
parallel-with-reduction / parallel-with-privatization), and compares the
verdicts against the workload's OpenMP ground truth — the Table II
experiment on one benchmark, with explanations.
"""

import sys

from repro.analyses import analyze_loops, loop_table
from repro.common.config import ProfilerConfig
from repro.core import profile_trace
from repro.report import ascii_table
from repro.workloads import get_trace


def main(workload: str = "cg") -> None:
    trace, meta = get_trace(workload, with_meta=True)
    result = profile_trace(trace, ProfilerConfig(perfect_signature=True))

    rows = [
        (r.site, r.total_iterations, r.parallelizable, r.note)
        for r in loop_table(result)
    ]
    print(ascii_table(
        ["loop", "iterations", "parallel?", "verdict"],
        rows,
        title=f"Loop classification for {workload!r}",
    ))

    # Compare against the OpenMP annotation ground truth.
    classifications = analyze_loops(result)
    sites = meta.annotated_sites()
    print(f"OpenMP-annotated loops: {len(sites)}")
    hits = misses = 0
    for name, site in sorted(sites.items()):
        verdict = classifications[site].parallelizable
        expected = name in meta.expected_identified
        status = "ok" if verdict == expected else "DISAGREES"
        if verdict == expected:
            hits += 1
        else:
            misses += 1
        print(f"  {name:24s} identified={str(verdict):5s} "
              f"omp-parallelizable={str(expected):5s} [{status}]")
    print(f"\nidentified {hits}/{len(sites)} annotated loops correctly "
          f"(paper reproduces 136/147 = 92.5% across all of NAS)")


if __name__ == "__main__":
    main(*sys.argv[1:2])
