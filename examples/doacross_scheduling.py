"""Dependence distances and do-across scheduling.

Run:  python examples/doacross_scheduling.py

Not every loop with a carried dependence is hopeless: if the dependence
spans k iterations, k iterations can run concurrently (do-across /
skewed scheduling).  Tools like Alchemist profile exactly this *distance*;
because our profiler keeps full records, distance analysis is a post-pass
on the same trace.  This example builds three loops — a DOALL, a
distance-4 wavefront, and a serial recurrence — and grades each.
"""

import math

from repro.analyses import dependence_distances
from repro.common.sourceloc import encode_location
from repro.minivm import ProgramBuilder, run_program


def build():
    b = ProgramBuilder("doacross")
    a = b.global_array("a", 64)
    c = b.global_array("c", 64)
    r = b.global_array("r", 64)
    sites = {}
    with b.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, 64):
            f.store(a, i, i)
            f.store(c, i, i * 2)
            f.store(r, i, i + 1)
        with f.for_loop(i, 0, 64) as doall:  # independent elements
            f.store(a, i, f.load(a, i) * 3)
        with f.for_loop(i, 4, 64) as skewed:  # c[i] needs c[i-4]
            f.store(c, i, f.load(c, i - 4) + 1)
        with f.for_loop(i, 1, 64) as serial:  # r[i] needs r[i-1]
            f.store(r, i, f.load(r, i - 1) + 1)
        sites.update(doall=doall.line, skewed=skewed.line, serial=serial.line)
    return b.build(), sites


def main() -> None:
    program, sites = build()
    trace = run_program(program)
    print(f"{'loop':8s} {'min RAW distance':>18s} {'schedule':>28s}")
    for name, line in sites.items():
        d = dependence_distances(trace, encode_location(0, line))
        degree = d.doacross_degree
        if math.isinf(degree):
            schedule = "DOALL (fully parallel)"
            dist = "-"
        elif degree <= 1:
            schedule = "serial (pipeline the body)"
            dist = "1"
        else:
            schedule = f"do-across, {int(degree)} iterations in flight"
            dist = str(int(degree))
        print(f"{name:8s} {dist:>18s} {schedule:>28s}")
    print("\nThe same dependence records drive all three verdicts — the "
          "generality argument of the paper: one profiler, many analyses.")


if __name__ == "__main__":
    main()
