"""Dependence graph and loop table views.

The paper's conclusion previews an analysis framework that reorganizes
profiled data into multiple representations (dependence graph, loop table,
…) so analyses can be written as plugins.  These builders provide the two
views our own analyses and examples consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.sourceloc import format_location
from repro.core.deps import DepType
from repro.core.result import ProfileResult


def build_dependence_graph(result: ProfileResult, include_init: bool = False):
    """Build a ``networkx.MultiDiGraph`` of the profiled dependences.

    Nodes are source locations (``"file:line"`` strings, with a ``tid``
    attribute for multi-threaded targets); one edge per merged dependence,
    pointing source -> sink (the direction data flows for RAW), annotated
    with type, variable, instance count, carried sites, and race flag.
    """
    import networkx as nx  # analysis extra; imported lazily

    g = nx.MultiDiGraph()
    for dep, count in result.store.items():
        if dep.dep_type is DepType.INIT and not include_init:
            continue
        sink = f"{format_location(dep.sink_loc)}|{dep.sink_tid}"
        g.add_node(sink, loc=format_location(dep.sink_loc), tid=dep.sink_tid)
        if dep.dep_type is DepType.INIT:
            g.add_node("INIT")
            g.add_edge("INIT", sink, dep_type="INIT", count=count)
            continue
        source = f"{format_location(dep.source_loc)}|{dep.source_tid}"
        g.add_node(source, loc=format_location(dep.source_loc), tid=dep.source_tid)
        g.add_edge(
            source,
            sink,
            dep_type=dep.dep_type.name,
            var=result.var_name(dep.var),
            count=count,
            carried=sorted(format_location(s) for s in dep.carried),
            race=dep.race,
        )
    return g


@dataclass
class LoopTableRow:
    """One row of the loop table."""

    site: str
    end: str
    executions: int
    total_iterations: int
    mean_iterations: float
    parallelizable: bool | None  # None when no classification was requested
    verdict: str | None  # doall | reduction | pipeline | sequential | None
    note: str


def loop_table(
    result: ProfileResult, classify: bool = True
) -> list[LoopTableRow]:
    """Summarize every profiled loop, optionally with parallelism verdicts."""
    classifications = {}
    if classify:
        from repro.analyses.parallelism import analyze_loops

        classifications = analyze_loops(result)
    rows = []
    for site, info in sorted(result.loops.items()):
        cls = classifications.get(site)
        rows.append(
            LoopTableRow(
                site=format_location(site),
                end=format_location(info.end_loc),
                executions=info.executions,
                total_iterations=info.total_iterations,
                mean_iterations=info.mean_iterations,
                parallelizable=None if cls is None else cls.parallelizable,
                verdict=None if cls is None else cls.verdict,
                note="" if cls is None else cls.reason(result),
            )
        )
    return rows
