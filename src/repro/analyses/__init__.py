"""Dependence-based program analyses (Section VII of the paper).

The profiler is *generic*: it delivers detailed pair-wise dependences so
that many analyses can be built on one profiling substrate.  This package
implements the two applications the paper demonstrates, plus the dependence
graph / loop table views its conclusion previews:

* :mod:`repro.analyses.parallelism` — DiscoPoP-style discovery of
  parallelizable loops (Table II): a loop parallelizes when it carries no
  blocking inter-iteration RAW dependence, with privatization and reduction
  recognition for the benign carried patterns.
* :mod:`repro.analyses.commpattern` — producer/consumer communication
  matrices for multi-threaded targets (Figure 9), derived from cross-thread
  RAW dependences.
* :mod:`repro.analyses.graph` — dependence graphs (networkx) and the loop
  table of the planned analysis framework.
"""

from repro.analyses.parallelism import (
    LoopClassification,
    analyze_loops,
    count_parallelizable,
)
from repro.analyses.commpattern import (
    communication_matrix,
    render_matrix,
)
from repro.analyses.graph import build_dependence_graph, loop_table
from repro.analyses.races import RaceCandidate, RaceReport, detect_races
from repro.analyses.sections import section_dependences
from repro.analyses.union import union_of_results
from repro.analyses.exectree import ExecNode, build_execution_tree, call_tree
from repro.analyses.distance import (
    LoopDistances,
    classify_doacross,
    dependence_distances,
)

__all__ = [
    "ExecNode",
    "LoopDistances",
    "classify_doacross",
    "dependence_distances",
    "LoopClassification",
    "RaceCandidate",
    "RaceReport",
    "analyze_loops",
    "build_dependence_graph",
    "build_execution_tree",
    "call_tree",
    "communication_matrix",
    "count_parallelizable",
    "detect_races",
    "loop_table",
    "render_matrix",
    "section_dependences",
    "union_of_results",
]
