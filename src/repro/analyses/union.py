"""Input-sensitivity mitigation: union of dependences over multiple runs.

Dependence profiling sees only what the profiled input exercises.  The
paper's remedy (Section I): "running the target program with changing
inputs and computing the union of all collected dependences".  This helper
folds any number of :class:`ProfileResult` objects into one — dependence
stores merge (the stores already deduplicate), loop statistics accumulate,
and variable tables are re-interned so records from different runs remain
comparable.
"""

from __future__ import annotations

from repro.common.errors import ProfilerError
from repro.core.deps import Dependence, DependenceStore
from repro.core.result import ProfileResult, ProfileStats


def union_of_results(results: list[ProfileResult]) -> ProfileResult:
    """Union the dependences of several runs of the *same program*.

    Variable ids are re-interned against a combined name table, so runs
    whose differing control flow interned variables in different orders
    still merge correctly.  Raises :class:`ProfilerError` on an empty list.
    """
    if not results:
        raise ProfilerError("union_of_results needs at least one result")

    names: list[str] = []
    index: dict[str, int] = {}

    def intern(name: str) -> int:
        vid = index.get(name)
        if vid is None:
            vid = index[name] = len(names)
            names.append(name)
        return vid

    store = DependenceStore()
    loops: dict = {}
    stats = ProfileStats()
    multithreaded = False
    for res in results:
        remap = {
            old: intern(name) for old, name in enumerate(res.var_names)
        }
        remap[-1] = -1
        for dep, count in res.store.items():
            store.add_merged(
                Dependence(
                    dep.dep_type,
                    sink_loc=dep.sink_loc,
                    sink_tid=dep.sink_tid,
                    source_loc=dep.source_loc,
                    source_tid=dep.source_tid,
                    var=remap.get(dep.var, -1),
                    carried=dep.carried,
                    race=dep.race,
                ),
                count=count,
            )
        for site, info in res.loops.items():
            agg = loops.get(site)
            if agg is None:
                import copy

                loops[site] = copy.deepcopy(info)
            else:
                agg.total_iterations += info.total_iterations
                agg.executions += info.executions
                agg.threads |= info.threads
        stats.n_events += res.stats.n_events
        stats.n_accesses += res.stats.n_accesses
        stats.n_reads += res.stats.n_reads
        stats.n_writes += res.stats.n_writes
        stats.races_flagged += res.stats.races_flagged
        for t, c in res.stats.dep_instances.items():
            stats.dep_instances[t] += c
        multithreaded = multithreaded or res.multithreaded

    return ProfileResult(
        store=store,
        loops=loops,
        stats=stats,
        var_names=tuple(names),
        file_names=results[0].file_names,
        multithreaded=multithreaded,
    )
