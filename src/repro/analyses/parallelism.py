"""Loop-parallelism discovery (Section VII-A, Table II).

A loop can run its iterations in parallel when no data flows *between*
iterations.  From the profiler's records:

* a RAW dependence carried by the loop is a true inter-iteration flow —
  blocking, unless it matches a **reduction**: the same source line both
  reads and updates the same variable (``sum = sum + ...``), recognizable
  because the carried RAW's source and sink are the same location.  Such
  loops parallelize with a reduction clause, exactly how DiscoPoP treats
  them (and how most of the NAS OpenMP annotations are written).
* carried WAR/WAW dependences mean iterations reuse storage; **privatizing**
  the variable removes them, so they do not block.

The classification is intentionally conservative where the evidence is:
dynamic dependences prove only what the profiled input exercised, the same
caveat the paper makes for all dependence profiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.deps import DepType, Dependence
from repro.core.result import ProfileResult


@dataclass
class LoopClassification:
    """Verdict for one loop site."""

    site: int
    parallelizable: bool
    blocking: list[Dependence] = field(default_factory=list)
    reductions: set[int] = field(default_factory=set)  # var ids
    privatizable: set[int] = field(default_factory=set)  # var ids
    total_iterations: int = 0

    def reason(self, result: ProfileResult | None = None) -> str:
        """Human-readable explanation of the verdict."""

        def vname(v: int) -> str:
            return result.var_name(v) if result is not None else str(v)

        if self.parallelizable:
            notes = []
            if self.reductions:
                notes.append(
                    "reduction(" + ", ".join(sorted(map(vname, self.reductions))) + ")"
                )
            if self.privatizable:
                notes.append(
                    "private(" + ", ".join(sorted(map(vname, self.privatizable))) + ")"
                )
            return "parallelizable" + (" with " + ", ".join(notes) if notes else "")
        vars_ = sorted({vname(d.var) for d in self.blocking})
        return f"blocked by loop-carried RAW on {', '.join(vars_)}"


def analyze_loops(
    result: ProfileResult,
    allow_reductions: bool = True,
    allow_privatization: bool = True,
) -> dict[int, LoopClassification]:
    """Classify every profiled loop of ``result``.

    Returns a map from loop site (encoded header location) to its
    :class:`LoopClassification`.
    """
    carried_raw: dict[int, list[Dependence]] = {}
    carried_storage: dict[int, set[int]] = {}  # site -> var ids of WAR/WAW
    # (site, var, line) triples with a carried same-line WAW: the signature
    # of an accumulator that is re-written every iteration.
    waw_self: set[tuple[int, int, int]] = set()
    for dep in result.store:
        for site in dep.carried:
            if dep.dep_type is DepType.RAW:
                carried_raw.setdefault(site, []).append(dep)
            elif dep.dep_type in (DepType.WAR, DepType.WAW):
                carried_storage.setdefault(site, set()).add(dep.var)
                if (
                    dep.dep_type is DepType.WAW
                    and dep.source_loc == dep.sink_loc
                    and dep.source_tid == dep.sink_tid
                ):
                    waw_self.add((site, dep.var, dep.sink_loc))

    out: dict[int, LoopClassification] = {}
    for site, info in result.loops.items():
        raws = carried_raw.get(site, [])
        reductions: set[int] = set()
        blocking: list[Dependence] = []
        if allow_reductions:
            # A variable reduces iff every carried RAW on it is a same-line
            # self-dependence (``s = s + ...`` reads and updates at one
            # site) AND that site also re-writes it every iteration (a
            # carried same-line WAW).  The WAW condition separates true
            # accumulators from element recurrences like a[i] = a[i-1] + 1,
            # whose elements are each written only once.
            by_var: dict[int, list[Dependence]] = {}
            for d in raws:
                by_var.setdefault(d.var, []).append(d)
            for var, deps in by_var.items():
                if var >= 0 and all(
                    d.source_loc == d.sink_loc
                    and d.source_tid == d.sink_tid
                    and (site, var, d.sink_loc) in waw_self
                    for d in deps
                ):
                    reductions.add(var)
                else:
                    blocking.extend(deps)
        else:
            blocking = list(raws)
        privatizable = carried_storage.get(site, set())
        if not allow_privatization and privatizable:
            # Without privatization, storage reuse blocks too.
            blocking = blocking + [
                d
                for d in result.store
                if site in d.carried
                and d.dep_type in (DepType.WAR, DepType.WAW)
            ]
            privatizable = set()
        # Reduction accumulators also appear in carried WAR/WAW; that is the
        # reduction's own storage, not an extra privatization obligation.
        privatizable = privatizable - reductions
        out[site] = LoopClassification(
            site=site,
            parallelizable=not blocking,
            blocking=blocking,
            reductions=reductions,
            privatizable=privatizable,
            total_iterations=info.total_iterations,
        )
    return out


def count_parallelizable(classifications: dict[int, LoopClassification]) -> int:
    return sum(1 for c in classifications.values() if c.parallelizable)
