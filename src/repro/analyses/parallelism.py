"""Loop-parallelism discovery (Section VII-A, Table II).

A loop can run its iterations in parallel when no data flows *between*
iterations.  From the profiler's records:

* a RAW dependence carried by the loop is a true inter-iteration flow —
  blocking, unless it matches a **reduction**: the same source line both
  reads and updates the same variable (``sum = sum + ...``), recognizable
  because the carried RAW's source and sink are the same location.  Such
  loops parallelize with a reduction clause, exactly how DiscoPoP treats
  them (and how most of the NAS OpenMP annotations are written).
* carried WAR/WAW dependences mean iterations reuse storage; **privatizing**
  the variable removes them, so they do not block.

Beyond the boolean, each loop gets a *verdict* — ``doall`` / ``reduction`` /
``pipeline`` / ``sequential`` — derived from a line-level graph of the
profiled RAW dependences inside the loop body, through the same
:func:`~repro.minivm.depgraph.carried_graph_verdict` rule the producer's
static scheduler uses, so the static and dynamic classifications cannot
diverge in logic.  ``pipeline`` means carried data only flows forward
between statement groups (DSWP-style stage parallelism applies even though
DOALL does not).

The classification is intentionally conservative where the evidence is:
dynamic dependences prove only what the profiled input exercised, the same
caveat the paper makes for all dependence profiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.sourceloc import decode_location
from repro.core.deps import DepType, Dependence
from repro.core.result import ProfileResult
from repro.minivm.depgraph import carried_graph_verdict


@dataclass
class LoopClassification:
    """Verdict for one loop site."""

    site: int
    parallelizable: bool
    verdict: str = "doall"  # doall | reduction | pipeline | sequential
    blocking: list[Dependence] = field(default_factory=list)
    reductions: set[int] = field(default_factory=set)  # var ids
    privatizable: set[int] = field(default_factory=set)  # var ids
    total_iterations: int = 0

    def reason(self, result: ProfileResult | None = None) -> str:
        """Human-readable explanation of the verdict."""

        def vname(v: int) -> str:
            return result.var_name(v) if result is not None else str(v)

        if self.parallelizable:
            notes = []
            if self.reductions:
                notes.append(
                    "reduction(" + ", ".join(sorted(map(vname, self.reductions))) + ")"
                )
            if self.privatizable:
                notes.append(
                    "private(" + ", ".join(sorted(map(vname, self.privatizable))) + ")"
                )
            return "parallelizable" + (" with " + ", ".join(notes) if notes else "")
        vars_ = sorted({vname(d.var) for d in self.blocking})
        head = "pipeline-parallel, " if self.verdict == "pipeline" else ""
        return f"{head}blocked by loop-carried RAW on {', '.join(vars_)}"


def analyze_loops(
    result: ProfileResult,
    allow_reductions: bool = True,
    allow_privatization: bool = True,
) -> dict[int, LoopClassification]:
    """Classify every profiled loop of ``result``.

    Returns a map from loop site (encoded header location) to its
    :class:`LoopClassification`.
    """
    carried_raw: dict[int, list[Dependence]] = {}
    carried_storage: dict[int, set[int]] = {}  # site -> var ids of WAR/WAW
    # (site, var, line) triples with a carried same-line WAW: the signature
    # of an accumulator that is re-written every iteration.
    waw_self: set[tuple[int, int, int]] = set()
    for dep in result.store:
        for site in dep.carried:
            if dep.dep_type is DepType.RAW:
                carried_raw.setdefault(site, []).append(dep)
            elif dep.dep_type in (DepType.WAR, DepType.WAW):
                carried_storage.setdefault(site, set()).add(dep.var)
                if (
                    dep.dep_type is DepType.WAW
                    and dep.source_loc == dep.sink_loc
                    and dep.source_tid == dep.sink_tid
                ):
                    waw_self.add((site, dep.var, dep.sink_loc))

    out: dict[int, LoopClassification] = {}
    for site, info in result.loops.items():
        raws = carried_raw.get(site, [])
        reductions: set[int] = set()
        blocking: list[Dependence] = []
        if allow_reductions:
            # A variable reduces iff every carried RAW on it is a same-line
            # self-dependence (``s = s + ...`` reads and updates at one
            # site) AND that site also re-writes it every iteration (a
            # carried same-line WAW).  The WAW condition separates true
            # accumulators from element recurrences like a[i] = a[i-1] + 1,
            # whose elements are each written only once.
            by_var: dict[int, list[Dependence]] = {}
            for d in raws:
                by_var.setdefault(d.var, []).append(d)
            for var, deps in by_var.items():
                if var >= 0 and all(
                    d.source_loc == d.sink_loc
                    and d.source_tid == d.sink_tid
                    and (site, var, d.sink_loc) in waw_self
                    for d in deps
                ):
                    reductions.add(var)
                else:
                    blocking.extend(deps)
        else:
            blocking = list(raws)
        privatizable = carried_storage.get(site, set())
        if not allow_privatization and privatizable:
            # Without privatization, storage reuse blocks too.
            blocking = blocking + [
                d
                for d in result.store
                if site in d.carried
                and d.dep_type in (DepType.WAR, DepType.WAW)
            ]
            privatizable = set()
        # Reduction accumulators also appear in carried WAR/WAW; that is the
        # reduction's own storage, not an extra privatization obligation.
        privatizable = privatizable - reductions
        verdict = _site_verdict(result, site, info.end_loc, reductions)
        out[site] = LoopClassification(
            site=site,
            parallelizable=not blocking,
            verdict=verdict,
            blocking=blocking,
            reductions=reductions,
            privatizable=privatizable,
            total_iterations=info.total_iterations,
        )
    return out


def _site_verdict(
    result: ProfileResult, site: int, end_loc: int, reductions: set[int]
) -> str:
    """Line-level DOALL/reduction/pipeline/sequential verdict for one loop.

    Nodes are source locations; edges are the profiled RAW dependences with
    recognized reductions removed (they parallelize with a clause) and
    WAR/WAW ignored (privatizable storage reuse).  Every dependence carried
    by this loop contributes a carried edge; RAW dependences between two
    body lines that are *not* carried wire the intra-iteration value flow
    that separates ``pipeline`` (carried data only crosses stage boundaries
    forward) from ``sequential`` (a stage feeds itself across iterations).
    """
    head = decode_location(site)
    tail = decode_location(end_loc)
    lo, hi = head.line, max(head.line, tail.line)

    def in_body(loc: int) -> bool:
        if loc < 0:
            return False
        d = decode_location(loc)
        return d.file_id == head.file_id and lo <= d.line <= hi

    node_of: dict[int, int] = {}

    def node(loc: int) -> int:
        n = node_of.get(loc)
        if n is None:
            n = node_of[loc] = len(node_of)
        return n

    edges: list[tuple[int, int, bool]] = []
    has_reduction = bool(reductions)
    for dep in result.store:
        if dep.dep_type is not DepType.RAW or dep.source_loc < 0:
            continue
        if dep.var in reductions:
            continue
        carried = site in dep.carried
        if not carried and not (in_body(dep.sink_loc) and in_body(dep.source_loc)):
            continue
        edges.append((node(dep.source_loc), node(dep.sink_loc), carried))
    verdict = carried_graph_verdict(len(node_of), edges)
    if verdict == "doall" and has_reduction:
        return "reduction"
    return verdict


def count_parallelizable(classifications: dict[int, LoopClassification]) -> int:
    return sum(1 for c in classifications.values() if c.parallelizable)
