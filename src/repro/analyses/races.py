"""Data-race detection on top of dependence profiling.

The paper's introduction names race detection among the analyses a generic
dependence profiler should support, and Section V-B contributes one signal:
a dependence whose access timestamps arrive reversed proves the accesses
were not mutually exclusive.  This module combines that *observed* evidence
with the classic lockset discipline check (Eraser-style), which the trace
makes cheap: lock acquire/release events are recorded alongside accesses,
so for every shared location we can intersect the locks held across all
accesses.

Verdicts per candidate:

* ``"observed"``   — a timestamp reversal was flagged on this variable: the
  racing order actually happened in this run (Section V-B's strong case).
* ``"unprotected"`` — cross-thread write-sharing with an empty common
  lockset: no lock discipline protects the location, a latent race even if
  this run's schedule never exposed it.
* Locations with a consistent non-empty lockset are not reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.sourceloc import format_location
from repro.core.result import ProfileResult
from repro.trace import LOCK_ACQ, LOCK_REL, READ, WRITE, TraceBatch


@dataclass
class RaceCandidate:
    """One shared variable with a race verdict."""

    var: int  # interned variable id (-1 unknown)
    var_name: str
    verdict: str  # "observed" | "unprotected"
    threads: frozenset[int]
    access_locs: frozenset[int]  # encoded source locations involved
    common_lockset: frozenset[int]
    n_addresses: int  # distinct addresses of this variable that raced

    def describe(self) -> str:
        locs = ", ".join(format_location(l) for l in sorted(self.access_locs))
        return (
            f"{self.verdict}: {self.var_name!r} shared by threads "
            f"{sorted(self.threads)} at {locs}"
            + (
                ""
                if self.common_lockset
                else " with no common lock"
            )
        )


@dataclass
class RaceReport:
    """All candidates of one run, observed evidence first."""

    candidates: list[RaceCandidate] = field(default_factory=list)

    @property
    def observed(self) -> list[RaceCandidate]:
        return [c for c in self.candidates if c.verdict == "observed"]

    @property
    def unprotected(self) -> list[RaceCandidate]:
        return [c for c in self.candidates if c.verdict == "unprotected"]

    def __len__(self) -> int:
        return len(self.candidates)

    def render(self) -> str:
        if not self.candidates:
            return "no race candidates\n"
        return "\n".join(c.describe() for c in self.candidates) + "\n"


class _AddrState:
    __slots__ = ("lockset", "threads", "locs", "vars", "has_write", "initialized")

    def __init__(self) -> None:
        self.lockset: frozenset[int] | None = None  # None = not yet narrowed
        self.threads: set[int] = set()
        self.locs: set[int] = set()
        self.vars: set[int] = set()
        self.has_write = False


def lockset_candidates(batch: TraceBatch) -> dict[int, _AddrState]:
    """Per-address lockset narrowing over one trace.

    Follows Eraser's core rule: a location's candidate lockset is the
    intersection of the locks held at every access; reads-only sharing and
    single-thread locations are exempt.
    """
    held: dict[int, set[int]] = {}
    states: dict[int, _AddrState] = {}
    kind = batch.kind
    for i in range(len(batch)):
        k = kind[i]
        if k == LOCK_ACQ:
            held.setdefault(int(batch.tid[i]), set()).add(int(batch.addr[i]))
        elif k == LOCK_REL:
            held.setdefault(int(batch.tid[i]), set()).discard(int(batch.addr[i]))
        elif k == READ or k == WRITE:
            addr = int(batch.addr[i])
            st = states.get(addr)
            if st is None:
                st = states[addr] = _AddrState()
            tid = int(batch.tid[i])
            st.threads.add(tid)
            st.locs.add(int(batch.loc[i]))
            st.vars.add(int(batch.var[i]))
            if k == WRITE:
                st.has_write = True
            current = frozenset(held.get(tid, ()))
            st.lockset = current if st.lockset is None else st.lockset & current
    return states


def detect_races(batch: TraceBatch, result: ProfileResult) -> RaceReport:
    """Cross-reference lockset discipline with observed timestamp reversals.

    ``result`` must come from profiling ``batch`` (its flagged dependences
    supply the "observed" evidence).
    """
    # Variables whose dependences carried a timestamp reversal.
    observed_vars = {d.var for d in result.store.races()}

    # Group undisciplined addresses by variable for a readable report.
    by_var: dict[int, list[_AddrState]] = {}
    for addr, st in lockset_candidates(batch).items():
        if len(st.threads) < 2 or not st.has_write:
            continue  # thread-local or read-shared: never a race
        if st.lockset:
            continue  # consistently protected
        for var in st.vars:
            by_var.setdefault(var, []).append(st)

    report = RaceReport()
    for var, sts in sorted(by_var.items()):
        threads: set[int] = set()
        locs: set[int] = set()
        for st in sts:
            threads |= st.threads
            locs |= st.locs
        report.candidates.append(
            RaceCandidate(
                var=var,
                var_name=result.var_name(var),
                verdict="observed" if var in observed_vars else "unprotected",
                threads=frozenset(threads),
                access_locs=frozenset(locs),
                common_lockset=frozenset(),
                n_addresses=len(sts),
            )
        )
    # Timestamp reversals on variables the lockset pass did not surface
    # (e.g. protected by *different* locks per phase) are still reported.
    for var in sorted(observed_vars - set(by_var)):
        deps = [d for d in result.store.races() if d.var == var]
        report.candidates.append(
            RaceCandidate(
                var=var,
                var_name=result.var_name(var),
                verdict="observed",
                threads=frozenset(
                    t for d in deps for t in (d.source_tid, d.sink_tid)
                ),
                access_locs=frozenset(
                    l for d in deps for l in (d.source_loc, d.sink_loc)
                ),
                common_lockset=frozenset(),
                n_addresses=0,
            )
        )
    report.candidates.sort(key=lambda c: (c.verdict != "observed", c.var_name))
    return report
