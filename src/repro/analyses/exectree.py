"""Dynamic execution tree (call tree + loop nests).

The paper's closing section previews a framework that reorganizes profiled
data into a *dynamic execution tree* and a call tree, on which analyses run
as plugins.  This builder folds a trace's FUNC_ENTER/EXIT and
LOOP_ENTER/EXIT events into a per-thread tree whose nodes aggregate their
dynamic instances: a node represents one static site (function or loop)
within one static calling context, annotated with visit counts, iteration
totals, and the number of memory accesses executed directly under it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.sourceloc import format_location
from repro.trace import (
    FUNC_ENTER,
    FUNC_EXIT,
    LOOP_ENTER,
    LOOP_EXIT,
    READ,
    WRITE,
    TraceBatch,
)


@dataclass
class ExecNode:
    """One static site within its static context."""

    kind: str  # "root" | "func" | "loop"
    site: int  # encoded location (-1 for root)
    visits: int = 0
    iterations: int = 0  # loops only
    direct_accesses: int = 0
    children: dict[tuple[str, int], "ExecNode"] = field(default_factory=dict)

    def child(self, kind: str, site: int) -> "ExecNode":
        node = self.children.get((kind, site))
        if node is None:
            node = self.children[(kind, site)] = ExecNode(kind=kind, site=site)
        return node

    @property
    def total_accesses(self) -> int:
        return self.direct_accesses + sum(
            c.total_accesses for c in self.children.values()
        )

    @property
    def n_nodes(self) -> int:
        return 1 + sum(c.n_nodes for c in self.children.values())

    def render(self, indent: int = 0) -> str:
        if self.kind == "root":
            label = "<root>"
        else:
            label = f"{self.kind} {format_location(self.site)}"
        extras = [f"visits={self.visits}"]
        if self.kind == "loop":
            extras.append(f"iters={self.iterations}")
        extras.append(f"accesses={self.total_accesses}")
        lines = ["  " * indent + f"{label} [{', '.join(extras)}]"]
        for key in sorted(self.children):
            lines.append(self.children[key].render(indent + 1))
        return "\n".join(lines)


def build_execution_tree(batch: TraceBatch) -> dict[int, ExecNode]:
    """Per-thread execution trees keyed by thread id."""
    roots: dict[int, ExecNode] = {}
    stacks: dict[int, list[ExecNode]] = {}

    def stack_for(tid: int) -> list[ExecNode]:
        s = stacks.get(tid)
        if s is None:
            root = ExecNode(kind="root", site=-1, visits=1)
            roots[tid] = root
            s = stacks[tid] = [root]
        return s

    kind_col = batch.kind
    for i in range(len(batch)):
        k = kind_col[i]
        if k == READ or k == WRITE:
            stack_for(int(batch.tid[i]))[-1].direct_accesses += 1
        elif k == FUNC_ENTER:
            s = stack_for(int(batch.tid[i]))
            node = s[-1].child("func", int(batch.addr[i]))
            node.visits += 1
            s.append(node)
        elif k == LOOP_ENTER:
            s = stack_for(int(batch.tid[i]))
            node = s[-1].child("loop", int(batch.addr[i]))
            node.visits += 1
            s.append(node)
        elif k == FUNC_EXIT or k == LOOP_EXIT:
            s = stack_for(int(batch.tid[i]))
            if len(s) > 1:
                if k == LOOP_EXIT:
                    s[-1].iterations += int(batch.aux[i])
                s.pop()
    return roots


def call_tree(batch: TraceBatch) -> dict[int, ExecNode]:
    """Execution trees restricted to function nodes (the classic call tree).

    Loop frames are collapsed: their accesses and children re-attach to the
    nearest enclosing function node.
    """

    def collapse(node: ExecNode) -> ExecNode:
        out = ExecNode(
            kind=node.kind,
            site=node.site,
            visits=node.visits,
            direct_accesses=node.direct_accesses,
        )
        worklist = list(node.children.values())
        while worklist:
            child = worklist.pop()
            if child.kind == "loop":
                out.direct_accesses += child.direct_accesses
                worklist.extend(child.children.values())
            else:
                merged = collapse(child)
                key = (merged.kind, merged.site)
                existing = out.children.get(key)
                if existing is None:
                    out.children[key] = merged
                else:
                    existing.visits += merged.visits
                    existing.direct_accesses += merged.direct_accesses
                    for ck, cv in merged.children.items():
                        if ck in existing.children:
                            existing.children[ck].visits += cv.visits
                            existing.children[ck].direct_accesses += cv.direct_accesses
                        else:
                            existing.children[ck] = cv
        return out

    return {tid: collapse(root) for tid, root in build_execution_tree(batch).items()}
