"""Section-level (set-based) dependence aggregation.

Section VI-B of the paper observes that profiling "whether a data
dependence exists between two code sections instead of two statements"
would allow better balance and speed — at the price of generality.  Because
our profiler keeps detailed records, the section-level view is a cheap
*post-processing* step rather than a different profiler: dependences are
re-keyed from statement pairs to region pairs, where a region is the
innermost profiled loop containing the line (falling back to a whole-
program region).

This is also the granularity code-partitioning tools consume: "does data
flow from loop A to loop B at all?"
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.sourceloc import format_location
from repro.core.deps import DepType
from repro.core.result import ProfileResult

#: Region id for lines outside every profiled loop.
TOPLEVEL = -1


@dataclass(frozen=True)
class SectionDep:
    """One aggregated region-to-region dependence."""

    dep_type: DepType
    source_region: int  # loop site, or TOPLEVEL
    sink_region: int
    instances: int

    def describe(self) -> str:
        def name(region: int) -> str:
            return "toplevel" if region == TOPLEVEL else f"loop {format_location(region)}"

        return (
            f"{self.dep_type.name} {name(self.source_region)} -> "
            f"{name(self.sink_region)} ({self.instances} instances)"
        )


def _region_map(result: ProfileResult) -> list[tuple[int, int, int]]:
    """(begin_line, end_line, site) intervals for every profiled loop,
    innermost-preferred via smallest extent."""
    spans = []
    for site, info in result.loops.items():
        spans.append((site, info.end_loc, site))
    # Smaller spans first so innermost loops win lookups.
    spans.sort(key=lambda s: (s[1] - s[0]))
    return spans


def section_dependences(
    result: ProfileResult,
    include_intra: bool = False,
    include_init: bool = False,
) -> list[SectionDep]:
    """Aggregate the statement-level store into region-level dependences.

    ``include_intra`` keeps dependences whose endpoints share a region;
    cross-region records are the ones section-level consumers care about.
    """
    spans = _region_map(result)

    def region_of(loc: int) -> int:
        for begin, end, site in spans:
            if begin <= loc <= end:
                return site
        return TOPLEVEL

    agg: dict[tuple[DepType, int, int], int] = {}
    for dep, count in result.store.items():
        if dep.dep_type is DepType.INIT and not include_init:
            continue
        src = TOPLEVEL if dep.source_loc < 0 else region_of(dep.source_loc)
        snk = region_of(dep.sink_loc)
        if src == snk and not include_intra:
            continue
        key = (dep.dep_type, src, snk)
        agg[key] = agg.get(key, 0) + count
    return sorted(
        (
            SectionDep(dep_type=t, source_region=s, sink_region=k, instances=c)
            for (t, s, k), c in agg.items()
        ),
        key=lambda d: (-d.instances, d.dep_type, d.source_region, d.sink_region),
    )
