"""Communication-pattern detection (Section VII-B, Figure 9).

Shared-memory communication follows producer/consumer: one thread writes,
another reads the written value.  That is precisely a cross-thread RAW
dependence, so the communication matrix falls directly out of the
profiler's records — the paper's point being that a 261x-slowdown profiler
replaces the >1000x in-order simulators earlier characterization studies
needed.

``matrix[p, c]`` counts RAW dependence *instances* whose source (producer)
ran on thread ``p`` and whose sink (consumer) ran on thread ``c``.
"""

from __future__ import annotations

import numpy as np

from repro.core.deps import DepType
from repro.core.result import ProfileResult


def communication_matrix(
    result: ProfileResult,
    n_threads: int | None = None,
    include_self: bool = False,
    normalize: bool = False,
) -> np.ndarray:
    """Producer x consumer RAW-intensity matrix.

    ``n_threads`` fixes the matrix size (defaults to 1 + highest thread id
    seen in any RAW record).  ``include_self`` keeps same-thread dependences
    on the diagonal; the paper's figures show cross-thread communication, so
    the default drops them.  ``normalize`` scales to a 0-1 range.
    """
    pairs: list[tuple[int, int, int]] = []
    max_tid = -1
    for dep, count in result.store.items():
        if dep.dep_type is not DepType.RAW:
            continue
        p, c = dep.source_tid, dep.sink_tid
        if p < 0 or c < 0:
            continue
        if not include_self and p == c:
            continue
        pairs.append((p, c, count))
        max_tid = max(max_tid, p, c)

    size = n_threads if n_threads is not None else max_tid + 1
    matrix = np.zeros((max(size, 0), max(size, 0)), dtype=np.float64)
    for p, c, count in pairs:
        if p < size and c < size:
            matrix[p, c] += count
    if normalize and matrix.size and matrix.max() > 0:
        matrix = matrix / matrix.max()
    return matrix


_SHADES = " .:-=+*#%@"


def render_matrix(matrix: np.ndarray, labels: bool = True) -> str:
    """ASCII rendition of a communication matrix (darker = stronger),
    producers on rows, consumers on columns — the Figure 9 view."""
    if matrix.size == 0:
        return "(no cross-thread communication)\n"
    peak = matrix.max()
    lines = []
    if labels:
        header = "    " + " ".join(f"{c:>2}" for c in range(matrix.shape[1]))
        lines.append(header + "   (consumers)")
    for p in range(matrix.shape[0]):
        cells = []
        for c in range(matrix.shape[1]):
            level = 0
            if peak > 0 and matrix[p, c] > 0:
                level = 1 + int((len(_SHADES) - 2) * matrix[p, c] / peak)
            cells.append(f" {_SHADES[level]}")
        prefix = f"{p:>3} " if labels else ""
        lines.append(prefix + " ".join(cells))
    if labels:
        lines.append("(producers)")
    return "\n".join(lines) + "\n"
