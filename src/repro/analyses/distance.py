"""Dependence-distance analysis and do-across classification.

The paper positions itself against profilers that record *less* than full
pair-wise dependences — Alchemist, for instance, records dependence
*distances*.  Because our profiler keeps everything, distances are a
post-pass over the trace rather than a different profiler: for one loop
site, replay the accesses executed inside it and record, for every carried
dependence record, the minimum number of iterations the dependence spans.

Distances grade the parallelism a carried dependence still allows
(do-across scheduling): a loop whose carried RAWs all span >= d iterations
can keep d iterations in flight; d = 1 serializes; no carried RAW at all is
a DOALL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.deps import DepType
from repro.trace import (
    LOOP_ENTER,
    LOOP_EXIT,
    LOOP_ITER,
    READ,
    WRITE,
    TraceBatch,
)


@dataclass(frozen=True)
class DistanceKey:
    """Identity of one intra-loop dependence for distance bookkeeping."""

    dep_type: DepType
    source_loc: int
    sink_loc: int
    var: int


@dataclass
class LoopDistances:
    """Minimum iteration distances of one loop's carried dependences."""

    site: int
    #: carried records only (distance >= 1); loop-independent dependences
    #: (distance 0) are not parallelism obstacles and are counted aside.
    min_distance: dict[DistanceKey, int] = field(default_factory=dict)
    n_independent: int = 0  # distance-0 dependence instances seen

    @property
    def doacross_degree(self) -> float:
        """Iterations that may overlap: min carried RAW distance.

        ``inf`` means no carried RAW at all (a DOALL candidate — WAR/WAW
        still privatize as usual); 1 means fully serial.
        """
        raw = [
            d
            for key, d in self.min_distance.items()
            if key.dep_type is DepType.RAW
        ]
        return float(min(raw)) if raw else float("inf")


def dependence_distances(batch: TraceBatch, site: int) -> LoopDistances:
    """Measure iteration distances inside every dynamic execution of
    ``site``, across all threads executing it.

    Semantics mirror Algorithm 1 (last write / last read per address, RAR
    ignored), restricted to accesses inside the loop; each dependence
    instance contributes ``iter(sink) - iter(source)`` and the per-record
    minimum is kept — the schedulability bound.
    """
    out = LoopDistances(site=site)
    # Per-thread live state while inside a frame of `site`.
    depth: dict[int, int] = {}  # nesting of this site per thread
    iter_idx: dict[int, int] = {}
    last_write: dict[int, dict[int, tuple[int, int, int]]] = {}  # tid->addr->(loc,var,iter)
    last_read: dict[int, dict[int, tuple[int, int, int]]] = {}

    kind_col = batch.kind
    for i in range(len(batch)):
        k = kind_col[i]
        tid = int(batch.tid[i])
        if k == LOOP_ENTER and int(batch.addr[i]) == site:
            d = depth.get(tid, 0)
            if d == 0:
                iter_idx[tid] = -1
                last_write[tid] = {}
                last_read[tid] = {}
            depth[tid] = d + 1
        elif k == LOOP_EXIT and int(batch.addr[i]) == site:
            d = depth.get(tid, 0)
            if d:
                depth[tid] = d - 1
                if depth[tid] == 0:
                    last_write.pop(tid, None)
                    last_read.pop(tid, None)
        elif k == LOOP_ITER and int(batch.addr[i]) == site:
            if depth.get(tid, 0) == 1:
                iter_idx[tid] = iter_idx.get(tid, -1) + 1
        elif (k == READ or k == WRITE) and depth.get(tid, 0):
            addr = int(batch.addr[i])
            loc = int(batch.loc[i])
            var = int(batch.var[i])
            it = iter_idx.get(tid, 0)
            lw = last_write[tid]
            lr = last_read[tid]
            if k == READ:
                w = lw.get(addr)
                if w is not None:
                    _record(out, DepType.RAW, w, loc, var, it)
                lr[addr] = (loc, var, it)
            else:
                w = lw.get(addr)
                if w is not None:
                    r = lr.get(addr)
                    if r is not None:
                        _record(out, DepType.WAR, r, loc, var, it)
                    _record(out, DepType.WAW, w, loc, var, it)
                lw[addr] = (loc, var, it)
    return out


def _record(
    out: LoopDistances,
    dep_type: DepType,
    source: tuple[int, int, int],
    sink_loc: int,
    sink_var: int,
    sink_iter: int,
) -> None:
    src_loc, src_var, src_iter = source
    distance = sink_iter - src_iter
    if distance <= 0:
        out.n_independent += 1
        return
    key = DistanceKey(dep_type, src_loc, sink_loc, src_var)
    prev = out.min_distance.get(key)
    if prev is None or distance < prev:
        out.min_distance[key] = distance


def classify_doacross(
    batch: TraceBatch, sites: list[int]
) -> dict[int, LoopDistances]:
    """Distance analysis for several loops in one pass per loop."""
    return {site: dependence_distances(batch, site) for site in sites}
