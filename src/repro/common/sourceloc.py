"""Source locations in the paper's ``fileID:line`` form.

The profiler reports every dependence endpoint as ``fileID:lineNumber``
(Figure 1 of the paper, e.g. ``1:60``).  Internally we pack a location into a
single non-negative ``int32`` so that trace batches can hold locations in
flat numpy arrays: the upper bits carry the file id, the lower
:data:`LINE_BITS` bits carry the line number.
"""

from __future__ import annotations

from typing import NamedTuple

#: Number of low-order bits reserved for the line number.  2**20 lines per
#: file is far beyond any source file the profiler will ever see.
LINE_BITS = 20
LINE_MASK = (1 << LINE_BITS) - 1

#: Maximum encodable file id such that the packed value fits in int32.
MAX_FILE_ID = (1 << (31 - LINE_BITS)) - 1

#: Sentinel for "no source location" (e.g. runtime-internal events).
NO_LOC = -1


class SourceLocation(NamedTuple):
    """A ``fileID:line`` pair, ordered and hashable."""

    file_id: int
    line: int

    def encode(self) -> int:
        """Pack into a non-negative ``int32``."""
        return encode_location(self.file_id, self.line)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.file_id}:{self.line}"


def encode_location(file_id: int, line: int) -> int:
    """Pack ``file_id:line`` into a single non-negative int.

    Raises :class:`ValueError` if either component is out of range.
    """
    if not 0 <= file_id <= MAX_FILE_ID:
        raise ValueError(f"file_id {file_id} out of range [0, {MAX_FILE_ID}]")
    if not 0 <= line <= LINE_MASK:
        raise ValueError(f"line {line} out of range [0, {LINE_MASK}]")
    return (file_id << LINE_BITS) | line


def decode_location(encoded: int) -> SourceLocation:
    """Inverse of :func:`encode_location`."""
    if encoded < 0:
        raise ValueError(f"cannot decode sentinel/negative location {encoded}")
    return SourceLocation(encoded >> LINE_BITS, encoded & LINE_MASK)


def format_location(encoded: int) -> str:
    """Render an encoded location as the paper's ``fileID:line`` string."""
    if encoded < 0:
        return "*"
    loc = decode_location(encoded)
    return f"{loc.file_id}:{loc.line}"
