"""Profiler configuration.

One frozen dataclass carries every knob the paper exposes:

* signature sizing (Section III-B; Table I sweeps the slot count),
* worker-thread count and chunk size of the parallel pipeline (Section IV),
* the lock-free/lock-based queue choice (Figure 5 ablation),
* load-balancing cadence (Section IV-A: re-check every 50 000 chunks,
  redistribute the top ten hottest addresses),
* multi-threaded-target options (Section V: timestamps and race flagging).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.common.errors import ProfilerError

#: Paper default: access statistics are evaluated every 50 000 chunks.
DEFAULT_REBALANCE_INTERVAL_CHUNKS = 50_000

#: Paper default: the ten most heavily accessed addresses are kept balanced.
DEFAULT_HOT_ADDRESS_COUNT = 10


@dataclass(frozen=True, slots=True)
class ProfilerConfig:
    """Configuration shared by the sequential and parallel engines.

    Attributes
    ----------
    signature_slots:
        Total number of slots across *all* signatures of one kind.  In the
        parallel engine each worker gets ``signature_slots // workers`` slots,
        mirroring the paper's 6.25e6-slots-per-thread setup that aggregates
        to 1e8 slots over 16 threads.
    perfect_signature:
        Use the exact (collision-free) signature instead of the fixed-size
        array.  This is the paper's baseline for measuring FPR/FNR.
    workers:
        Worker-thread count of the parallel pipeline.  ``1`` with
        ``parallel=False`` engines means the serial profiler.
    chunk_size:
        Number of memory accesses per chunk pushed to a worker queue.
    queue_depth:
        Capacity (in chunks) of each worker's ring queue.
    lock_free_queues:
        ``True`` -> single-producer/single-consumer lock-free rings;
        ``False`` -> mutex-protected queues (the paper's lock-based ablation).
    rebalance_interval_chunks / hot_addresses:
        Load-balancing cadence and the number of hot addresses kept evenly
        distributed (Section IV-A).
    track_lifetime:
        Enable variable-lifetime analysis: free()d address ranges are removed
        from the signatures to avoid stale cross-lifetime dependences.
    multithreaded_target:
        Record thread ids in dependence endpoints and check push timestamps
        for reversals (potential data races, Section V-B).
    ignore_rar:
        The paper ignores read-after-read dependences; kept as a switch so
        tests can document the behaviour.
    hash_salt:
        Salt for the signature hash function; lets tests explore collision
        patterns deterministically.
    worker_engine:
        Per-chunk engine the pipeline workers run: ``"vectorized"`` (array
        kernel over signature planes, the fast default) or ``"reference"``
        (event-at-a-time Algorithm 1 — the differential-test oracle, and
        required for per-instance telemetry such as provenance or eviction
        counters).
    heatmap:
        Maintain per-worker address heatmaps (log2-bucketed read/write/
        conflict/occupancy histograms — the memory observability plane,
        see :mod:`repro.obs.heatmap`) on registry-instrumented pipeline
        runs.  On by default; only recorded when a metrics registry is
        attached, so uninstrumented runs are unaffected either way.
    signature_banks:
        Number of per-address-range banks each worker's signature memory is
        sharded into.  ``0`` (default) keeps the classic unbanked layout —
        bit-for-bit the historical hashing and rebalance behaviour.  With
        banks on, the load balancer routes and migrates whole banks *with*
        their signature state (see :mod:`repro.sigmem.banks`), eliminating
        the post-rebalance cold-signature burst.
    bank_shift:
        Address-range stripe width of a bank as a power of two: bank index
        is ``(addr >> bank_shift) % signature_banks``.  The default 12
        stripes the address space in 4 KiB ranges.
    """

    signature_slots: int = 1_000_000
    perfect_signature: bool = False
    workers: int = 1
    chunk_size: int = 4096
    queue_depth: int = 32
    lock_free_queues: bool = True
    rebalance_interval_chunks: int = DEFAULT_REBALANCE_INTERVAL_CHUNKS
    hot_addresses: int = DEFAULT_HOT_ADDRESS_COUNT
    track_lifetime: bool = True
    multithreaded_target: bool = False
    ignore_rar: bool = True
    hash_salt: int = 0
    worker_engine: str = "vectorized"
    heatmap: bool = True
    signature_banks: int = 0
    bank_shift: int = 12

    def __post_init__(self) -> None:
        if self.worker_engine not in ("vectorized", "reference"):
            raise ProfilerError(
                f"unknown worker_engine {self.worker_engine!r} "
                "(vectorized|reference)"
            )
        if self.signature_slots <= 0:
            raise ProfilerError("signature_slots must be positive")
        if self.workers <= 0:
            raise ProfilerError("workers must be positive")
        if self.chunk_size <= 0:
            raise ProfilerError("chunk_size must be positive")
        if self.queue_depth <= 0:
            raise ProfilerError("queue_depth must be positive")
        if self.rebalance_interval_chunks <= 0:
            raise ProfilerError("rebalance_interval_chunks must be positive")
        if self.hot_addresses < 0:
            raise ProfilerError("hot_addresses must be non-negative")
        if self.signature_banks < 0:
            raise ProfilerError("signature_banks must be non-negative")
        if not (0 <= self.bank_shift < 63):
            raise ProfilerError("bank_shift must be in [0, 63)")

    @property
    def slots_per_worker(self) -> int:
        """Signature slots given to each worker's read/write signature pair."""
        return max(1, self.signature_slots // self.workers)

    @property
    def bank_geometry(self):
        """The run's shared :class:`~repro.sigmem.BankGeometry`, or ``None``
        when banking is off (``signature_banks == 0``)."""
        if self.signature_banks == 0:
            return None
        from repro.sigmem.banks import BankGeometry

        return BankGeometry(self.signature_banks, self.bank_shift)

    def with_(self, **changes: Any) -> "ProfilerConfig":
        """Return a copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)
