"""Shared substrate: source locations, configuration, errors, RNG helpers.

Everything in :mod:`repro` builds on these primitives.  They deliberately
contain no profiling logic: a :class:`SourceLocation` is just the
``fileID:line`` pair the paper prints in its dependence records, and
:class:`ProfilerConfig` is the single knob bundle threaded through the
sequential and parallel engines.
"""

from repro.common.config import ProfilerConfig
from repro.common.errors import (
    MiniVmError,
    ProfilerError,
    QueueClosedError,
    ReproError,
    TraceFormatError,
    WorkloadError,
)
from repro.common.rng import make_rng
from repro.common.sourceloc import (
    NO_LOC,
    SourceLocation,
    decode_location,
    encode_location,
    format_location,
)

__all__ = [
    "NO_LOC",
    "MiniVmError",
    "ProfilerConfig",
    "ProfilerError",
    "QueueClosedError",
    "ReproError",
    "SourceLocation",
    "TraceFormatError",
    "WorkloadError",
    "decode_location",
    "encode_location",
    "format_location",
    "make_rng",
]
