"""Deterministic random-number helpers.

Every stochastic component in the library (interleaving scheduler, synthetic
workload generators, hash-salt sweeps) draws from a generator produced here,
so a run is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

#: Fixed stream constants so that differently-named components derive
#: decorrelated substreams from the same user seed.
_STREAM_SALTS = {
    "workload": 0x9E3779B9,
    "scheduler": 0x85EBCA6B,
    "hash": 0xC2B2AE35,
    "bench": 0x27D4EB2F,
}


def make_rng(seed: int, stream: str = "workload") -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for ``(seed, stream)``.

    Distinct ``stream`` names yield statistically independent generators for
    the same ``seed``, which keeps e.g. workload data independent from
    scheduler interleaving choices.
    """
    salt = _STREAM_SALTS.get(stream)
    if salt is None:
        # Unknown streams are allowed; derive a salt from the name so two
        # different names never silently share a stream.
        salt = int.from_bytes(stream.encode("utf-8")[:8].ljust(8, b"\0"), "little")
    return np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF, salt & 0xFFFFFFFFFFFFFFFF]))
