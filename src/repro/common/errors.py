"""Exception hierarchy for :mod:`repro`.

Every library-raised error derives from :class:`ReproError` so callers can
catch one base class; subsystem-specific subclasses make test assertions and
error messages precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ProfilerError(ReproError):
    """Invalid profiler configuration or malformed input to an engine."""


class TraceFormatError(ReproError):
    """A serialized trace or dependence file could not be parsed."""


class MiniVmError(ReproError):
    """Errors raised while building or executing a MiniVM program."""


class WorkloadError(ReproError):
    """Unknown workload name or invalid workload parameters."""


class QueueClosedError(ReproError):
    """Push attempted on a queue whose producer side has been closed."""


class ObsError(ReproError):
    """Telemetry misuse: e.g. emitting to a sink that was already closed."""
