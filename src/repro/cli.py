"""``ddprof`` — command-line front end.

Subcommands::

    ddprof workloads                       list registered benchmark analogs
    ddprof profile <workload> [...]        profile and print Figure 1/3 output
    ddprof loops <workload> [...]          loop table with parallelism verdicts
    ddprof comm <workload> [...]           producer/consumer matrix (Figure 9)
    ddprof races <workload> [...]          potential data races (Section V-B)
    ddprof listing <workload>              numbered source listing of the analog
    ddprof tree <workload> [...]           dynamic execution tree
    ddprof sections <workload> [...]       region-level dependence summary
    ddprof stats <workload> [...]          telemetry run-report of a pipeline run
    ddprof trace <workload> [...]          pipeline timeline as Chrome trace JSON
    ddprof bench run|compare|report        structured benchmark records + gate

Every profiling subcommand accepts ``--metrics-out FILE`` (write the
telemetry event stream as JSONL), ``--trace-out FILE`` (record the pipeline
execution timeline and export Chrome ``trace_event`` JSON — load it in
Perfetto / ``chrome://tracing``), ``--provenance`` (annotate every reported
dependence with the workers/chunks/timestamps that produced it and a
``suspect_fp`` hash-collision flag), and ``--json`` (append/print the
machine-readable run report; schemas in docs/observability.md).

``--trace-out`` and ``--provenance`` are pipeline-level features, so either
flag routes the run through the parallel pipeline (deterministic mode —
results are identical to the sequential engines) with ``--workers`` workers.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.config import ProfilerConfig
from repro.core import format_dependences, profile_trace
from repro.minivm import ScheduleConfig, run_program
from repro.obs import JsonlSink, MetricsRegistry, RunReport, Tracer, write_chrome_trace


def _run_id_arg(value: str) -> str:
    """argparse type for ``--run-id``: reject path separators up front."""
    from repro.obs import validate_run_id

    try:
        return validate_run_id(value)
    except Exception as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _profiler_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("workload", help="workload name (see `ddprof workloads`)")
    p.add_argument("--variant", choices=["seq", "par"], default="seq")
    p.add_argument("--scale", type=int, default=None, help="problem-size factor")
    p.add_argument("--threads", type=int, default=4, help="target threads (par)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--slots", type=int, default=None,
        help="signature slots (default: perfect signature)",
    )
    p.add_argument(
        "--engine", choices=["vectorized", "reference"], default="vectorized"
    )
    p.add_argument(
        "--workers", type=int, default=4,
        help="pipeline worker count (stats/trace, and any --trace-out/"
        "--provenance run)",
    )
    p.add_argument(
        "--mode", choices=["deterministic", "threads", "processes"],
        default=None,
        help="pipeline execution mode; giving it routes the run through the "
        "parallel pipeline ('processes' = real multi-core over a "
        "shared-memory trace; see docs/parallel.md)",
    )
    p.add_argument(
        "--worker-engine", choices=["vectorized", "reference"],
        default="vectorized",
        help="per-chunk kernel of the pipeline workers (reference = "
        "event-at-a-time oracle)",
    )
    p.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write the telemetry event stream (JSONL) to FILE",
    )
    p.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="record the execution timeline and write Chrome trace JSON to FILE",
    )
    p.add_argument(
        "--provenance", action="store_true",
        help="attribute every dependence to its workers/chunks/timestamps "
        "(adds an oracle false-positive cross-check when --slots is given)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable run report as JSON",
    )
    p.add_argument(
        "--trace-cache", metavar="DIR", default=None,
        help="on-disk trace cache directory: reuse a previously serialized "
        "workload trace instead of re-running the target program",
    )
    p.add_argument(
        "--trace-cache-limit", type=int, metavar="BYTES", default=None,
        help="cap the on-disk trace cache; least-recently-used entries "
        "(npz traces and amplified spill directories) are evicted first",
    )
    p.add_argument(
        "--banks", type=int, default=0, metavar="N",
        help="shard signature memory into N address-range banks (0 = "
        "unbanked); enables bank-granularity hot-range migration",
    )
    p.add_argument(
        "--bank-shift", type=int, default=12, metavar="BITS",
        help="bank stripe width as an address shift (12 = 4 KiB stripes)",
    )
    p.add_argument(
        "--no-fastpath", action="store_true",
        help="disable the affine-loop producer fast path (traces are "
        "bit-identical either way; this is the interpreted oracle)",
    )
    p.add_argument(
        "--live-metrics", metavar="FILE", default=None,
        help="stream delta snapshots of the metrics registry to FILE as "
        "JSONL while the run executes (tail it for a live view)",
    )
    p.add_argument(
        "--log-json", metavar="FILE", default=None,
        help="write correlated structured logs (JSON lines, stamped with "
        "the run id) to FILE; '-' logs to stderr",
    )
    p.add_argument(
        "--http-port", type=int, metavar="N", default=None,
        help="serve /metrics, /healthz, /snapshot and /heatmap over HTTP on "
        "127.0.0.1:N while the run executes (0 = pick an ephemeral port)",
    )
    p.add_argument(
        "--http-linger", type=float, metavar="SECONDS", default=0.0,
        help="keep the HTTP exporter up this long after the run finishes "
        "(lets scrapers collect the final state)",
    )
    p.add_argument(
        "--heartbeat-interval", type=float, metavar="SECONDS", default=0.05,
        help="worker heartbeat watchdog cadence for --mode processes "
        "(0 disables the heartbeat plane)",
    )
    p.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="run-ledger directory where this run's bundle "
        "(ddprof.run-bundle/1) is persisted; default "
        "$DDPROF_LEDGER or ~/.ddprof/runs (see `ddprof runs`)",
    )
    p.add_argument(
        "--no-ledger", action="store_true",
        help="do not persist a run bundle for this run",
    )
    p.add_argument(
        "--run-id", type=_run_id_arg, default=None, metavar="ID",
        help="override the generated run id (deterministic ledger paths "
        "for tests/CI); must be a single path component",
    )


def _config_from(args: argparse.Namespace) -> ProfilerConfig:
    if args.slots is None:
        cfg = ProfilerConfig(perfect_signature=True)
    else:
        cfg = ProfilerConfig(signature_slots=args.slots)
    return cfg.with_(
        multithreaded_target=args.variant == "par",
        worker_engine=getattr(args, "worker_engine", "vectorized"),
        signature_banks=getattr(args, "banks", 0) or 0,
        bank_shift=getattr(args, "bank_shift", 12),
    )


class _TelemetryPlane:
    """The CLI run's live surfaces: streamer, HTTP exporter, log stream.

    Owned by ``args`` so the report path (:func:`_report_from`) can tear the
    plane down in the right order: streamer final records first, then the
    HTTP exporter (after an optional linger window so external scrapers can
    collect the final state), then the log stream.
    """

    def __init__(self, registry: MetricsRegistry, args: argparse.Namespace) -> None:
        from repro.obs import TelemetryHTTPServer, TelemetryStreamer

        self.registry = registry
        self.log_stream = None  # owned file handle, None for stderr/disabled
        self.linger_s = float(getattr(args, "http_linger", 0.0) or 0.0)
        self.streamer = (
            TelemetryStreamer(registry, args.live_metrics)
            if getattr(args, "live_metrics", None)
            else None
        )
        port = getattr(args, "http_port", None)
        ledger_dir = getattr(args, "ledger", None)
        self.httpd = (
            TelemetryHTTPServer(registry, port=port, ledger_dir=ledger_dir)
            if port is not None
            else None
        )

    def start(self) -> None:
        if self.streamer is not None:
            self.streamer.start()
        if self.httpd is not None:
            self.httpd.start()
            print(
                f"telemetry: serving {self.httpd.url}/metrics /healthz /snapshot",
                file=sys.stderr,
            )

    def stop(self) -> None:
        import time

        if self.streamer is not None:
            self.streamer.stop()
            self.streamer = None
        if self.httpd is not None:
            if self.linger_s > 0:
                print(
                    f"telemetry: lingering {self.linger_s:g}s at {self.httpd.url}",
                    file=sys.stderr,
                )
                time.sleep(self.linger_s)
            self.httpd.stop()
            self.httpd = None
        if self.log_stream is not None:
            self.log_stream.close()
            self.log_stream = None


def _registry_from(args: argparse.Namespace) -> MetricsRegistry:
    """Telemetry registry for one CLI run (JSONL sink / tracer on request).

    Every CLI run gets a fresh ``run_id``; it is stamped on sink events,
    log lines, stream records, the trace export, and the run report, so all
    of one run's telemetry artifacts can be joined on it.
    """
    from repro.obs import StructLogger, new_run_id

    run_id = getattr(args, "run_id", None) or new_run_id()
    sink = JsonlSink(args.metrics_out) if args.metrics_out else None
    tracer = (
        Tracer(run_id=run_id) if getattr(args, "trace_out", None) else None
    )
    log = None
    log_path = getattr(args, "log_json", None)
    owned_stream = None
    if log_path:
        if log_path == "-":
            stream = sys.stderr
        else:
            stream = owned_stream = open(log_path, "w", encoding="utf-8")
        log = StructLogger(stream, run_id=run_id)
    reg = MetricsRegistry(sink, tracer=tracer, run_id=run_id, log=log)
    plane = _TelemetryPlane(reg, args)
    plane.log_stream = owned_stream
    plane.start()
    args._plane = plane
    args._registry = reg
    args._ledger = _ledger_from(args, run_id)
    reg.log.info(
        "run.start",
        command=getattr(args, "command", None),
        workload=getattr(args, "workload", None),
    )
    return reg


def _ledger_from(args: argparse.Namespace, run_id: str):
    """The run's bundle writer, unless ``--no-ledger`` opted out."""
    if getattr(args, "no_ledger", False):
        return None
    from pathlib import Path

    from repro.obs import RunLedger, default_ledger_dir

    root = (
        Path(args.ledger)
        if getattr(args, "ledger", None)
        else default_ledger_dir()
    )
    meta = {
        "command": getattr(args, "command", None),
        "workload": getattr(args, "workload", None),
        "variant": getattr(args, "variant", None),
        "engine": getattr(args, "engine", None),
        "mode": getattr(args, "mode", None),
        "workers": getattr(args, "workers", None),
        "slots": getattr(args, "slots", None),
        "banks": getattr(args, "banks", None),
        "scale": getattr(args, "scale", None),
        "seed": getattr(args, "seed", None),
    }
    return RunLedger(root, run_id, meta=meta)


def _report_from(
    args: argparse.Namespace,
    reg: MetricsRegistry,
    result=None,
    info=None,
    engine: str | None = None,
) -> RunReport:
    """Freeze telemetry: final snapshot event, close the sink, build report."""
    reg.emit({"type": "snapshot", **reg.snapshot()})
    reg.close()
    report = RunReport.build(
        reg,
        result,
        info,
        workload=args.workload,
        variant=args.variant,
        engine=engine or args.engine,
    )
    ledger = getattr(args, "_ledger", None)
    if ledger is not None:
        path = ledger.finalize(reg, report, result=result, info=info)
        reg.log.info("ledger.write", path=str(path))
    reg.log.info("run.finish", phases=len(report.phases))
    plane = getattr(args, "_plane", None)
    if plane is not None:
        plane.stop()
    return report


def _finish_telemetry(
    args: argparse.Namespace, reg: MetricsRegistry, result=None, info=None
) -> None:
    """Shared tail of every profiling subcommand."""
    report = _report_from(
        args, reg, result, info, engine="pipeline" if info is not None else None
    )
    _write_trace(args, reg)
    if args.json:
        print(report.to_json())


def _write_trace(args: argparse.Namespace, reg: MetricsRegistry) -> None:
    """Export the recorded timeline when the run asked for one."""
    trace_out = getattr(args, "trace_out", None)
    if trace_out and reg.tracer.enabled:
        write_chrome_trace(
            trace_out,
            reg.tracer,
            meta={"workload": args.workload, "variant": args.variant},
        )


def _pipeline_run(args: argparse.Namespace, reg: MetricsRegistry, batch):
    """One parallel-pipeline run honouring the telemetry flags."""
    from repro.parallel import ParallelProfiler

    cfg = _config_from(args).with_(workers=args.workers)
    wants_prov = getattr(args, "provenance", False)
    res, info = ParallelProfiler(
        cfg,
        mode=getattr(args, "mode", None) or "deterministic",
        registry=reg,
        provenance=wants_prov,
        heartbeat_interval=getattr(args, "heartbeat_interval", 0.05),
        ledger=getattr(args, "_ledger", None),
    ).profile(batch)
    if wants_prov and res.provenance is not None and args.slots is not None:
        from repro.obs import oracle_cross_check

        # Lossy signature in play: settle the suspect_fp flags against a
        # perfect-signature rerun.
        oracle_cross_check(res.provenance, batch, _config_from(args))
    return res, info


def _profile_for(args: argparse.Namespace, reg: MetricsRegistry, batch):
    """Profile ``batch`` the way the flags ask: the sequential engine by
    default, the parallel pipeline when a timeline or provenance was
    requested (they are pipeline-level features).  Returns
    ``(result, info-or-None)``."""
    if (
        getattr(args, "trace_out", None)
        or getattr(args, "provenance", False)
        or getattr(args, "mode", None)
    ):
        return _pipeline_run(args, reg, batch)
    return profile_trace(batch, _config_from(args), args.engine, registry=reg), None


def _print_provenance(res) -> None:
    """Text rendering of the provenance annotations (non-JSON output)."""
    prov = res.provenance
    if prov is None:
        return
    n_spurious = prov.n_oracle_spurious
    oracle = (
        f", {n_spurious} oracle-confirmed spurious"
        if any(r.oracle_spurious is not None for _, r in prov)
        else ""
    )
    print(
        f"\n# provenance: {len(prov)} records, "
        f"{prov.n_suspect} suspect false positives{oracle}"
    )
    for row in prov.to_list():
        p = row["provenance"]
        flags = " [suspect-fp]" if p["suspect_fp"] else ""
        if p["oracle_spurious"]:
            flags += " [oracle-spurious]"
        print(
            f"#   {row['type']:<4} {row['source_loc']}->{row['sink_loc']} "
            f"var {row['var']}: workers {p['workers']} "
            f"chunks {p['chunks'][0]}..{p['chunks'][1]} "
            f"ts {p['ts'][0]}..{p['ts'][1]} x{p['count']}{flags}"
        )


def _trace_from(args: argparse.Namespace, reg: MetricsRegistry | None = None):
    from repro.workloads import get_trace, set_trace_cache_limit

    if reg is None:
        reg = MetricsRegistry()
    limit = getattr(args, "trace_cache_limit", None)
    if limit is not None:
        set_trace_cache_limit(limit)
    with reg.span("trace-build"):
        return get_trace(
            args.workload,
            variant=args.variant,
            scale=args.scale,
            threads=args.threads,
            seed=args.seed,
            cache_dir=getattr(args, "trace_cache", None),
            registry=reg,
            fastpath=not getattr(args, "no_fastpath", False),
        )


def cmd_workloads(_args: argparse.Namespace) -> int:
    from repro.workloads import get_workload, workload_names

    for suite in ("nas", "starbench", "splash2x", "amplified"):
        print(f"[{suite}]")
        for name in workload_names(suite):
            wl = get_workload(name)
            par = " (+par)" if wl.has_parallel_variant else ""
            print(f"  {name:16s}{par}  {wl.description}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res, info = _profile_for(args, reg, batch)
    sys.stdout.write(format_dependences(res, verbose=args.verbose))
    if not args.json:
        s = res.stats
        print(
            f"\n# {s.n_accesses} accesses, {s.n_unique_addresses} addresses, "
            f"{len(res.store)} merged dependences "
            f"({res.store.instances} instances, "
            f"{res.merge_reduction_factor:.0f}x merge), "
            f"{s.races_flagged} potential races"
        )
        _print_provenance(res)
    _finish_telemetry(args, reg, res, info)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run the full parallel pipeline and print its telemetry run-report."""
    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res, info = _pipeline_run(args, reg, batch)
    report = _report_from(args, reg, res, info, engine="pipeline")
    _write_trace(args, reg)
    if args.json:
        print(report.to_json())
    else:
        sys.stdout.write(report.render())
    if args.prometheus_out:
        from pathlib import Path

        from repro.obs import prometheus_text

        Path(args.prometheus_out).write_text(prometheus_text(reg))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal view of a running profile's exporter."""
    from repro.obs.top import run_top

    url = args.url if args.url else f"http://127.0.0.1:{args.port}"
    return run_top(url, interval=args.interval, once=args.once)


def cmd_loops(args: argparse.Namespace) -> int:
    from repro.analyses import loop_table
    from repro.report import ascii_table

    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res, info = _profile_for(args, reg, batch)
    table = loop_table(res)
    if args.json:
        import json as _json

        doc = {
            "schema": "ddprof.loops/1",
            "workload": args.workload,
            "variant": args.variant,
            "loops": [
                {
                    "site": r.site,
                    "end": r.end,
                    "executions": r.executions,
                    "total_iterations": r.total_iterations,
                    "mean_iterations": r.mean_iterations,
                    "parallelizable": r.parallelizable,
                    "verdict": r.verdict,
                    "note": r.note,
                }
                for r in table
            ],
        }
        print(_json.dumps(doc, indent=2))
    else:
        rows = [
            (
                r.site,
                r.end,
                r.executions,
                r.total_iterations,
                r.verdict or "-",
                r.note,
            )
            for r in table
        ]
        sys.stdout.write(
            ascii_table(
                ["loop", "end", "execs", "iters", "verdict", "detail"],
                rows,
                title=f"Loops of {args.workload} ({args.variant})",
            )
        )
    # The loops document *is* this command's machine-readable output, so the
    # run report stays off stdout in --json mode (unlike the other commands).
    _report_from(
        args, reg, res, info, engine="pipeline" if info is not None else None
    )
    _write_trace(args, reg)
    return 0


def cmd_comm(args: argparse.Namespace) -> int:
    from repro.analyses import communication_matrix, render_matrix

    args.variant = "par"
    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res, info = _profile_for(args, reg, batch)
    m = communication_matrix(res, n_threads=args.threads + 1)
    sys.stdout.write(render_matrix(m[1:, 1:]))
    _finish_telemetry(args, reg, res, info)
    return 0


def cmd_races(args: argparse.Namespace) -> int:
    from repro.common.sourceloc import format_location
    from repro.workloads import get_workload

    args.variant = "par"
    reg = _registry_from(args)
    wl = get_workload(args.workload)
    with reg.span("trace-build"):
        program, _ = wl.build_par(args.scale or wl.default_scale, args.threads)
        batch = run_program(
            program,
            schedule=ScheduleConfig(
                policy="roundrobin", seed=args.seed, delay_probability=args.delay
            ),
        )
    res, info = _profile_for(args, reg, batch)
    _finish_telemetry(args, reg, res, info)
    races = res.store.races()
    if not races:
        print("no potential data races flagged")
        return 0
    prov = res.provenance
    for d in races:
        where = ""
        if prov is not None and (rec := prov.get(d)) is not None:
            where = (
                f"  [workers {sorted(rec.workers)}, "
                f"ts {rec.first_ts}..{rec.last_ts}]"
            )
        print(
            f"potential race: {d.dep_type.name} on {res.var_name(d.var)} — "
            f"{format_location(d.source_loc)}|{d.source_tid} vs "
            f"{format_location(d.sink_loc)}|{d.sink_tid}{where}"
        )
    return 1


def cmd_distances(args: argparse.Namespace) -> int:
    import math

    from repro.analyses import dependence_distances
    from repro.common.sourceloc import format_location

    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res, info = _profile_for(args, reg, batch)
    for site in sorted(res.loops):
        d = dependence_distances(batch, site)
        degree = d.doacross_degree
        verdict = (
            "DOALL"
            if math.isinf(degree)
            else ("serial" if degree <= 1 else f"do-across x{int(degree)}")
        )
        print(f"loop {format_location(site)}: {verdict}")
        for key, dist in sorted(
            d.min_distance.items(), key=lambda kv: (kv[1], kv[0].dep_type)
        ):
            print(
                f"    {key.dep_type.name} {format_location(key.source_loc)} -> "
                f"{format_location(key.sink_loc)} on "
                f"{res.var_name(key.var)}: distance {dist}"
            )
    _finish_telemetry(args, reg, res, info)
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core import diff_outputs

    diff = diff_outputs(
        Path(args.file_a).read_text(), Path(args.file_b).read_text()
    )
    sys.stdout.write(diff.render(args.file_a, args.file_b))
    return 0 if diff.identical else 1


def cmd_listing(args: argparse.Namespace) -> int:
    from repro.minivm import source_listing
    from repro.workloads import get_workload

    wl = get_workload(args.workload)
    if wl.build_seq is None:
        print(f"{args.workload} is a trace-level workload (no program listing)")
        return 1
    scale = args.scale or wl.default_scale
    if args.variant == "par":
        program, _ = wl.build_par(scale, args.threads)
    else:
        program, _ = wl.build_seq(scale)
    sys.stdout.write(source_listing(program))
    return 0


def cmd_tree(args: argparse.Namespace) -> int:
    from repro.analyses import build_execution_tree

    batch = _trace_from(args)
    for tid, root in sorted(build_execution_tree(batch).items()):
        print(f"--- thread {tid} ---")
        print(root.render())
    return 0


def cmd_sections(args: argparse.Namespace) -> int:
    from repro.analyses import section_dependences

    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res, info = _profile_for(args, reg, batch)
    deps = section_dependences(res)
    _finish_telemetry(args, reg, res, info)
    if not deps:
        print("no cross-region dependences")
        return 0
    for d in deps:
        print(d.describe())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run the pipeline purely to record its execution timeline."""
    args.trace_out = args.out or f"{args.workload}.trace.json"
    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res, info = _pipeline_run(args, reg, batch)
    report = _report_from(args, reg, res, info, engine="pipeline")
    summary = reg.tracer.summary()
    _write_trace(args, reg)
    if args.json:
        print(report.to_json())
        return 0
    print(
        f"wrote {args.trace_out}: {summary['n_events']} events over "
        f"{summary['wall_seconds'] * 1e3:.1f} ms on "
        f"{len(summary['tracks'])} tracks "
        f"(load in Perfetto or chrome://tracing)"
    )
    for name, t in summary["tracks"].items():
        print(
            f"  {name:<10} busy {t['busy_frac'] * 100:5.1f}%  "
            f"stall {t['stall_frac'] * 100:5.1f}%  "
            f"idle {t['idle_frac'] * 100:5.1f}%  ({t['events']} events)"
        )
    if res.provenance is not None:
        print(
            f"provenance: {len(res.provenance)} records, "
            f"{res.provenance.n_suspect} suspect false positives"
        )
    return 0


# -- ddprof bench ------------------------------------------------------------

#: Suite membership of every benchmarks/test_*.py module.  The conftest
#: derives each module's suite from this same table (single source of
#: truth), so ``ddprof bench run --suite X`` and the ``bench_record``
#: fixture can never disagree about what belongs where.
BENCH_SUITES: dict[str, tuple[str, ...]] = {
    "seq": (
        "test_fig5_slowdown_sequential.py",
        "test_fig7_memory_sequential.py",
        "test_table1_accuracy.py",
        "test_table2_parallel_loops.py",
        "test_merge_reduction.py",
        "test_eq2_fpr_model.py",
        "test_hashtable_vs_signature.py",
        "test_race_flagging.py",
    ),
    "parallel": (
        "test_fig6_slowdown_parallel.py",
        "test_fig8_memory_parallel.py",
        "test_fig9_comm_pattern.py",
        "test_load_balancing.py",
        "test_measured_parallel_speedup.py",
        "test_ablation_pipeline.py",
        "test_parallel_scale.py",
    ),
    "engine": (
        "test_engine_throughput.py",
        "test_producer_throughput.py",
    ),
    "producer": (
        "test_producer_coverage.py",
    ),
    "obs": (
        "test_telemetry_overhead.py",
    ),
}

#: ``ddprof bench run --fast`` / the CI gate: the suites cheap enough to
#: run on every push (throughput kernels + coverage floors + telemetry
#: overhead).
FAST_SUITES = ("engine", "producer", "obs")


def _gather_bench_files(path) -> dict[str, str]:
    """Map suite name -> BENCH file under ``path`` (file or directory)."""
    from pathlib import Path

    from repro.obs import load_bench

    p = Path(path)
    files = sorted(p.glob("BENCH_*.json")) if p.is_dir() else [p]
    out: dict[str, str] = {}
    for f in files:
        doc = load_bench(f)
        out[doc.get("suite", f.stem)] = str(f)
    return out


def cmd_bench_run(args: argparse.Namespace) -> int:
    """Run benchmark suites under pytest; the conftest's ``bench_record``
    fixture writes ``BENCH_<suite>.json`` into --out-dir."""
    import datetime
    import os
    import subprocess
    from pathlib import Path

    bench_dir = Path(args.benchmarks_dir)
    if not bench_dir.is_dir():
        print(f"benchmarks directory not found: {bench_dir}", file=sys.stderr)
        return 2
    suites = list(args.suite) if args.suite else (
        list(FAST_SUITES) if args.fast else sorted(BENCH_SUITES)
    )
    unknown = [s for s in suites if s not in BENCH_SUITES]
    if unknown:
        print(
            f"unknown suite(s) {unknown}; known: {sorted(BENCH_SUITES)}",
            file=sys.stderr,
        )
        return 2
    files = [str(bench_dir / m) for s in suites for m in BENCH_SUITES[s]]
    out_dir = Path(args.out_dir).resolve()
    env = dict(os.environ)
    env["DDPROF_BENCH_OUT"] = str(out_dir)
    env.setdefault(
        "DDPROF_BENCH_TS",
        datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
    )
    cmd = [sys.executable, "-m", "pytest", "-q", *files]
    if args.keyword:
        cmd += ["-k", args.keyword]
    print(f"running suites {suites}: {' '.join(cmd)}")
    rc = subprocess.run(cmd, env=env).returncode
    written = sorted(out_dir.glob("BENCH_*.json"))
    for f in written:
        print(f"wrote {f}")
    return rc


def cmd_bench_compare(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import compare, load_bench

    base_by_suite = _gather_bench_files(args.baseline)
    cur_by_suite = _gather_bench_files(args.current)
    comparisons = []
    problems = 0
    for suite in sorted(set(base_by_suite) | set(cur_by_suite)):
        base = base_by_suite.get(suite)
        cur = cur_by_suite.get(suite)
        if cur is None:
            print(f"# suite {suite}: present in baseline only — skipped")
            if args.strict:
                problems += 1
            continue
        if base is None:
            # No committed baseline yet: everything classifies "added".
            base = {
                "schema": load_bench(cur)["schema"],
                "suite": suite,
                "benchmarks": {},
            }
        cmp = compare(
            base,
            cur,
            tolerance=args.threshold,
            mad_factor=args.mad_factor,
            suite=suite,
        )
        comparisons.append(cmp)
        if not cmp.ok:
            problems += 1
        if args.strict and cmp.of_status("removed"):
            problems += 1
    if args.json:
        print(_json.dumps([c.to_dict() for c in comparisons], indent=2))
    else:
        for cmp in comparisons:
            sys.stdout.write(cmp.render())
    return 1 if problems else 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import load_bench
    from repro.report import ascii_table

    docs = []
    for path in args.files:
        docs.extend(
            load_bench(f) for f in _gather_bench_files(path).values()
        )
    if args.json:
        print(_json.dumps(docs, indent=2))
        return 0
    for doc in docs:
        env = doc.get("environment", {})
        rows = [
            [
                bench_id,
                m.get("value"),
                m.get("mad", 0.0),
                m.get("unit", ""),
                m.get("direction", ""),
                m.get("repeats", 1),
                "-" if m.get("floor") is None else m["floor"],
            ]
            for bench_id, m in sorted(doc.get("benchmarks", {}).items())
        ]
        sha = str(env.get("git_sha", "unknown"))[:12]
        sys.stdout.write(
            ascii_table(
                ["benchmark", "median", "mad", "unit", "direction", "n", "floor"],
                rows,
                title=(
                    f"BENCH [{doc.get('suite')}] @ {sha} "
                    f"({env.get('cpus', '?')} cpus, {env.get('timestamp', 'no ts')})"
                ),
            )
        )
        if doc.get("tables"):
            names = ", ".join(sorted(doc["tables"]))
            sys.stdout.write(f"tables: {names}\n")
    return 0


# -- ddprof runs -------------------------------------------------------------


def _ledger_root(args: argparse.Namespace):
    from pathlib import Path

    from repro.obs import default_ledger_dir

    return Path(args.ledger) if args.ledger else default_ledger_dir()


def cmd_runs_list(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import list_runs
    from repro.report import ascii_table

    root = _ledger_root(args)
    rows = list_runs(root)
    if args.json:
        doc = {"schema": "ddprof.run-list/1", "ledger": str(root), "runs": rows}
        print(_json.dumps(doc, indent=2))
        return 0
    if not rows:
        print(f"no runs in ledger {root}")
        return 0
    table_rows = [
        [
            r["run_id"],
            r["status"],
            r.get("workload") or "-",
            r.get("mode") or "-",
            "-" if r.get("n_edges") is None else r["n_edges"],
            f"{r['bytes'] / 1024:.0f}KiB",
        ]
        for r in rows
    ]
    sys.stdout.write(
        ascii_table(
            ["run", "status", "workload", "mode", "edges", "size"],
            table_rows,
            title=f"run ledger {root}",
        )
    )
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    import json as _json

    from repro.common.errors import ObsError
    from repro.obs import bundle_summary, load_bundle, resolve_bundle

    root = _ledger_root(args)
    try:
        doc = load_bundle(resolve_bundle(root, args.run))
    except ObsError as exc:
        print(f"ddprof runs show: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(doc, indent=2))
    else:
        sys.stdout.write(bundle_summary(doc))
    return 0


def cmd_runs_diff(args: argparse.Namespace) -> int:
    """Diff two run bundles.  Exit codes: 0 = no regressions (any metric
    movement is reported but does not gate), 1 = regression (a loop verdict
    flipped toward less parallelism — plus added edges / coverage drops /
    new suspect FPs under --strict), 2 = operand error."""
    from repro.common.errors import ObsError
    from repro.obs import diff_bundles, load_bundle, resolve_bundle

    root = _ledger_root(args)
    try:
        a = load_bundle(resolve_bundle(root, args.run_a))
        b = load_bundle(resolve_bundle(root, args.run_b))
    except ObsError as exc:
        print(f"ddprof runs diff: {exc}", file=sys.stderr)
        return 2
    diff = diff_bundles(
        a,
        b,
        tolerance=args.threshold,
        mad_factor=args.mad_factor,
        strict=args.strict,
    )
    if args.json:
        print(diff.to_json())
    else:
        sys.stdout.write(diff.render())
    return 1 if diff.regressions else 0


def cmd_runs_gc(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import gc_ledger, list_runs

    root = _ledger_root(args)
    removed = gc_ledger(root, limit_bytes=args.limit_bytes, keep=args.keep)
    kept = len(list_runs(root))
    if args.json:
        print(_json.dumps({"removed": removed, "kept": kept}, indent=2))
        return 0
    print(f"evicted {len(removed)} run(s), kept {kept} in {root}")
    for rid in removed:
        print(f"  - {rid}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ddprof",
        description="Generic data-dependence profiler (IPDPS-W 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list benchmark analogs").set_defaults(
        fn=cmd_workloads
    )
    p = sub.add_parser("profile", help="profile and print dependences")
    _profiler_args(p)
    p.add_argument("--verbose", action="store_true", help="carried/race notes")
    p.set_defaults(fn=cmd_profile)
    p = sub.add_parser("loops", help="loop table with parallelism verdicts")
    _profiler_args(p)
    p.set_defaults(fn=cmd_loops)
    p = sub.add_parser("comm", help="communication-pattern matrix")
    _profiler_args(p)
    p.set_defaults(fn=cmd_comm)
    p = sub.add_parser("races", help="hunt potential races with push delays")
    _profiler_args(p)
    p.add_argument("--delay", type=float, default=0.3, help="push-delay probability")
    p.set_defaults(fn=cmd_races)
    p = sub.add_parser("listing", help="numbered source listing")
    _profiler_args(p)
    p.set_defaults(fn=cmd_listing)
    p = sub.add_parser("tree", help="dynamic execution tree")
    _profiler_args(p)
    p.set_defaults(fn=cmd_tree)
    p = sub.add_parser("sections", help="region-level dependences")
    _profiler_args(p)
    p.set_defaults(fn=cmd_sections)
    p = sub.add_parser("distances", help="per-loop dependence distances")
    _profiler_args(p)
    p.set_defaults(fn=cmd_distances)
    p = sub.add_parser(
        "stats", help="telemetry run-report of a full pipeline run"
    )
    _profiler_args(p)
    p.add_argument(
        "--prometheus-out", metavar="FILE", default=None,
        help="also write a Prometheus text exposition of the final metrics",
    )
    p.set_defaults(fn=cmd_stats)
    p = sub.add_parser(
        "top",
        help="live terminal view of a running profile "
        "(polls an --http-port exporter's /snapshot and /heatmap)",
    )
    p.add_argument(
        "--url", default=None,
        help="exporter base URL (default: http://127.0.0.1:<port>)",
    )
    p.add_argument(
        "--port", type=int, default=8377,
        help="exporter port when --url is not given (default: 8377)",
    )
    p.add_argument(
        "--interval", type=float, default=1.0, help="refresh period in seconds"
    )
    p.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    p.set_defaults(fn=cmd_top)
    p = sub.add_parser(
        "trace", help="record a pipeline timeline as Chrome trace JSON"
    )
    _profiler_args(p)
    p.add_argument(
        "--out", metavar="FILE", default=None,
        help="trace output path (default: <workload>.trace.json)",
    )
    p.set_defaults(fn=cmd_trace)
    p = sub.add_parser(
        "bench",
        help="structured benchmark records (BENCH_*.json) and the "
        "noise-aware regression gate",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    pb = bench_sub.add_parser(
        "run", help="run benchmark suites and write BENCH_<suite>.json"
    )
    pb.add_argument(
        "--suite", action="append", default=None,
        help=f"suite to run (repeatable; default: all of {sorted(BENCH_SUITES)})",
    )
    pb.add_argument(
        "--fast", action="store_true",
        help=f"only the fast CI-gate suites {list(FAST_SUITES)}",
    )
    pb.add_argument("--benchmarks-dir", default="benchmarks")
    pb.add_argument(
        "--out-dir", default=".",
        help="where BENCH_<suite>.json files land (default: repo root)",
    )
    pb.add_argument("-k", dest="keyword", default=None, help="pytest -k filter")
    pb.set_defaults(fn=cmd_bench_run)
    pb = bench_sub.add_parser(
        "compare",
        help="classify each metric improved/neutral/regressed; exit 1 on "
        "regressions or declared-bound violations",
    )
    pb.add_argument("baseline", help="BENCH file or directory of them")
    pb.add_argument("current", help="BENCH file or directory of them")
    pb.add_argument(
        "--threshold", type=float, default=None,
        help="relative noise tolerance override (default: per-metric, 0.25)",
    )
    pb.add_argument(
        "--mad-factor", type=float, default=4.0,
        help="MAD band multiplier (noise band = max(threshold*|base|, "
        "mad_factor*(base_mad+cur_mad)))",
    )
    pb.add_argument(
        "--strict", action="store_true",
        help="also fail on removed benchmarks / suites missing from current",
    )
    pb.add_argument("--json", action="store_true")
    pb.set_defaults(fn=cmd_bench_compare)
    pb = bench_sub.add_parser(
        "report", help="human-readable summary of BENCH files"
    )
    pb.add_argument("files", nargs="+", help="BENCH files or directories")
    pb.add_argument("--json", action="store_true")
    pb.set_defaults(fn=cmd_bench_report)

    p = sub.add_parser(
        "diff", help="compare two saved dependence listings record by record"
    )
    p.add_argument("file_a")
    p.add_argument("file_b")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser(
        "runs",
        help="the run ledger: list/show/diff/gc persisted run bundles",
    )
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    def _runs_common(pr: argparse.ArgumentParser) -> None:
        pr.add_argument(
            "--ledger", metavar="DIR", default=None,
            help="ledger directory (default: $DDPROF_LEDGER or ~/.ddprof/runs)",
        )
        pr.add_argument("--json", action="store_true")

    pr = runs_sub.add_parser("list", help="list persisted runs, newest first")
    _runs_common(pr)
    pr.set_defaults(fn=cmd_runs_list)
    pr = runs_sub.add_parser("show", help="render one run bundle")
    _runs_common(pr)
    pr.add_argument("run", help="run id or bundle path")
    pr.set_defaults(fn=cmd_runs_show)
    pr = runs_sub.add_parser(
        "diff",
        help="cross-run dependence-regression diff; exit 1 when a loop "
        "verdict flips toward less parallelism",
    )
    _runs_common(pr)
    pr.add_argument("run_a", help="baseline run id or bundle path")
    pr.add_argument("run_b", help="current run id or bundle path")
    pr.add_argument(
        "--threshold", type=float, default=None,
        help="relative noise tolerance for metric deltas (default: 0.25)",
    )
    pr.add_argument(
        "--mad-factor", type=float, default=4.0,
        help="MAD band multiplier for metric deltas",
    )
    pr.add_argument(
        "--strict", action="store_true",
        help="also gate on added edges, coverage drops, and new suspect FPs",
    )
    pr.set_defaults(fn=cmd_runs_diff)
    pr = runs_sub.add_parser(
        "gc", help="LRU-prune the ledger to a size/count budget"
    )
    _runs_common(pr)
    pr.add_argument(
        "--limit-bytes", type=int, default=None,
        help="evict oldest runs until the ledger fits this many bytes",
    )
    pr.add_argument(
        "--keep", type=int, default=None,
        help="keep at most this many newest runs",
    )
    pr.set_defaults(fn=cmd_runs_gc)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BaseException as exc:
        # Crash-finally ledger contract: whatever killed the run, an
        # unfinalized ledger still commits a valid (never torn) bundle
        # recording the crash, then the original error propagates.
        import contextlib

        ledger = getattr(args, "_ledger", None)
        reg = getattr(args, "_registry", None)
        if ledger is not None and not ledger.finalized and reg is not None:
            with contextlib.suppress(Exception):
                ledger.finalize(
                    reg,
                    status="crashed",
                    error=f"{type(exc).__name__}: {exc}",
                )
        plane = getattr(args, "_plane", None)
        if plane is not None:
            with contextlib.suppress(Exception):
                plane.stop()
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
