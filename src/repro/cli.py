"""``ddprof`` — command-line front end.

Subcommands::

    ddprof workloads                       list registered benchmark analogs
    ddprof profile <workload> [...]        profile and print Figure 1/3 output
    ddprof loops <workload> [...]          loop table with parallelism verdicts
    ddprof comm <workload> [...]           producer/consumer matrix (Figure 9)
    ddprof races <workload> [...]          potential data races (Section V-B)
    ddprof listing <workload>              numbered source listing of the analog
    ddprof tree <workload> [...]           dynamic execution tree
    ddprof sections <workload> [...]       region-level dependence summary
    ddprof stats <workload> [...]          telemetry run-report of a pipeline run

Every profiling subcommand accepts ``--metrics-out FILE`` (write the
telemetry event stream as JSONL) and ``--json`` (append/print the
machine-readable run report; schema in docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.common.config import ProfilerConfig
from repro.core import format_dependences, profile_trace
from repro.minivm import ScheduleConfig, run_program
from repro.obs import JsonlSink, MetricsRegistry, RunReport


def _profiler_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("workload", help="workload name (see `ddprof workloads`)")
    p.add_argument("--variant", choices=["seq", "par"], default="seq")
    p.add_argument("--scale", type=int, default=None, help="problem-size factor")
    p.add_argument("--threads", type=int, default=4, help="target threads (par)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--slots", type=int, default=None,
        help="signature slots (default: perfect signature)",
    )
    p.add_argument(
        "--engine", choices=["vectorized", "reference"], default="vectorized"
    )
    p.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write the telemetry event stream (JSONL) to FILE",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable run report as JSON",
    )


def _config_from(args: argparse.Namespace) -> ProfilerConfig:
    if args.slots is None:
        cfg = ProfilerConfig(perfect_signature=True)
    else:
        cfg = ProfilerConfig(signature_slots=args.slots)
    return cfg.with_(multithreaded_target=args.variant == "par")


def _registry_from(args: argparse.Namespace) -> MetricsRegistry:
    """Telemetry registry for one CLI run (JSONL sink when requested)."""
    sink = JsonlSink(args.metrics_out) if args.metrics_out else None
    return MetricsRegistry(sink)


def _report_from(
    args: argparse.Namespace,
    reg: MetricsRegistry,
    result=None,
    info=None,
    engine: str | None = None,
) -> RunReport:
    """Freeze telemetry: final snapshot event, close the sink, build report."""
    reg.emit({"type": "snapshot", **reg.snapshot()})
    reg.close()
    return RunReport.build(
        reg,
        result,
        info,
        workload=args.workload,
        variant=args.variant,
        engine=engine or args.engine,
    )


def _finish_telemetry(
    args: argparse.Namespace, reg: MetricsRegistry, result=None, info=None
) -> None:
    """Shared tail of every profiling subcommand."""
    report = _report_from(args, reg, result, info)
    if args.json:
        print(report.to_json())


def _trace_from(args: argparse.Namespace, reg: MetricsRegistry | None = None):
    from repro.workloads import get_trace

    if reg is None:
        reg = MetricsRegistry()
    with reg.span("trace-build"):
        return get_trace(
            args.workload,
            variant=args.variant,
            scale=args.scale,
            threads=args.threads,
            seed=args.seed,
        )


def cmd_workloads(_args: argparse.Namespace) -> int:
    from repro.workloads import get_workload, workload_names

    for suite in ("nas", "starbench", "splash2x"):
        print(f"[{suite}]")
        for name in workload_names(suite):
            wl = get_workload(name)
            par = " (+par)" if wl.has_parallel_variant else ""
            print(f"  {name:16s}{par}  {wl.description}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res = profile_trace(batch, _config_from(args), args.engine, registry=reg)
    sys.stdout.write(format_dependences(res, verbose=args.verbose))
    if not args.json:
        s = res.stats
        print(
            f"\n# {s.n_accesses} accesses, {s.n_unique_addresses} addresses, "
            f"{len(res.store)} merged dependences "
            f"({res.store.instances} instances, "
            f"{res.merge_reduction_factor:.0f}x merge), "
            f"{s.races_flagged} potential races"
        )
    _finish_telemetry(args, reg, res)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run the full parallel pipeline and print its telemetry run-report."""
    from repro.parallel import ParallelProfiler

    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    cfg = _config_from(args).with_(workers=args.workers)
    res, info = ParallelProfiler(cfg, registry=reg).profile(batch)
    report = _report_from(args, reg, res, info, engine="pipeline")
    if args.json:
        print(report.to_json())
    else:
        sys.stdout.write(report.render())
    if args.prometheus_out:
        from pathlib import Path

        from repro.obs import prometheus_text

        Path(args.prometheus_out).write_text(prometheus_text(reg))
    return 0


def cmd_loops(args: argparse.Namespace) -> int:
    from repro.analyses import loop_table
    from repro.report import ascii_table

    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res = profile_trace(batch, _config_from(args), args.engine, registry=reg)
    rows = [
        (r.site, r.end, r.executions, r.total_iterations, r.parallelizable, r.note)
        for r in loop_table(res)
    ]
    sys.stdout.write(
        ascii_table(
            ["loop", "end", "execs", "iters", "parallel", "verdict"],
            rows,
            title=f"Loops of {args.workload} ({args.variant})",
        )
    )
    _finish_telemetry(args, reg, res)
    return 0


def cmd_comm(args: argparse.Namespace) -> int:
    from repro.analyses import communication_matrix, render_matrix

    args.variant = "par"
    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res = profile_trace(batch, _config_from(args), args.engine, registry=reg)
    m = communication_matrix(res, n_threads=args.threads + 1)
    sys.stdout.write(render_matrix(m[1:, 1:]))
    _finish_telemetry(args, reg, res)
    return 0


def cmd_races(args: argparse.Namespace) -> int:
    from repro.common.sourceloc import format_location
    from repro.workloads import get_workload

    args.variant = "par"
    reg = _registry_from(args)
    wl = get_workload(args.workload)
    with reg.span("trace-build"):
        program, _ = wl.build_par(args.scale or wl.default_scale, args.threads)
        batch = run_program(
            program,
            schedule=ScheduleConfig(
                policy="roundrobin", seed=args.seed, delay_probability=args.delay
            ),
        )
    res = profile_trace(batch, _config_from(args), args.engine, registry=reg)
    _finish_telemetry(args, reg, res)
    races = res.store.races()
    if not races:
        print("no potential data races flagged")
        return 0
    for d in races:
        print(
            f"potential race: {d.dep_type.name} on {res.var_name(d.var)} — "
            f"{format_location(d.source_loc)}|{d.source_tid} vs "
            f"{format_location(d.sink_loc)}|{d.sink_tid}"
        )
    return 1


def cmd_distances(args: argparse.Namespace) -> int:
    import math

    from repro.analyses import dependence_distances
    from repro.common.sourceloc import format_location
    from repro.core import profile_trace as _pt

    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res = _pt(batch, _config_from(args), args.engine, registry=reg)
    for site in sorted(res.loops):
        d = dependence_distances(batch, site)
        degree = d.doacross_degree
        verdict = (
            "DOALL"
            if math.isinf(degree)
            else ("serial" if degree <= 1 else f"do-across x{int(degree)}")
        )
        print(f"loop {format_location(site)}: {verdict}")
        for key, dist in sorted(
            d.min_distance.items(), key=lambda kv: (kv[1], kv[0].dep_type)
        ):
            print(
                f"    {key.dep_type.name} {format_location(key.source_loc)} -> "
                f"{format_location(key.sink_loc)} on "
                f"{res.var_name(key.var)}: distance {dist}"
            )
    _finish_telemetry(args, reg, res)
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core import diff_outputs

    diff = diff_outputs(
        Path(args.file_a).read_text(), Path(args.file_b).read_text()
    )
    sys.stdout.write(diff.render(args.file_a, args.file_b))
    return 0 if diff.identical else 1


def cmd_listing(args: argparse.Namespace) -> int:
    from repro.minivm import source_listing
    from repro.workloads import get_workload

    wl = get_workload(args.workload)
    scale = args.scale or wl.default_scale
    if args.variant == "par":
        program, _ = wl.build_par(scale, args.threads)
    else:
        program, _ = wl.build_seq(scale)
    sys.stdout.write(source_listing(program))
    return 0


def cmd_tree(args: argparse.Namespace) -> int:
    from repro.analyses import build_execution_tree

    batch = _trace_from(args)
    for tid, root in sorted(build_execution_tree(batch).items()):
        print(f"--- thread {tid} ---")
        print(root.render())
    return 0


def cmd_sections(args: argparse.Namespace) -> int:
    from repro.analyses import section_dependences

    reg = _registry_from(args)
    batch = _trace_from(args, reg)
    res = profile_trace(batch, _config_from(args), args.engine, registry=reg)
    deps = section_dependences(res)
    _finish_telemetry(args, reg, res)
    if not deps:
        print("no cross-region dependences")
        return 0
    for d in deps:
        print(d.describe())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ddprof",
        description="Generic data-dependence profiler (IPDPS-W 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list benchmark analogs").set_defaults(
        fn=cmd_workloads
    )
    p = sub.add_parser("profile", help="profile and print dependences")
    _profiler_args(p)
    p.add_argument("--verbose", action="store_true", help="carried/race notes")
    p.set_defaults(fn=cmd_profile)
    p = sub.add_parser("loops", help="loop table with parallelism verdicts")
    _profiler_args(p)
    p.set_defaults(fn=cmd_loops)
    p = sub.add_parser("comm", help="communication-pattern matrix")
    _profiler_args(p)
    p.set_defaults(fn=cmd_comm)
    p = sub.add_parser("races", help="hunt potential races with push delays")
    _profiler_args(p)
    p.add_argument("--delay", type=float, default=0.3, help="push-delay probability")
    p.set_defaults(fn=cmd_races)
    p = sub.add_parser("listing", help="numbered source listing")
    _profiler_args(p)
    p.set_defaults(fn=cmd_listing)
    p = sub.add_parser("tree", help="dynamic execution tree")
    _profiler_args(p)
    p.set_defaults(fn=cmd_tree)
    p = sub.add_parser("sections", help="region-level dependences")
    _profiler_args(p)
    p.set_defaults(fn=cmd_sections)
    p = sub.add_parser("distances", help="per-loop dependence distances")
    _profiler_args(p)
    p.set_defaults(fn=cmd_distances)
    p = sub.add_parser(
        "stats", help="telemetry run-report of a full pipeline run"
    )
    _profiler_args(p)
    p.add_argument(
        "--workers", type=int, default=4, help="pipeline worker count"
    )
    p.add_argument(
        "--prometheus-out", metavar="FILE", default=None,
        help="also write a Prometheus text exposition of the final metrics",
    )
    p.set_defaults(fn=cmd_stats)
    p = sub.add_parser(
        "diff", help="compare two saved dependence listings record by record"
    )
    p.add_argument("file_a")
    p.add_argument("file_b")
    p.set_defaults(fn=cmd_diff)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
