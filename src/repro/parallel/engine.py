"""The parallel profiling pipeline (Figure 2).

``ParallelProfiler.profile`` plays the producer role over an instrumented
trace: it routes every memory access to its owning worker, broadcasts the
events all workers need for context (FREE for lifetime analysis, loop
markers for carried-dependence classification), pushes fixed-size chunks of
row indices onto per-worker queues, and triggers the Section IV-A load
balancer at its configured cadence.  Workers consume chunks and run the
incremental Algorithm 1 engine on private trackers; local stores are merged
at the end ("this step incurs only minor overhead since the local maps are
free of duplicates").

Two execution modes:

* ``deterministic`` — single-process: the producer inline-drains queues when
  they fill and drains everything at the end.  Fully reproducible; used by
  tests and as the cost model's source of pipeline statistics.
* ``threads`` — real ``threading.Thread`` workers pulling from the lock-free
  rings.  Architecturally faithful (and correct under the GIL); Python
  threads cannot show the paper's wall-clock speedup, which is why speedups
  are *estimated* by :mod:`repro.costmodel` from this pipeline's measured
  statistics.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.common.config import ProfilerConfig
from repro.common.errors import ProfilerError
from repro.core.controlflow import extract_loop_info
from repro.core.deps import DependenceStore
from repro.core.result import ProfileResult, ProfileStats
from repro.parallel.address_map import AddressMap
from repro.parallel.balance import AccessStats, Rebalancer
from repro.parallel.chunks import Chunk, ChunkPool
from repro.parallel.queues import LockedQueue, SpscRingQueue
from repro.parallel.worker import Worker
from repro.trace import FREE, LOOP_ENTER, LOOP_EXIT, LOOP_ITER, READ, WRITE, TraceBatch

MODES = ("deterministic", "threads")


@dataclass
class ParallelRunInfo:
    """Pipeline statistics of one run — the cost model's raw material."""

    n_workers: int = 0
    n_chunks: int = 0
    n_broadcast_rows: int = 0
    per_worker_accesses: list[int] = field(default_factory=list)
    per_worker_chunks: list[int] = field(default_factory=list)
    rebalance_rounds: int = 0
    addresses_migrated: int = 0
    #: Producer-order log: (worker, rows_in_chunk) per pushed chunk, with
    #: (-1, 0) markers at rebalance quiesce points — the cost model replays
    #: this sequence through its discrete-event pipeline.
    chunk_log: list[tuple[int, int]] = field(default_factory=list)
    push_stalls: int = 0
    pop_stalls: int = 0
    lock_ops: int = 0
    chunks_allocated: int = 0
    queue_memory_bytes: int = 0
    signature_memory_bytes: int = 0

    @property
    def access_imbalance(self) -> float:
        """max/mean per-worker access load; 1.0 is perfectly balanced."""
        if not self.per_worker_accesses:
            return 1.0
        mean = sum(self.per_worker_accesses) / len(self.per_worker_accesses)
        return max(self.per_worker_accesses) / mean if mean > 0 else 1.0


class ParallelProfiler:
    """The chunk/queue/worker pipeline of Section IV."""

    def __init__(
        self,
        config: ProfilerConfig,
        mode: str = "deterministic",
        rebalance_threshold: float = 1.25,
        window: int = 1 << 15,
    ) -> None:
        if mode not in MODES:
            raise ProfilerError(f"unknown mode {mode!r}; pick from {MODES}")
        self.config = config
        self.mode = mode
        self.rebalance_threshold = rebalance_threshold
        self.window = window

    # ------------------------------------------------------------------
    def profile(self, batch: TraceBatch) -> tuple[ProfileResult, ParallelRunInfo]:
        cfg = self.config
        workers = [Worker(w, cfg) for w in range(cfg.workers)]
        queue_cls = SpscRingQueue if cfg.lock_free_queues else LockedQueue
        queues = [queue_cls(cfg.queue_depth) for _ in range(cfg.workers)]
        pool = ChunkPool(cfg.chunk_size)
        open_chunks: list[Chunk] = [pool.acquire() for _ in range(cfg.workers)]
        amap = AddressMap(cfg.workers)
        stats = AccessStats()
        rebalancer = Rebalancer(amap, cfg.hot_addresses)
        info = ParallelRunInfo(n_workers=cfg.workers)
        busy = [False] * cfg.workers

        threads: list[threading.Thread] = []
        if self.mode == "threads":

            def consume(w: int) -> None:
                while True:
                    # busy is raised BEFORE the pop: once quiesce() observes
                    # this queue empty, either the pop never happened or busy
                    # is still up — it can never miss an in-flight chunk.
                    busy[w] = True
                    ok, chunk = queues[w].try_pop()
                    if ok:
                        workers[w].process_chunk(batch, chunk)
                        busy[w] = False
                        pool.release(chunk)
                    else:
                        busy[w] = False
                        if queues[w].drained:
                            return
                        time.sleep(0)

            threads = [
                threading.Thread(target=consume, args=(w,), daemon=True)
                for w in range(cfg.workers)
            ]
            for t in threads:
                t.start()

        def drain_inline(w: int, limit: int | None = None) -> None:
            popped = 0
            while limit is None or popped < limit:
                ok, chunk = queues[w].try_pop()
                if not ok:
                    return
                workers[w].process_chunk(batch, chunk)
                pool.release(chunk)
                popped += 1

        def push_chunk(w: int) -> None:
            chunk = open_chunks[w]
            if chunk.count == 0:
                return
            chunk.seq = info.n_chunks
            while not queues[w].try_push(chunk):
                if self.mode == "deterministic":
                    drain_inline(w, limit=1)
                else:
                    time.sleep(0)
            info.n_chunks += 1
            info.chunk_log.append((w, chunk.count))
            open_chunks[w] = pool.acquire()

        def bulk_append(w: int, rows: np.ndarray) -> None:
            i, n = 0, len(rows)
            while i < n:
                chunk = open_chunks[w]
                take = min(n - i, chunk.capacity - chunk.count)
                chunk.rows[chunk.count : chunk.count + take] = rows[i : i + take]
                chunk.count += take
                i += take
                if chunk.full:
                    push_chunk(w)

        def quiesce() -> None:
            """Wait until every queue is empty and every worker idle."""
            if self.mode == "deterministic":
                for w in range(cfg.workers):
                    drain_inline(w)
            else:
                while any(len(q) for q in queues) or any(busy):
                    time.sleep(0)

        # Hysteresis: remember the hot-load ratio right after the previous
        # redistribution.  If the current ratio is no worse, the previous
        # spread is still in effect (or the workload's hot set simply cannot
        # be balanced below the threshold) and redoing the move would only
        # thrash — the paper performs redistribution at most ~20 times per
        # benchmark for the same reason.
        post_rebalance_imbalance: list[float | None] = [None]

        def maybe_rebalance() -> None:
            imbalance = rebalancer.imbalance(stats)
            if imbalance <= self.rebalance_threshold:
                return
            prev = post_rebalance_imbalance[0]
            if prev is not None and imbalance <= prev * 1.1:
                return
            quiesce()  # preserve per-address ordering across the move
            decision = rebalancer.rebalance(stats)
            for addr, old, new in decision.moves:
                r, wrec = workers[old].migrate_out(addr)
                workers[new].migrate_in(addr, r, wrec)
            post_rebalance_imbalance[0] = rebalancer.imbalance(stats)
            if decision.n_moves:
                info.rebalance_rounds += 1
                info.addresses_migrated += decision.n_moves
                info.chunk_log.append((-1, 0))

        # ---- producer loop over windows of the trace ------------------
        kind = batch.kind
        addr = batch.addr
        is_access = (kind == READ) | (kind == WRITE)
        is_bcast = (
            (kind == FREE)
            | (kind == LOOP_ENTER)
            | (kind == LOOP_ITER)
            | (kind == LOOP_EXIT)
        )
        info.n_broadcast_rows = int(np.count_nonzero(is_bcast))
        # The paper re-checks the access statistics every 50 000 chunks; we
        # measure the interval in *routed accesses* (interval x chunk_size)
        # so the cadence does not depend on how many workers the control
        # rows are replicated to.
        rebalance_every = cfg.rebalance_interval_chunks * cfg.chunk_size
        accesses_at_last_check = 0
        accesses_routed = 0
        n = len(batch)
        for s in range(0, n, self.window):
            e = min(s + self.window, n)
            rows = np.arange(s, e, dtype=np.int64)
            acc = is_access[s:e]
            bcast = is_bcast[s:e]
            acc_rows = rows[acc]
            if len(acc_rows):
                stats.record_many(addr[acc_rows])
                accesses_routed += len(acc_rows)
            assign = amap.workers_of(addr[s:e])
            for w in range(cfg.workers):
                wrows = rows[(acc & (assign == w)) | bcast]
                if len(wrows):
                    bulk_append(w, wrows)
            if accesses_routed - accesses_at_last_check >= rebalance_every:
                accesses_at_last_check = accesses_routed
                maybe_rebalance()

        # ---- flush + drain + merge --------------------------------------
        for w in range(cfg.workers):
            push_chunk(w)
            queues[w].close()
        if self.mode == "deterministic":
            for w in range(cfg.workers):
                drain_inline(w)
        else:
            for t in threads:
                t.join()

        store = DependenceStore()
        agg = ProfileStats(n_events=len(batch))
        for w, worker in enumerate(workers):
            store.merge(worker.store)
            agg.n_reads += worker.engine.stats.n_reads
            agg.n_writes += worker.engine.stats.n_writes
            agg.races_flagged += worker.engine.stats.races_flagged
            for t, c in worker.engine.stats.dep_instances.items():
                agg.dep_instances[t] += c
            info.per_worker_accesses.append(worker.accesses_processed)
            info.per_worker_chunks.append(worker.chunks_processed)
        agg.n_accesses = agg.n_reads + agg.n_writes
        agg.n_unique_addresses = batch.n_unique_addresses
        agg.tracker_memory_bytes = sum(w.memory_bytes for w in workers)

        info.push_stalls = sum(q.push_fail_count for q in queues)
        info.pop_stalls = sum(q.pop_fail_count for q in queues)
        info.lock_ops = sum(getattr(q, "lock_ops", 0) for q in queues)
        info.chunks_allocated = pool.allocated
        info.queue_memory_bytes = pool.memory_bytes
        info.signature_memory_bytes = agg.tracker_memory_bytes

        result = ProfileResult(
            store=store,
            loops=extract_loop_info(batch),
            stats=agg,
            var_names=batch.var_names,
            file_names=batch.file_names,
            multithreaded=batch.n_threads > 1 or cfg.multithreaded_target,
        )
        return result, info
