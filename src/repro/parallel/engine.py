"""The parallel profiling pipeline (Figure 2).

``ParallelProfiler.profile`` plays the producer role over an instrumented
trace: it routes every memory access to its owning worker, broadcasts the
events all workers need for context (FREE for lifetime analysis, loop
markers for carried-dependence classification), pushes fixed-size chunks of
row indices onto per-worker queues, and triggers the Section IV-A load
balancer at its configured cadence.  Workers consume chunks and run the
incremental Algorithm 1 engine on private trackers; local stores are merged
at the end ("this step incurs only minor overhead since the local maps are
free of duplicates").

Three execution modes:

* ``deterministic`` — single-process: the producer inline-drains queues when
  they fill and drains everything at the end.  Fully reproducible; used by
  tests and as the cost model's source of pipeline statistics.
* ``threads`` — real ``threading.Thread`` workers pulling from the lock-free
  rings.  Architecturally faithful (and correct under the GIL); Python
  threads cannot show the paper's wall-clock speedup, which is why speedups
  are *estimated* by :mod:`repro.costmodel` from this pipeline's measured
  statistics.
* ``processes`` — real ``multiprocessing`` workers with private signatures,
  reading the trace zero-copy out of one shared-memory block
  (:mod:`repro.trace.shm`); only window index ranges cross the task queues
  and routing is recomputed worker-side, so this mode shows *measured*
  multi-core speedup.  Load rebalancing and the telemetry sampler are
  producer-side features and are disabled here (static address partition);
  per-worker stores, metrics, provenance, and trace events are merged when
  the workers exit.

Telemetry: the run is instrumented through one
:class:`~repro.obs.metrics.MetricsRegistry` — stall counters live *inside*
the queues, rebalance counters inside the :class:`Rebalancer`, per-chunk
latencies inside the workers, and a :class:`~repro.obs.sampler.Sampler`
periodically scrapes queue occupancy / signature fill / chunk-pool gauges
(inline per producer window in deterministic mode, from a daemon thread in
``threads`` mode).  :class:`ParallelRunInfo` and the aggregate
:class:`~repro.core.result.ProfileStats` are derived *views* of that
registry rather than independently maintained bookkeeping.  Pass a
registry with a sink to capture the event stream; the default private
registry has a ``NullSink`` and costs only the plain counters.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.common.config import ProfilerConfig
from repro.common.errors import ProfilerError
from repro.core.controlflow import LoopStateIndex, extract_loop_info
from repro.core.deps import DependenceStore
from repro.core.result import ProfileResult, ProfileStats
from repro.obs.environment import peak_rss_bytes
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import ProvenanceCollector
from repro.obs.sampler import Sampler
from repro.obs.tracing import MAIN_TRACK, worker_track
from repro.parallel.address_map import AddressMap
from repro.parallel.balance import AccessStats, Rebalancer
from repro.parallel.chunks import Chunk, ChunkPool
from repro.parallel.heartbeat import (
    HeartbeatBoard,
    WorkerWatchdog,
    process_exitcodes,
)
from repro.parallel.procworker import run_worker
from repro.parallel.queues import LockedQueue, SpscRingQueue
from repro.parallel.worker import Worker
from repro.trace import FREE, LOOP_ENTER, LOOP_EXIT, LOOP_ITER, READ, WRITE, TraceBatch
from repro.trace.shm import share_batch

MODES = ("deterministic", "threads", "processes")


@dataclass
class ParallelRunInfo:
    """Pipeline statistics of one run — the cost model's raw material.

    Constructed by :meth:`from_registry` as a frozen view over the run's
    metrics registry (stall counters are the queues' own counters, worker
    loads the workers' published counters, and so on); the dataclass keeps
    the cost model's stable field-level API.
    """

    n_workers: int = 0
    n_chunks: int = 0
    n_broadcast_rows: int = 0
    per_worker_accesses: list[int] = field(default_factory=list)
    per_worker_chunks: list[int] = field(default_factory=list)
    rebalance_rounds: int = 0
    addresses_migrated: int = 0
    #: Bank-granularity migrations (sharded signature memory); each move
    #: relocated one address-range bank *with* its signature state.
    banks_migrated: int = 0
    #: Producer-order log: (worker, rows_in_chunk) per pushed chunk, with
    #: (-1, 0) markers at rebalance quiesce points — the cost model replays
    #: this sequence through its discrete-event pipeline.
    chunk_log: list[tuple[int, int]] = field(default_factory=list)
    push_stalls: int = 0
    pop_stalls: int = 0
    lock_ops: int = 0
    chunks_allocated: int = 0
    queue_memory_bytes: int = 0
    signature_memory_bytes: int = 0
    #: Full audit trail of the run's rebalancing decisions (one dict per
    #: round, see :attr:`~repro.parallel.balance.Rebalancer.audit`).  Empty
    #: in processes mode, which uses a static address partition.
    rebalance_audit: list[dict] = field(default_factory=list)

    @property
    def access_imbalance(self) -> float:
        """max/mean per-worker access load; 1.0 is perfectly balanced."""
        if not self.per_worker_accesses:
            return 1.0
        mean = sum(self.per_worker_accesses) / len(self.per_worker_accesses)
        return max(self.per_worker_accesses) / mean if mean > 0 else 1.0

    @classmethod
    def from_registry(
        cls,
        registry: MetricsRegistry,
        n_workers: int,
        chunk_log: list[tuple[int, int]],
        rebalance_audit: list[dict] | None = None,
    ) -> "ParallelRunInfo":
        """Derive the statistics view from the run's registry."""

        def per_worker(name: str) -> list[int]:
            by_worker = {
                int(dict(c.labels)["worker"]): c.value
                for c in registry.counters()
                if c.name == name and "worker" in dict(c.labels)
            }
            return [by_worker.get(w, 0) for w in range(n_workers)]

        def gauge_value(name: str) -> int:
            return int(
                sum(g.value for g in registry.gauges() if g.name == name)
            )

        return cls(
            n_workers=n_workers,
            n_chunks=registry.counter("pipeline.chunks").value,
            n_broadcast_rows=registry.counter("pipeline.broadcast_rows").value,
            per_worker_accesses=per_worker("worker.accesses"),
            per_worker_chunks=per_worker("worker.chunks"),
            rebalance_rounds=registry.counter("rebalance.rounds").value,
            addresses_migrated=registry.counter("rebalance.moves").value,
            banks_migrated=registry.counter("rebalance.bank_moves").value,
            chunk_log=chunk_log,
            push_stalls=registry.sum_counters("queue.push_stalls"),
            pop_stalls=registry.sum_counters("queue.pop_stalls"),
            lock_ops=registry.sum_counters("queue.lock_ops"),
            chunks_allocated=gauge_value("chunkpool.allocated"),
            queue_memory_bytes=gauge_value("chunkpool.memory_bytes"),
            signature_memory_bytes=gauge_value("engine.tracker_memory_bytes"),
            rebalance_audit=rebalance_audit if rebalance_audit is not None else [],
        )


class ParallelProfiler:
    """The chunk/queue/worker pipeline of Section IV."""

    def __init__(
        self,
        config: ProfilerConfig,
        mode: str = "deterministic",
        rebalance_threshold: float = 1.25,
        window: int = 1 << 15,
        registry: MetricsRegistry | None = None,
        provenance: bool = False,
        heartbeat_interval: float | None = 0.05,
        ledger=None,
    ) -> None:
        if mode not in MODES:
            raise ProfilerError(f"unknown mode {mode!r}; pick from {MODES}")
        self.config = config
        self.mode = mode
        self.rebalance_threshold = rebalance_threshold
        self.window = window
        #: Watchdog cadence for ``processes`` mode (seconds); ``None`` or
        #: ``0`` disables the heartbeat plane entirely.
        self.heartbeat_interval = heartbeat_interval
        #: Telemetry registry; ``None`` means each run builds a private
        #: sinkless one (counters still work, no event stream).
        self.registry = registry
        #: When True, every worker keeps a :class:`ProvenanceCollector`
        #: (attributing each dependence to worker/chunk/timestamps) and the
        #: merge phase folds them into ``result.provenance``.
        self.provenance = provenance
        #: Optional :class:`~repro.obs.ledger.RunLedger`: the pipeline
        #: checkpoints a partial bundle (atomic tmp+rename) on every exit
        #: from the producer frame, so even a worker crash leaves a valid,
        #: never-torn run bundle behind.  The CLI's success path later
        #: finalizes the full document over it.
        self.ledger = ledger

    def _ledger_checkpoint(self, reg: MetricsRegistry) -> None:
        """Crash-safe partial-bundle write; never raises into the pipeline."""
        if self.ledger is None:
            return
        try:
            self.ledger.checkpoint(reg)
        except OSError:  # a full/readonly ledger must not mask the run error
            pass

    # ------------------------------------------------------------------
    def profile(self, batch: TraceBatch) -> tuple[ProfileResult, ParallelRunInfo]:
        if self.mode == "processes":
            return self._profile_processes(batch)
        cfg = self.config
        # One registry per run: counters are monotonic, so a shared
        # externally-supplied registry must not be reused across runs.
        reg = self.registry if self.registry is not None else MetricsRegistry()
        tracer = reg.tracer
        if tracer.enabled:
            tracer.set_track(MAIN_TRACK, "main")
            for w in range(cfg.workers):
                tracer.set_track(worker_track(w), f"worker {w}")
        provs: list[ProvenanceCollector] | None = (
            [ProvenanceCollector(worker=w) for w in range(cfg.workers)]
            if self.provenance
            else None
        )
        workers = [
            Worker(w, cfg, reg, provenance=provs[w] if provs is not None else None)
            for w in range(cfg.workers)
        ]
        vec_workers = [w for w in workers if w.engine_kind == "vectorized"]
        if vec_workers:
            # One push-order loop-snapshot index per run, shared by every
            # in-process vectorized kernel (it is batch-global, read-only).
            shared_loops = LoopStateIndex(batch)
            for w in vec_workers:
                w.engine.bind_loop_index(batch, shared_loops)
        if cfg.lock_free_queues:
            queues: list[SpscRingQueue | LockedQueue] = [
                SpscRingQueue(
                    cfg.queue_depth,
                    push_stalls=reg.counter("queue.push_stalls", worker=w),
                    pop_stalls=reg.counter("queue.pop_stalls", worker=w),
                )
                for w in range(cfg.workers)
            ]
        else:
            queues = [
                LockedQueue(
                    cfg.queue_depth,
                    push_stalls=reg.counter("queue.push_stalls", worker=w),
                    pop_stalls=reg.counter("queue.pop_stalls", worker=w),
                    lock_ops_counter=reg.counter("queue.lock_ops", worker=w),
                )
                for w in range(cfg.workers)
            ]
        pool = ChunkPool(cfg.chunk_size)
        open_chunks: list[Chunk] = [pool.acquire() for _ in range(cfg.workers)]
        amap = AddressMap(cfg.workers, bank_geometry=cfg.bank_geometry)
        stats = AccessStats()
        rebalancer = Rebalancer(amap, cfg.hot_addresses, registry=reg)
        chunk_log: list[tuple[int, int]] = []
        chunk_counter = reg.counter("pipeline.chunks")
        busy = [False] * cfg.workers

        # -- periodic telemetry sampling --------------------------------
        sampler = Sampler(reg)
        for w in range(cfg.workers):
            sampler.add(
                "queue.occupancy", queues[w].__len__, worker=w
            )
            tr = workers[w].engine.read_tracker
            tw = workers[w].engine.write_tracker
            sampler.add("sigmem.occupied", tr.occupied, worker=w, kind="read")
            sampler.add("sigmem.occupied", tw.occupied, worker=w, kind="write")
            if hasattr(tr, "fill_ratio"):
                sampler.add("sigmem.fill_ratio", tr.fill_ratio, worker=w, kind="read")
                sampler.add(
                    "sigmem.fill_ratio", tw.fill_ratio, worker=w, kind="write"
                )
        sampler.add("chunkpool.free", lambda: pool.free_count)
        sampler.add("chunkpool.allocated", lambda: pool.allocated)
        sampler.add("chunkpool.memory_bytes", lambda: pool.memory_bytes)
        sampler.add("process.peak_rss_bytes", peak_rss_bytes)

        threads: list[threading.Thread] = []
        worker_errors: list[BaseException] = []
        if self.mode == "threads":

            def consume(w: int) -> None:
                track = worker_track(w)
                stall_t0 = -1.0  # perf_counter at the start of an empty streak
                while True:
                    # busy is raised BEFORE the pop: once quiesce() observes
                    # this queue empty, either the pop never happened or busy
                    # is still up — it can never miss an in-flight chunk.
                    busy[w] = True
                    ok, chunk = queues[w].try_pop()
                    if ok:
                        if stall_t0 >= 0.0:
                            if tracer.enabled:
                                tracer.complete("queue.pop_stall", track, stall_t0)
                            stall_t0 = -1.0
                        # After any worker fails, the rest of the stream is
                        # drained unprocessed so the producer's push loop can
                        # never spin forever on a full queue.
                        if not worker_errors:
                            try:
                                workers[w].process_chunk(batch, chunk)
                            except BaseException as exc:  # noqa: BLE001
                                worker_errors.append(exc)
                        busy[w] = False
                        pool.release(chunk)
                    else:
                        busy[w] = False
                        if queues[w].drained:
                            return
                        if tracer.enabled and stall_t0 < 0.0:
                            stall_t0 = time.perf_counter()
                        time.sleep(0)

            threads = [
                threading.Thread(target=consume, args=(w,), daemon=True)
                for w in range(cfg.workers)
            ]
            for t in threads:
                t.start()
            if reg.sink.enabled:
                sampler.start(period_s=0.005)

        def drain_inline(w: int, limit: int | None = None) -> None:
            popped = 0
            while limit is None or popped < limit:
                ok, chunk = queues[w].try_pop()
                if not ok:
                    return
                workers[w].process_chunk(batch, chunk)
                pool.release(chunk)
                popped += 1

        def push_chunk(w: int) -> None:
            chunk = open_chunks[w]
            if chunk.count == 0:
                return
            chunk.seq = chunk_counter.value
            if not queues[w].try_push(chunk):
                stall_t0 = time.perf_counter() if tracer.enabled else 0.0
                while True:
                    if self.mode == "deterministic":
                        drain_inline(w, limit=1)
                    else:
                        time.sleep(0)
                    if queues[w].try_push(chunk):
                        break
                if tracer.enabled:
                    tracer.complete("queue.push_stall", MAIN_TRACK, stall_t0, worker=w)
            if tracer.enabled:
                tracer.instant(
                    "chunk.push", MAIN_TRACK, worker=w, seq=chunk.seq, rows=chunk.count
                )
            chunk_counter.inc()
            reg.counter("worker.chunks", worker=w).inc()
            chunk_log.append((w, chunk.count))
            open_chunks[w] = pool.acquire()

        def bulk_append(w: int, rows: np.ndarray) -> None:
            i, n = 0, len(rows)
            while i < n:
                i += open_chunks[w].extend(rows, start=i)
                if open_chunks[w].full:
                    push_chunk(w)

        def quiesce() -> None:
            """Wait until every queue is empty and every worker idle."""
            t0 = time.perf_counter() if tracer.enabled else 0.0
            if self.mode == "deterministic":
                for w in range(cfg.workers):
                    drain_inline(w)
            else:
                while any(len(q) for q in queues) or any(busy):
                    time.sleep(0)
            if tracer.enabled:
                tracer.complete("pipeline.quiesce", MAIN_TRACK, t0)

        # Hysteresis: remember the hot-load ratio right after the previous
        # redistribution.  If the current ratio is no worse, the previous
        # spread is still in effect (or the workload's hot set simply cannot
        # be balanced below the threshold) and redoing the move would only
        # thrash — the paper performs redistribution at most ~20 times per
        # benchmark for the same reason.
        post_rebalance_imbalance: list[float | None] = [None]

        def maybe_rebalance() -> None:
            imbalance = rebalancer.imbalance(stats)
            if imbalance <= self.rebalance_threshold:
                return
            prev = post_rebalance_imbalance[0]
            if prev is not None and imbalance <= prev * 1.1:
                return
            # Flush buffered rows first: rows sitting in open chunks were
            # routed under the old rules and must land in their worker's
            # trackers *before* state is exported, or the migrated bank
            # would miss them (surfacing as phantom INIT dependences).
            for w in range(cfg.workers):
                push_chunk(w)
            quiesce()  # preserve per-address ordering across the move
            decision = rebalancer.rebalance(stats)
            for addr, old, new in decision.moves:
                r, wrec = workers[old].migrate_out(addr)
                workers[new].migrate_in(addr, r, wrec)
            # Banked mode: a moved bank's addresses were spread over every
            # worker before its first rule, so the new owner collects the
            # bank's signature state from *all* other workers (newest access
            # wins on slot collisions) — state follows routing instead of
            # being dropped to go cold.
            for bank, _old, new in decision.bank_moves:
                for w, worker in enumerate(workers):
                    if w == new:
                        continue
                    workers[new].migrate_bank_in(worker.migrate_bank_out(bank))
            post_rebalance_imbalance[0] = rebalancer.imbalance(stats)
            if decision.n_moves or decision.n_bank_moves:
                chunk_log.append((-1, 0))

        # ---- producer loop over windows of the trace ------------------
        # Access/broadcast masks are computed *per window*, never over the
        # full trace: with an mmap-spilled batch the trace may dwarf RAM, and
        # two trace-length bool arrays would defeat the bounded-memory claim.
        kind = batch.kind
        addr = batch.addr
        bcast_counter = reg.counter("pipeline.broadcast_rows")
        # Spilled batches support dropping consumed windows' resident pages.
        # Purely an RSS hint (dropped pages re-read transparently), so the
        # lag bound only has to be generous, not exact: pushed rows sit in at
        # most queue_depth+1 chunks per worker plus the current window.
        release = getattr(batch, "release_window", None)
        release_lag = (
            self.window + cfg.workers * (cfg.queue_depth + 2) * cfg.chunk_size
        )
        released_upto = 0
        # The paper re-checks the access statistics every 50 000 chunks; we
        # measure the interval in *routed accesses* (interval x chunk_size)
        # so the cadence does not depend on how many workers the control
        # rows are replicated to.
        rebalance_every = cfg.rebalance_interval_chunks * cfg.chunk_size
        accesses_at_last_check = 0
        accesses_routed = 0
        n = len(batch)
        try:
            for s in range(0, n, self.window):
                e = min(s + self.window, n)
                with reg.span("route", window_start=s):
                    rows = np.arange(s, e, dtype=np.int64)
                    kind_w = np.asarray(kind[s:e])
                    acc = (kind_w == READ) | (kind_w == WRITE)
                    bcast = (
                        (kind_w == FREE)
                        | (kind_w == LOOP_ENTER)
                        | (kind_w == LOOP_ITER)
                        | (kind_w == LOOP_EXIT)
                    )
                    bcast_counter.inc(int(np.count_nonzero(bcast)))
                    acc_rows = rows[acc]
                    if len(acc_rows):
                        stats.record_many(addr[acc_rows])
                        accesses_routed += len(acc_rows)
                    assign = amap.workers_of(np.asarray(addr[s:e]))
                with reg.span("push", window_start=s):
                    for w in range(cfg.workers):
                        wrows = rows[(acc & (assign == w)) | bcast]
                        if len(wrows):
                            bulk_append(w, wrows)
                if self.mode == "deterministic":
                    sampler.poll()
                if accesses_routed - accesses_at_last_check >= rebalance_every:
                    accesses_at_last_check = accesses_routed
                    maybe_rebalance()
                if release is not None:
                    upto = max(0, e - release_lag)
                    if upto - released_upto >= (1 << 22):
                        release(released_upto, upto)
                        released_upto = upto

            # ---- flush + drain ------------------------------------------
            with reg.span("drain"):
                for w in range(cfg.workers):
                    push_chunk(w)
                    queues[w].close()
                if self.mode == "deterministic":
                    for w in range(cfg.workers):
                        drain_inline(w)
                else:
                    for t in threads:
                        t.join()
        finally:
            # Whatever aborted the pipeline, the sampler thread must not
            # outlive the run (stop() is idempotent and takes one final
            # forced sample).
            if self.mode == "threads":
                sampler.stop()
            else:
                sampler.poll(force=True)  # final post-drain sample
            # A worker failure propagating out of this frame must not lose
            # the telemetry already emitted: flush (not close) the sink.
            reg.sink.flush()
            self._ledger_checkpoint(reg)
        if worker_errors:
            # Consumers drained the remaining stream without processing;
            # surface the first failure on the caller's thread.
            raise worker_errors[0]

        with reg.span("merge"):
            store = DependenceStore()
            prov: ProvenanceCollector | None = None
            if provs is not None:
                prov = ProvenanceCollector()
                for p in provs:
                    prov.merge(p)
            for w, worker in enumerate(workers):
                store.merge(worker.store)
                worker.engine.stats.publish(reg, worker=w)
                worker.publish_heat()
                reg.counter("worker.accesses", worker=w).inc(
                    worker.accesses_processed
                )
                # Authoritative tracker memory: allocated signature arrays
                # count even for workers that never processed a chunk.
                reg.gauge("engine.tracker_memory_bytes", worker=w).set(
                    worker.memory_bytes
                )
                reg.gauge("queue.high_water", worker=w).set(
                    queues[w].high_water
                )
            # The aggregate statistics are a *view* of the registry: each
            # worker published its engine totals above, and the producer-side
            # facts (event count, unique addresses) overwrite the per-worker
            # sums that double-count broadcast rows.
            reg.gauge("process.peak_rss_bytes").set(peak_rss_bytes())
            agg = ProfileStats.from_registry(reg)
            agg.n_events = len(batch)
            agg.n_unique_addresses = batch.n_unique_addresses

        info = ParallelRunInfo.from_registry(
            reg, cfg.workers, chunk_log, rebalance_audit=rebalancer.audit
        )

        result = ProfileResult(
            store=store,
            loops=extract_loop_info(batch),
            stats=agg,
            var_names=batch.var_names,
            file_names=batch.file_names,
            multithreaded=batch.n_threads > 1 or cfg.multithreaded_target,
            provenance=prov,
        )
        return result, info

    # ------------------------------------------------------------------
    def _profile_processes(
        self, batch: TraceBatch
    ) -> tuple[ProfileResult, ParallelRunInfo]:
        """Multi-process pipeline over one shared-memory trace block.

        The producer ships only ``(start, end, window_idx)`` index ranges;
        each worker process recomputes the address routing against the
        shared columns (see :mod:`repro.parallel.procworker`).  The static
        address partition makes results independent of scheduling, so this
        mode is bit-for-bit equivalent to ``deterministic`` minus the
        load balancer (which needs producer-side signature migration).
        """
        cfg = self.config
        reg = self.registry if self.registry is not None else MetricsRegistry()
        tracer = reg.tracer
        if tracer.enabled:
            tracer.set_track(MAIN_TRACK, "main")
        methods = multiprocessing.get_all_start_methods()
        # fork shares the parent's pages (cheap start, no re-import);
        # required anyway for the monkeypatch-based tests, preferred always.
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        shared = share_batch(batch)
        task_qs = [ctx.Queue(maxsize=cfg.queue_depth) for _ in range(cfg.workers)]
        result_q = ctx.Queue()
        hb_interval = self.heartbeat_interval
        board = (
            HeartbeatBoard.create(cfg.workers)
            if hb_interval is not None and hb_interval > 0
            else None
        )
        opts = {
            "provenance": self.provenance,
            "trace": tracer.enabled,
            "run_id": reg.run_id,
            "heartbeat": board.meta if board is not None else None,
        }
        procs = [
            ctx.Process(
                target=run_worker,
                args=(w, cfg, shared.meta, task_qs[w], result_q, opts),
                daemon=True,
                name=f"ddprof-worker-{w}",
            )
            for w in range(cfg.workers)
        ]

        def ensure_alive() -> None:
            dead = [p.name for p in procs if p.exitcode not in (None, 0)]
            if dead:
                raise ProfilerError(
                    f"worker process(es) died without a result: {dead}"
                )

        # The bounded task queues ARE the spill tier's backpressure: when the
        # producer outruns the consumers, put() blocks until a worker frees a
        # slot, so in-flight windows never exceed workers x queue_depth
        # regardless of trace length.  The counter makes the stalls visible.
        backpressure = reg.counter("pipeline.backpressure_stalls")

        def put_blocking(q: "multiprocessing.queues.Queue", item: object) -> None:
            stalled = False
            while True:
                try:
                    q.put(item, timeout=1.0)
                    return
                except queue_mod.Full:
                    if not stalled:
                        stalled = True
                        backpressure.inc()
                    ensure_alive()

        watchdog = None
        if board is not None:
            if tracer.enabled:
                for w in range(cfg.workers):
                    tracer.set_track(worker_track(w), f"worker {w}")
            watchdog = WorkerWatchdog(
                board,
                reg,
                process_exitcodes(procs),
                interval_s=hb_interval,
            )

        payloads: list[dict] = []
        try:
            for p in procs:
                p.start()
            if watchdog is not None:
                watchdog.start()
            n = len(batch)
            with reg.span("push"):
                for widx, s in enumerate(range(0, n, self.window)):
                    e = min(s + self.window, n)
                    task = (s, e, widx)
                    for q in task_qs:
                        put_blocking(q, task)
            with reg.span("drain"):
                for q in task_qs:
                    put_blocking(q, None)
                while len(payloads) < cfg.workers:
                    try:
                        msg = result_q.get(timeout=1.0)
                    except queue_mod.Empty:
                        ensure_alive()
                        continue
                    if msg[0] == "error":
                        _, wid, tb = msg
                        raise ProfilerError(
                            f"worker process {wid} failed:\n{tb}"
                        )
                    payloads.append(msg[1])
                for p in procs:
                    p.join(timeout=30.0)
        finally:
            # Watchdog before terminate(): the final classification pass must
            # see the workers' true exit state, not the SIGTERM we send next.
            if watchdog is not None:
                watchdog.stop()
            for p in procs:
                if p.is_alive():
                    p.terminate()
            if board is not None:
                board.close()
            shared.close()
            # Telemetry written so far must survive even when a worker
            # failure propagates out of this frame: flush (never close —
            # the caller may still emit a final snapshot) on every path.
            reg.sink.flush()
            self._ledger_checkpoint(reg)

        with reg.span("merge"):
            payloads.sort(key=lambda d: d["wid"])
            store = DependenceStore()
            prov: ProvenanceCollector | None = (
                ProvenanceCollector() if self.provenance else None
            )
            log_entries: list[tuple[int, int, int]] = []
            for d in payloads:
                store.merge(d["store"])
                reg.merge_state(d["metrics"])
                if prov is not None and d["provenance"] is not None:
                    prov.merge(d["provenance"])
                if tracer.enabled and d["tracer"] is not None:
                    epoch, events, track_names = d["tracer"]
                    tracer.adopt(events, epoch, track_names)
                log_entries.extend(
                    (widx, d["wid"], rows) for widx, rows in d["chunk_log"]
                )
            # Producer-order chunk log for the cost model: interleave the
            # workers' chunks in window order, matching how the in-process
            # producer would have pushed them.
            log_entries.sort(key=lambda t: (t[0], t[1]))
            chunk_log = [(wid, rows) for _, wid, rows in log_entries]
            reg.counter("pipeline.chunks").inc(len(chunk_log))
            # Windowed broadcast-row count: never materialize a trace-length
            # mask (the batch may be an mmap spill larger than RAM).
            kind = batch.kind
            release = getattr(batch, "release_window", None)
            n_bcast = 0
            for s in range(0, len(batch), self.window):
                e = min(s + self.window, len(batch))
                kind_w = np.asarray(kind[s:e])
                n_bcast += int(
                    np.count_nonzero(
                        (kind_w == FREE)
                        | (kind_w == LOOP_ENTER)
                        | (kind_w == LOOP_ITER)
                        | (kind_w == LOOP_EXIT)
                    )
                )
                if release is not None:
                    release(s, e)
            reg.counter("pipeline.broadcast_rows").inc(n_bcast)
            # Parent-process RSS high-water; each worker published its own
            # labeled gauge from inside its process before exiting.
            reg.gauge("process.peak_rss_bytes").set(peak_rss_bytes())
            agg = ProfileStats.from_registry(reg)
            agg.n_events = len(batch)
            agg.n_unique_addresses = batch.n_unique_addresses

        info = ParallelRunInfo.from_registry(reg, cfg.workers, chunk_log)
        result = ProfileResult(
            store=store,
            loops=extract_loop_info(batch),
            stats=agg,
            var_names=batch.var_names,
            file_names=batch.file_names,
            multithreaded=batch.n_threads > 1 or cfg.multithreaded_target,
            provenance=prov,
        )
        return result, info
