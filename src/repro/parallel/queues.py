"""Worker queues: lock-free SPSC ring vs. mutex-protected deque.

The paper attributes most of the parallel profiler's synchronization
overhead to locking/unlocking the worker queues and removes it with
lock-free queues.  :class:`SpscRingQueue` is the classic single-producer /
single-consumer ring buffer: the producer only writes ``_tail``, the
consumer only writes ``_head``, each reads the other's counter — no
compare-and-swap needed, and under CPython's per-bytecode atomicity the
algorithm is exactly as correct as its C++11 acquire/release counterpart.
:class:`LockedQueue` is the mutex ablation used to reproduce the
lock-based-vs-lock-free comparison of Figure 5.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.common.errors import QueueClosedError


class SpscRingQueue:
    """Bounded lock-free single-producer/single-consumer queue.

    ``try_push``/``try_pop`` never block and never take a lock.  ``closed``
    is a producer-set flag letting the consumer distinguish "momentarily
    empty" from "finished".
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        # Round up to a power of two so the index mask is a single AND.
        cap = 1
        while cap < capacity:
            cap <<= 1
        self._mask = cap - 1
        self._slots: list[Any] = [None] * cap
        self._head = 0  # consumer cursor (only the consumer writes)
        self._tail = 0  # producer cursor (only the producer writes)
        self._closed = False
        # Monotonic counters for contention accounting (cost model input).
        self.push_fail_count = 0
        self.pop_fail_count = 0

    @property
    def capacity(self) -> int:
        return self._mask + 1

    def __len__(self) -> int:
        return self._tail - self._head

    def try_push(self, item: Any) -> bool:
        """Producer side: False (and no effect) when the ring is full."""
        if self._closed:
            raise QueueClosedError("push on closed queue")
        tail = self._tail
        if tail - self._head > self._mask:
            self.push_fail_count += 1
            return False
        self._slots[tail & self._mask] = item
        # Publishing order matters: the slot write above must precede the
        # tail bump that makes it visible to the consumer.
        self._tail = tail + 1
        return True

    def try_pop(self) -> tuple[bool, Any]:
        """Consumer side: ``(False, None)`` when momentarily empty."""
        head = self._head
        if head == self._tail:
            self.pop_fail_count += 1
            return False, None
        item = self._slots[head & self._mask]
        self._slots[head & self._mask] = None  # let the chunk be recycled
        self._head = head + 1
        return True, item

    def close(self) -> None:
        """Producer signals end-of-stream."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def drained(self) -> bool:
        """True once closed and fully consumed."""
        return self._closed and self._head == self._tail


class LockedQueue:
    """Mutex-protected queue with the same interface (the paper's baseline)."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._closed = False
        self.push_fail_count = 0
        self.pop_fail_count = 0
        # Lock acquisitions are what the cost model charges for.
        self.lock_ops = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def try_push(self, item: Any) -> bool:
        with self._lock:
            self.lock_ops += 1
            if self._closed:
                raise QueueClosedError("push on closed queue")
            if len(self._items) >= self._capacity:
                self.push_fail_count += 1
                return False
            self._items.append(item)
            return True

    def try_pop(self) -> tuple[bool, Any]:
        with self._lock:
            self.lock_ops += 1
            if not self._items:
                self.pop_fail_count += 1
                return False, None
            return True, self._items.popleft()

    def close(self) -> None:
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def drained(self) -> bool:
        with self._lock:
            return self._closed and not self._items
