"""Worker queues: lock-free SPSC ring vs. mutex-protected deque.

The paper attributes most of the parallel profiler's synchronization
overhead to locking/unlocking the worker queues and removes it with
lock-free queues.  :class:`SpscRingQueue` is the classic single-producer /
single-consumer ring buffer: the producer only writes ``_tail``, the
consumer only writes ``_head``, each reads the other's counter — no
compare-and-swap needed, and under CPython's per-bytecode atomicity the
algorithm is exactly as correct as its C++11 acquire/release counterpart.
:class:`LockedQueue` is the mutex ablation used to reproduce the
lock-based-vs-lock-free comparison of Figure 5.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.common.errors import QueueClosedError
from repro.obs.metrics import Counter


class SpscRingQueue:
    """Bounded lock-free single-producer/single-consumer queue.

    ``try_push``/``try_pop`` never block and never take a lock.  ``closed``
    is a producer-set flag letting the consumer distinguish "momentarily
    empty" from "finished".

    Stall accounting lives in :class:`~repro.obs.metrics.Counter` objects —
    callers (the pipeline engine) pass counters from their run's metrics
    registry, making the registry the single source of truth; standalone
    queues get private counters with the same semantics.  The legacy
    ``push_fail_count``/``pop_fail_count`` attributes read through to them.
    """

    def __init__(
        self,
        capacity: int,
        push_stalls: Counter | None = None,
        pop_stalls: Counter | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        # Round up to a power of two so the index mask is a single AND.
        cap = 1
        while cap < capacity:
            cap <<= 1
        self._mask = cap - 1
        self._slots: list[Any] = [None] * cap
        self._head = 0  # consumer cursor (only the consumer writes)
        self._tail = 0  # producer cursor (only the producer writes)
        self._closed = False
        # Monotonic counters for contention accounting (cost model input).
        self.push_stalls = push_stalls or Counter("queue.push_stalls")
        self.pop_stalls = pop_stalls or Counter("queue.pop_stalls")
        #: Exact peak occupancy ever reached (the sampler only sees periodic
        #: snapshots; timeline analysis wants the true high-water mark).
        self.high_water = 0

    @property
    def occupancy_high_water(self) -> int:
        return self.high_water

    @property
    def push_fail_count(self) -> int:
        return self.push_stalls.value

    @property
    def pop_fail_count(self) -> int:
        return self.pop_stalls.value

    @property
    def capacity(self) -> int:
        return self._mask + 1

    def __len__(self) -> int:
        return self._tail - self._head

    def try_push(self, item: Any) -> bool:
        """Producer side: False (and no effect) when the ring is full."""
        if self._closed:
            raise QueueClosedError("push on closed queue")
        tail = self._tail
        if tail - self._head > self._mask:
            self.push_stalls.inc()
            return False
        self._slots[tail & self._mask] = item
        # Publishing order matters: the slot write above must precede the
        # tail bump that makes it visible to the consumer.
        self._tail = tail + 1
        depth = self._tail - self._head
        if depth > self.high_water:
            self.high_water = depth
        return True

    def try_pop(self) -> tuple[bool, Any]:
        """Consumer side: ``(False, None)`` when momentarily empty."""
        head = self._head
        if head == self._tail:
            self.pop_stalls.inc()
            return False, None
        item = self._slots[head & self._mask]
        self._slots[head & self._mask] = None  # let the chunk be recycled
        self._head = head + 1
        return True, item

    def close(self) -> None:
        """Producer signals end-of-stream."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def drained(self) -> bool:
        """True once closed and fully consumed."""
        return self._closed and self._head == self._tail


class LockedQueue:
    """Mutex-protected queue with the same interface (the paper's baseline)."""

    def __init__(
        self,
        capacity: int,
        push_stalls: Counter | None = None,
        pop_stalls: Counter | None = None,
        lock_ops_counter: Counter | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._closed = False
        self.push_stalls = push_stalls or Counter("queue.push_stalls")
        self.pop_stalls = pop_stalls or Counter("queue.pop_stalls")
        # Lock acquisitions are what the cost model charges for.
        self._lock_ops = lock_ops_counter or Counter("queue.lock_ops")
        #: Exact peak occupancy ever reached (see :class:`SpscRingQueue`).
        self.high_water = 0

    @property
    def occupancy_high_water(self) -> int:
        return self.high_water

    @property
    def push_fail_count(self) -> int:
        return self.push_stalls.value

    @property
    def pop_fail_count(self) -> int:
        return self.pop_stalls.value

    @property
    def lock_ops(self) -> int:
        return self._lock_ops.value

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def try_push(self, item: Any) -> bool:
        with self._lock:
            self._lock_ops.inc()
            if self._closed:
                raise QueueClosedError("push on closed queue")
            if len(self._items) >= self._capacity:
                self.push_stalls.inc()
                return False
            self._items.append(item)
            if len(self._items) > self.high_water:
                self.high_water = len(self._items)
            return True

    def try_pop(self) -> tuple[bool, Any]:
        with self._lock:
            self._lock_ops.inc()
            if not self._items:
                self.pop_stalls.inc()
                return False, None
            return True, self._items.popleft()

    def close(self) -> None:
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def drained(self) -> bool:
        with self._lock:
            return self._closed and not self._items
