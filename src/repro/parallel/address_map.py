"""Address-to-worker assignment.

Equation 1 of the paper: ``worker = address % W``.  The load balancer may
*redistribute* individual hot addresses; redistribution rules live in a
small override map consulted before the modulo (they "have higher priority
than the modulo function").
"""

from __future__ import annotations

import numpy as np

from repro.sigmem.banks import BankGeometry


class AddressMap:
    """Modulo distribution with redistribution overrides.

    The modulo is taken over the *access-granularity index* (address >> 3
    for the 8-byte granularity used throughout), not the raw byte address:
    MiniVM addresses are all 8-byte aligned, so a raw ``addr % W`` would
    collapse onto a single worker whenever ``W`` divides 8.  The paper's
    byte-level modulo works there because C accesses have mixed alignment;
    ours is the same distribution applied at the granularity the profiler
    actually tracks.

    With a ``bank_geometry`` (sharded signature memory) the map also keeps
    *bank rules*: whole address-range banks pinned to a worker.  Priority is
    per-address overrides, then bank rules, then the modulo — bank rules are
    how the load balancer moves a hot range together with its signature
    bank, so routing and state can never disagree.
    """

    def __init__(
        self,
        n_workers: int,
        granularity_shift: int = 3,
        bank_geometry: BankGeometry | None = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.granularity_shift = granularity_shift
        self.bank_geometry = bank_geometry
        self._overrides: dict[int, int] = {}
        self._bank_rules: dict[int, int] = {}

    def worker_of(self, addr: int) -> int:
        w = self._overrides.get(addr)
        if w is not None:
            return w
        if self._bank_rules:
            assert self.bank_geometry is not None
            w = self._bank_rules.get(self.bank_geometry.bank_of(addr))
            if w is not None:
                return w
        return (addr >> self.granularity_shift) % self.n_workers

    def workers_of(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized assignment for an address column."""
        out = ((addrs >> self.granularity_shift) % self.n_workers).astype(np.int64)
        if self._bank_rules:
            assert self.bank_geometry is not None
            banks = self.bank_geometry.banks_of(addrs)
            for bank, w in self._bank_rules.items():
                out[banks == bank] = w
        if self._overrides:
            # The override table holds only the handful of redistributed hot
            # addresses, so a per-entry masked write is cheap.
            for addr, w in self._overrides.items():
                out[addrs == addr] = w
        return out

    def redistribute(self, addr: int, worker: int) -> int:
        """Install an override; returns the worker previously responsible."""
        if not 0 <= worker < self.n_workers:
            raise ValueError(f"worker {worker} out of range")
        old = self.worker_of(addr)
        if worker == (addr >> self.granularity_shift) % self.n_workers:
            self._overrides.pop(addr, None)  # back to the natural home
        else:
            self._overrides[addr] = worker
        return old

    def redistribute_bank(self, bank: int, worker: int) -> int | None:
        """Pin a bank to ``worker``; returns the previous rule (or ``None``
        when the bank was still modulo-spread over all workers)."""
        if self.bank_geometry is None:
            raise ValueError("address map has no bank geometry")
        if not 0 <= worker < self.n_workers:
            raise ValueError(f"worker {worker} out of range")
        if not 0 <= bank < self.bank_geometry.n_banks:
            raise ValueError(f"bank {bank} out of range")
        old = self._bank_rules.get(bank)
        self._bank_rules[bank] = worker
        return old

    def bank_rule(self, bank: int) -> int | None:
        """Current owner rule for ``bank`` (``None`` = modulo-spread)."""
        return self._bank_rules.get(bank)

    @property
    def overrides(self) -> dict[int, int]:
        return dict(self._overrides)

    @property
    def n_overrides(self) -> int:
        return len(self._overrides)

    @property
    def bank_rules(self) -> dict[int, int]:
        return dict(self._bank_rules)
