"""Worker-process entry point for the ``processes`` execution mode.

Each worker process attaches the shared-memory trace
(:func:`repro.trace.shm.attach_batch`), rebuilds the same
:class:`~repro.parallel.worker.Worker` the in-process pipeline uses, and
consumes *window index ranges* — ``(start, end, window_idx)`` tuples, a few
dozen bytes each — from a task queue.  Routing happens worker-side: every
process computes the identical :class:`~repro.parallel.address_map.AddressMap`
assignment over the shared columns and keeps only the rows hashed to its own
id (plus the broadcast FREE/loop rows everyone needs), so no per-row data
ever crosses a process boundary.

At shutdown (a ``None`` sentinel) the worker publishes its counters into a
private :class:`~repro.obs.metrics.MetricsRegistry` and ships one picklable
result payload home: the local :class:`~repro.core.deps.DependenceStore`,
the registry's :meth:`~repro.obs.metrics.MetricsRegistry.state`, optional
provenance and tracer events, and its chunk log.  The parent folds these
with ``merge_state`` / ``store.merge`` / ``Tracer.adopt``.
"""

from __future__ import annotations

import traceback
from typing import Any

import numpy as np

from repro.common.config import ProfilerConfig
from repro.obs.environment import peak_rss_bytes
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import ProvenanceCollector
from repro.obs.tracing import Tracer, worker_track
from repro.parallel.address_map import AddressMap
from repro.parallel.heartbeat import HeartbeatBoard
from repro.parallel.worker import Worker
from repro.trace import FREE, LOOP_ENTER, LOOP_EXIT, LOOP_ITER, READ, WRITE
from repro.trace.shm import SharedBatchMeta, attach_batch


def run_worker(
    wid: int,
    config: ProfilerConfig,
    meta: SharedBatchMeta,
    task_q: Any,
    result_q: Any,
    opts: dict[str, Any],
) -> None:
    """Process entry point: consume window ranges until the ``None`` sentinel.

    ``opts`` keys: ``provenance`` (bool) and ``trace`` (bool) mirror the
    parent pipeline's observability switches; ``run_id`` propagates the
    parent's correlation id; ``heartbeat`` is a
    :class:`~repro.parallel.heartbeat.HeartbeatBoard` attach descriptor
    (``None`` disables stamping).
    """
    shm = None
    hb = None
    try:
        batch, shm = attach_batch(meta)
        hb_meta = opts.get("heartbeat")
        if hb_meta is not None:
            hb = HeartbeatBoard.attach(hb_meta)
            hb.beat(wid)  # first stamp: attach succeeded, worker is up
        tracer = Tracer() if opts.get("trace") else None
        reg = MetricsRegistry(tracer=tracer, run_id=opts.get("run_id"))
        if tracer is not None:
            tracer.set_track(worker_track(wid), f"worker {wid}")
        prov = (
            ProvenanceCollector(worker=wid) if opts.get("provenance") else None
        )
        worker = Worker(wid, config, reg, provenance=prov)
        amap = AddressMap(config.workers, bank_geometry=config.bank_geometry)
        kind = batch.kind
        # Masks are computed per consumed window, never over the whole
        # trace: a spilled batch may be far larger than RAM, and the only
        # resident pages should be the window currently being processed.
        release = getattr(batch, "release_window", None)
        chunk_size = config.chunk_size
        chunk_log: list[tuple[int, int]] = []
        seq = 0
        while True:
            task = task_q.get()
            if hb is not None:
                hb.beat(wid)
            if task is None:
                break
            s, e, widx = task
            rows = np.arange(s, e, dtype=np.int64)
            kind_w = np.asarray(kind[s:e])
            acc = (kind_w == READ) | (kind_w == WRITE)
            bcast = (
                (kind_w == FREE)
                | (kind_w == LOOP_ENTER)
                | (kind_w == LOOP_ITER)
                | (kind_w == LOOP_EXIT)
            )
            assign = amap.workers_of(np.asarray(batch.addr[s:e]))
            wrows = rows[(acc & (assign == wid)) | bcast]
            for i in range(0, len(wrows), chunk_size):
                crows = wrows[i : i + chunk_size]
                worker.process_rows(batch, crows, seq=seq)
                chunk_log.append((widx, len(crows)))
                seq += 1
                if hb is not None:
                    hb.beat(wid)
            if release is not None:
                release(s, e)
        # -- publish & ship ------------------------------------------------
        worker.engine.stats.publish(reg, worker=wid)
        worker.publish_heat()
        reg.counter("worker.accesses", worker=wid).inc(worker.accesses_processed)
        reg.counter("worker.chunks", worker=wid).inc(worker.chunks_processed)
        reg.gauge("engine.tracker_memory_bytes", worker=wid).set(
            worker.memory_bytes
        )
        reg.gauge("process.peak_rss_bytes", worker=wid).set(peak_rss_bytes())
        payload = {
            "wid": wid,
            "store": worker.store,
            "provenance": prov,
            "metrics": reg.state(),
            "tracer": (
                (tracer.epoch, tracer.events, tracer.track_names)
                if tracer is not None
                else None
            ),
            "chunk_log": chunk_log,
        }
        result_q.put(("ok", payload))
    except BaseException:  # noqa: BLE001 — ship the traceback to the parent
        result_q.put(("error", wid, traceback.format_exc()))
    finally:
        if hb is not None:
            hb.close()
        if shm is not None:
            shm.close()
