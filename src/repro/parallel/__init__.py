"""The parallel profiling pipeline (Section IV, Figure 2).

The main thread plays the *producer*: it walks the instrumented event
stream, assigns each memory access to the worker that owns its address
(``worker = addr % W``, overridden by the load balancer's redistribution
table), buffers assignments in fixed-size *chunks*, and pushes full chunks
onto per-worker queues.  Worker threads *consume* chunks, run Algorithm 1
against their private signature pair, and merge dependences into private
stores; a final cheap merge folds the duplicate-free local maps together.

Pieces:

* :class:`SpscRingQueue` — the lock-free single-producer/single-consumer
  ring buffer (and :class:`LockedQueue`, the mutex ablation of Figure 5),
* :class:`Chunk` / :class:`ChunkPool` — recycled index buffers,
* :class:`AddressMap` — modulo distribution + redistribution overrides,
* :class:`AccessStats` / :class:`Rebalancer` — hot-address tracking and the
  top-ten redistribution policy (Section IV-A),
* :class:`Worker` — chunk consumer wrapping an incremental reference engine,
* :class:`ParallelProfiler` — the pipeline, in deterministic in-process mode
  or with real ``threading.Thread`` workers.
"""

from repro.parallel.queues import LockedQueue, SpscRingQueue
from repro.parallel.chunks import Chunk, ChunkPool
from repro.parallel.address_map import AddressMap
from repro.parallel.balance import AccessStats, Rebalancer
from repro.parallel.worker import Worker
from repro.parallel.engine import ParallelProfiler, ParallelRunInfo

__all__ = [
    "AccessStats",
    "AddressMap",
    "Chunk",
    "ChunkPool",
    "LockedQueue",
    "ParallelProfiler",
    "ParallelRunInfo",
    "Rebalancer",
    "SpscRingQueue",
    "Worker",
]
