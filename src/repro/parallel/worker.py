"""A profiling worker: owns one address subset's signatures and dependences."""

from __future__ import annotations

import time

from repro.common.config import ProfilerConfig
from repro.core.deps import DependenceStore
from repro.core.reference import ReferenceEngine
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import ProvenanceCollector
from repro.obs.tracing import NULL_TRACER, worker_track
from repro.parallel.chunks import Chunk
from repro.sigmem import ArraySignature, PerfectSignature
from repro.sigmem.signature import AccessRecord
from repro.trace import TraceBatch


class Worker:
    """Consumes chunks, runs Algorithm 1 on its private trackers.

    Each worker is exclusively responsible for the addresses routed to it,
    so its read/write signature pair and its dependence map need no
    synchronization — the core of the paper's parallelization argument.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is supplied the
    worker instruments itself: per-chunk latency histogram, signature
    hash-conflict eviction counters, and callback-backed fill gauges that
    the sampler scrapes from the live trackers.  Without a registry the
    hot path is exactly the uninstrumented one.
    """

    def __init__(
        self,
        wid: int,
        config: ProfilerConfig,
        registry: MetricsRegistry | None = None,
        provenance: ProvenanceCollector | None = None,
    ) -> None:
        self.wid = wid
        self.config = config
        track_conflicts = provenance is not None
        if config.perfect_signature:
            read_t: PerfectSignature | ArraySignature = PerfectSignature()
            write_t: PerfectSignature | ArraySignature = PerfectSignature()
        elif registry is not None:
            read_t = ArraySignature(
                config.slots_per_worker,
                config.hash_salt,
                eviction_counter=registry.counter(
                    "sigmem.evictions", worker=wid, kind="read"
                ),
                track_conflicts=track_conflicts,
            )
            write_t = ArraySignature(
                config.slots_per_worker,
                config.hash_salt,
                eviction_counter=registry.counter(
                    "sigmem.evictions", worker=wid, kind="write"
                ),
                track_conflicts=track_conflicts,
            )
        else:
            read_t = ArraySignature(
                config.slots_per_worker,
                config.hash_salt,
                track_conflicts=track_conflicts,
            )
            write_t = ArraySignature(
                config.slots_per_worker,
                config.hash_salt,
                track_conflicts=track_conflicts,
            )
        self.engine = ReferenceEngine(config, read_t, write_t, provenance=provenance)
        self.provenance = provenance
        self.accesses_processed = 0
        self.chunks_processed = 0
        self._chunk_hist = (
            registry.histogram("worker.chunk_seconds", worker=wid)
            if registry is not None
            else None
        )
        self._tracer = registry.tracer if registry is not None else NULL_TRACER

    @property
    def store(self) -> DependenceStore:
        return self.engine.store

    def process_chunk(self, batch: TraceBatch, chunk: Chunk) -> None:
        hist = self._chunk_hist
        tracer = self._tracer
        need_t = hist is not None or tracer.enabled
        t0 = time.perf_counter() if need_t else 0.0
        if self.provenance is not None:
            self.provenance.chunk = chunk.seq
        sub = batch.select(chunk.view())
        before = self.engine.stats.n_accesses
        self.engine.process(sub)
        # process() only totals n_accesses at run() time; track it here.
        self.engine.stats.n_accesses = (
            self.engine.stats.n_reads + self.engine.stats.n_writes
        )
        self.accesses_processed += self.engine.stats.n_accesses - before
        self.chunks_processed += 1
        if need_t:
            t1 = time.perf_counter()
            if hist is not None:
                hist.observe(t1 - t0)
            if tracer.enabled:
                tracer.complete(
                    "chunk.process",
                    worker_track(self.wid),
                    t0,
                    t1,
                    seq=chunk.seq,
                    rows=chunk.count,
                )

    # -- signature-state migration (redistribution support) -----------------
    def migrate_out(
        self, addr: int
    ) -> tuple[AccessRecord | None, AccessRecord | None]:
        """Extract and clear this worker's state for ``addr``.

        For an array signature the slot may be shared with colliding
        addresses; migration then moves the conflated record — the same
        approximation the signature makes everywhere else.
        """
        r = self.engine.read_tracker.lookup(addr)
        w = self.engine.write_tracker.lookup(addr)
        self.engine.read_tracker.remove(addr)
        self.engine.write_tracker.remove(addr)
        return r, w

    def migrate_in(
        self,
        addr: int,
        read_rec: AccessRecord | None,
        write_rec: AccessRecord | None,
    ) -> None:
        """Install migrated state for a redistributed address."""
        if read_rec is not None:
            self.engine.read_tracker.insert(addr, read_rec)
        if write_rec is not None:
            self.engine.write_tracker.insert(addr, write_rec)

    @property
    def memory_bytes(self) -> int:
        return (
            self.engine.read_tracker.memory_bytes
            + self.engine.write_tracker.memory_bytes
        )
