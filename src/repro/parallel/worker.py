"""A profiling worker: owns one address subset's signatures and dependences."""

from __future__ import annotations

import time

import numpy as np

from repro.common.config import ProfilerConfig
from repro.core.deps import DependenceStore
from repro.core.reference import ReferenceEngine
from repro.core.vectorized import ChunkKernel
from repro.obs.heatmap import AddressHeatmap
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import ProvenanceCollector
from repro.obs.tracing import NULL_TRACER, worker_track
from repro.parallel.chunks import Chunk
from repro.sigmem import (
    ArraySignature,
    DenseKeySpace,
    DensePlaneTracker,
    PerfectSignature,
    SlotPlaneTracker,
)
from repro.sigmem.signature import AccessRecord, AccessTracker
from repro.trace import TraceBatch


class Worker:
    """Consumes chunks, runs Algorithm 1 on its private trackers.

    Each worker is exclusively responsible for the addresses routed to it,
    so its read/write signature pair and its dependence map need no
    synchronization — the core of the paper's parallelization argument.

    Two per-chunk engines are available (``config.worker_engine``):

    * ``"vectorized"`` — the incremental array kernel
      (:class:`~repro.core.vectorized.ChunkKernel`) over numpy signature
      planes; the fast default.
    * ``"reference"`` — the event-at-a-time
      :class:`~repro.core.reference.ReferenceEngine`; kept as the
      differential-test oracle, and selected automatically whenever
      per-instance observation is requested (provenance), since the batch
      kernel cannot attribute individual instances.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is supplied the
    worker instruments itself: per-chunk latency histogram, signature
    hash-conflict eviction counters (reference engine only), and
    callback-backed fill gauges that the sampler scrapes from the live
    trackers.  Without a registry the hot path is exactly the
    uninstrumented one.
    """

    def __init__(
        self,
        wid: int,
        config: ProfilerConfig,
        registry: MetricsRegistry | None = None,
        provenance: ProvenanceCollector | None = None,
    ) -> None:
        self.wid = wid
        self.config = config
        self._registry = registry
        self._track_conflicts = provenance is not None
        # The memory observability plane: per-worker log2 address heatmaps
        # (reads/writes/conflicts/occupancy).  Registry-gated like every
        # other instrument, plus its own config switch.
        self._heat = (
            AddressHeatmap(registry, wid)
            if registry is not None and config.heatmap
            else None
        )
        # Provenance notes every dependence *instance* with its chunk and
        # suspect-collision verdict — inherently per-event observations, so
        # it pins the worker to the reference engine (mirroring how the
        # sequential DependenceProfiler forces the reference engine).
        self.engine_kind = (
            "reference" if provenance is not None else config.worker_engine
        )
        # Shared bank geometry (sharded signature memory); None = unbanked.
        self._geometry = config.bank_geometry
        self._keyspace = (
            DenseKeySpace()
            if self.engine_kind == "vectorized" and config.perfect_signature
            else None
        )
        read_t = self._make_tracker("read")
        write_t = self._make_tracker("write")
        self.engine: ReferenceEngine | ChunkKernel
        if self.engine_kind == "vectorized":
            # The kernel records heat inline from the access masks it
            # computes anyway; the reference path records at worker level.
            self.engine = ChunkKernel(config, read_t, write_t, heat=self._heat)
        else:
            self.engine = ReferenceEngine(
                config, read_t, write_t, provenance=provenance
            )
        self.provenance = provenance
        self.accesses_processed = 0
        self.chunks_processed = 0
        self._chunk_hist = (
            registry.histogram("worker.chunk_seconds", worker=wid)
            if registry is not None
            else None
        )
        self._tracer = registry.tracer if registry is not None else NULL_TRACER

    def _make_tracker(self, kind: str) -> AccessTracker:
        """Build one read/write tracker for this worker's engine.

        The single construction point for every tracker flavour — the
        in-process pipeline and the processes-mode worker factory both call
        it, so slot sizing, salt, and telemetry wiring cannot drift apart.
        """
        cfg = self.config
        geo = self._geometry
        if self.engine_kind == "vectorized":
            if cfg.perfect_signature:
                assert self._keyspace is not None
                return DensePlaneTracker(self._keyspace, geometry=geo)
            return SlotPlaneTracker(
                cfg.slots_per_worker,
                cfg.hash_salt,
                track_addrs=self._heat is not None,
                geometry=geo,
            )
        if cfg.perfect_signature:
            return PerfectSignature(geometry=geo)
        eviction = (
            self._registry.counter("sigmem.evictions", worker=self.wid, kind=kind)
            if self._registry is not None
            else None
        )
        return ArraySignature(
            cfg.slots_per_worker,
            cfg.hash_salt,
            eviction_counter=eviction,
            track_conflicts=self._track_conflicts,
            conflict_heat=(
                self._heat.record_conflict if self._heat is not None else None
            ),
            geometry=geo,
        )

    @property
    def store(self) -> DependenceStore:
        return self.engine.store

    def process_rows(
        self, batch: TraceBatch, rows: np.ndarray, seq: int = -1
    ) -> None:
        """Run this worker's engine over ``rows`` of ``batch`` (one chunk)."""
        hist = self._chunk_hist
        tracer = self._tracer
        need_t = hist is not None or tracer.enabled
        t0 = time.perf_counter() if need_t else 0.0
        if self.provenance is not None:
            self.provenance.chunk = seq
        before = self.engine.stats.n_accesses
        if isinstance(self.engine, ChunkKernel):
            self.engine.process_rows(batch, rows)
        else:
            self.engine.process(batch.select(rows))
            # process() only totals n_accesses at run() time; track it here.
            self.engine.stats.n_accesses = (
                self.engine.stats.n_reads + self.engine.stats.n_writes
            )
        self.accesses_processed += self.engine.stats.n_accesses - before
        self.chunks_processed += 1
        if self._heat is not None and not isinstance(self.engine, ChunkKernel):
            self._heat.record_batch_rows(batch, rows)
        if need_t:
            t1 = time.perf_counter()
            if hist is not None:
                hist.observe(t1 - t0)
            if tracer.enabled:
                tracer.complete(
                    "chunk.process",
                    worker_track(self.wid),
                    t0,
                    t1,
                    seq=seq,
                    rows=len(rows),
                )

    def process_chunk(self, batch: TraceBatch, chunk: Chunk) -> None:
        self.process_rows(batch, chunk.view(), seq=chunk.seq)

    # -- signature-state migration (redistribution support) -----------------
    def migrate_out(
        self, addr: int
    ) -> tuple[AccessRecord | None, AccessRecord | None]:
        """Extract and clear this worker's state for ``addr``.

        For an array signature the slot may be shared with colliding
        addresses; migration then moves the conflated record — the same
        approximation the signature makes everywhere else.
        """
        r = self.engine.read_tracker.lookup(addr)
        w = self.engine.write_tracker.lookup(addr)
        self.engine.read_tracker.remove(addr)
        self.engine.write_tracker.remove(addr)
        return r, w

    def migrate_in(
        self,
        addr: int,
        read_rec: AccessRecord | None,
        write_rec: AccessRecord | None,
    ) -> None:
        """Install migrated state for a redistributed address."""
        if read_rec is not None:
            self.engine.read_tracker.insert(addr, read_rec)
        if write_rec is not None:
            self.engine.write_tracker.insert(addr, write_rec)

    def migrate_bank_out(self, bank: int) -> dict:
        """Export-and-clear this worker's read/write state for one bank."""
        return {
            "bank": int(bank),
            "read": self.engine.read_tracker.export_bank(bank),
            "write": self.engine.write_tracker.export_bank(bank),
        }

    def migrate_bank_in(self, state: dict) -> None:
        """Merge a bank exported by another worker (newest access wins)."""
        self.engine.read_tracker.import_bank(state["read"])
        self.engine.write_tracker.import_bank(state["write"])

    def publish_heat(self) -> None:
        """Attribute end-of-run signature occupancy to address buckets.

        Called once at merge time.  Trackers that do not know their owner
        addresses (``occupied_addrs() is None``) are skipped, never guessed.
        Banked trackers additionally publish per-bank occupancy
        (``heat.banks``) so bank skew is visible on the heat surfaces.
        """
        if self._heat is None:
            return
        for kind, tracker in (
            ("read", self.engine.read_tracker),
            ("write", self.engine.write_tracker),
        ):
            addrs = tracker.occupied_addrs()
            if addrs is not None:
                self._heat.record_occupancy(addrs, kind)
            occ = tracker.bank_occupancy()
            if occ is not None:
                self._heat.record_bank_occupancy(occ, kind)

    @property
    def memory_bytes(self) -> int:
        return (
            self.engine.read_tracker.memory_bytes
            + self.engine.write_tracker.memory_bytes
        )
