"""Chunk buffers and the recycling pool.

A chunk carries the *row indices* (into the shared TraceBatch) of the events
one worker must process next, in stream order.  Index buffers are numpy
arrays handed back to a free list once consumed — the "empty chunks are
recycled and can be reused" detail of Section IV, which is what bounds the
pipeline's memory.
"""

from __future__ import annotations

import numpy as np


class Chunk:
    """A fixed-capacity buffer of trace row indices."""

    __slots__ = ("rows", "count", "seq")

    def __init__(self, capacity: int) -> None:
        self.rows = np.empty(capacity, dtype=np.int64)
        self.count = 0
        self.seq = -1  # producer-assigned sequence number (debug/accounting)

    @property
    def capacity(self) -> int:
        return len(self.rows)

    @property
    def full(self) -> bool:
        return self.count >= len(self.rows)

    def append(self, row: int) -> None:
        self.rows[self.count] = row
        self.count += 1

    def extend(self, rows: np.ndarray, start: int = 0) -> int:
        """Block-copy from ``rows[start:]`` into the remaining capacity.

        Returns how many rows were taken; the caller loops over fresh
        chunks until the block is exhausted.
        """
        take = min(len(rows) - start, len(self.rows) - self.count)
        if take > 0:
            self.rows[self.count : self.count + take] = rows[start : start + take]
            self.count += take
        return take

    def view(self) -> np.ndarray:
        """The filled prefix (no copy)."""
        return self.rows[: self.count]

    def reset(self) -> None:
        self.count = 0
        self.seq = -1


class ChunkPool:
    """Free list of chunks; allocates lazily, recycles aggressively."""

    def __init__(self, chunk_capacity: int) -> None:
        if chunk_capacity <= 0:
            raise ValueError("chunk_capacity must be positive")
        self.chunk_capacity = chunk_capacity
        self._free: list[Chunk] = []
        self.allocated = 0  # high-water mark: total chunks ever created

    def acquire(self) -> Chunk:
        if self._free:
            return self._free.pop()
        self.allocated += 1
        return Chunk(self.chunk_capacity)

    def release(self, chunk: Chunk) -> None:
        chunk.reset()
        self._free.append(chunk)

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def memory_bytes(self) -> int:
        """Bytes held by every chunk ever allocated (they live in the pool
        or in queues; either way they are resident)."""
        return self.allocated * self.chunk_capacity * 8
