"""Load balancing (Section IV-A).

Memory addresses distribute evenly under the modulo map, but access *counts*
do not: a few addresses soak up millions of accesses.  The paper therefore
keeps per-address access statistics and, at a fixed cadence (every 50 000
chunks), checks whether the hottest ten addresses are spread evenly over the
workers; if not, it installs redistribution rules and migrates the affected
signature state.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.parallel.address_map import AddressMap

#: Per-address counts saturate here instead of growing without bound: a
#: synthetic replay can revisit one address 1e8+ times per round, and a
#: count pinned at int64-max still sorts hottest-first while staying
#: representable in every downstream surface (numpy arrays, JSON, the
#: registry state shipped across processes).
COUNT_SATURATION = (1 << 63) - 1


class AccessStats:
    """Per-address dynamic access counts (the paper's statistics map)."""

    def __init__(self) -> None:
        self._counts: Counter[int] = Counter()
        self.total = 0

    def record_many(self, addrs: np.ndarray) -> None:
        """Bulk update from one producer batch."""
        uniq, counts = np.unique(addrs, return_counts=True)
        table = self._counts
        for a, c in zip(uniq.tolist(), counts.tolist()):
            v = table[a] + c
            table[a] = v if v < COUNT_SATURATION else COUNT_SATURATION
        self.total = min(self.total + int(len(addrs)), COUNT_SATURATION)

    def record(self, addr: int) -> None:
        v = self._counts[addr] + 1
        self._counts[addr] = v if v < COUNT_SATURATION else COUNT_SATURATION
        self.total = min(self.total + 1, COUNT_SATURATION)

    def hottest(self, k: int) -> list[tuple[int, int]]:
        """Top-k (address, count), hottest first, address as tie-break.

        A single selection pass under the full ``(-count, addr)`` order:
        an overfetch through ``most_common`` would resolve count ties in
        insertion order and could drop the tied address with the smallest
        id, making the redistribution non-deterministic.
        """
        if k <= 0:
            return []
        return heapq.nsmallest(
            k, self._counts.items(), key=lambda ac: (-ac[1], ac[0])
        )

    def count_of(self, addr: int) -> int:
        return self._counts.get(addr, 0)

    @property
    def n_addresses(self) -> int:
        return len(self._counts)


@dataclass
class RebalanceDecision:
    """One rebalancing round's outcome."""

    moves: list[tuple[int, int, int]] = field(default_factory=list)  # (addr, old, new)
    #: Bank-granularity moves (banked mode): (bank, old_rule, new).  An
    #: ``old_rule`` of -1 means the bank had no rule yet — its addresses were
    #: still modulo-spread over every worker.
    bank_moves: list[tuple[int, int, int]] = field(default_factory=list)

    @property
    def n_moves(self) -> int:
        return len(self.moves)

    @property
    def n_bank_moves(self) -> int:
        return len(self.bank_moves)


class Rebalancer:
    """Implements the top-k even-spread policy over an :class:`AddressMap`.

    With a :class:`~repro.obs.metrics.MetricsRegistry` attached, every
    round increments the ``rebalance.rounds``/``rebalance.moves`` counters
    and emits one ``rebalance`` event carrying the observed imbalance and
    the number of migrated addresses.

    Independently of the registry, every :meth:`rebalance` call appends one
    entry to :attr:`audit` — the decision's full paper trail: before/after
    hot-load imbalance ratio, the per-worker hot load on both sides of the
    move, and the migrated addresses.  The pipeline threads the audit into
    :class:`~repro.parallel.engine.ParallelRunInfo` and the run report's
    ``memory`` section, so every redistribution of a run is reconstructible
    after the fact.
    """

    def __init__(
        self,
        address_map: AddressMap,
        hot_addresses: int = 10,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.address_map = address_map
        self.hot_addresses = hot_addresses
        self.registry = registry
        self.rounds = 0
        self.total_moves = 0
        #: One entry per rebalancing round (including no-move rounds).
        self.audit: list[dict[str, Any]] = []

    def imbalance(self, stats: AccessStats) -> float:
        """Max/mean ratio of per-worker *hot* load (1.0 = perfectly even)."""
        load = self._hot_load(stats)
        mean = load.mean()
        return float(load.max() / mean) if mean > 0 else 1.0

    def _hot_load(self, stats: AccessStats) -> np.ndarray:
        load = np.zeros(self.address_map.n_workers, dtype=np.float64)
        for addr, count in stats.hottest(self.hot_addresses):
            load[self.address_map.worker_of(addr)] += count
        return load

    def rebalance(self, stats: AccessStats) -> RebalanceDecision:
        """Spread the hottest addresses across workers, heaviest first.

        Greedy longest-processing-time assignment: walk the hot list in
        descending count and send each address to the currently
        least-loaded worker.  Only differences from the current map become
        redistribution rules (signature migration is expensive, so we touch
        the minimum number of addresses).

        When the address map carries a bank geometry the unit of
        redistribution is a whole *bank*: hot addresses are grouped into
        their banks, the LPT assignment runs over bank heat, and the result
        is installed as bank rules — so the pipeline can migrate the banks'
        signature state along with ownership instead of dropping it.
        """
        self.rounds += 1
        decision = RebalanceDecision()
        hot = stats.hottest(self.hot_addresses)
        if not hot:
            self._record_audit(decision, 1.0, 1.0, [], [])
            return decision
        load_before = self._hot_load(stats)
        imbalance_before = self._ratio(load_before)
        load = np.zeros(self.address_map.n_workers, dtype=np.float64)
        geo = self.address_map.bank_geometry
        if geo is not None:
            # Group hot-address heat by bank, then LPT over banks.  Sort by
            # (-heat, bank) so equal-heat banks assign deterministically.
            bank_heat: dict[int, int] = {}
            for addr, count in hot:
                b = geo.bank_of(addr)
                bank_heat[b] = bank_heat.get(b, 0) + count
            for b, heat in sorted(bank_heat.items(), key=lambda bh: (-bh[1], bh[0])):
                w = int(np.argmin(load))
                load[w] += heat
                old_rule = self.address_map.bank_rule(b)
                if old_rule != w:
                    self.address_map.redistribute_bank(b, w)
                    decision.bank_moves.append(
                        (b, -1 if old_rule is None else old_rule, w)
                    )
        else:
            targets: list[tuple[int, int]] = []
            for addr, count in hot:
                w = int(np.argmin(load))
                load[w] += count
                targets.append((addr, w))
            for addr, w in targets:
                old = self.address_map.worker_of(addr)
                if old != w:
                    self.address_map.redistribute(addr, w)
                    decision.moves.append((addr, old, w))
        self.total_moves += decision.n_moves + decision.n_bank_moves
        load_after = self._hot_load(stats)
        imbalance_after = self._ratio(load_after)
        self._record_audit(
            decision,
            imbalance_before,
            imbalance_after,
            [int(v) for v in load_before],
            [int(v) for v in load_after],
        )
        if self.registry is not None and (decision.n_moves or decision.n_bank_moves):
            self.registry.counter("rebalance.rounds").inc()
            if decision.n_moves:
                self.registry.counter("rebalance.moves").inc(decision.n_moves)
            if decision.n_bank_moves:
                self.registry.counter("rebalance.bank_moves").inc(
                    decision.n_bank_moves
                )
            self.registry.emit(
                {
                    "type": "rebalance",
                    "round": self.rounds,
                    "moves": decision.n_moves,
                    "bank_moves": decision.n_bank_moves,
                    "imbalance": imbalance_after,
                    "imbalance_before": imbalance_before,
                    "imbalance_after": imbalance_after,
                    "hot_load": [int(v) for v in load_after],
                }
            )
            tracer = self.registry.tracer
            if tracer.enabled:
                tracer.instant(
                    "rebalance",
                    round=self.rounds,
                    moves=decision.n_moves,
                    bank_moves=decision.n_bank_moves,
                    imbalance_before=imbalance_before,
                    imbalance_after=imbalance_after,
                    # Cap the per-event payload; a pathological round could
                    # migrate thousands of addresses.
                    migrated=[a for a, _, _ in decision.moves[:32]],
                    migrated_banks=[b for b, _, _ in decision.bank_moves[:32]],
                )
        return decision

    def _ratio(self, load: np.ndarray) -> float:
        mean = load.mean()
        return float(load.max() / mean) if mean > 0 else 1.0

    def _record_audit(
        self,
        decision: RebalanceDecision,
        imbalance_before: float,
        imbalance_after: float,
        hot_load_before: list[int],
        hot_load_after: list[int],
    ) -> None:
        self.audit.append(
            {
                "round": self.rounds,
                "n_moves": decision.n_moves,
                "moves": [
                    {"addr": a, "from": old, "to": new}
                    for a, old, new in decision.moves
                ],
                "n_bank_moves": decision.n_bank_moves,
                "bank_moves": [
                    {"bank": b, "from": old, "to": new}
                    for b, old, new in decision.bank_moves
                ],
                "imbalance_before": imbalance_before,
                "imbalance_after": imbalance_after,
                "hot_load_before": hot_load_before,
                "hot_load_after": hot_load_after,
            }
        )
