"""Worker liveness for the ``processes`` execution mode.

A forked worker that deadlocks, spins, or gets OOM-killed is invisible to
the parent until a queue timeout fires; the heartbeat plane makes worker
health *observable while the run executes*.  Two halves:

* :class:`HeartbeatBoard` — a tiny shared-memory array, one ``(monotonic
  timestamp, beat count)`` float64 pair per worker.  Workers stamp their
  slot at startup, per task, and per chunk (:func:`HeartbeatBoard.beat` is
  two array stores — nanoseconds, safe on the hot path).  ``time.monotonic``
  is ``CLOCK_MONOTONIC`` on Linux, one system-wide clock, so the parent can
  subtract a child's stamp from its own reading directly.
* :class:`WorkerWatchdog` — a parent-side daemon thread ticking on the
  drift-free :func:`~repro.obs.sampler.deadline_loop` grid.  Each tick it
  classifies every worker — ``live`` / ``stalled`` (no beat for longer
  than ``stall_after_s``) / ``dead`` (nonzero exitcode) — and publishes the
  verdicts as ``worker.heartbeat.*`` gauges in the run's registry, which is
  the *single* source of truth every consumer reads
  (:func:`~repro.obs.report.liveness_summary`, the HTTP ``/healthz``
  endpoint, the run report's liveness section).  Stall episodes additionally
  bump a ``worker.heartbeat.stalls`` counter, land in the structured log,
  and are recorded as ``worker.heartbeat_stall`` slices on the worker's
  tracer track (the ``_stall`` suffix folds them into the existing
  busy/stall/idle timeline accounting).

The watchdog only ever *reports* — recovery (kill, raise, rebalance) stays
with the engine, whose queue timeouts already guarantee the parent cannot
hang on a dead worker.
"""

from __future__ import annotations

import threading
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import HEARTBEAT_STATES
from repro.obs.sampler import deadline_loop
from repro.obs.tracing import worker_track

STATE_LIVE = HEARTBEAT_STATES.index("live")
STATE_STALLED = HEARTBEAT_STATES.index("stalled")
STATE_DEAD = HEARTBEAT_STATES.index("dead")

#: Default watchdog cadence (seconds).
DEFAULT_INTERVAL_S = 0.05

#: A worker is stalled when its slot has not been stamped for this many
#: watchdog intervals.
STALL_AFTER_INTERVALS = 10


class HeartbeatBoard:
    """Shared-memory heartbeat slots: ``(n_workers, 2)`` float64.

    Column 0 is the worker's last ``time.monotonic()`` stamp, column 1 its
    cumulative beat count.  Slots are pre-stamped at creation so a worker
    that dies before its first beat ages from run start instead of from the
    monotonic epoch.  Same ownership protocol as the shared trace block:
    the creator (parent) unlinks via :meth:`close`, workers attach with
    resource-tracker registration suppressed and only ever ``close()``
    their mapping.
    """

    SLOTS = 2  # timestamp, beat count

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        n_workers: int,
        owner: bool,
    ) -> None:
        self.shm = shm
        self.n_workers = n_workers
        self._owner = owner
        self.arr = np.ndarray(
            (n_workers, self.SLOTS), dtype=np.float64, buffer=shm.buf
        )

    # -- construction -------------------------------------------------------
    @classmethod
    def create(cls, n_workers: int) -> "HeartbeatBoard":
        size = n_workers * cls.SLOTS * 8
        shm = shared_memory.SharedMemory(create=True, size=size)
        board = cls(shm, n_workers, owner=True)
        board.arr[:, 0] = time.monotonic()
        board.arr[:, 1] = 0.0
        return board

    @property
    def meta(self) -> tuple[str, int]:
        """Picklable attach descriptor: ``(shm name, n_workers)``."""
        return (self.shm.name, self.n_workers)

    @classmethod
    def attach(cls, meta: tuple[str, int]) -> "HeartbeatBoard":
        name, n_workers = meta
        # Same 3.11 resource_tracker workaround as trace/shm.py: an
        # attachment must not be registered, or the tracker unlinks the
        # block out from under the creator when this process exits.
        orig_register = resource_tracker.register

        def _no_register(name: str, rtype: str) -> None:  # pragma: no cover
            if rtype != "shared_memory":
                orig_register(name, rtype)

        resource_tracker.register = _no_register
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
        return cls(shm, n_workers, owner=False)

    # -- worker side ---------------------------------------------------------
    def beat(self, wid: int) -> None:
        """Stamp worker ``wid``'s slot (hot path: two array stores)."""
        self.arr[wid, 1] += 1.0
        self.arr[wid, 0] = time.monotonic()

    # -- parent side ---------------------------------------------------------
    def age_seconds(self, wid: int, now: float | None = None) -> float:
        if now is None:
            now = time.monotonic()
        return max(0.0, now - float(self.arr[wid, 0]))

    def beats(self, wid: int) -> int:
        return int(self.arr[wid, 1])

    def close(self) -> None:
        """Release the mapping; the creator also unlinks.  Idempotent."""
        self.arr = None  # drop the view before closing the buffer
        try:
            self.shm.close()
        except BufferError:  # a live export still pins the buffer
            return
        if self._owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass


class WorkerWatchdog:
    """Classifies workers from their heartbeat slots; publishes verdicts.

    ``exitcodes(w)`` decouples the watchdog from ``multiprocessing``: the
    engine passes a closure over its ``Process`` list, tests pass plain
    dicts.  Classification order matters — exitcode beats heartbeat age,
    so a worker that exited cleanly milliseconds ago is ``live`` (finished),
    not ``stalled``, and a crashed one is ``dead`` even while its last
    stamp is still fresh.
    """

    def __init__(
        self,
        board: HeartbeatBoard,
        registry: MetricsRegistry,
        exitcodes: Callable[[int], int | None],
        interval_s: float = DEFAULT_INTERVAL_S,
        stall_after_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.board = board
        self.registry = registry
        self.exitcodes = exitcodes
        self.interval_s = interval_s
        self.stall_after_s = (
            stall_after_s
            if stall_after_s is not None
            else STALL_AFTER_INTERVALS * interval_s
        )
        self._clock = clock
        n = board.n_workers
        self.states = [STATE_LIVE] * n
        #: monotonic stamp of each worker's ongoing stall episode (-1 = none).
        self._stall_t0 = [-1.0] * n
        self.n_ticks = 0
        self.ticks_missed = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- classification ------------------------------------------------------
    def classify(self, wid: int, now: float | None = None) -> int:
        exitcode = self.exitcodes(wid)
        if exitcode is not None and exitcode != 0:
            return STATE_DEAD
        if exitcode == 0:
            return STATE_LIVE  # finished cleanly
        if self.board.age_seconds(wid, now) > self.stall_after_s:
            return STATE_STALLED
        return STATE_LIVE

    def _end_stall(self, wid: int, now: float) -> None:
        """Close the open stall episode as a tracer slice."""
        t0 = self._stall_t0[wid]
        self._stall_t0[wid] = -1.0
        tracer = self.registry.tracer
        if tracer.enabled and t0 >= 0.0:
            # The board runs on time.monotonic, the tracer on perf_counter;
            # convert the episode length into the tracer's clock domain.
            end = tracer.now()
            dur = now - t0
            tracer.complete(
                "worker.heartbeat_stall", worker_track(wid), end - dur, end,
                worker=wid,
            )

    def tick(self) -> None:
        """One classification pass over every worker."""
        self.n_ticks += 1
        reg = self.registry
        now = self._clock()
        for w in range(self.board.n_workers):
            state = self.classify(w, now)
            age = self.board.age_seconds(w, now)
            reg.gauge("worker.heartbeat.age_seconds", worker=w).set(age)
            reg.gauge("worker.heartbeat.beats", worker=w).set(
                self.board.beats(w)
            )
            reg.gauge("worker.heartbeat.state", worker=w).set(state)
            prev = self.states[w]
            if state == STATE_STALLED and prev != STATE_STALLED:
                self._stall_t0[w] = now - age  # stall began at the last beat
                reg.counter("worker.heartbeat.stalls", worker=w).inc()
                reg.log.warning(
                    "worker.stalled", worker=w,
                    age_seconds=round(age, 3), beats=self.board.beats(w),
                )
                reg.emit(
                    {"type": "heartbeat", "worker": w, "state": "stalled",
                     "age_seconds": round(age, 6)}
                )
            elif state != STATE_STALLED and prev == STATE_STALLED:
                self._end_stall(w, now)
                if state == STATE_LIVE:
                    reg.log.info("worker.recovered", worker=w)
            if state == STATE_DEAD and prev != STATE_DEAD:
                reg.log.error(
                    "worker.dead", worker=w, exitcode=self.exitcodes(w)
                )
                reg.emit(
                    {"type": "heartbeat", "worker": w, "state": "dead",
                     "exitcode": self.exitcodes(w)}
                )
            self.states[w] = state

    # -- lifecycle -----------------------------------------------------------
    def _on_missed(self, n: int) -> None:
        self.ticks_missed += n

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=deadline_loop,
            args=(self.tick, self.interval_s, self._stop.wait),
            kwargs={"on_missed": self._on_missed},
            name="obs-watchdog",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Join the thread, take one final pass, close open stall slices.

        The final tick runs even when :meth:`start` never did (manual
        driving in tests), so the gauges always reflect end-of-run state.
        """
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5)
            self._thread = None
        self.tick()
        now = self._clock()
        for w in range(self.board.n_workers):
            if self._stall_t0[w] >= 0.0:
                self._end_stall(w, now)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()


def process_exitcodes(procs: Sequence[Any]) -> Callable[[int], int | None]:
    """Adapter: ``multiprocessing.Process`` list -> watchdog exitcode fn."""

    def exitcode(wid: int) -> int | None:
        return procs[wid].exitcode

    return exitcode
