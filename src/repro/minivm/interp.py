"""The MiniVM interpreter.

Tree-walking, generator-based: executing a thread produces a generator that
yields *actions* back to the scheduler between statements.  Actions:

======================== ==========================================
``("step",)``            one statement executed; reschedule freely
``("spawn", fn, args)``  create a thread; the send() value is its tid
``("tryacq", id, loc)``  lock attempt; send True when granted
``("release", id, loc)`` lock release (scheduler owns the lock table)
``("barrier", id, n, loc)`` barrier arrival; send True on release
``("join_all",)``        send True once all other threads finished
======================== ==========================================

Expressions evaluate atomically (no scheduling point inside one statement),
so the interleaving granularity is the statement — corresponding to the
paper's Figure 4, where one instrumented access plus its push form the unit
that locks make atomic.  Workloads that want exposable races split
read-modify-write into two statements through a register.

Traced events are emitted through an *emit gate* supplied by the scheduler,
which implements the immediate-vs-delayed push semantics of Section V.
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol

from repro.common.errors import MiniVmError
from repro.common.sourceloc import encode_location
from repro.minivm import affine
from repro.minivm import astnodes as ast
from repro.minivm.memory import ELEM_SIZE, Memory
from repro.minivm.program import Function, Program


class EmitGate(Protocol):
    """What the interpreter needs from the instrumentation side."""

    def intern_var(self, name: str) -> int: ...
    def emit_read(self, tid: int, addr: int, loc: int, var: int) -> None: ...
    def emit_write(self, tid: int, addr: int, loc: int, var: int) -> None: ...
    def emit_alloc(self, tid: int, addr: int, size: int, loc: int, var: int) -> None: ...
    def emit_free(self, tid: int, addr: int, size: int, loc: int) -> None: ...
    def emit_loop_enter(self, tid: int, site: int) -> None: ...
    def emit_loop_iter(self, tid: int, site: int) -> None: ...
    def emit_loop_exit(self, tid: int, site: int, end_loc: int) -> None: ...
    def emit_func_enter(self, tid: int, func_id: int, loc: int) -> None: ...
    def emit_func_exit(self, tid: int, func_id: int, loc: int) -> None: ...
    def fastpath_allowed(self, tid: int) -> bool: ...
    def emit_block(self, tid: int, site: int, n_iters: int, **cols: Any) -> None: ...


class _Activation:
    """One function activation: registers + memory bindings of its locals."""

    __slots__ = ("regs", "bases")

    def __init__(self) -> None:
        self.regs: dict[str, Any] = {}
        self.bases: dict[str, tuple[int, int]] = {}  # var name -> (base, elems)


class Interp:
    """Executes one :class:`Program` against a memory and an emit gate."""

    def __init__(
        self,
        program: Program,
        memory: Memory,
        gate: EmitGate,
        fastpath: bool = True,
    ) -> None:
        self.prog = program
        self.mem = memory
        self.gate = gate
        self.fastpath = fastpath
        self.fastpath_stats = affine.FastPathStats()
        # Loop AST node id -> AffineTemplate, or False for rejected loops.
        self._affine_cache: dict[int, "affine.AffineTemplate | bool"] = {}
        self._var_ids: dict[str, int] = {}
        self._global_bases: dict[str, tuple[int, int]] = {}
        for var in program.globals_:
            base = memory.alloc_global(max(var.size, 1))
            self._global_bases[var.name] = (base, max(var.size, 1))

    # -- helpers -------------------------------------------------------------
    def loc(self, line: int) -> int:
        return encode_location(self.prog.file_id, line)

    def _var_id(self, name: str) -> int:
        vid = self._var_ids.get(name)
        if vid is None:
            vid = self._var_ids[name] = self.gate.intern_var(name)
        return vid

    def _binding(self, act: _Activation, var: ast.Variable) -> tuple[int, int]:
        b = act.bases.get(var.name)
        if b is None:
            b = self._global_bases.get(var.name)
        if b is None:
            raise MiniVmError(f"unbound variable {var.name!r}")
        return b

    def _addr(
        self, act: _Activation, tid: int, var: ast.Variable, index: ast.Expr | None, line: int
    ) -> int:
        base, size = self._binding(act, var)
        if index is None:
            return base
        idx = int(self._eval(index, act, tid, line))
        if not 0 <= idx < size:
            raise MiniVmError(
                f"index {idx} out of bounds for {var.name!r}[{size}] "
                f"at line {line}"
            )
        return base + ELEM_SIZE * idx

    # -- expression evaluation (atomic; loads trace through the gate) ----------
    def _eval(self, expr: ast.Expr, act: _Activation, tid: int, line: int) -> Any:
        if isinstance(expr, ast.Const):
            return expr.value
        if isinstance(expr, ast.Reg):
            try:
                return act.regs[expr.name]
            except KeyError:
                raise MiniVmError(f"unset register {expr.name!r} at line {line}")
        if isinstance(expr, ast.Load):
            addr = self._addr(act, tid, expr.var, expr.index, line)
            self.gate.emit_read(tid, addr, self.loc(line), self._var_id(expr.var.name))
            return self.mem.read(addr)
        if isinstance(expr, ast.BinOp):
            return expr.apply(
                self._eval(expr.lhs, act, tid, line),
                self._eval(expr.rhs, act, tid, line),
            )
        if isinstance(expr, ast.UnOp):
            return expr.apply(self._eval(expr.operand, act, tid, line))
        raise MiniVmError(f"cannot evaluate {expr!r}")

    # -- affine fast path ------------------------------------------------------
    def _affine_template(self, s: ast.For) -> "affine.AffineTemplate | None":
        """Cached static classification of a For node (id-keyed: AST nodes
        are unique and live as long as the program)."""
        cached = self._affine_cache.get(id(s))
        if cached is None:
            tmpl, reason, memo_hit = affine.classify_loop_cached(self.prog, s)
            if memo_hit:
                self.fastpath_stats.memo_hit()
            if tmpl is None:
                self.fastpath_stats.reject(reason)
                cached = False
            else:
                self.fastpath_stats.compiled(tmpl.verdict)
                cached = tmpl
            self._affine_cache[id(s)] = cached
        return cached or None

    # -- execution ---------------------------------------------------------------
    def thread_gen(self, tid: int, func_name: str, argvals: tuple) -> Iterator:
        """Generator executing ``func_name(*argvals)`` on thread ``tid``."""
        fn = self.prog.function(func_name)
        yield from self._call(tid, fn, argvals)

    def _call(self, tid: int, fn: Function, argvals: tuple) -> Iterator:
        if len(argvals) != len(fn.params):
            raise MiniVmError(
                f"{fn.name!r} expects {len(fn.params)} args, got {len(argvals)}"
            )
        act = _Activation()
        act.regs.update(zip(fn.params, argvals))
        func_id = self.loc(fn.def_line)
        frame = fn.frame_elems
        if frame:
            base = self.mem.push_frame(tid, frame)
            off = 0
            for var in fn.locals_:
                n = max(var.size, 1)
                act.bases[var.name] = (base + ELEM_SIZE * off, n)
                off += n
        self.gate.emit_func_enter(tid, func_id, func_id)
        try:
            yield from self._exec_block(tid, act, fn.body)
        finally:
            self.gate.emit_func_exit(tid, func_id, func_id)
            if frame:
                self.mem.pop_frame(tid)

    def _exec_block(self, tid: int, act: _Activation, body: list[ast.Stmt]) -> Iterator:
        for stmt in body:
            yield from self._exec_stmt(tid, act, stmt)

    def _exec_stmt(self, tid: int, act: _Activation, s: ast.Stmt) -> Iterator:
        line = s.line
        if isinstance(s, ast.SetReg):
            act.regs[s.reg.name] = self._eval(s.expr, act, tid, line)
            yield ("step",)
        elif isinstance(s, ast.Store):
            value = self._eval(s.expr, act, tid, line)
            addr = self._addr(act, tid, s.var, s.index, line)
            self.gate.emit_write(tid, addr, self.loc(line), self._var_id(s.var.name))
            self.mem.write(addr, value)
            yield ("step",)
        elif isinstance(s, ast.For):
            start = self._eval(s.start, act, tid, line)
            end = self._eval(s.end, act, tid, line)
            step = self._eval(s.step, act, tid, line)
            if step == 0:
                raise MiniVmError(f"for-loop step 0 at line {line}")
            site = self.loc(line)
            self.gate.emit_loop_enter(tid, site)
            done = False
            if self.fastpath and self.gate.fastpath_allowed(tid):
                tmpl = self._affine_template(s)
                if tmpl is not None:
                    done = tmpl.execute(
                        self, act, tid, start, end, step, site, self.fastpath_stats
                    )
            if not done:
                v = start
                while (v < end) if step > 0 else (v > end):
                    act.regs[s.reg.name] = v
                    self.gate.emit_loop_iter(tid, site)
                    yield ("step",)
                    yield from self._exec_block(tid, act, s.body)
                    v = v + step
            self.gate.emit_loop_exit(tid, site, self.loc(s.end_line or line))
            yield ("step",)
        elif isinstance(s, ast.While):
            site = self.loc(line)
            self.gate.emit_loop_enter(tid, site)
            while self._eval(s.cond, act, tid, line):
                self.gate.emit_loop_iter(tid, site)
                yield ("step",)
                yield from self._exec_block(tid, act, s.body)
            self.gate.emit_loop_exit(tid, site, self.loc(s.end_line or line))
            yield ("step",)
        elif isinstance(s, ast.If):
            if self._eval(s.cond, act, tid, line):
                yield ("step",)
                yield from self._exec_block(tid, act, s.then_body)
            else:
                yield ("step",)
                yield from self._exec_block(tid, act, s.else_body)
        elif isinstance(s, ast.Call):
            argvals = tuple(self._eval(a, act, tid, line) for a in s.args)
            yield ("step",)
            yield from self._call(tid, self.prog.function(s.func), argvals)
        elif isinstance(s, ast.Spawn):
            argvals = tuple(self._eval(a, act, tid, line) for a in s.args)
            yield ("spawn", s.func, argvals)
        elif isinstance(s, ast.JoinAll):
            while not (yield ("join_all",)):
                pass
        elif isinstance(s, ast.LockAcq):
            while not (yield ("tryacq", s.lock_id, self.loc(line))):
                pass
        elif isinstance(s, ast.LockRel):
            yield ("release", s.lock_id, self.loc(line))
        elif isinstance(s, ast.BarrierWait):
            while not (yield ("barrier", s.barrier_id, s.parties, self.loc(line))):
                pass
        elif isinstance(s, ast.AllocStmt):
            n = int(self._eval(s.size, act, tid, line))
            base = self.mem.malloc(n)
            act.bases[s.var.name] = (base, n)
            self.gate.emit_alloc(
                tid, base, n * ELEM_SIZE, self.loc(line), self._var_id(s.var.name)
            )
            yield ("step",)
        elif isinstance(s, ast.FreeStmt):
            binding = act.bases.pop(s.var.name, None)
            if binding is None:
                raise MiniVmError(f"free of unbound heap var {s.var.name!r}")
            base, n = binding
            self.mem.mfree(base)
            self.gate.emit_free(tid, base, n * ELEM_SIZE, self.loc(line))
            yield ("step",)
        else:
            raise MiniVmError(f"unknown statement {s!r}")
