"""MiniVM's flat 64-bit memory model.

Layout (8-byte elements everywhere — the profiler's access granularity):

* globals   at ``0x0001_0000`` — bump-allocated once per program,
* heap      at ``0x1000_0000`` — ``malloc``/``free`` with first-fit reuse of
  freed blocks, so address recycling (the motivation for variable-lifetime
  analysis) actually happens,
* stacks    at ``0x2000_0000 + tid * 0x0100_0000`` — one bump stack per
  thread; frames pop on return, so traced locals of successive calls reuse
  addresses, just like a real call stack.

Values live in a dict keyed by address; uninitialized reads return 0.
"""

from __future__ import annotations

from repro.common.errors import MiniVmError

ELEM_SIZE = 8
GLOBAL_BASE = 0x0001_0000
HEAP_BASE = 0x1000_0000
STACK_BASE = 0x2000_0000
STACK_SPAN = 0x0100_0000
MAX_THREADS = 512


class Memory:
    """Address allocation + value storage for one program execution."""

    def __init__(self) -> None:
        self._global_top = GLOBAL_BASE
        self._heap_top = HEAP_BASE
        self._free_blocks: list[tuple[int, int]] = []  # (size_elems, base)
        self._stack_tops: dict[int, list[int]] = {}  # tid -> frame base stack
        self._values: dict[int, float | int] = {}
        self._heap_sizes: dict[int, int] = {}  # live block base -> elems

    # -- allocation -----------------------------------------------------------
    def alloc_global(self, n_elems: int) -> int:
        base = self._global_top
        self._global_top += n_elems * ELEM_SIZE
        return base

    def malloc(self, n_elems: int) -> int:
        """First-fit from the free list, else bump — addresses get reused."""
        if n_elems <= 0:
            raise MiniVmError(f"malloc of {n_elems} elements")
        for i, (size, base) in enumerate(self._free_blocks):
            if size >= n_elems:
                self._free_blocks.pop(i)
                self._heap_sizes[base] = n_elems
                return base
        base = self._heap_top
        self._heap_top += n_elems * ELEM_SIZE
        self._heap_sizes[base] = n_elems
        return base

    def mfree(self, base: int) -> int:
        """Free a live block; returns its size in elements."""
        size = self._heap_sizes.pop(base, None)
        if size is None:
            raise MiniVmError(f"free of unallocated address {base:#x}")
        self._free_blocks.append((size, base))
        # Values of the dead block are dropped so a reusing malloc starts at 0.
        for a in range(base, base + size * ELEM_SIZE, ELEM_SIZE):
            self._values.pop(a, None)
        return size

    def push_frame(self, tid: int, n_elems: int) -> int:
        if tid >= MAX_THREADS:
            raise MiniVmError(f"thread id {tid} exceeds {MAX_THREADS}")
        stack = self._stack_tops.setdefault(tid, [STACK_BASE + tid * STACK_SPAN])
        base = stack[-1]
        top = base + n_elems * ELEM_SIZE
        if top > STACK_BASE + (tid + 1) * STACK_SPAN:
            raise MiniVmError(f"stack overflow on thread {tid}")
        stack.append(top)
        return base

    def pop_frame(self, tid: int) -> None:
        stack = self._stack_tops.get(tid)
        if not stack or len(stack) < 2:
            raise MiniVmError(f"pop_frame on empty stack of thread {tid}")
        top = stack.pop()
        base = stack[-1]
        # Drop dead stack values so reused addresses read as fresh zeros.
        for a in range(base, top, ELEM_SIZE):
            self._values.pop(a, None)

    # -- value access ------------------------------------------------------------
    def read(self, addr: int) -> float | int:
        return self._values.get(addr, 0)

    def write(self, addr: int, value: float | int) -> None:
        self._values[addr] = value

    def read_block(self, addrs) -> list[float | int]:
        """Read many addresses at once (affine fast path gather)."""
        get = self._values.get
        return [get(a, 0) for a in addrs]

    def write_block(self, addrs, values) -> None:
        """Write many address/value pairs at once (affine fast path scatter).

        Later pairs win on duplicate addresses, matching a sequential run.
        """
        self._values.update(zip(addrs, values))

    # -- introspection --------------------------------------------------------------
    @property
    def n_live_heap_blocks(self) -> int:
        return len(self._heap_sizes)

    @property
    def n_values(self) -> int:
        return len(self._values)
