"""Per-loop dependence-graph IR and statement-group scheduler.

The affine fast path (:mod:`repro.minivm.affine`) used to reject any loop
body whose statements depend on each other — a single template covered only
independent straight-line bodies.  This module gives classification a real
intermediate representation, in the spirit of graph-based dependence
identifiers (Alluru & Jeganathan) and of PROMPT's one-core/many-analyses
reuse:

* **nodes** are the loop-body statements (``SetReg`` / ``Store``),
* every traced access is a :class:`MemoryRef` — a symbolic affine
  description of the address progression (loop-invariant *slot*, affine
  ``base + stride*i``, or *dynamic* vector-evaluated index),
* **edges** are RAW / WAR / WAW dependences with a dependence distance
  (0 = intra-iteration, 1 = adjacent-iteration slot/register recurrence,
  ``None`` = statically unknown) and a loop-carried flag.

The :class:`GroupScheduler` condenses the intra-iteration + loop-carried
RAW subgraph into strongly connected components, topologically orders them,
and assigns each group an execution *mode*:

========== ==============================================================
``vector``     no cycle: evaluate the whole iteration space as numpy arrays
``reduction``  single-statement self-recurrence matching ``x = x ⊕ term``
               for ⊕ in ``+ - * min max`` — runs as ``ufunc.accumulate``
               (sequential left fold, bit-identical to the interpreter)
``sequential`` any other recurrence (e.g. an LCG chain): an exact scalar
               lane replays just the cyclic statements per iteration while
               everything downstream still vectorizes
========== ==============================================================

The same graph doubles as the parallelization advisor: :func:`loop_verdict`
derives a DOALL / reduction / pipeline / sequential classification from the
loop-carried edges, and the dynamic-dependence analysis
(:mod:`repro.analyses.parallelism`) reuses :func:`carried_graph_verdict` so
the static and profiled classifications can never diverge in logic.
"""

from __future__ import annotations

from typing import Iterable

from repro.minivm import astnodes as ast
from repro.trace.events import READ, WRITE

#: Binary operators with an exact ``ufunc.accumulate`` reduction lowering.
#: ``accumulate`` applies the ufunc as a sequential left fold, which is the
#: interpreter's own evaluation order — so int and IEEE-float results are
#: bit-identical (NaN-bearing min/max bails at runtime instead).
REDUCTION_OPS = {
    "+": "add",
    "-": "subtract",
    "*": "multiply",
    "min": "minimum",
    "max": "maximum",
}

#: Index-expression shapes, decided statically per access.
SLOT = "slot"  # loop-invariant index: the same cell every iteration
AFFINE = "affine"  # degree-1 polynomial in the induction register
DYNAMIC = "dynamic"  # loop-variant but non-affine: vector-evaluated index


class MemoryRef:
    """One trace-event-emitting access per iteration, symbolically.

    ``key`` identifies the access's address progression *statically*: two
    refs with the same key provably walk identical addresses, which is what
    store-to-load forwarding and last-store-wins WAW resolution rely on.
    ``binding`` (set by the graph build) says where the ref's value comes
    from: pre-loop memory, a forwarded in-iteration store, or the previous
    iteration's slot value.
    """

    __slots__ = ("kind", "var", "index", "line", "stmt_idx", "shape", "key", "binding")

    def __init__(
        self,
        kind: int,
        var: ast.Variable,
        index: ast.Expr | None,
        line: int,
        stmt_idx: int,
        shape: str,
    ) -> None:
        self.kind = kind
        self.var = var
        self.index = index
        self.line = line
        self.stmt_idx = stmt_idx
        self.shape = shape
        self.key = (var.name, index)
        self.binding: tuple = ("init",)

    @property
    def is_store(self) -> bool:
        return self.kind == WRITE

    def describe(self) -> str:
        idx = "" if self.index is None else f"[{self.shape}]"
        rw = "W" if self.kind == WRITE else "R"
        return f"{rw}:{self.var.name}{idx}@s{self.stmt_idx}"


class DepEdge:
    """A dependence between two body statements (producer ``src`` first)."""

    __slots__ = ("src", "dst", "dep", "carried", "distance", "on")

    def __init__(
        self,
        src: int,
        dst: int,
        dep: str,
        carried: bool,
        distance: int | None,
        on: str,
    ) -> None:
        self.src = src
        self.dst = dst
        self.dep = dep  # "RAW" | "WAR" | "WAW"
        self.carried = carried
        self.distance = distance  # 0 intra, 1 slot/register recurrence, None unknown
        self.on = on  # register name or "var[...]" description

    def describe(self) -> str:
        span = "carried" if self.carried else "intra"
        d = "?" if self.distance is None else str(self.distance)
        return f"{self.src}->{self.dst} {self.dep}/{span} d={d} on {self.on}"


class StmtNode:
    """One classified body statement with its scanned access set."""

    __slots__ = ("idx", "line", "target_reg", "store", "expr", "loads", "reg_binds")

    def __init__(
        self,
        idx: int,
        line: int,
        target_reg: str | None,
        store: MemoryRef | None,
        expr: ast.Expr,
        loads: list[MemoryRef],
    ) -> None:
        self.idx = idx
        self.line = line
        self.target_reg = target_reg
        self.store = store
        self.expr = expr
        self.loads = loads
        #: register name -> ("post", def_idx) | ("pre", def_idx) | ("inv",)
        self.reg_binds: dict[str, tuple] = {}


class ReductionInfo:
    """A recognized ``slot = slot ⊕ term`` idiom on one statement."""

    __slots__ = ("op", "term", "slot_kind", "slot_name", "self_load")

    def __init__(
        self,
        op: str,
        term: ast.Expr,
        slot_kind: str,  # "reg" | "mem"
        slot_name: str,
        self_load: MemoryRef | None,
    ) -> None:
        self.op = op
        self.term = term
        self.slot_kind = slot_kind
        self.slot_name = slot_name
        self.self_load = self_load


class StmtGroup:
    """A schedulable unit: one SCC of the value-flow graph."""

    __slots__ = ("stmts", "mode", "reduction")

    def __init__(
        self, stmts: list[int], mode: str, reduction: ReductionInfo | None = None
    ) -> None:
        self.stmts = stmts  # statement indices, in body order
        self.mode = mode  # "vector" | "reduction" | "sequential"
        self.reduction = reduction

    def describe(self) -> str:
        return f"{self.mode}({','.join(map(str, self.stmts))})"


def _tarjan_sccs(n: int, succ: dict[int, set[int]]) -> list[list[int]]:
    """Strongly connected components of nodes ``0..n-1``, iterative Tarjan.

    Returned in reverse topological order of the condensation (callers
    reverse for producer-first scheduling); members sorted ascending.
    """
    index = [0] * n
    low = [0] * n
    state = [0] * n  # 0 unvisited, 1 on stack, 2 done
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = [1]
    for root in range(n):
        if state[root]:
            continue
        work = [(root, iter(sorted(succ.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        state[root] = 1
        stack.append(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if not state[w]:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    state[w] = 1
                    stack.append(w)
                    work.append((w, iter(sorted(succ.get(w, ())))))
                    advanced = True
                    break
                if state[w] == 1:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                pv = work[-1][0]
                low[pv] = min(low[pv], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    state[w] = 2
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(sorted(comp))
    return sccs


def carried_graph_verdict(
    n_nodes: int, edges: Iterable[tuple[int, int, bool]]
) -> str:
    """Shared DOALL/pipeline/sequential rule over a carried-dependence graph.

    ``edges`` are ``(src, dst, carried)`` true-dependence (RAW) edges with
    storage-reuse (WAR/WAW) and recognized reductions already removed — both
    are repaired by privatization / a reduction clause, the treatment the
    paper's Table II assumes.  The rule, DSWP-style:

    * no carried edge → ``doall`` (iterations are independent),
    * carried edges exist but no strongly connected component of the
      intra+carried graph contains one internally → ``pipeline`` (the body
      splits into stages; carried data only flows forward between them),
    * otherwise → ``sequential`` (some stage feeds itself across iterations).
    """
    edge_list = list(edges)
    if not any(carried for _, _, carried in edge_list):
        return "doall"
    succ: dict[int, set[int]] = {}
    for src, dst, _ in edge_list:
        succ.setdefault(src, set()).add(dst)
    comp_of: dict[int, int] = {}
    for ci, comp in enumerate(_tarjan_sccs(n_nodes, succ)):
        for v in comp:
            comp_of[v] = ci
    for src, dst, carried in edge_list:
        if carried and comp_of[src] == comp_of[dst]:
            return "sequential"
    return "pipeline"


def _affine_coeffs(e: ast.Expr, ind: str) -> tuple[int, int] | None:
    """``e`` as ``coeff*i + offset`` with *literal* integer constants, or
    ``None``.  Used only for static distance labeling (never for safety —
    runtime resolution re-derives every progression)."""
    if e is None:
        return (0, 0)
    if isinstance(e, ast.Const):
        return (0, e.value) if isinstance(e.value, int) else None
    if isinstance(e, ast.Reg):
        return (1, 0) if e.name == ind else None
    if isinstance(e, ast.UnOp) and e.op == "-":
        sub = _affine_coeffs(e.operand, ind)
        return None if sub is None else (-sub[0], -sub[1])
    if isinstance(e, ast.BinOp):
        lhs = _affine_coeffs(e.lhs, ind)
        rhs = _affine_coeffs(e.rhs, ind)
        if lhs is None or rhs is None:
            return None
        if e.op == "+":
            return (lhs[0] + rhs[0], lhs[1] + rhs[1])
        if e.op == "-":
            return (lhs[0] - rhs[0], lhs[1] - rhs[1])
        if e.op == "*":
            if lhs[0] == 0:
                return (lhs[1] * rhs[0], lhs[1] * rhs[1])
            if rhs[0] == 0:
                return (rhs[1] * lhs[0], rhs[1] * lhs[1])
    return None


class DependencyGraph:
    """Static dependence graph of one innermost counted loop body."""

    __slots__ = ("ind", "nodes", "edges", "reg_defs", "mem_stores", "slot_keys")

    def __init__(self, ind: str, nodes: list[StmtNode]) -> None:
        self.ind = ind
        self.nodes = nodes
        self.edges: list[DepEdge] = []
        #: register name -> ascending statement indices that define it
        self.reg_defs: dict[str, list[int]] = {}
        #: access key -> ascending statement indices that store through it
        self.mem_stores: dict[tuple, list[int]] = {}
        #: memory keys that are loop-invariant cells written every iteration
        self.slot_keys: set[tuple] = set()
        self._build()

    # -- construction ------------------------------------------------------
    def _build(self) -> None:
        for node in self.nodes:
            if node.target_reg is not None:
                self.reg_defs.setdefault(node.target_reg, []).append(node.idx)
        for node in self.nodes:
            self._bind_regs(node)
        # Keys must capture the *binding context* of index registers: two
        # structurally equal index expressions name the same progression only
        # when their registers resolve to the same defs.
        for node in self.nodes:
            for ref in node.loads + ([node.store] if node.store else []):
                ref.key = self._refined_key(ref, node)
        for node in self.nodes:
            if node.store is not None:
                self.mem_stores.setdefault(node.store.key, []).append(node.idx)
        for key, stores in self.mem_stores.items():
            first_store = stores[0]
            shape = next(
                n.store.shape for n in self.nodes if n.idx == first_store
            )
            if shape == SLOT:
                self.slot_keys.add(key)
        for node in self.nodes:
            self._bind_loads(node)
        self._reg_output_edges()
        self._mem_output_edges()
        self._cross_key_edges()

    def _refined_key(self, ref: MemoryRef, node: StmtNode) -> tuple:
        if ref.index is None:
            return (ref.var.name, None, ())
        names: set[str] = set()
        _collect_regs(ref.index, names)
        ctxt = tuple(
            sorted(
                (nm, node.reg_binds.get(nm, ("inv",)))
                for nm in names
                if nm != self.ind
            )
        )
        return (ref.var.name, ref.index, ctxt)

    def _bind_regs(self, node: StmtNode) -> None:
        """Resolve every register read of ``node`` to its reaching def."""
        names: set[str] = set()
        exprs = [node.expr]
        exprs += [ld.index for ld in node.loads if ld.index is not None]
        if node.store is not None and node.store.index is not None:
            exprs.append(node.store.index)
        for e in exprs:
            _collect_regs(e, names)
        for name in sorted(names):
            if name == self.ind or name not in self.reg_defs:
                node.reg_binds[name] = ("inv",)
                continue
            defs = self.reg_defs[name]
            before = [d for d in defs if d < node.idx]
            if before:
                node.reg_binds[name] = ("post", before[-1])
                self.edges.append(
                    DepEdge(before[-1], node.idx, "RAW", False, 0, name)
                )
            else:
                node.reg_binds[name] = ("pre", defs[-1])
                self.edges.append(
                    DepEdge(defs[-1], node.idx, "RAW", True, 1, name)
                )

    def _bind_loads(self, node: StmtNode) -> None:
        """Resolve every load to pre-loop memory, a forwarded store, or the
        previous iteration's slot value."""
        for ld in node.loads:
            stores = self.mem_stores.get(ld.key)
            on = f"{ld.var.name}[{ld.shape}]"
            if not stores:
                ld.binding = ("init",)
                continue
            before = [d for d in stores if d < node.idx]
            if before:
                # Same progression, earlier statement: the interpreter's
                # load observes this iteration's store — forward its value.
                ld.binding = ("fwd", before[-1])
                self.edges.append(
                    DepEdge(before[-1], node.idx, "RAW", False, 0, on)
                )
            elif ld.key in self.slot_keys:
                # Loop-invariant cell read before it is (re)written: the
                # value is last iteration's — a distance-1 recurrence.
                ld.binding = ("pre", stores[-1])
                self.edges.append(
                    DepEdge(stores[-1], node.idx, "RAW", True, 1, on)
                )
            else:
                # Moving progression, load-before-store: iteration k reads
                # element k before writing it, so pre-loop values are right
                # for affine shapes.  A dynamic shape may revisit addresses
                # across iterations (histogram updates), so it also gets a
                # carried may-RAW edge — cyclic cases then take the exact
                # sequential lane; acyclic ones dup-check at gather time.
                ld.binding = ("init",)
                self.edges.append(
                    DepEdge(node.idx, stores[0], "WAR", False, 0, on)
                )
                if ld.shape == DYNAMIC:
                    self.edges.append(
                        DepEdge(stores[-1], node.idx, "RAW", True, None, on)
                    )

    def _reg_output_edges(self) -> None:
        for name, defs in self.reg_defs.items():
            for a, b in zip(defs, defs[1:]):
                self.edges.append(DepEdge(a, b, "WAW", False, 0, name))
            self.edges.append(DepEdge(defs[-1], defs[0], "WAW", True, 1, name))

    def _mem_output_edges(self) -> None:
        for key, stores in self.mem_stores.items():
            var = key[0]
            for a, b in zip(stores, stores[1:]):
                self.edges.append(DepEdge(a, b, "WAW", False, 0, var))
            if key in self.slot_keys:
                self.edges.append(
                    DepEdge(stores[-1], stores[0], "WAW", True, 1, var)
                )

    def _cross_key_edges(self) -> None:
        """May-alias edges between *different* progressions of one array.

        Distances come from literal affine coefficients when both sides have
        them (``a[i]`` vs ``a[i-1]`` → distance 1); otherwise the edge is
        flagged unknown.  These edges inform the parallelism verdict only;
        execution safety always re-checks concrete addresses at runtime.
        """
        by_var: dict[str, list[MemoryRef]] = {}
        for node in self.nodes:
            for ref in node.loads + ([node.store] if node.store else []):
                by_var.setdefault(ref.var.name, []).append(ref)
        for refs in by_var.values():
            for i, a in enumerate(refs):
                for b in refs[i + 1 :]:
                    if a.key == b.key or not (a.is_store or b.is_store):
                        continue
                    wr, rd = (a, b) if a.is_store else (b, a)
                    ca = _affine_coeffs(wr.index, self.ind)
                    cb = _affine_coeffs(rd.index, self.ind)
                    dist: int | None = None
                    if ca is not None and cb is not None and ca[0] == cb[0]:
                        if ca[0] == 0:
                            if ca[1] != cb[1]:
                                continue  # distinct literal cells: no alias
                            dist = 0
                        elif (ca[1] - cb[1]) % ca[0] == 0:
                            dist = abs((ca[1] - cb[1]) // ca[0])
                        else:
                            continue  # interleaved progressions: disjoint
                    if dist == 0:
                        continue  # same element, same iteration: key-level
                    dep = "WAW" if rd.is_store else "RAW"
                    on = f"{wr.var.name}[?]"
                    self.edges.append(
                        DepEdge(
                            wr.stmt_idx, rd.stmt_idx, dep, True, dist, on
                        )
                    )

    # -- views -------------------------------------------------------------
    def raw_edges(self, carried: bool | None = None) -> list[DepEdge]:
        return [
            e
            for e in self.edges
            if e.dep == "RAW" and (carried is None or e.carried is carried)
        ]

    def describe(self) -> list[str]:
        return [e.describe() for e in self.edges]


class GroupScheduler:
    """Condenses a :class:`DependencyGraph` into ordered statement groups."""

    def __init__(self, graph: DependencyGraph) -> None:
        self.graph = graph

    def schedule(self) -> tuple[list[StmtGroup] | None, str | None]:
        """Topologically ordered groups, or ``(None, reason)`` when some
        group's mode cannot be executed exactly."""
        g = self.graph
        n = len(g.nodes)
        succ: dict[int, set[int]] = {}
        for e in g.raw_edges():
            succ.setdefault(e.src, set()).add(e.dst)
        groups: list[StmtGroup] = []
        for comp in reversed(_tarjan_sccs(n, succ)):
            groups.append(self._make_group(comp, succ))
        for grp in groups:
            reason = self._feasible(grp)
            if reason is not None:
                return None, reason
        return groups, None

    def _make_group(self, comp: list[int], succ: dict[int, set[int]]) -> StmtGroup:
        g = self.graph
        if len(comp) > 1:
            return StmtGroup(comp, "sequential")
        idx = comp[0]
        if idx not in succ.get(idx, ()):  # no self-recurrence
            return StmtGroup(comp, "vector")
        red = self._match_reduction(g.nodes[idx])
        if red is not None:
            return StmtGroup(comp, "reduction", red)
        return StmtGroup(comp, "sequential")

    def _match_reduction(self, node: StmtNode) -> ReductionInfo | None:
        """``x = x ⊕ term`` with the self-read as a *direct* operand and no
        other reference to ``x`` inside ``term``."""
        e = node.expr
        if not isinstance(e, ast.BinOp) or e.op not in REDUCTION_OPS:
            return None
        if node.target_reg is not None:
            name = node.target_reg
            is_self = (
                lambda sub: isinstance(sub, ast.Reg)
                and sub.name == name
                and node.reg_binds.get(name, ())[:1] == ("pre",)
            )
            refs_slot = lambda sub: _reads_reg(sub, name)  # noqa: E731
            kind, self_load = "reg", None
        else:
            store = node.store
            if store is None or store.key not in self.graph.slot_keys:
                return None
            name = store.var.name
            pair = (store.var.name, store.index)
            is_self = (
                lambda sub: isinstance(sub, ast.Load)
                and (sub.var.name, sub.index) == pair
            )
            refs_slot = lambda sub: _reads_key(sub, pair)  # noqa: E731
            kind = "mem"
            self_load = next(
                (ld for ld in node.loads if ld.key == store.key), None
            )
            if self_load is None or self_load.binding[:1] != ("pre",):
                return None
        if is_self(e.lhs) and not refs_slot(e.rhs):
            return ReductionInfo(e.op, e.rhs, kind, name, self_load)
        if e.op != "-" and is_self(e.rhs) and not refs_slot(e.lhs):
            return ReductionInfo(e.op, e.lhs, kind, name, self_load)
        return None

    def _feasible(self, grp: StmtGroup) -> str | None:
        """Vector-evaluated expressions must avoid libm ops (numpy sin/cos
        are not guaranteed bit-identical to the scalar math module); the
        sequential lane replays the interpreter's own operators, so it has
        no such restriction."""
        if grp.mode == "sequential":
            return None
        for idx in grp.stmts:
            node = self.graph.nodes[idx]
            exprs = [node.expr] if grp.mode == "vector" else []
            if grp.mode == "reduction" and grp.reduction is not None:
                exprs = [grp.reduction.term]
            exprs += [ld.index for ld in node.loads if ld.index is not None]
            if node.store is not None and node.store.index is not None:
                exprs.append(node.store.index)
            for e in exprs:
                if _has_libm(e):
                    return "libm_op"
        return None


def loop_verdict(
    graph: DependencyGraph, groups: list[StmtGroup] | None
) -> str:
    """Static DOALL / reduction / pipeline / sequential verdict.

    Recognized reduction recurrences do not block (they parallelize with a
    reduction clause); WAR/WAW edges never block (privatizable storage
    reuse).  Remaining carried RAW edges go through the shared
    :func:`carried_graph_verdict` rule.
    """
    reduction_stmts = {
        g.stmts[0] for g in groups or [] if g.mode == "reduction"
    }
    edges = [
        (e.src, e.dst, e.carried)
        for e in graph.raw_edges()
        if not (e.carried and e.src == e.dst and e.src in reduction_stmts)
    ]
    verdict = carried_graph_verdict(len(graph.nodes), edges)
    if verdict == "doall" and reduction_stmts:
        return "reduction"
    return verdict


# -- small expression walkers -------------------------------------------------


def _collect_regs(e: ast.Expr, out: set[str]) -> None:
    if isinstance(e, ast.Reg):
        out.add(e.name)
    elif isinstance(e, ast.BinOp):
        _collect_regs(e.lhs, out)
        _collect_regs(e.rhs, out)
    elif isinstance(e, ast.UnOp):
        _collect_regs(e.operand, out)
    elif isinstance(e, ast.Load) and e.index is not None:
        _collect_regs(e.index, out)


def _reads_reg(e: ast.Expr, name: str) -> bool:
    if isinstance(e, ast.Reg):
        return e.name == name
    if isinstance(e, ast.BinOp):
        return _reads_reg(e.lhs, name) or _reads_reg(e.rhs, name)
    if isinstance(e, ast.UnOp):
        return _reads_reg(e.operand, name)
    if isinstance(e, ast.Load) and e.index is not None:
        return _reads_reg(e.index, name)
    return False


def _reads_key(e: ast.Expr, pair: tuple) -> bool:
    if isinstance(e, ast.Load):
        if (e.var.name, e.index) == pair:
            return True
        return e.index is not None and _reads_key(e.index, pair)
    if isinstance(e, ast.BinOp):
        return _reads_key(e.lhs, pair) or _reads_key(e.rhs, pair)
    if isinstance(e, ast.UnOp):
        return _reads_key(e.operand, pair)
    return False


#: Unary operators with numpy lowerings proven bit-identical to the scalar
#: interpreter.  Anything else (``sin``/``cos``: libm vs. numpy ULP drift)
#: may only run in the sequential lane, which replays interpreter operators.
VECTOR_SAFE_UNOPS = frozenset({"-", "not", "int", "abs", "sqrt"})


def _has_libm(e: ast.Expr) -> bool:
    if isinstance(e, ast.UnOp):
        return e.op not in VECTOR_SAFE_UNOPS or _has_libm(e.operand)
    if isinstance(e, ast.BinOp):
        return _has_libm(e.lhs) or _has_libm(e.rhs)
    if isinstance(e, ast.Load) and e.index is not None:
        return _has_libm(e.index)
    return False


READ = READ  # re-export for graph consumers building MemoryRefs
WRITE = WRITE
