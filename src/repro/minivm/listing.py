"""Source listings for MiniVM programs.

The builder assigns every declaration and statement a source line; this
renderer reconstructs the listing those numbers refer to, so that profiler
output like ``3:75 NOM {RAW 4:58|iter}`` can be read next to actual code.
Used by ``ddprof listing`` and the workload documentation.
"""

from __future__ import annotations

from repro.minivm import astnodes as ast
from repro.minivm.program import Program


def _expr(e: ast.Expr) -> str:
    if isinstance(e, ast.Const):
        v = e.value
        return str(int(v)) if isinstance(v, float) and v.is_integer() else str(v)
    if isinstance(e, ast.Reg):
        return e.name
    if isinstance(e, ast.Load):
        if e.index is None:
            return e.var.name
        return f"{e.var.name}[{_expr(e.index)}]"
    if isinstance(e, ast.BinOp):
        if e.op in ("min", "max"):
            return f"{e.op}({_expr(e.lhs)}, {_expr(e.rhs)})"
        return f"({_expr(e.lhs)} {e.op} {_expr(e.rhs)})"
    if isinstance(e, ast.UnOp):
        if e.op == "-":
            return f"(-{_expr(e.operand)})"
        return f"{e.op}({_expr(e.operand)})"
    return repr(e)


def _target(var: ast.Variable, index: ast.Expr | None) -> str:
    return var.name if index is None else f"{var.name}[{_expr(index)}]"


class _Lines:
    def __init__(self) -> None:
        self.rows: list[tuple[int, int, str]] = []  # (line, order, text)
        self._order = 0

    def put(self, line: int, indent: int, text: str) -> None:
        self.rows.append((line, self._order, "    " * indent + text))
        self._order += 1

    def render(self) -> str:
        out = []
        for line, _, text in sorted(self.rows):
            out.append(f"{line:4d} | {text}")
        return "\n".join(out) + "\n"


def _stmt(s: ast.Stmt, lines: _Lines, indent: int) -> None:
    if isinstance(s, ast.SetReg):
        lines.put(s.line, indent, f"{s.reg.name} = {_expr(s.expr)}")
    elif isinstance(s, ast.Store):
        lines.put(s.line, indent, f"{_target(s.var, s.index)} = {_expr(s.expr)}")
    elif isinstance(s, ast.For):
        step = _expr(s.step)
        rng = f"range({_expr(s.start)}, {_expr(s.end)}"
        rng += f", {step})" if step != "1" else ")"
        lines.put(s.line, indent, f"for {s.reg.name} in {rng}:")
        for child in s.body:
            _stmt(child, lines, indent + 1)
        if s.end_line:
            lines.put(s.end_line, indent, "# end for")
    elif isinstance(s, ast.While):
        lines.put(s.line, indent, f"while {_expr(s.cond)}:")
        for child in s.body:
            _stmt(child, lines, indent + 1)
        if s.end_line:
            lines.put(s.end_line, indent, "# end while")
    elif isinstance(s, ast.If):
        lines.put(s.line, indent, f"if {_expr(s.cond)}:")
        for child in s.then_body:
            _stmt(child, lines, indent + 1)
        for k, child in enumerate(s.else_body):
            _stmt(child, lines, indent + 1)
    elif isinstance(s, ast.Call):
        args = ", ".join(_expr(a) for a in s.args)
        lines.put(s.line, indent, f"{s.func}({args})")
    elif isinstance(s, ast.Spawn):
        args = ", ".join(_expr(a) for a in s.args)
        lines.put(s.line, indent, f"spawn {s.func}({args})")
    elif isinstance(s, ast.JoinAll):
        lines.put(s.line, indent, "join_all()")
    elif isinstance(s, ast.LockAcq):
        lines.put(s.line, indent, f"lock({s.lock_id})")
    elif isinstance(s, ast.LockRel):
        lines.put(s.line, indent, f"unlock({s.lock_id})")
    elif isinstance(s, ast.BarrierWait):
        lines.put(s.line, indent, f"barrier({s.barrier_id}, parties={s.parties})")
    elif isinstance(s, ast.AllocStmt):
        lines.put(s.line, indent, f"{s.var.name} = malloc({_expr(s.size)})")
    elif isinstance(s, ast.FreeStmt):
        lines.put(s.line, indent, f"free({s.var.name})")
    else:  # pragma: no cover - exhaustive over the AST
        lines.put(getattr(s, "line", 0), indent, f"# <{type(s).__name__}>")


def source_listing(program: Program) -> str:
    """Render ``program`` as a numbered listing matching its trace lines."""
    lines = _Lines()
    decl_line = 1
    for var in program.globals_:
        if var.size == 1:
            lines.put(decl_line, 0, f"global {var.name}")
        else:
            lines.put(decl_line, 0, f"global {var.name}[{var.size}]")
        decl_line += 1
    for fn in program.functions.values():
        params = ", ".join(fn.params)
        lines.put(fn.def_line, 0, f"def {fn.name}({params}):")
        for var in fn.locals_:
            # locals do not consume builder lines; annotate under the def
            pass
        for s in fn.body:
            _stmt(s, lines, 1)
    return lines.render()


def listing_loc(program: Program) -> int:
    """Number of listing lines (the analog of a benchmark's LOC)."""
    return program.n_lines
