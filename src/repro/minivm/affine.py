"""Affine-loop fast path: the producer-side "tracing JIT" of the MiniVM.

The tree-walking interpreter costs ~10 Python-level calls per loop iteration
(register update, loop_iter marker, per-access address eval + emit + memory
touch), which makes trace *production* the serial bottleneck of the whole
pipeline.  This module removes that bottleneck for the loops that dominate
real traces: innermost counted loops whose bodies are **affine** —

* body statements are only ``SetReg`` and ``Store`` (no nested control flow,
  calls, spawns, locks, allocation),
* every load/store address is ``base + stride * i`` in the induction
  register (index expressions are degree-<=1 polynomials in ``i`` whose other
  subtrees are loop-invariant),
* value expressions use only numpy-expressible operators over loads,
  registers, and constants (``sin``/``cos`` are rejected: libm results are
  not guaranteed bit-identical to numpy's), and
* no loop-carried dependence: registers are never read before they are
  assigned in the same iteration, stored progressions are pairwise disjoint,
  and a load may overlap a store only when both walk the *same* progression
  with the load textually at-or-before the store (gather-before-scatter then
  reads pre-loop values, exactly like the interpreter would).

Classification is static and cached per loop AST node.  Execution is
two-phase so a bailout is always safe:

* **prepare** (pure): resolve bindings, strides and trip count, bounds-check
  every index, check aliasing, gather memory operands, and evaluate every
  body expression as whole-iteration-space numpy arrays.  Interval analysis
  rides along: any intermediate whose int64 bounds could overflow, or whose
  int->float conversion could lose bits (|v| >= 2**53), raises a
  :class:`Bailout` before anything was mutated.
* **commit**: scatter final memory values, finalize registers, and
  bulk-append the event rows — LOOP_ITER markers plus every access of every
  iteration, in exactly the interpreter's order — through
  ``TraceBuilder.append_rows``.

The contract (enforced by the differential-oracle tests) is *bit-for-bit*
trace equality with the interpreted path and value-identical memory, so any
loop the analysis cannot prove safe simply bails out to the interpreter.
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.minivm import astnodes as ast
from repro.minivm.memory import ELEM_SIZE, Memory
from repro.trace.events import LOOP_ITER, READ, WRITE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.minivm.program import Program
    from repro.obs.metrics import MetricsRegistry

#: Loops with fewer iterations than this run interpreted: numpy setup cost
#: is not amortized, and tiny loops dominate unit-test programs.
MIN_TRIP = 8

_INT63 = 1 << 63
_INT62 = 1 << 62
_EXACT_FLOAT = 1 << 53  # ints below this round-trip through float64

#: Unary operators with numpy equivalents proven bit-identical to the
#: interpreter's scalar semantics.  ``sin``/``cos`` are deliberately absent.
_ALLOWED_UNOPS = frozenset({"-", "not", "int", "abs", "sqrt"})


class Bailout(Exception):
    """Raised during the pure prepare phase; the loop runs interpreted."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# Vectorized values with interval bounds
# ---------------------------------------------------------------------------


class _VecVal:
    """A per-iteration value: numpy array or exact Python scalar, plus
    interval bounds and a uniform element kind ('i' int / 'f' float)."""

    __slots__ = ("val", "lo", "hi", "kind")

    def __init__(self, val: Any, lo: Any, hi: Any, kind: str) -> None:
        self.val = val
        self.lo = lo
        self.hi = hi
        self.kind = kind


def _is_scalar(v: Any) -> bool:
    return not isinstance(v, np.ndarray)


def _scalar_val(v: Any) -> _VecVal:
    t = type(v)
    if t is float:
        return _VecVal(v, v, v, "f")
    if t is int or t is bool:
        return _VecVal(v, v, v, "i")
    raise Bailout("value_type")


def _check_int_bounds(lo: int, hi: int) -> None:
    if lo < -_INT63 or hi >= _INT63:
        raise Bailout("overflow_risk")


def _check_exact(v: _VecVal) -> None:
    """An int operand about to mix with floats must convert losslessly."""
    if v.kind == "i" and max(abs(v.lo), abs(v.hi)) >= _EXACT_FLOAT:
        raise Bailout("precision_risk")


_NP_BINOPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "&": np.bitwise_and,
    "|": np.bitwise_or,
    "^": np.bitwise_xor,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}


def _vec_binop(op: str, a: _VecVal, b: _VecVal) -> _VecVal:
    if _is_scalar(a.val) and _is_scalar(b.val):
        # Scalar fold with the interpreter's own operator table: exact.
        return _scalar_val(ast._BINOPS[op](a.val, b.val))
    av, bv = a.val, b.val
    if op in ("+", "-", "*"):
        if a.kind == "f" or b.kind == "f":
            _check_exact(a)
            _check_exact(b)
            kind = "f"
        else:
            kind = "i"
        if op == "+":
            lo, hi = a.lo + b.lo, a.hi + b.hi
        elif op == "-":
            lo, hi = a.lo - b.hi, a.hi - b.lo
        else:
            corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
            lo, hi = min(corners), max(corners)
        if kind == "i":
            _check_int_bounds(lo, hi)
        return _VecVal(_NP_BINOPS[op](av, bv), lo, hi, kind)
    if op == "/":
        # The interpreter's guard returns float 0.0 on a zero divisor, so a
        # masked division reproduces it exactly; int operands must be small
        # enough that the implicit int->float conversion is lossless.
        _check_exact(a)
        _check_exact(b)
        if _is_scalar(bv):
            if bv == 0:
                return _scalar_val(0.0)
            v = np.true_divide(av, bv)
        else:
            mask = bv != 0
            if mask.all():
                v = np.true_divide(av, bv)
            else:
                v = np.where(mask, np.true_divide(av, np.where(mask, bv, 1)), 0.0)
        return _VecVal(v, -math.inf, math.inf, "f")
    if op in ("//", "%"):
        # Python's floored semantics match numpy only for ints; the guard
        # value (int 0) would also break per-element type uniformity on
        # float inputs.
        if a.kind != "i" or b.kind != "i":
            raise Bailout("float_intdiv")
        if op == "//":
            m = max(abs(a.lo), abs(a.hi))
            lo, hi = -m - 1, m
        else:
            m = max(abs(b.lo), abs(b.hi))
            lo, hi = -m, m
        fn = np.floor_divide if op == "//" else np.remainder
        if _is_scalar(bv):
            if bv == 0:
                return _scalar_val(0)
            v = fn(av, bv)
        else:
            mask = bv != 0
            if mask.all():
                v = fn(av, bv)
            else:
                v = np.where(mask, fn(av, np.where(mask, bv, 1)), 0)
        return _VecVal(v, lo, hi, "i")
    if op in ("<<", ">>"):
        if a.kind != "i" or b.kind != "i":
            raise Bailout("float_shift")
        if b.lo < 0:
            raise Bailout("negative_shift")
        m = max(abs(a.lo), abs(a.hi))
        if op == "<<":
            if b.hi > 62:
                raise Bailout("overflow_risk")
            lo, hi = -(m << b.hi), m << b.hi
            _check_int_bounds(lo, hi)
            return _VecVal(np.left_shift(av, bv), lo, hi, "i")
        return _VecVal(np.right_shift(av, bv), -m - 1, m, "i")
    if op in ("&", "|", "^"):
        if a.kind != "i" or b.kind != "i":
            raise Bailout("float_bitop")
        # int64 two's complement equals Python's infinite two's complement
        # only when both operands (and hence the result) are in range.
        _check_int_bounds(a.lo, a.hi)
        _check_int_bounds(b.lo, b.hi)
        if a.lo >= 0 and b.lo >= 0:
            if op == "&":
                lo, hi = 0, min(a.hi, b.hi)
            else:
                lo, hi = 0, (1 << int(max(a.hi, b.hi)).bit_length()) - 1
        else:
            lo, hi = -_INT63, _INT63 - 1
        return _VecVal(_NP_BINOPS[op](av, bv), lo, hi, "i")
    if op in ("<", "<=", ">", ">=", "==", "!="):
        if a.kind != b.kind:
            _check_exact(a)
            _check_exact(b)
        else:
            if a.kind == "i":
                _check_int_bounds(a.lo, a.hi)
                _check_int_bounds(b.lo, b.hi)
        v = _NP_BINOPS[op](av, bv).astype(np.int64)
        return _VecVal(v, 0, 1, "i")
    if op in ("min", "max"):
        if a.kind != b.kind:
            raise Bailout("mixed_minmax")
        if a.kind == "f":
            for x in (av, bv):
                if isinstance(x, np.ndarray):
                    if np.isnan(x).any():
                        raise Bailout("nan_minmax")
                elif x != x:
                    raise Bailout("nan_minmax")
        else:
            _check_int_bounds(a.lo, a.hi)
            _check_int_bounds(b.lo, b.hi)
        fn = np.minimum if op == "min" else np.maximum
        pick = min if op == "min" else max
        return _VecVal(fn(av, bv), pick(a.lo, b.lo), pick(a.hi, b.hi), a.kind)
    raise Bailout(f"binop:{op}")


def _vec_unop(op: str, a: _VecVal) -> _VecVal:
    if _is_scalar(a.val):
        return _scalar_val(ast._UNOPS[op](a.val))
    av = a.val
    if op == "-":
        lo, hi = -a.hi, -a.lo
        if a.kind == "i":
            _check_int_bounds(lo, hi)
        return _VecVal(np.negative(av), lo, hi, a.kind)
    if op == "not":
        return _VecVal(np.equal(av, 0).astype(np.int64), 0, 1, "i")
    if op == "abs":
        lo = 0 if a.lo <= 0 <= a.hi else min(abs(a.lo), abs(a.hi))
        hi = max(abs(a.lo), abs(a.hi))
        if a.kind == "i":
            _check_int_bounds(lo, hi)
        return _VecVal(np.abs(av), lo, hi, a.kind)
    if op == "int":
        if a.kind == "i":
            return a
        if not (math.isfinite(a.lo) and math.isfinite(a.hi)):
            raise Bailout("unbounded_trunc")
        lo, hi = math.trunc(a.lo), math.trunc(a.hi)
        if lo < -_INT62 or hi > _INT62:
            raise Bailout("overflow_risk")
        return _VecVal(np.trunc(av).astype(np.int64), lo, hi, "i")
    if op == "sqrt":
        # Interpreter guard: sqrt(a) if a >= 0 else 0.0.  int64->float64
        # conversion and IEEE sqrt are both identical to the scalar path.
        v = np.where(av >= 0, np.sqrt(np.where(av >= 0, av, 0)), 0.0)
        if a.hi != a.hi:  # NaN bound propagates
            hi = a.hi
        elif a.hi > 0:
            hi = math.sqrt(a.hi)
        else:
            hi = 0.0
        return _VecVal(v, 0.0, hi, "f")
    raise Bailout(f"unop:{op}")


# ---------------------------------------------------------------------------
# Static classification
# ---------------------------------------------------------------------------


class _Access:
    """One trace-event-emitting memory access per iteration (a slot)."""

    __slots__ = ("kind", "var", "index", "line", "stmt_idx")

    def __init__(
        self,
        kind: int,
        var: ast.Variable,
        index: ast.Expr | None,
        line: int,
        stmt_idx: int,
    ) -> None:
        self.kind = kind
        self.var = var
        self.index = index
        self.line = line
        self.stmt_idx = stmt_idx


class _StmtPlan:
    """A classified body statement: SetReg (target_reg) or Store (store)."""

    __slots__ = ("target_reg", "store", "expr", "loads")

    def __init__(
        self,
        target_reg: str | None,
        store: _Access | None,
        expr: ast.Expr,
        loads: list[_Access],
    ) -> None:
        self.target_reg = target_reg
        self.store = store
        self.expr = expr
        self.loads = loads


def _degree(e: ast.Expr, ind: str, body_regs: set[str]) -> int | None:
    """Polynomial degree of ``e`` in the induction register (0 or 1), or
    ``None`` where linearity cannot be proven statically."""
    if isinstance(e, ast.Const):
        return 0
    if isinstance(e, ast.Reg):
        if e.name == ind:
            return 1
        return None if e.name in body_regs else 0
    if isinstance(e, ast.Load):
        return None
    if isinstance(e, ast.BinOp):
        dl = _degree(e.lhs, ind, body_regs)
        dr = _degree(e.rhs, ind, body_regs)
        if dl is None or dr is None:
            return None
        if e.op in ("+", "-"):
            return max(dl, dr)
        if e.op == "*":
            return dl + dr if dl + dr <= 1 else None
        return 0 if dl == dr == 0 else None
    if isinstance(e, ast.UnOp):
        d = _degree(e.operand, ind, body_regs)
        if d is None:
            return None
        if e.op == "-":
            return d
        return 0 if d == 0 else None
    return None


def _contains_load(e: ast.Expr) -> bool:
    if isinstance(e, ast.Load):
        return True
    if isinstance(e, ast.BinOp):
        return _contains_load(e.lhs) or _contains_load(e.rhs)
    if isinstance(e, ast.UnOp):
        return _contains_load(e.operand)
    return False


def _scan_index(
    idx: ast.Expr | None, ind: str, body_regs: set[str]
) -> str | None:
    if idx is None:
        return None
    if _degree(idx, ind, body_regs) is None:
        return "indirect_index" if _contains_load(idx) else "nonaffine_index"
    return None


def _scan_value(
    e: ast.Expr,
    ind: str,
    body_regs: set[str],
    defined: set[str],
    loads: list[_Access],
    stmt_idx: int,
    line: int,
) -> str | None:
    """Depth-first value-expression check, recording loads in the exact
    traversal (= event emission) order of the interpreter."""
    if isinstance(e, ast.Const):
        return None if isinstance(e.value, (int, float)) else "const_type"
    if isinstance(e, ast.Reg):
        if e.name != ind and e.name in body_regs and e.name not in defined:
            return "carried_register"
        return None
    if isinstance(e, ast.Load):
        r = _scan_index(e.index, ind, body_regs)
        if r:
            return r
        loads.append(_Access(READ, e.var, e.index, line, stmt_idx))
        return None
    if isinstance(e, ast.BinOp):
        return _scan_value(
            e.lhs, ind, body_regs, defined, loads, stmt_idx, line
        ) or _scan_value(e.rhs, ind, body_regs, defined, loads, stmt_idx, line)
    if isinstance(e, ast.UnOp):
        if e.op not in _ALLOWED_UNOPS:
            return "libm_op"
        return _scan_value(e.operand, ind, body_regs, defined, loads, stmt_idx, line)
    return "expr_type"


def classify_loop(loop: ast.For) -> "tuple[AffineTemplate | None, str | None]":
    """Statically classify ``loop``; returns (template, None) on success or
    (None, reject_reason) when the loop can never take the fast path."""
    ind = loop.reg.name
    body_regs = {s.reg.name for s in loop.body if isinstance(s, ast.SetReg)}
    if ind in body_regs:
        return None, "induction_reassigned"
    defined: set[str] = set()
    stmts: list[_StmtPlan] = []
    accesses: list[_Access] = []
    for si, s in enumerate(loop.body):
        if isinstance(s, ast.SetReg):
            loads: list[_Access] = []
            reason = _scan_value(s.expr, ind, body_regs, defined, loads, si, s.line)
            if reason:
                return None, reason
            stmts.append(_StmtPlan(s.reg.name, None, s.expr, loads))
            accesses.extend(loads)
            defined.add(s.reg.name)
        elif isinstance(s, ast.Store):
            loads = []
            reason = _scan_value(s.expr, ind, body_regs, defined, loads, si, s.line)
            if reason:
                return None, reason
            reason = _scan_index(s.index, ind, body_regs)
            if reason:
                return None, reason
            w = _Access(WRITE, s.var, s.index, s.line, si)
            stmts.append(_StmtPlan(None, w, s.expr, loads))
            accesses.extend(loads)
            accesses.append(w)
        else:
            return None, f"stmt:{type(s).__name__.lower()}"
    return AffineTemplate(loop, ind, stmts, accesses), None


def program_has_spawn(program: "Program") -> bool:
    """Whether any function of ``program`` can spawn a thread (conservative:
    scans every function, reachable or not)."""

    def scan(body: list[ast.Stmt]) -> bool:
        for s in body:
            if isinstance(s, ast.Spawn):
                return True
            for attr in ("body", "then_body", "else_body"):
                sub = getattr(s, attr, None)
                if sub and scan(sub):
                    return True
        return False

    return any(scan(fn.body) for fn in program.functions.values())


# ---------------------------------------------------------------------------
# Runtime execution
# ---------------------------------------------------------------------------


class _Resolved:
    """Per-execution resolution of one access: concrete progression."""

    __slots__ = ("addr0", "astride", "gathered")

    def __init__(self, addr0: int, astride: int) -> None:
        self.addr0 = addr0
        self.astride = astride
        self.gathered: _VecVal | None = None

    def span(self, n_iters: int) -> tuple[int, int]:
        last = self.addr0 + self.astride * (n_iters - 1)
        return (min(self.addr0, last), max(self.addr0, last))


class _Plan:
    """Everything the pure prepare phase computed, ready to commit."""

    __slots__ = ("n_iters", "k", "start", "step", "res", "env", "store_vals")

    def __init__(self, n_iters, k, start, step, res, env, store_vals) -> None:
        self.n_iters = n_iters
        self.k = k
        self.start = start
        self.step = step
        self.res = res
        self.env = env
        self.store_vals = store_vals


def _gather(mem: Memory, r: _Resolved, n_iters: int) -> _VecVal:
    if r.astride == 0:
        v = mem.read(r.addr0)
        return _scalar_val(v)
    addrs = range(r.addr0, r.addr0 + r.astride * n_iters, r.astride)
    vals = mem.read_block(addrs)
    kinds = set(map(type, vals))
    if kinds == {int}:
        try:
            arr = np.array(vals, dtype=np.int64)
        except OverflowError:
            raise Bailout("overflow_risk") from None
        return _VecVal(arr, int(arr.min()), int(arr.max()), "i")
    if kinds == {float}:
        arr = np.array(vals, dtype=np.float64)
        return _VecVal(arr, float(arr.min()), float(arr.max()), "f")
    raise Bailout("mixed_types")


def _pure_eval(expr: ast.Expr, regs: dict) -> Any:
    """Event-free scalar evaluation (index expressions are load-free)."""
    if isinstance(expr, ast.Const):
        return expr.value
    if isinstance(expr, ast.Reg):
        return regs[expr.name]
    if isinstance(expr, ast.BinOp):
        return expr.apply(_pure_eval(expr.lhs, regs), _pure_eval(expr.rhs, regs))
    if isinstance(expr, ast.UnOp):
        return expr.apply(_pure_eval(expr.operand, regs))
    raise Bailout("index_expr")


class AffineTemplate:
    """A compiled affine loop: executes the whole iteration space at once."""

    __slots__ = ("loop", "ind", "stmts", "accesses")

    def __init__(
        self,
        loop: ast.For,
        ind: str,
        stmts: list[_StmtPlan],
        accesses: list[_Access],
    ) -> None:
        self.loop = loop
        self.ind = ind
        self.stmts = stmts
        self.accesses = accesses

    @property
    def events_per_iteration(self) -> int:
        return 1 + len(self.accesses)  # LOOP_ITER + every access

    # -- phase A: pure -----------------------------------------------------
    def _prepare(self, interp, act, start: int, end: int, step: int) -> _Plan:
        for v in (start, end, step):
            if not isinstance(v, int):
                raise Bailout("nonint_bounds")
        if step > 0:
            n_iters = (end - start + step - 1) // step if end > start else 0
        else:
            n_iters = (start - end - step - 1) // (-step) if start > end else 0
        if n_iters < MIN_TRIP:
            raise Bailout("short_trip")
        last = start + step * (n_iters - 1)
        if max(abs(start), abs(last)) >= _INT62:
            raise Bailout("overflow_risk")
        k = np.arange(n_iters, dtype=np.int64)
        ind_val = _VecVal(start + step * k, min(start, last), max(start, last), "i")

        # Resolve every access to a concrete (addr0, stride) progression and
        # bounds-check the whole iteration space.
        regs0 = dict(act.regs)
        regs0[self.ind] = start
        regs1 = dict(act.regs)
        regs1[self.ind] = start + step
        res: dict[int, _Resolved] = {}
        for acc in self.accesses:
            base, size = interp._binding(act, acc.var)
            if acc.index is None:
                e0 = stride = 0
            else:
                e0 = _pure_eval(acc.index, regs0)
                e1 = _pure_eval(acc.index, regs1)
                if not isinstance(e0, int) or not isinstance(e1, int):
                    raise Bailout("nonint_index")
                stride = e1 - e0
                e_last = e0 + stride * (n_iters - 1)
                if not (0 <= e0 < size and 0 <= e_last < size):
                    raise Bailout("oob_index")
            res[id(acc)] = _Resolved(base + ELEM_SIZE * e0, ELEM_SIZE * stride)

        # Dependence checks: stores pairwise disjoint; a load may overlap a
        # store only on the identical moving progression, gather-first.
        writes = [a for a in self.accesses if a.kind == WRITE]
        reads = [a for a in self.accesses if a.kind == READ]
        spans = {i: r.span(n_iters) for i, r in res.items()}

        def overlaps(a: _Access, b: _Access) -> bool:
            (alo, ahi), (blo, bhi) = spans[id(a)], spans[id(b)]
            return alo <= bhi and blo <= ahi

        for i, w1 in enumerate(writes):
            for w2 in writes[i + 1 :]:
                if overlaps(w1, w2):
                    raise Bailout("store_overlap")
        for rd in reads:
            rr = res[id(rd)]
            for w in writes:
                if not overlaps(rd, w):
                    continue
                rw = res[id(w)]
                same = (
                    rr.addr0 == rw.addr0
                    and rr.astride == rw.astride
                    and rr.astride != 0
                )
                if not (same and rd.stmt_idx <= w.stmt_idx):
                    raise Bailout("loop_carried_alias")

        # Vector-evaluate the body in statement order (gathers read pre-loop
        # memory, which the alias checks above proved is what the
        # interpreter's per-iteration reads would observe).
        env: dict[str, _VecVal] = {}
        store_vals: list[_VecVal | None] = [None] * len(self.stmts)
        for si, sp in enumerate(self.stmts):
            load_iter = iter(sp.loads)
            val = self._veval(sp.expr, interp, act, env, ind_val, res, load_iter)
            if sp.target_reg is not None:
                env[sp.target_reg] = val
            else:
                store_vals[si] = val
        return _Plan(n_iters, k, start, step, res, env, store_vals)

    def _veval(
        self,
        e: ast.Expr,
        interp,
        act,
        env: dict[str, _VecVal],
        ind_val: _VecVal,
        res: dict[int, _Resolved],
        load_iter: Iterator[_Access],
    ) -> _VecVal:
        if isinstance(e, ast.Const):
            return _scalar_val(e.value)
        if isinstance(e, ast.Reg):
            if e.name == self.ind:
                return ind_val
            v = env.get(e.name)
            if v is not None:
                return v
            # Loop-invariant register: an unset one bails so the interpreter
            # can raise its own error at the right event position.
            return _scalar_val(act.regs[e.name])
        if isinstance(e, ast.Load):
            acc = next(load_iter)
            r = res[id(acc)]
            if r.gathered is None:
                r.gathered = _gather(interp.mem, r, len(ind_val.val))
            return r.gathered
        if isinstance(e, ast.BinOp):
            lhs = self._veval(e.lhs, interp, act, env, ind_val, res, load_iter)
            rhs = self._veval(e.rhs, interp, act, env, ind_val, res, load_iter)
            return _vec_binop(e.op, lhs, rhs)
        if isinstance(e, ast.UnOp):
            return _vec_unop(
                e.op, self._veval(e.operand, interp, act, env, ind_val, res, load_iter)
            )
        raise Bailout("expr_type")

    # -- phase B: commit ---------------------------------------------------
    def _commit(self, interp, act, tid: int, site: int, plan: _Plan) -> None:
        mem = interp.mem
        n_iters, k = plan.n_iters, plan.k

        # Scatter stores (progressions are pairwise disjoint; a stride-0
        # store keeps only its last value, like the interpreter would).
        for sp, val in zip(self.stmts, plan.store_vals):
            if sp.store is None:
                continue
            r = plan.res[id(sp.store)]
            v = val.val
            if r.astride == 0:
                mem.write(r.addr0, v if _is_scalar(v) else v[-1].item())
            else:
                addrs = range(r.addr0, r.addr0 + r.astride * n_iters, r.astride)
                if _is_scalar(v):
                    mem.write_block(addrs, itertools.repeat(v, n_iters))
                else:
                    mem.write_block(addrs, v.tolist())

        # Registers end exactly as after the last interpreted iteration.
        act.regs[self.ind] = plan.start + plan.step * (n_iters - 1)
        for name, val in plan.env.items():
            v = val.val
            act.regs[name] = v if _is_scalar(v) else v[-1].item()

        # Synthesize the event block: iteration-major tiling of the per-
        # iteration slot pattern [LOOP_ITER, access, access, ...].  Variable
        # names intern in slot order = the interpreter's first-iteration
        # emission order, keeping the intern tables bit-identical too.
        n_slots = self.events_per_iteration
        kind_pat = np.empty(n_slots, dtype=np.uint8)
        loc_pat = np.empty(n_slots, dtype=np.int32)
        var_pat = np.empty(n_slots, dtype=np.int32)
        addr = np.empty((n_iters, n_slots), dtype=np.int64)
        aux = np.zeros((n_iters, n_slots), dtype=np.int64)
        kind_pat[0] = LOOP_ITER
        loc_pat[0] = site
        var_pat[0] = -1
        addr[:, 0] = site
        aux[:, 0] = k
        for j, acc in enumerate(self.accesses, start=1):
            r = plan.res[id(acc)]
            kind_pat[j] = acc.kind
            loc_pat[j] = interp.loc(acc.line)
            var_pat[j] = interp._var_id(acc.var.name)
            addr[:, j] = r.addr0 + r.astride * k
        interp.gate.emit_block(
            tid,
            site,
            n_iters,
            kind=np.tile(kind_pat, n_iters),
            loc=np.tile(loc_pat, n_iters),
            addr=addr.reshape(-1),
            aux=aux.reshape(-1),
            var=np.tile(var_pat, n_iters),
        )

    def execute(
        self,
        interp,
        act,
        tid: int,
        start: Any,
        end: Any,
        step: Any,
        site: int,
        stats: "FastPathStats",
    ) -> bool:
        """Try to run the whole loop vectorized; ``False`` means nothing was
        mutated and the caller must interpret the loop normally."""
        try:
            plan = self._prepare(interp, act, start, end, step)
        except Bailout as b:
            stats.bailout(b.reason)
            return False
        except Exception as exc:  # interpreter reproduces the error in place
            stats.bailout(f"error:{type(exc).__name__}")
            return False
        self._commit(interp, act, tid, site, plan)
        stats.hit(plan.n_iters, plan.n_iters * self.events_per_iteration)
        return True


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


class FastPathStats:
    """Producer-side fast-path accounting for one interpreter instance."""

    __slots__ = (
        "loops",
        "iterations",
        "events",
        "templates",
        "rejects",
        "bailouts",
    )

    def __init__(self) -> None:
        self.loops = 0  # loop executions taken by the fast path
        self.iterations = 0
        self.events = 0  # trace rows synthesized in bulk
        self.templates = 0  # loops that classified as affine
        self.rejects: dict[str, int] = {}  # static, once per loop site
        self.bailouts: dict[str, int] = {}  # dynamic, once per execution

    def hit(self, n_iters: int, n_rows: int) -> None:
        self.loops += 1
        self.iterations += n_iters
        self.events += n_rows

    def compiled(self) -> None:
        self.templates += 1

    def reject(self, reason: str) -> None:
        self.rejects[reason] = self.rejects.get(reason, 0) + 1

    def bailout(self, reason: str) -> None:
        self.bailouts[reason] = self.bailouts.get(reason, 0) + 1

    def publish(self, registry: "MetricsRegistry", total_events: int) -> None:
        """Fold into ``producer.*`` counters (RunReport / ddprof stats)."""
        c = registry.counter
        c("producer.events_fastpath").inc(self.events)
        c("producer.events_interpreted").inc(max(0, total_events - self.events))
        c("producer.fastpath_loops").inc(self.loops)
        c("producer.fastpath_iterations").inc(self.iterations)
        c("producer.templates_compiled").inc(self.templates)
        for reason, n in sorted(self.rejects.items()):
            c("producer.template_rejects", reason=reason).inc(n)
        for reason, n in sorted(self.bailouts.items()):
            c("producer.fastpath_bailouts", reason=reason).inc(n)
