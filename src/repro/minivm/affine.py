"""Affine-loop fast path: the producer-side "tracing JIT" of the MiniVM.

The tree-walking interpreter costs ~10 Python-level calls per loop iteration
(register update, loop_iter marker, per-access address eval + emit + memory
touch), which makes trace *production* the serial bottleneck of the whole
pipeline.  This module removes that bottleneck for innermost counted loops
whose bodies are ``SetReg``/``Store`` statements over numpy-expressible
expressions.

Classification builds a per-loop dependence graph
(:mod:`repro.minivm.depgraph`): statements are nodes, every traced access is
a symbolic :class:`~repro.minivm.depgraph.MemoryRef` (loop-invariant *slot*,
affine ``base + stride*i``, or vector-evaluated *dynamic* index), and
RAW/WAR/WAW edges carry dependence distances.  The scheduler condenses the
value-flow subgraph into SCCs and executes each group whole-iteration-space
in dependence order:

* **vector** groups evaluate as numpy arrays with interval bounds riding
  along (overflow / precision risks bail out),
* **reduction** groups (``x = x ⊕ term``, ⊕ in ``+ - * min max``) lower to
  ``ufunc.accumulate`` — a sequential left fold, bit-identical to the
  interpreter's own evaluation order,
* **sequential** groups (any other recurrence: LCG chains, stencils,
  histogram updates) replay just the cyclic statements through an exact
  Python-scalar lane using the interpreter's own operator tables, while
  everything downstream still vectorizes.

Execution is two-phase so a bailout is always safe:

* **prepare** (pure): resolve bindings, strides and trip count, bounds-check
  every index, evaluate all groups, then alias-check every pair of
  progressions that the graph could not relate statically.  Nothing is
  mutated; any :class:`Bailout` simply falls back to the interpreter.
* **commit**: scatter final memory values, finalize registers, and
  bulk-append the event rows — LOOP_ITER markers plus every access of every
  iteration, in exactly the interpreter's order.

The contract (enforced by the differential-oracle tests) is *bit-for-bit*
trace equality with the interpreted path and value-identical memory, so any
loop the analysis cannot prove safe simply bails out to the interpreter.
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.minivm import astnodes as ast
from repro.minivm.depgraph import (
    AFFINE,
    DYNAMIC,
    SLOT,
    DependencyGraph,
    GroupScheduler,
    MemoryRef,
    REDUCTION_OPS,
    StmtGroup,
    StmtNode,
    loop_verdict,
)
from repro.minivm.memory import ELEM_SIZE, Memory
from repro.trace.events import LOOP_ITER, READ, WRITE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.minivm.program import Program
    from repro.obs.metrics import MetricsRegistry

#: Loops with fewer iterations than this run interpreted: numpy setup cost
#: is not amortized, and tiny loops dominate unit-test programs.
MIN_TRIP = 8

_INT63 = 1 << 63
_INT62 = 1 << 62
_EXACT_FLOAT = 1 << 53  # ints below this round-trip through float64

#: Unary operators with numpy equivalents proven bit-identical to the
#: interpreter's scalar semantics.  ``sin``/``cos`` are deliberately absent
#: (vector groups reject them; the sequential lane replays libm itself).
_ALLOWED_UNOPS = frozenset({"-", "not", "int", "abs", "sqrt"})


class Bailout(Exception):
    """Raised during the pure prepare phase; the loop runs interpreted."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# Vectorized values with interval bounds
# ---------------------------------------------------------------------------


class _VecVal:
    """A per-iteration value: numpy array or exact Python scalar, plus
    interval bounds and a uniform element kind ('i' int / 'f' float)."""

    __slots__ = ("val", "lo", "hi", "kind")

    def __init__(self, val: Any, lo: Any, hi: Any, kind: str) -> None:
        self.val = val
        self.lo = lo
        self.hi = hi
        self.kind = kind


class _SeqVal:
    """Per-iteration values from the sequential lane: exact Python scalars
    (kept raw so per-element types — int vs float — survive the round trip
    to memory and registers)."""

    __slots__ = ("vals",)

    def __init__(self, vals: list) -> None:
        self.vals = vals


def _is_scalar(v: Any) -> bool:
    return not isinstance(v, np.ndarray)


def _scalar_val(v: Any) -> _VecVal:
    t = type(v)
    if t is float:
        return _VecVal(v, v, v, "f")
    if t is int or t is bool:
        return _VecVal(v, v, v, "i")
    raise Bailout("value_type")


def _check_int_bounds(lo: int, hi: int) -> None:
    if lo < -_INT63 or hi >= _INT63:
        raise Bailout("overflow_risk")


def _check_exact(v: _VecVal) -> None:
    """An int operand about to mix with floats must convert losslessly."""
    if v.kind == "i" and max(abs(v.lo), abs(v.hi)) >= _EXACT_FLOAT:
        raise Bailout("precision_risk")


_NP_BINOPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "&": np.bitwise_and,
    "|": np.bitwise_or,
    "^": np.bitwise_xor,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}


def _vec_binop(op: str, a: _VecVal, b: _VecVal) -> _VecVal:
    if _is_scalar(a.val) and _is_scalar(b.val):
        # Scalar fold with the interpreter's own operator table: exact.
        return _scalar_val(ast._BINOPS[op](a.val, b.val))
    av, bv = a.val, b.val
    if op in ("+", "-", "*"):
        if a.kind == "f" or b.kind == "f":
            _check_exact(a)
            _check_exact(b)
            kind = "f"
        else:
            kind = "i"
        if op == "+":
            lo, hi = a.lo + b.lo, a.hi + b.hi
        elif op == "-":
            lo, hi = a.lo - b.hi, a.hi - b.lo
        else:
            corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
            lo, hi = min(corners), max(corners)
        if kind == "i":
            _check_int_bounds(lo, hi)
        return _VecVal(_NP_BINOPS[op](av, bv), lo, hi, kind)
    if op == "/":
        # The interpreter's guard returns float 0.0 on a zero divisor, so a
        # masked division reproduces it exactly; int operands must be small
        # enough that the implicit int->float conversion is lossless.
        _check_exact(a)
        _check_exact(b)
        if _is_scalar(bv):
            if bv == 0:
                return _scalar_val(0.0)
            v = np.true_divide(av, bv)
        else:
            mask = bv != 0
            if mask.all():
                v = np.true_divide(av, bv)
            else:
                v = np.where(mask, np.true_divide(av, np.where(mask, bv, 1)), 0.0)
        return _VecVal(v, -math.inf, math.inf, "f")
    if op in ("//", "%"):
        # Python's floored semantics match numpy only for ints; the guard
        # value (int 0) would also break per-element type uniformity on
        # float inputs.
        if a.kind != "i" or b.kind != "i":
            raise Bailout("float_intdiv")
        if op == "//":
            m = max(abs(a.lo), abs(a.hi))
            lo, hi = -m - 1, m
        else:
            m = max(abs(b.lo), abs(b.hi))
            lo, hi = -m, m
        fn = np.floor_divide if op == "//" else np.remainder
        if _is_scalar(bv):
            if bv == 0:
                return _scalar_val(0)
            v = fn(av, bv)
        else:
            mask = bv != 0
            if mask.all():
                v = fn(av, bv)
            else:
                v = np.where(mask, fn(av, np.where(mask, bv, 1)), 0)
        return _VecVal(v, lo, hi, "i")
    if op in ("<<", ">>"):
        if a.kind != "i" or b.kind != "i":
            raise Bailout("float_shift")
        if b.lo < 0:
            raise Bailout("negative_shift")
        m = max(abs(a.lo), abs(a.hi))
        if op == "<<":
            if b.hi > 62:
                raise Bailout("overflow_risk")
            lo, hi = -(m << b.hi), m << b.hi
            _check_int_bounds(lo, hi)
            return _VecVal(np.left_shift(av, bv), lo, hi, "i")
        return _VecVal(np.right_shift(av, bv), -m - 1, m, "i")
    if op in ("&", "|", "^"):
        if a.kind != "i" or b.kind != "i":
            raise Bailout("float_bitop")
        # int64 two's complement equals Python's infinite two's complement
        # only when both operands (and hence the result) are in range.
        _check_int_bounds(a.lo, a.hi)
        _check_int_bounds(b.lo, b.hi)
        if a.lo >= 0 and b.lo >= 0:
            if op == "&":
                lo, hi = 0, min(a.hi, b.hi)
            else:
                lo, hi = 0, (1 << int(max(a.hi, b.hi)).bit_length()) - 1
        else:
            lo, hi = -_INT63, _INT63 - 1
        return _VecVal(_NP_BINOPS[op](av, bv), lo, hi, "i")
    if op in ("<", "<=", ">", ">=", "==", "!="):
        if a.kind != b.kind:
            _check_exact(a)
            _check_exact(b)
        else:
            if a.kind == "i":
                _check_int_bounds(a.lo, a.hi)
                _check_int_bounds(b.lo, b.hi)
        v = _NP_BINOPS[op](av, bv).astype(np.int64)
        return _VecVal(v, 0, 1, "i")
    if op in ("min", "max"):
        if a.kind != b.kind:
            raise Bailout("mixed_minmax")
        if a.kind == "f":
            for x in (av, bv):
                if isinstance(x, np.ndarray):
                    if np.isnan(x).any():
                        raise Bailout("nan_minmax")
                elif x != x:
                    raise Bailout("nan_minmax")
        else:
            _check_int_bounds(a.lo, a.hi)
            _check_int_bounds(b.lo, b.hi)
        fn = np.minimum if op == "min" else np.maximum
        pick = min if op == "min" else max
        return _VecVal(fn(av, bv), pick(a.lo, b.lo), pick(a.hi, b.hi), a.kind)
    raise Bailout(f"binop:{op}")


def _vec_unop(op: str, a: _VecVal) -> _VecVal:
    if _is_scalar(a.val):
        return _scalar_val(ast._UNOPS[op](a.val))
    av = a.val
    if op == "-":
        lo, hi = -a.hi, -a.lo
        if a.kind == "i":
            _check_int_bounds(lo, hi)
        return _VecVal(np.negative(av), lo, hi, a.kind)
    if op == "not":
        return _VecVal(np.equal(av, 0).astype(np.int64), 0, 1, "i")
    if op == "abs":
        lo = 0 if a.lo <= 0 <= a.hi else min(abs(a.lo), abs(a.hi))
        hi = max(abs(a.lo), abs(a.hi))
        if a.kind == "i":
            _check_int_bounds(lo, hi)
        return _VecVal(np.abs(av), lo, hi, a.kind)
    if op == "int":
        if a.kind == "i":
            return a
        if not (math.isfinite(a.lo) and math.isfinite(a.hi)):
            raise Bailout("unbounded_trunc")
        lo, hi = math.trunc(a.lo), math.trunc(a.hi)
        if lo < -_INT62 or hi > _INT62:
            raise Bailout("overflow_risk")
        return _VecVal(np.trunc(av).astype(np.int64), lo, hi, "i")
    if op == "sqrt":
        # Interpreter guard: sqrt(a) if a >= 0 else 0.0.  int64->float64
        # conversion and IEEE sqrt are both identical to the scalar path.
        v = np.where(av >= 0, np.sqrt(np.where(av >= 0, av, 0)), 0.0)
        if a.hi != a.hi:  # NaN bound propagates
            hi = a.hi
        elif a.hi > 0:
            hi = math.sqrt(a.hi)
        else:
            hi = 0.0
        return _VecVal(v, 0.0, hi, "f")
    raise Bailout(f"unop:{op}")


# ---------------------------------------------------------------------------
# Static classification
# ---------------------------------------------------------------------------


def _degree(e: ast.Expr, ind: str, body_regs: set[str]) -> int | None:
    """Polynomial degree of ``e`` in the induction register (0 or 1), or
    ``None`` where linearity cannot be proven statically."""
    if isinstance(e, ast.Const):
        return 0
    if isinstance(e, ast.Reg):
        if e.name == ind:
            return 1
        return None if e.name in body_regs else 0
    if isinstance(e, ast.Load):
        return None
    if isinstance(e, ast.BinOp):
        dl = _degree(e.lhs, ind, body_regs)
        dr = _degree(e.rhs, ind, body_regs)
        if dl is None or dr is None:
            return None
        if e.op in ("+", "-"):
            return max(dl, dr)
        if e.op == "*":
            return dl + dr if dl + dr <= 1 else None
        return 0 if dl == dr == 0 else None
    if isinstance(e, ast.UnOp):
        d = _degree(e.operand, ind, body_regs)
        if d is None:
            return None
        if e.op == "-":
            return d
        return 0 if d == 0 else None
    return None


def _contains_load(e: ast.Expr) -> bool:
    if isinstance(e, ast.Load):
        return True
    if isinstance(e, ast.BinOp):
        return _contains_load(e.lhs) or _contains_load(e.rhs)
    if isinstance(e, ast.UnOp):
        return _contains_load(e.operand)
    return False


def _index_shape(
    idx: ast.Expr | None, ind: str, body_regs: set[str]
) -> tuple[str | None, str | None]:
    """Classify an index expression's address progression shape."""
    if idx is None:
        return SLOT, None
    d = _degree(idx, ind, body_regs)
    if d == 0:
        return SLOT, None
    if d == 1:
        return AFFINE, None
    if _contains_load(idx):
        return None, "indirect_index"
    return DYNAMIC, None


def _scan_value(
    e: ast.Expr,
    ind: str,
    body_regs: set[str],
    loads: list[MemoryRef],
    stmt_idx: int,
    line: int,
) -> str | None:
    """Depth-first value-expression check, recording loads in the exact
    traversal (= event emission) order of the interpreter."""
    if isinstance(e, ast.Const):
        return None if isinstance(e.value, (int, float)) else "const_type"
    if isinstance(e, ast.Reg):
        return None  # bindings (incl. loop-carried reads) resolve in the graph
    if isinstance(e, ast.Load):
        shape, reason = _index_shape(e.index, ind, body_regs)
        if reason:
            return reason
        loads.append(MemoryRef(READ, e.var, e.index, line, stmt_idx, shape))
        return None
    if isinstance(e, ast.BinOp):
        return _scan_value(
            e.lhs, ind, body_regs, loads, stmt_idx, line
        ) or _scan_value(e.rhs, ind, body_regs, loads, stmt_idx, line)
    if isinstance(e, ast.UnOp):
        if e.op not in ast._UNOPS:
            return "expr_type"
        return _scan_value(e.operand, ind, body_regs, loads, stmt_idx, line)
    return "expr_type"


def classify_loop(loop: ast.For) -> "tuple[AffineTemplate | None, str | None]":
    """Statically classify ``loop``; returns (template, None) on success or
    (None, reject_reason) when the loop can never take the fast path."""
    ind = loop.reg.name
    body_regs = {s.reg.name for s in loop.body if isinstance(s, ast.SetReg)}
    if ind in body_regs:
        return None, "induction_reassigned"
    nodes: list[StmtNode] = []
    accesses: list[MemoryRef] = []
    for si, s in enumerate(loop.body):
        if isinstance(s, ast.SetReg):
            loads: list[MemoryRef] = []
            reason = _scan_value(s.expr, ind, body_regs, loads, si, s.line)
            if reason:
                return None, reason
            node = StmtNode(si, s.line, s.reg.name, None, s.expr, loads)
        elif isinstance(s, ast.Store):
            loads = []
            reason = _scan_value(s.expr, ind, body_regs, loads, si, s.line)
            if reason:
                return None, reason
            shape, reason = _index_shape(s.index, ind, body_regs)
            if reason:
                return None, reason
            w = MemoryRef(WRITE, s.var, s.index, s.line, si, shape)
            node = StmtNode(si, s.line, None, w, s.expr, loads)
        else:
            return None, f"stmt:{type(s).__name__.lower()}"
        nodes.append(node)
        accesses.extend(node.loads)
        if node.store is not None:
            accesses.append(node.store)
    graph = DependencyGraph(ind, nodes)
    groups, reason = GroupScheduler(graph).schedule()
    if groups is None:
        return None, reason
    verdict = loop_verdict(graph, groups)
    return AffineTemplate(loop, ind, nodes, accesses, graph, groups, verdict), None


#: Structural-classification memo shared across interpreter instances:
#: (program structural hash, loop header line) -> (template, reject reason).
#: Templates hold no per-execution state, so reuse across runs (and across
#: structurally identical programs) is safe.
_CLASSIFY_MEMO: dict[tuple, "tuple[AffineTemplate | None, str | None]"] = {}
_CLASSIFY_MEMO_MAX = 1024


def classify_loop_cached(
    program: "Program", loop: ast.For
) -> "tuple[AffineTemplate | None, str | None, bool]":
    """Memoized :func:`classify_loop`; third element reports a memo hit."""
    key = (program.structural_hash, loop.line)
    hit = _CLASSIFY_MEMO.get(key)
    if hit is not None:
        return hit[0], hit[1], True
    tmpl, reason = classify_loop(loop)
    if len(_CLASSIFY_MEMO) >= _CLASSIFY_MEMO_MAX:
        _CLASSIFY_MEMO.clear()
    _CLASSIFY_MEMO[key] = (tmpl, reason)
    return tmpl, reason, False


def program_has_spawn(program: "Program") -> bool:
    """Whether any function of ``program`` can spawn a thread (conservative:
    scans every function, reachable or not)."""

    def scan(body: list[ast.Stmt]) -> bool:
        for s in body:
            if isinstance(s, ast.Spawn):
                return True
            for attr in ("body", "then_body", "else_body"):
                sub = getattr(s, attr, None)
                if sub and scan(sub):
                    return True
        return False

    return any(scan(fn.body) for fn in program.functions.values())


# ---------------------------------------------------------------------------
# Runtime execution
# ---------------------------------------------------------------------------


class _Resolved:
    """Per-execution resolution of one access: concrete progression."""

    __slots__ = ("shape", "base", "size", "addr0", "astride", "addrs", "gathered")

    def __init__(self, shape: str, base: int, size: int) -> None:
        self.shape = shape
        self.base = base
        self.size = size
        self.addr0 = base
        self.astride = 0
        self.addrs: np.ndarray | None = None  # dynamic shapes only
        self.gathered: _VecVal | None = None

    def span(self, n_iters: int) -> tuple[int, int]:
        last = self.addr0 + self.astride * (n_iters - 1)
        return (min(self.addr0, last), max(self.addr0, last))


class _Ctx:
    """Everything the pure prepare phase computes, ready to commit."""

    __slots__ = (
        "interp",
        "act",
        "n",
        "k",
        "start",
        "step",
        "ind_val",
        "res",
        "reg_post",
        "store_post",
        "dyn_addrs",
        "overlays",
        "_lists",
    )

    def __init__(self, interp, act, n, k, start, step, ind_val) -> None:
        self.interp = interp
        self.act = act
        self.n = n
        self.k = k
        self.start = start
        self.step = step
        self.ind_val = ind_val
        self.res: dict[int, _Resolved] = {}
        self.reg_post: dict[int, Any] = {}  # def stmt idx -> value
        self.store_post: dict[int, Any] = {}  # store stmt idx -> value
        self.dyn_addrs: dict[tuple, np.ndarray] = {}  # access key -> addrs
        self.overlays: list[dict[int, Any]] = []  # sequential-group writes
        self._lists: dict[int, list] = {}

    def as_list(self, v: Any) -> list:
        """Exact Python-scalar view of a per-iteration value (memoized)."""
        got = self._lists.get(id(v))
        if got is None:
            if isinstance(v, _SeqVal):
                got = v.vals
            elif _is_scalar(v.val):
                got = [v.val] * self.n
            else:
                got = v.val.tolist()
            self._lists[id(v)] = got
        return got


def _vals_to_vec(vals: list) -> _VecVal:
    """Exact numpy conversion of Python scalars; mixed or bool-typed element
    lists bail (numpy would silently unify the per-element types)."""
    kinds = set(map(type, vals))
    if kinds == {int}:
        try:
            arr = np.array(vals, dtype=np.int64)
        except OverflowError:
            raise Bailout("overflow_risk") from None
        return _VecVal(arr, int(arr.min()), int(arr.max()), "i")
    if kinds == {float}:
        arr = np.array(vals, dtype=np.float64)
        return _VecVal(arr, float(arr.min()), float(arr.max()), "f")
    raise Bailout("mixed_types")


def _as_vec(v: Any, n: int) -> _VecVal:
    return v if isinstance(v, _VecVal) else _vals_to_vec(v.vals)


def _pre_vec(post: Any, init: Any, n: int) -> _VecVal:
    """Previous-iteration view of a slot's per-iteration post-values:
    ``[init, post[0], ..., post[n-2]]``."""
    if type(init) is bool:
        raise Bailout("value_type")
    if isinstance(post, _SeqVal):
        return _vals_to_vec([init] + post.vals[:-1])
    v = post.val
    if _is_scalar(v):
        return _vals_to_vec([init] + [v] * (n - 1))
    if post.kind == "i":
        if type(init) is not int:
            raise Bailout("mixed_types")
        arr = np.empty(n, dtype=np.int64)
        try:
            arr[0] = init
        except OverflowError:
            raise Bailout("overflow_risk") from None
        arr[1:] = v[:-1]
        return _VecVal(arr, min(post.lo, init), max(post.hi, init), "i")
    if type(init) is not float:
        raise Bailout("mixed_types")
    arr = np.empty(n, dtype=np.float64)
    arr[0] = init
    arr[1:] = v[:-1]
    return _VecVal(arr, min(post.lo, init), max(post.hi, init), "f")


def _gather(mem: Memory, r: _Resolved, n_iters: int) -> _VecVal:
    if r.astride == 0:
        return _scalar_val(mem.read(r.addr0))
    addrs = range(r.addr0, r.addr0 + r.astride * n_iters, r.astride)
    return _vals_to_vec(mem.read_block(addrs))


def _raw_list(val: Any, n: int) -> list:
    if isinstance(val, _SeqVal):
        return val.vals
    v = val.val
    if _is_scalar(v):
        return [v] * n
    return v.tolist()


def _last_raw(val: Any) -> Any:
    if isinstance(val, _SeqVal):
        return val.vals[-1]
    v = val.val
    return v if _is_scalar(v) else v[-1].item()


def _accumulate(op: str, init: Any, term: _VecVal, n: int) -> _VecVal:
    """Exact reduction lowering: ``ufunc.accumulate`` is a sequential left
    fold, i.e. the interpreter's own evaluation order, so int and IEEE-float
    prefix values are bit-identical.  Int paths carry conservative prefix
    bounds (int64 wraps silently); float min/max refuses NaN (numpy and
    Python disagree on NaN propagation)."""
    if type(init) is bool:
        raise Bailout("value_type")
    init_f = isinstance(init, float)
    if op in ("min", "max"):
        if init_f != (term.kind == "f"):
            raise Bailout("mixed_minmax")
        if term.kind == "f":
            if init != init:
                raise Bailout("nan_minmax")
            tv = term.val
            if _is_scalar(tv):
                if tv != tv:
                    raise Bailout("nan_minmax")
            elif np.isnan(tv).any():
                raise Bailout("nan_minmax")
            dtype, kind = np.float64, "f"
        else:
            _check_int_bounds(term.lo, term.hi)
            _check_int_bounds(init, init)
            dtype, kind = np.int64, "i"
        lo, hi = min(init, term.lo), max(init, term.hi)
    else:  # + - *
        kind = "f" if (init_f or term.kind == "f") else "i"
        if kind == "f":
            _check_exact(term)
            if not init_f and abs(init) >= _EXACT_FLOAT:
                raise Bailout("precision_risk")
            dtype = np.float64
            lo, hi = -math.inf, math.inf
        else:
            dtype = np.int64
            if op == "+":
                lo = init + n * min(term.lo, 0)
                hi = init + n * max(term.hi, 0)
            elif op == "-":
                lo = init - n * max(term.hi, 0)
                hi = init - n * min(term.lo, 0)
            else:  # *
                maxt = max(abs(term.lo), abs(term.hi))
                if maxt <= 1:
                    m = max(abs(init), 1)
                else:
                    bits = abs(init).bit_length() + n * maxt.bit_length()
                    if bits > 62:
                        raise Bailout("overflow_risk")
                    m = 1 << bits
                lo, hi = -m, m
            _check_int_bounds(lo, hi)
    seq = np.empty(n + 1, dtype=dtype)
    seq[0] = init
    seq[1:] = term.val
    full = getattr(np, REDUCTION_OPS[op]).accumulate(seq)
    return _VecVal(full[1:], lo, hi, kind)


def _pure_eval(expr: ast.Expr, regs: dict) -> Any:
    """Event-free scalar evaluation (index expressions are load-free)."""
    if isinstance(expr, ast.Const):
        return expr.value
    if isinstance(expr, ast.Reg):
        return regs[expr.name]
    if isinstance(expr, ast.BinOp):
        return expr.apply(_pure_eval(expr.lhs, regs), _pure_eval(expr.rhs, regs))
    if isinstance(expr, ast.UnOp):
        return expr.apply(_pure_eval(expr.operand, regs))
    raise Bailout("index_expr")


class AffineTemplate:
    """A compiled loop: a dependence-scheduled sequence of statement groups
    executing the whole iteration space at once."""

    __slots__ = (
        "loop",
        "ind",
        "nodes",
        "accesses",
        "graph",
        "groups",
        "verdict",
        "_seq_stmts",
        "_seq_group_of",
    )

    def __init__(
        self,
        loop: ast.For,
        ind: str,
        nodes: list[StmtNode],
        accesses: list[MemoryRef],
        graph: DependencyGraph,
        groups: list[StmtGroup],
        verdict: str,
    ) -> None:
        self.loop = loop
        self.ind = ind
        self.nodes = nodes
        self.accesses = accesses
        self.graph = graph
        self.groups = groups
        self.verdict = verdict
        self._seq_stmts: set[int] = set()
        self._seq_group_of: dict[int, int] = {}
        for gi, grp in enumerate(groups):
            if grp.mode == "sequential":
                for si in grp.stmts:
                    self._seq_stmts.add(si)
                    self._seq_group_of[si] = gi

    @property
    def events_per_iteration(self) -> int:
        return 1 + len(self.accesses)  # LOOP_ITER + every access

    # -- phase A: pure -----------------------------------------------------
    def _prepare(self, interp, act, start: int, end: int, step: int) -> _Ctx:
        for v in (start, end, step):
            if not isinstance(v, int):
                raise Bailout("nonint_bounds")
        if step > 0:
            n_iters = (end - start + step - 1) // step if end > start else 0
        else:
            n_iters = (start - end - step - 1) // (-step) if start > end else 0
        if n_iters < MIN_TRIP:
            raise Bailout("short_trip")
        last = start + step * (n_iters - 1)
        if max(abs(start), abs(last)) >= _INT62:
            raise Bailout("overflow_risk")
        k = np.arange(n_iters, dtype=np.int64)
        ind_val = _VecVal(start + step * k, min(start, last), max(start, last), "i")
        ctx = _Ctx(interp, act, n_iters, k, start, step, ind_val)

        # Resolve every slot/affine access to a concrete (addr0, stride)
        # progression and bounds-check the whole iteration space; dynamic
        # shapes resolve later, during group evaluation.
        regs0 = dict(act.regs)
        regs0[self.ind] = start
        regs1 = dict(act.regs)
        regs1[self.ind] = start + step
        for acc in self.accesses:
            base, size = interp._binding(act, acc.var)
            r = _Resolved(acc.shape, base, size)
            if acc.shape == SLOT and acc.index is not None:
                e0 = _pure_eval(acc.index, regs0)
                if not isinstance(e0, int):
                    raise Bailout("nonint_index")
                if not 0 <= e0 < size:
                    raise Bailout("oob_index")
                r.addr0 = base + ELEM_SIZE * e0
            elif acc.shape == AFFINE:
                e0 = _pure_eval(acc.index, regs0)
                e1 = _pure_eval(acc.index, regs1)
                if not isinstance(e0, int) or not isinstance(e1, int):
                    raise Bailout("nonint_index")
                stride = e1 - e0
                if stride == 0:
                    # A statically-moving progression that degenerates at
                    # runtime would invalidate the slot/forwarding model.
                    raise Bailout("degenerate_stride")
                e_last = e0 + stride * (n_iters - 1)
                if not (0 <= e0 < size and 0 <= e_last < size):
                    raise Bailout("oob_index")
                r.addr0 = base + ELEM_SIZE * e0
                r.astride = ELEM_SIZE * stride
            ctx.res[id(acc)] = r

        # Evaluate statement groups in dependence order.
        for grp in self.groups:
            if grp.mode == "vector":
                self._eval_vector_stmt(self.nodes[grp.stmts[0]], ctx)
            elif grp.mode == "reduction":
                self._eval_reduction(grp, ctx)
            else:
                self._eval_sequential(grp, ctx)

        # Forward-bound dynamic loads share their store's progression.
        for acc in self.accesses:
            r = ctx.res[id(acc)]
            if r.shape == DYNAMIC and r.addrs is None:
                r.addrs = ctx.dyn_addrs[acc.key]

        self._alias_checks(ctx)
        return ctx

    # -- vector groups -----------------------------------------------------
    def _eval_vector_stmt(self, node: StmtNode, ctx: _Ctx) -> None:
        load_vals: dict[tuple, _VecVal] = {}
        for ld in node.loads:
            pair = (ld.var.name, ld.index)
            if pair not in load_vals:
                load_vals[pair] = self._load_value(ld, ctx, node, load_vals)
        val = self._veval(node.expr, ctx, node, load_vals)
        if node.target_reg is not None:
            ctx.reg_post[node.idx] = val
        else:
            if node.store.shape == DYNAMIC:
                self._resolve_dynamic(node.store, ctx, node, load_vals)
            ctx.store_post[node.idx] = val

    def _resolve_dynamic(
        self, ref: MemoryRef, ctx: _Ctx, node: StmtNode, load_vals: dict
    ) -> np.ndarray:
        r = ctx.res[id(ref)]
        if r.addrs is not None:
            return r.addrs
        cached = ctx.dyn_addrs.get(ref.key)
        if cached is not None:
            r.addrs = cached
            return cached
        iv = self._veval(ref.index, ctx, node, load_vals)
        if iv.kind != "i":
            raise Bailout("nonint_index")
        v = iv.val
        if _is_scalar(v):
            idx = int(v)
            if not 0 <= idx < r.size:
                raise Bailout("oob_index")
            addrs = np.full(ctx.n, r.base + ELEM_SIZE * idx, dtype=np.int64)
        else:
            if iv.lo < 0 or iv.hi >= r.size:
                if (v < 0).any() or (v >= r.size).any():
                    raise Bailout("oob_index")
            addrs = r.base + ELEM_SIZE * v.astype(np.int64)
        r.addrs = addrs
        ctx.dyn_addrs[ref.key] = addrs
        return addrs

    def _load_value(
        self, ld: MemoryRef, ctx: _Ctx, node: StmtNode, load_vals: dict
    ) -> _VecVal:
        b = ld.binding
        if b[0] == "fwd":
            return _as_vec(ctx.store_post[b[1]], ctx.n)
        if b[0] == "pre":
            r = ctx.res[id(ld)]
            init = ctx.interp.mem.read(r.addr0)
            return _pre_vec(ctx.store_post[b[1]], init, ctx.n)
        r = ctx.res[id(ld)]
        if r.shape == DYNAMIC:
            addrs = self._resolve_dynamic(ld, ctx, node, load_vals)
            if self.graph.mem_stores.get(ld.key):
                # Read-before-write through a revisited address would observe
                # a prior iteration's store; the gather reads pre-loop memory.
                if np.unique(addrs).size != ctx.n:
                    raise Bailout("dup_index")
            return _vals_to_vec(ctx.interp.mem.read_block(addrs.tolist()))
        if r.gathered is None:
            r.gathered = _gather(ctx.interp.mem, r, ctx.n)
        return r.gathered

    def _veval(
        self, e: ast.Expr, ctx: _Ctx, node: StmtNode, load_vals: dict
    ) -> _VecVal:
        if isinstance(e, ast.Const):
            return _scalar_val(e.value)
        if isinstance(e, ast.Reg):
            if e.name == self.ind:
                return ctx.ind_val
            b = node.reg_binds.get(e.name)
            if b is None or b[0] == "inv":
                # Loop-invariant register: an unset one bails so the
                # interpreter can raise its error at the right position.
                return _scalar_val(ctx.act.regs[e.name])
            if b[0] == "post":
                return _as_vec(ctx.reg_post[b[1]], ctx.n)
            return _pre_vec(ctx.reg_post[b[1]], ctx.act.regs[e.name], ctx.n)
        if isinstance(e, ast.Load):
            return load_vals[(e.var.name, e.index)]
        if isinstance(e, ast.BinOp):
            lhs = self._veval(e.lhs, ctx, node, load_vals)
            rhs = self._veval(e.rhs, ctx, node, load_vals)
            return _vec_binop(e.op, lhs, rhs)
        if isinstance(e, ast.UnOp):
            return _vec_unop(e.op, self._veval(e.operand, ctx, node, load_vals))
        raise Bailout("expr_type")

    # -- reduction groups --------------------------------------------------
    def _eval_reduction(self, grp: StmtGroup, ctx: _Ctx) -> None:
        idx = grp.stmts[0]
        node = self.nodes[idx]
        red = grp.reduction
        if red.slot_kind == "reg":
            init = ctx.act.regs[red.slot_name]
            skip = None
        else:
            r = ctx.res[id(red.self_load)]
            init = ctx.interp.mem.read(r.addr0)
            skip = (red.self_load.var.name, red.self_load.index)
        load_vals: dict[tuple, _VecVal] = {}
        for ld in node.loads:
            pair = (ld.var.name, ld.index)
            if pair == skip or pair in load_vals:
                continue
            load_vals[pair] = self._load_value(ld, ctx, node, load_vals)
        term = self._veval(red.term, ctx, node, load_vals)
        post = _accumulate(red.op, init, term, ctx.n)
        if red.slot_kind == "reg":
            ctx.reg_post[idx] = post
        else:
            ctx.store_post[idx] = post

    # -- sequential groups -------------------------------------------------
    def _eval_sequential(self, grp: StmtGroup, ctx: _Ctx) -> None:
        """Exact scalar lane: replay the group's statements per iteration
        with the interpreter's own operator tables.  In-group memory traffic
        goes through an address-keyed overlay, which reproduces chronological
        read/write interleavings (stencils, histograms) by construction."""
        nodes = [self.nodes[i] for i in grp.stmts]
        group = set(grp.stmts)
        overlay: dict[int, Any] = {}
        reg_state: dict[str, Any] = {}
        outputs: dict[int, list] = {i: [] for i in grp.stmts}
        dyn_logs: dict[int, tuple[MemoryRef, list]] = {}
        mem = ctx.interp.mem
        for k in range(ctx.n):
            i_val = ctx.start + ctx.step * k
            for node in nodes:
                it = iter(node.loads)
                v = self._seval(
                    node.expr, node, ctx, k, i_val, group, reg_state, overlay,
                    dyn_logs, it,
                )
                if node.target_reg is not None:
                    reg_state[node.target_reg] = v
                else:
                    addr = self._seq_addr(
                        node.store, node, ctx, k, i_val, group, reg_state,
                        overlay, dyn_logs,
                    )
                    overlay[addr] = v
                outputs[node.idx].append(v)
        for i in grp.stmts:
            node = self.nodes[i]
            if node.target_reg is not None:
                ctx.reg_post[i] = _SeqVal(outputs[i])
            else:
                ctx.store_post[i] = _SeqVal(outputs[i])
        for ref, log in dyn_logs.values():
            addrs = np.array(log, dtype=np.int64)
            ctx.res[id(ref)].addrs = addrs
            ctx.dyn_addrs.setdefault(ref.key, addrs)
        ctx.overlays.append(overlay)
        _ = mem  # overlay misses read through ctx.interp.mem in _seval

    def _seq_addr(
        self, ref, node, ctx, k, i_val, group, reg_state, overlay, dyn_logs
    ) -> int:
        r = ctx.res[id(ref)]
        if r.shape != DYNAMIC:
            return r.addr0 + r.astride * k
        iv = self._seval(
            ref.index, node, ctx, k, i_val, group, reg_state, overlay,
            dyn_logs, iter(()),
        )
        idx = int(iv)  # the interpreter's _addr coercion
        if not 0 <= idx < r.size:
            raise Bailout("oob_index")
        addr = r.base + ELEM_SIZE * idx
        entry = dyn_logs.get(id(ref))
        if entry is None:
            entry = dyn_logs[id(ref)] = (ref, [])
        entry[1].append(addr)
        return addr

    def _seval(
        self, e, node, ctx, k, i_val, group, reg_state, overlay, dyn_logs,
        load_iter: Iterator[MemoryRef],
    ) -> Any:
        if isinstance(e, ast.Const):
            return e.value
        if isinstance(e, ast.Reg):
            if e.name == self.ind:
                return i_val
            b = node.reg_binds.get(e.name)
            if b is None or b[0] == "inv":
                return ctx.act.regs[e.name]
            if b[1] in group:
                # "post" reads see this iteration's def (textually earlier);
                # "pre" reads happen before the def, so the state still holds
                # last iteration's value (or the pre-loop register).
                if b[0] == "post" or e.name in reg_state:
                    return reg_state[e.name]
                return ctx.act.regs[e.name]
            lst = ctx.as_list(ctx.reg_post[b[1]])
            if b[0] == "post":
                return lst[k]
            return lst[k - 1] if k else ctx.act.regs[e.name]
        if isinstance(e, ast.Load):
            ld = next(load_iter)
            b = ld.binding
            if b[0] == "fwd" and b[1] not in group:
                return ctx.as_list(ctx.store_post[b[1]])[k]
            if b[0] == "pre" and b[1] not in group:
                if k == 0:
                    return ctx.interp.mem.read(ctx.res[id(ld)].addr0)
                return ctx.as_list(ctx.store_post[b[1]])[k - 1]
            addr = self._seq_addr(
                ld, node, ctx, k, i_val, group, reg_state, overlay, dyn_logs
            )
            if addr in overlay:
                return overlay[addr]
            return ctx.interp.mem.read(addr)
        if isinstance(e, ast.BinOp):
            lhs = self._seval(
                e.lhs, node, ctx, k, i_val, group, reg_state, overlay,
                dyn_logs, load_iter,
            )
            rhs = self._seval(
                e.rhs, node, ctx, k, i_val, group, reg_state, overlay,
                dyn_logs, load_iter,
            )
            return e.apply(lhs, rhs)
        if isinstance(e, ast.UnOp):
            return e.apply(
                self._seval(
                    e.operand, node, ctx, k, i_val, group, reg_state, overlay,
                    dyn_logs, load_iter,
                )
            )
        raise Bailout("expr_type")

    # -- alias checks (end of prepare, still pure) -------------------------
    def _alias_checks(self, ctx: _Ctx) -> None:
        """Pairwise checks between *different* progressions of one array.
        Gathers read pre-loop memory regardless of evaluation order, so
        running these after group evaluation is safe — nothing was mutated.
        Pairs inside one sequential group are exempt: the overlay reproduces
        their chronological interleaving exactly."""
        by_var: dict[str, list[MemoryRef]] = {}
        for ref in self.accesses:
            by_var.setdefault(ref.var.name, []).append(ref)
        for refs in by_var.values():
            if not any(r.is_store for r in refs):
                continue
            for i, a in enumerate(refs):
                for b in refs[i + 1 :]:
                    if not (a.is_store or b.is_store) or a.key == b.key:
                        continue
                    ga = self._seq_group_of.get(a.stmt_idx)
                    if ga is not None and ga == self._seq_group_of.get(b.stmt_idx):
                        continue
                    self._check_pair(ctx, a, b)

    def _check_pair(self, ctx: _Ctx, a: MemoryRef, b: MemoryRef) -> None:
        ra, rb = ctx.res[id(a)], ctx.res[id(b)]
        both_store = a.is_store and b.is_store
        reason = "store_overlap" if both_store else "loop_carried_alias"
        if ra.shape == DYNAMIC or rb.shape == DYNAMIC:
            if np.intersect1d(_addr_set(ctx, ra), _addr_set(ctx, rb)).size:
                raise Bailout(reason)
            return
        (alo, ahi), (blo, bhi) = ra.span(ctx.n), rb.span(ctx.n)
        if ahi < blo or bhi < alo:
            return
        if ra.astride == rb.astride:
            if ra.astride == 0:
                if ra.addr0 == rb.addr0:
                    raise Bailout(reason)
                return
            if ra.addr0 == rb.addr0:
                # Identical progression under different structural keys.
                if both_store:
                    return  # per-statement scatter order matches stmt order
                ld, st = (a, b) if b.is_store else (b, a)
                if ld.binding == ("init",) and ld.stmt_idx <= st.stmt_idx:
                    return  # element k is read before iteration k writes it
                raise Bailout(reason)
            if (ra.addr0 - rb.addr0) % abs(ra.astride) == 0:
                raise Bailout(reason)  # nonzero loop-carried distance
            return  # interleaved progressions never meet
        if np.intersect1d(_addr_set(ctx, ra), _addr_set(ctx, rb)).size:
            raise Bailout(reason)

    # -- phase B: commit ---------------------------------------------------
    def _commit(self, interp, act, tid: int, site: int, ctx: _Ctx) -> None:
        mem = interp.mem
        n_iters, k = ctx.n, ctx.k

        # Scatter stores (cross-progression overlap was alias-checked; a
        # slot store keeps only its last value, like the interpreter would).
        for node in self.nodes:
            if node.store is None or node.idx in self._seq_stmts:
                continue
            r = ctx.res[id(node.store)]
            val = ctx.store_post[node.idx]
            if r.shape == DYNAMIC:
                # dict.update keeps the *last* pair per address, which is
                # exactly iteration order within one statement.
                mem.write_block(r.addrs.tolist(), _raw_list(val, n_iters))
            elif r.astride == 0:
                mem.write(r.addr0, _last_raw(val))
            else:
                addrs = range(r.addr0, r.addr0 + r.astride * n_iters, r.astride)
                if isinstance(val, _VecVal) and _is_scalar(val.val):
                    mem.write_block(addrs, itertools.repeat(val.val, n_iters))
                else:
                    mem.write_block(addrs, _raw_list(val, n_iters))
        # Sequential groups committed their chronology into the overlay,
        # whose insertion order is the interpreter's own write order.
        for overlay in ctx.overlays:
            if overlay:
                mem.write_block(overlay.keys(), overlay.values())

        # Registers end exactly as after the last interpreted iteration.
        act.regs[self.ind] = ctx.start + ctx.step * (n_iters - 1)
        for name, defs in self.graph.reg_defs.items():
            act.regs[name] = _last_raw(ctx.reg_post[defs[-1]])

        # Synthesize the event block: iteration-major tiling of the per-
        # iteration slot pattern [LOOP_ITER, access, access, ...].  Variable
        # names intern in slot order = the interpreter's first-iteration
        # emission order, keeping the intern tables bit-identical too.
        n_slots = self.events_per_iteration
        kind_pat = np.empty(n_slots, dtype=np.uint8)
        loc_pat = np.empty(n_slots, dtype=np.int32)
        var_pat = np.empty(n_slots, dtype=np.int32)
        addr = np.empty((n_iters, n_slots), dtype=np.int64)
        aux = np.zeros((n_iters, n_slots), dtype=np.int64)
        kind_pat[0] = LOOP_ITER
        loc_pat[0] = site
        var_pat[0] = -1
        addr[:, 0] = site
        aux[:, 0] = k
        for j, acc in enumerate(self.accesses, start=1):
            r = ctx.res[id(acc)]
            kind_pat[j] = acc.kind
            loc_pat[j] = interp.loc(acc.line)
            var_pat[j] = interp._var_id(acc.var.name)
            if r.shape == DYNAMIC:
                addr[:, j] = r.addrs
            else:
                addr[:, j] = r.addr0 + r.astride * k
        interp.gate.emit_block(
            tid,
            site,
            n_iters,
            kind=np.tile(kind_pat, n_iters),
            loc=np.tile(loc_pat, n_iters),
            addr=addr.reshape(-1),
            aux=aux.reshape(-1),
            var=np.tile(var_pat, n_iters),
        )

    def execute(
        self,
        interp,
        act,
        tid: int,
        start: Any,
        end: Any,
        step: Any,
        site: int,
        stats: "FastPathStats",
    ) -> bool:
        """Try to run the whole loop vectorized; ``False`` means nothing was
        mutated and the caller must interpret the loop normally."""
        try:
            ctx = self._prepare(interp, act, start, end, step)
        except Bailout as b:
            stats.bailout(b.reason)
            return False
        except Exception as exc:  # interpreter reproduces the error in place
            stats.bailout(f"error:{type(exc).__name__}")
            return False
        self._commit(interp, act, tid, site, ctx)
        stats.hit(ctx.n, ctx.n * self.events_per_iteration)
        return True


def _addr_set(ctx: _Ctx, r: _Resolved) -> np.ndarray:
    if r.shape == DYNAMIC:
        return r.addrs
    if r.astride == 0:
        return np.array([r.addr0], dtype=np.int64)
    return r.addr0 + r.astride * ctx.k


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


class FastPathStats:
    """Producer-side fast-path accounting for one interpreter instance."""

    __slots__ = (
        "loops",
        "iterations",
        "events",
        "templates",
        "memo_hits",
        "rejects",
        "bailouts",
        "verdicts",
    )

    def __init__(self) -> None:
        self.loops = 0  # loop executions taken by the fast path
        self.iterations = 0
        self.events = 0  # trace rows synthesized in bulk
        self.templates = 0  # loops that classified as schedulable
        self.memo_hits = 0  # classifications served from the structural memo
        self.rejects: dict[str, int] = {}  # static, once per loop site
        self.bailouts: dict[str, int] = {}  # dynamic, once per execution
        self.verdicts: dict[str, int] = {}  # static verdicts of compiled loops

    def hit(self, n_iters: int, n_rows: int) -> None:
        self.loops += 1
        self.iterations += n_iters
        self.events += n_rows

    def compiled(self, verdict: str | None = None) -> None:
        self.templates += 1
        if verdict is not None:
            self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1

    def memo_hit(self) -> None:
        self.memo_hits += 1

    def reject(self, reason: str) -> None:
        self.rejects[reason] = self.rejects.get(reason, 0) + 1

    def bailout(self, reason: str) -> None:
        self.bailouts[reason] = self.bailouts.get(reason, 0) + 1

    def publish(self, registry: "MetricsRegistry", total_events: int) -> None:
        """Fold into ``producer.*`` counters (RunReport / ddprof stats)."""
        c = registry.counter
        c("producer.events_fastpath").inc(self.events)
        c("producer.events_interpreted").inc(max(0, total_events - self.events))
        c("producer.fastpath_loops").inc(self.loops)
        c("producer.fastpath_iterations").inc(self.iterations)
        c("producer.templates_compiled").inc(self.templates)
        c("producer.classify_cache_hits").inc(self.memo_hits)
        for verdict, n in sorted(self.verdicts.items()):
            c("producer.loop_verdicts", verdict=verdict).inc(n)
        for reason, n in sorted(self.rejects.items()):
            c("producer.template_rejects", reason=reason).inc(n)
        for reason, n in sorted(self.bailouts.items()):
            c("producer.fastpath_bailouts", reason=reason).inc(n)
        # Coverage over everything this registry has accumulated so far —
        # the headline fastpath-events / total-events ratio as a first-class
        # metric instead of a hand-derived number.
        fast = c("producer.events_fastpath").value
        slow = c("producer.events_interpreted").value
        total = fast + slow
        registry.gauge("producer.fastpath_coverage").set(
            fast / total if total else 0.0
        )
