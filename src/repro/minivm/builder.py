"""Fluent construction of MiniVM programs.

The builder assigns source lines sequentially, as if the program were a
pretty-printed listing: every statement consumes one line, loop headers and
loop ends consume their own (giving the profiler distinct BGN/END lines,
like Figure 1's ``1:60``/``1:74``).

Example::

    b = ProgramBuilder("vecsum")
    data = b.global_array("data", 1024)
    total = b.global_scalar("total")
    with b.function("main") as f:
        i = f.reg("i")
        with f.for_loop(i, 0, 1024):
            f.store(total, None, f.load(total) + f.load(data, i))
    program = b.build()
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import MiniVmError
from repro.minivm.astnodes import (
    AllocStmt,
    BarrierWait,
    BinOp,
    Call,
    Const,
    Expr,
    For,
    FreeStmt,
    If,
    JoinAll,
    Load,
    LockAcq,
    LockRel,
    Reg,
    SetReg,
    Spawn,
    Stmt,
    Store,
    Variable,
    While,
)
from repro.minivm.program import Function, Program


def _expr(value: Expr | int | float) -> Expr:
    return value if isinstance(value, Expr) else Const(value)


class _BlockCtx:
    """Context manager pushing a statement list as the current block."""

    def __init__(self, fb: "FunctionBuilder", body: list[Stmt], stmt: Stmt) -> None:
        self._fb = fb
        self._body = body
        self._stmt = stmt

    def __enter__(self) -> Stmt:
        self._fb._blocks.append(self._body)
        return self._stmt

    def __exit__(self, exc_type, exc, tb) -> None:
        self._fb._blocks.pop()
        if exc_type is None and isinstance(self._stmt, (For, While)):
            self._stmt.end_line = self._fb._pb._next_line()


class FunctionBuilder:
    """Builds one function body; obtained from :meth:`ProgramBuilder.function`."""

    def __init__(self, pb: "ProgramBuilder", fn: Function) -> None:
        self._pb = pb
        self._fn = fn
        self._blocks: list[list[Stmt]] = [fn.body]
        self._local_names: set[str] = set(fn.params)

    # -- declarations -------------------------------------------------------
    def reg(self, name: str) -> Reg:
        """A virtual register (untraced temporary)."""
        return Reg(name)

    def param(self, name: str) -> Reg:
        if name not in self._fn.params:
            raise MiniVmError(
                f"{self._fn.name!r} has no parameter {name!r} "
                f"(has {self._fn.params})"
            )
        return Reg(name)

    def _declare_local(self, name: str, size: int) -> Variable:
        if name in self._local_names:
            raise MiniVmError(f"duplicate local {name!r} in {self._fn.name!r}")
        self._local_names.add(name)
        var = Variable(name=name, size=size, storage="local")
        self._fn.locals_.append(var)
        return var

    def local_scalar(self, name: str) -> Variable:
        """A traced stack scalar (participates in dependences)."""
        return self._declare_local(name, 1)

    def local_array(self, name: str, size: int) -> Variable:
        if size <= 0:
            raise MiniVmError(f"local array {name!r} must have positive size")
        return self._declare_local(name, size)

    def heap_var(self, name: str) -> Variable:
        """Handle for a heap block; bind it with :meth:`alloc`."""
        return Variable(name=name, size=0, storage="heap")

    # -- expressions -----------------------------------------------------------
    def load(self, var: Variable, index: Expr | int | None = None) -> Load:
        return Load(var, None if index is None else _expr(index))

    # -- simple statements --------------------------------------------------------
    def _emit(self, stmt: Stmt) -> Stmt:
        stmt.line = self._pb._next_line()
        self._blocks[-1].append(stmt)
        return stmt

    def set(self, reg: Reg, expr: Expr | int | float) -> Stmt:
        return self._emit(SetReg(reg, _expr(expr)))

    def store(
        self,
        var: Variable,
        index: Expr | int | None,
        expr: Expr | int | float,
    ) -> Stmt:
        return self._emit(
            Store(var, None if index is None else _expr(index), _expr(expr))
        )

    def call(self, func: str, *args: Expr | int | float) -> Stmt:
        return self._emit(Call(func, tuple(_expr(a) for a in args)))

    def spawn(self, func: str, *args: Expr | int | float) -> Stmt:
        return self._emit(Spawn(func, tuple(_expr(a) for a in args)))

    def join_all(self) -> Stmt:
        return self._emit(JoinAll())

    def acquire(self, lock_id: int) -> Stmt:
        return self._emit(LockAcq(lock_id))

    def release(self, lock_id: int) -> Stmt:
        return self._emit(LockRel(lock_id))

    def barrier(self, barrier_id: int, parties: int) -> Stmt:
        return self._emit(BarrierWait(barrier_id, parties))

    def alloc(self, var: Variable, size: Expr | int) -> Stmt:
        if var.storage != "heap":
            raise MiniVmError(f"alloc target {var.name!r} is not a heap var")
        return self._emit(AllocStmt(var, _expr(size)))

    def free(self, var: Variable) -> Stmt:
        if var.storage != "heap":
            raise MiniVmError(f"free target {var.name!r} is not a heap var")
        return self._emit(FreeStmt(var))

    # -- control flow -------------------------------------------------------------
    def for_loop(
        self,
        reg: Reg,
        start: Expr | int,
        end: Expr | int,
        step: Expr | int = 1,
    ) -> _BlockCtx:
        stmt = For(reg, _expr(start), _expr(end), _expr(step))
        self._emit(stmt)
        return _BlockCtx(self, stmt.body, stmt)

    def while_loop(self, cond: Expr) -> _BlockCtx:
        stmt = While(cond)
        self._emit(stmt)
        return _BlockCtx(self, stmt.body, stmt)

    def if_(self, cond: Expr) -> _BlockCtx:
        stmt = If(cond)
        self._emit(stmt)
        return _BlockCtx(self, stmt.then_body, stmt)

    def else_(self) -> _BlockCtx:
        block = self._blocks[-1]
        if not block or not isinstance(block[-1], If):
            raise MiniVmError("else_() must immediately follow an if_() block")
        return _BlockCtx(self, block[-1].else_body, block[-1])

    def lock(self, lock_id: int) -> "_LockCtx":
        """``with f.lock(3): ...`` — acquire/release around the body."""
        return _LockCtx(self, lock_id)


class _LockCtx:
    def __init__(self, fb: FunctionBuilder, lock_id: int) -> None:
        self._fb = fb
        self._lock_id = lock_id

    def __enter__(self) -> None:
        self._fb.acquire(self._lock_id)

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._fb.release(self._lock_id)


class _FunctionCtx:
    def __init__(self, pb: "ProgramBuilder", fb: FunctionBuilder) -> None:
        self._pb = pb
        self._fb = fb

    def __enter__(self) -> FunctionBuilder:
        return self._fb

    def __exit__(self, exc_type, exc, tb) -> None:
        self._pb._open_function = None


class ProgramBuilder:
    """Top-level builder; collect globals and functions, then :meth:`build`."""

    def __init__(self, name: str, file_id: int = 0) -> None:
        self._program = Program(name=name, file_id=file_id)
        self._line = 0
        self._global_names: set[str] = set()
        self._open_function: str | None = None

    def _next_line(self) -> int:
        self._line += 1
        return self._line

    # -- globals -----------------------------------------------------------
    def _declare_global(self, name: str, size: int) -> Variable:
        if name in self._global_names:
            raise MiniVmError(f"duplicate global {name!r}")
        self._global_names.add(name)
        var = Variable(name=name, size=size, storage="global")
        self._program.globals_.append(var)
        self._next_line()  # declarations occupy a source line
        return var

    def global_scalar(self, name: str) -> Variable:
        return self._declare_global(name, 1)

    def global_array(self, name: str, size: int) -> Variable:
        if size <= 0:
            raise MiniVmError(f"global array {name!r} must have positive size")
        return self._declare_global(name, size)

    # -- functions -----------------------------------------------------------
    def function(self, name: str, params: Sequence[str] = ()) -> _FunctionCtx:
        if self._open_function is not None:
            raise MiniVmError(
                f"cannot open {name!r} while {self._open_function!r} is open"
            )
        if name in self._program.functions:
            raise MiniVmError(f"duplicate function {name!r}")
        if len(set(params)) != len(params):
            raise MiniVmError(f"duplicate parameters in {name!r}: {params}")
        fn = Function(name=name, params=tuple(params), def_line=self._next_line())
        self._program.functions[name] = fn
        self._open_function = name
        return _FunctionCtx(self, FunctionBuilder(self, fn))

    # -- finish -----------------------------------------------------------------
    def build(self) -> Program:
        prog = self._program
        if "main" not in prog.functions:
            raise MiniVmError(f"program {prog.name!r} has no main()")
        self._validate_calls(prog)
        prog.n_lines = self._line
        return prog

    def _validate_calls(self, prog: Program) -> None:
        def walk(body: list[Stmt]) -> None:
            for s in body:
                if isinstance(s, (Call, Spawn)):
                    target = prog.functions.get(s.func)
                    if target is None:
                        raise MiniVmError(f"call to undefined function {s.func!r}")
                    if len(s.args) != len(target.params):
                        raise MiniVmError(
                            f"{s.func!r} takes {len(target.params)} args, "
                            f"got {len(s.args)}"
                        )
                if isinstance(s, For):
                    walk(s.body)
                elif isinstance(s, While):
                    walk(s.body)
                elif isinstance(s, If):
                    walk(s.then_body)
                    walk(s.else_body)

        for fn in prog.functions.values():
            walk(fn.body)
