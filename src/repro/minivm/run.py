"""One-call program execution."""

from __future__ import annotations

from repro.minivm.program import Program
from repro.minivm.scheduler import ScheduleConfig, Scheduler
from repro.trace import TraceBatch, TraceRecorder


def run_program(
    program: Program,
    args: tuple = (),
    schedule: ScheduleConfig | None = None,
    recorder: TraceRecorder | None = None,
) -> TraceBatch:
    """Execute ``program.main(*args)`` under instrumentation.

    Returns the instrumented event trace ready for
    :func:`repro.core.profile_trace`.  ``schedule`` controls thread
    interleaving and the delayed-push (race) model; the default is a
    deterministic round-robin with immediate pushes.
    """
    return Scheduler(program, recorder=recorder, schedule=schedule).run(args)
