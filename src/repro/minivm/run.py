"""One-call program execution."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.minivm.program import Program
from repro.minivm.scheduler import ScheduleConfig, Scheduler
from repro.trace import TraceBatch, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


def run_program(
    program: Program,
    args: tuple = (),
    schedule: ScheduleConfig | None = None,
    recorder: TraceRecorder | None = None,
    fastpath: bool = True,
    registry: "MetricsRegistry | None" = None,
) -> TraceBatch:
    """Execute ``program.main(*args)`` under instrumentation.

    Returns the instrumented event trace ready for
    :func:`repro.core.profile_trace`.  ``schedule`` controls thread
    interleaving and the delayed-push (race) model; the default is a
    deterministic round-robin with immediate pushes.

    ``fastpath`` toggles the affine-loop producer fast path (see
    :mod:`repro.minivm.affine`); traces are bit-identical either way, so
    disabling it is only useful as the differential oracle or for timing
    the interpreter.  When a ``registry`` is given, producer fast-path
    counters (``producer.*``) are published into it.
    """
    sched = Scheduler(program, recorder=recorder, schedule=schedule, fastpath=fastpath)
    batch = sched.run(args)
    if registry is not None:
        sched.interp.fastpath_stats.publish(registry, total_events=len(batch))
    return batch
