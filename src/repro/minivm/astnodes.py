"""MiniVM abstract syntax.

Expressions form a small arithmetic language with Python operator
overloading, so workload code reads naturally::

    f.store(total, None, f.load(total) + f.load(data, i) * 2)

Design notes mirroring compiled C at ``-O2`` (the paper's build flags):

* :class:`Reg` values are virtual registers — untraced, like values LLVM
  keeps in SSA registers.  Loop induction variables live here.
* :class:`Load`/``Store`` touch *memory* (globals, traced locals, heap) and
  are instrumented.
* Statements carry the source line the builder assigned; every traced event
  of a statement reports that line.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field
from typing import Any, Callable

_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": lambda a, b: a / b if b else 0.0,
    "//": lambda a, b: a // b if b else 0,
    "%": lambda a, b: a % b if b else 0,
    "<<": operator.lshift,
    ">>": operator.rshift,
    "&": operator.and_,
    "|": operator.or_,
    "^": operator.xor,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "min": min,
    "max": max,
}

_UNOPS: dict[str, Callable[[Any], Any]] = {
    "-": operator.neg,
    "not": lambda a: int(not a),
    "int": lambda a: int(a),
    "abs": abs,
    "sin": lambda a: math.sin(a),
    "cos": lambda a: math.cos(a),
    "sqrt": lambda a: math.sqrt(a) if a >= 0 else 0.0,
}


class Expr:
    """Base expression with operator sugar."""

    __slots__ = ()

    def _wrap(self, other: "Expr | int | float") -> "Expr":
        return other if isinstance(other, Expr) else Const(other)

    def __add__(self, o):
        return BinOp("+", self, self._wrap(o))

    def __radd__(self, o):
        return BinOp("+", self._wrap(o), self)

    def __sub__(self, o):
        return BinOp("-", self, self._wrap(o))

    def __rsub__(self, o):
        return BinOp("-", self._wrap(o), self)

    def __mul__(self, o):
        return BinOp("*", self, self._wrap(o))

    def __rmul__(self, o):
        return BinOp("*", self._wrap(o), self)

    def __truediv__(self, o):
        return BinOp("/", self, self._wrap(o))

    def __rtruediv__(self, o):
        return BinOp("/", self._wrap(o), self)

    def __floordiv__(self, o):
        return BinOp("//", self, self._wrap(o))

    def __rfloordiv__(self, o):
        return BinOp("//", self._wrap(o), self)

    def __mod__(self, o):
        return BinOp("%", self, self._wrap(o))

    def __rmod__(self, o):
        return BinOp("%", self._wrap(o), self)

    def __lshift__(self, o):
        return BinOp("<<", self, self._wrap(o))

    def __rshift__(self, o):
        return BinOp(">>", self, self._wrap(o))

    def __and__(self, o):
        return BinOp("&", self, self._wrap(o))

    def __or__(self, o):
        return BinOp("|", self, self._wrap(o))

    def __xor__(self, o):
        return BinOp("^", self, self._wrap(o))

    def __neg__(self):
        return UnOp("-", self)

    # Comparisons return Expr (0/1), enabling If/While conditions.
    def lt(self, o):
        return BinOp("<", self, self._wrap(o))

    def le(self, o):
        return BinOp("<=", self, self._wrap(o))

    def gt(self, o):
        return BinOp(">", self, self._wrap(o))

    def ge(self, o):
        return BinOp(">=", self, self._wrap(o))

    def eq(self, o):
        return BinOp("==", self, self._wrap(o))

    def ne(self, o):
        return BinOp("!=", self, self._wrap(o))


@dataclass(frozen=True, slots=True)
class Const(Expr):
    value: int | float


@dataclass(frozen=True, slots=True)
class Reg(Expr):
    """A virtual register (function parameter or temporary) — untraced."""

    name: str


@dataclass(frozen=True, slots=True)
class Variable:
    """A declared memory object: global, traced local, or heap array.

    ``size`` is the element count (1 for scalars) for statically-sized
    storage; heap variables get their extent at ALLOC time.
    """

    name: str
    size: int  # elements; heap vars use 0 here (runtime-sized)
    storage: str  # "global" | "local" | "heap"

    def __post_init__(self) -> None:
        if self.storage not in ("global", "local", "heap"):
            raise ValueError(f"bad storage {self.storage!r}")


@dataclass(frozen=True, slots=True)
class Load(Expr):
    """Traced memory read of ``var[index]`` (index None = scalar)."""

    var: Variable
    index: Expr | None = None


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def apply(self, a: Any, b: Any) -> Any:
        return _BINOPS[self.op](a, b)


@dataclass(frozen=True, slots=True)
class UnOp(Expr):
    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in _UNOPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    def apply(self, a: Any) -> Any:
        return _UNOPS[self.op](a)


# --------------------------------------------------------------------------
# Statements.  Each carries the builder-assigned source line.
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Stmt:
    line: int = field(init=False, default=0)


@dataclass(slots=True)
class SetReg(Stmt):
    reg: Reg
    expr: Expr


@dataclass(slots=True)
class Store(Stmt):
    var: Variable
    index: Expr | None
    expr: Expr


@dataclass(slots=True)
class For(Stmt):
    """``for reg in range(start, end, step)`` — a profiled control region."""

    reg: Reg
    start: Expr
    end: Expr
    step: Expr
    body: list[Stmt] = field(default_factory=list)
    end_line: int = 0


@dataclass(slots=True)
class While(Stmt):
    cond: Expr
    body: list[Stmt] = field(default_factory=list)
    end_line: int = 0


@dataclass(slots=True)
class If(Stmt):
    cond: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class Call(Stmt):
    func: str
    args: tuple[Expr, ...] = ()


@dataclass(slots=True)
class Spawn(Stmt):
    func: str
    args: tuple[Expr, ...] = ()


@dataclass(slots=True)
class JoinAll(Stmt):
    pass


@dataclass(slots=True)
class LockAcq(Stmt):
    lock_id: int


@dataclass(slots=True)
class LockRel(Stmt):
    lock_id: int


@dataclass(slots=True)
class BarrierWait(Stmt):
    """SPMD barrier: blocks until ``parties`` threads have arrived."""

    barrier_id: int
    parties: int


@dataclass(slots=True)
class AllocStmt(Stmt):
    """Heap allocation binding ``var`` to a fresh block of ``size`` elements."""

    var: Variable
    size: Expr


@dataclass(slots=True)
class FreeStmt(Stmt):
    var: Variable
