"""MiniVM — the instrumented target-program substrate.

The paper profiles C/C++ programs through an LLVM pass that instruments every
memory access.  Offline, we replace that toolchain with a small imperative
language and an interpreter that emits exactly the event stream such a pass
would produce: loads/stores with source line and variable name, malloc/free,
loop begin/iteration/end markers, lock acquire/release, and thread
spawn/join — all against a flat 64-bit address space with a reusing heap and
per-thread stacks (so variable-lifetime effects are real).

Programs are built with :class:`ProgramBuilder` (a fluent, ``with``-block
DSL that auto-assigns source lines), executed by :func:`run_program`, which
returns a :class:`~repro.trace.TraceBatch` ready for profiling.  Multi-
threaded programs run under a deterministic seeded :class:`Scheduler` whose
interleaving, lock blocking, and optional delayed pushes model Section V of
the paper.
"""

from repro.minivm.affine import (
    AffineTemplate,
    FastPathStats,
    classify_loop,
    classify_loop_cached,
    program_has_spawn,
)
from repro.minivm.depgraph import (
    DependencyGraph,
    GroupScheduler,
    carried_graph_verdict,
    loop_verdict,
)
from repro.minivm.astnodes import (
    BinOp,
    Const,
    Expr,
    Load,
    Reg,
    UnOp,
    Variable,
)
from repro.minivm.memory import Memory
from repro.minivm.program import Function, Program
from repro.minivm.builder import FunctionBuilder, ProgramBuilder
from repro.minivm.scheduler import ScheduleConfig, Scheduler
from repro.minivm.run import run_program
from repro.minivm.listing import listing_loc, source_listing

__all__ = [
    "AffineTemplate",
    "BinOp",
    "Const",
    "DependencyGraph",
    "FastPathStats",
    "GroupScheduler",
    "carried_graph_verdict",
    "classify_loop",
    "classify_loop_cached",
    "loop_verdict",
    "program_has_spawn",
    "Expr",
    "Function",
    "FunctionBuilder",
    "Load",
    "Memory",
    "Program",
    "ProgramBuilder",
    "Reg",
    "ScheduleConfig",
    "Scheduler",
    "UnOp",
    "Variable",
    "listing_loc",
    "run_program",
    "source_listing",
]
