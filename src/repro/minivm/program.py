"""Program and function containers."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.common.errors import MiniVmError
from repro.minivm.astnodes import Stmt, Variable


@dataclass
class Function:
    """A MiniVM procedure (no return value; results go through memory)."""

    name: str
    params: tuple[str, ...]
    body: list[Stmt] = field(default_factory=list)
    locals_: list[Variable] = field(default_factory=list)  # traced locals
    def_line: int = 0

    @property
    def frame_elems(self) -> int:
        """Stack-frame size in elements for this function's traced locals."""
        return sum(max(v.size, 1) for v in self.locals_)


@dataclass
class Program:
    """A complete MiniVM program: globals + functions, entry ``main``."""

    name: str
    file_id: int = 0
    globals_: list[Variable] = field(default_factory=list)
    functions: dict[str, Function] = field(default_factory=dict)
    n_lines: int = 0

    @property
    def structural_hash(self) -> str:
        """Stable digest of the program's structure (AST reprs are
        deterministic dataclass reprs, no object addresses), memoized on the
        instance.  Keys the cross-run loop-classification memo: two programs
        with equal hashes have structurally identical loops."""
        h = self.__dict__.get("_structural_hash")
        if h is None:
            parts = [self.name, str(self.file_id), str(self.n_lines)]
            parts.extend(repr(v) for v in self.globals_)
            for fname in sorted(self.functions):
                fn = self.functions[fname]
                parts.append(fname)
                parts.append(repr(fn.params))
                parts.append(repr(fn.locals_))
                parts.extend(repr(s) for s in fn.body)
            digest = hashlib.sha1("\x1f".join(parts).encode()).hexdigest()
            h = self.__dict__["_structural_hash"] = digest
        return h

    def function(self, name: str) -> Function:
        fn = self.functions.get(name)
        if fn is None:
            raise MiniVmError(f"program {self.name!r} has no function {name!r}")
        return fn

    @property
    def main(self) -> Function:
        return self.function("main")
