"""Deterministic thread scheduler + instrumentation gate.

Runs a MiniVM program's threads under a seeded interleaving, implementing

* scheduling policies: ``roundrobin`` (fair, quantum-sized turns),
  ``random`` (seeded), ``serial`` (lowest runnable tid first — depth-first
  deterministic),
* blocking lock semantics with FIFO handoff, barriers, and join-all,
* the paper's push model (Section V): accesses made while holding a lock are
  pushed immediately (Figure 4's access+push lock region); unprotected
  accesses may be *delayed* by a seeded number of scheduler steps, so their
  event lands in the stream after later accesses — exactly the timestamp
  reversals the profiler flags as potential data races.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.common.errors import MiniVmError
from repro.common.rng import make_rng
from repro.minivm.affine import program_has_spawn
from repro.minivm.interp import Interp
from repro.minivm.memory import Memory
from repro.minivm.program import Program
from repro.trace import TraceBatch, TraceRecorder

POLICIES = ("roundrobin", "random", "serial")


@dataclass(frozen=True)
class ScheduleConfig:
    """Interleaving and push-delay knobs for one execution."""

    policy: str = "roundrobin"
    seed: int = 0
    quantum: int = 1
    delay_probability: float = 0.0
    delay_min_steps: int = 1
    delay_max_steps: int = 8

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise MiniVmError(f"unknown policy {self.policy!r}; pick from {POLICIES}")
        if self.quantum <= 0:
            raise MiniVmError("quantum must be positive")
        if not 0.0 <= self.delay_probability <= 1.0:
            raise MiniVmError("delay_probability must be in [0, 1]")
        if not 1 <= self.delay_min_steps <= self.delay_max_steps:
            raise MiniVmError("need 1 <= delay_min_steps <= delay_max_steps")


class _Thread:
    __slots__ = ("tid", "gen", "state", "blocked_on", "resume", "locks_held")

    def __init__(self, tid: int, gen) -> None:
        self.tid = tid
        self.gen = gen
        self.state = "runnable"  # runnable | blocked | finished
        self.blocked_on: tuple | None = None
        self.resume = None  # value for the next gen.send()
        self.locks_held: set[int] = set()


class Scheduler:
    """Owns threads, locks, barriers, and the delayed-push queue."""

    def __init__(
        self,
        program: Program,
        recorder: TraceRecorder | None = None,
        schedule: ScheduleConfig | None = None,
        fastpath: bool = True,
    ) -> None:
        self.cfg = schedule if schedule is not None else ScheduleConfig()
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self.recorder.intern_file(program.name)
        self.memory = Memory()
        self.interp = Interp(program, self.memory, self, fastpath=fastpath)
        self._has_spawn: bool | None = None  # lazy program_has_spawn()
        self._threads: dict[int, _Thread] = {}
        self._next_tid = 1
        self._locks: dict[int, int] = {}  # lock_id -> owner tid
        self._lock_waiters: dict[int, list[int]] = {}
        self._barrier_arrivals: dict[int, list[int]] = {}
        self._rng = make_rng(self.cfg.seed, "scheduler")
        self._step = 0
        self._pending: list[tuple[int, int, tuple]] = []  # (flush_step, seq, ev)
        self._pending_seq = 0
        self._rr_next = 0

    # ------------------------------------------------------------------
    # EmitGate implementation (the instrumentation runtime seen by Interp)
    # ------------------------------------------------------------------
    def intern_var(self, name: str) -> int:
        return self.recorder.intern_var(name)

    def _maybe_delay(self, tid: int) -> bool:
        if self.cfg.delay_probability <= 0.0:
            return False
        th = self._threads.get(tid)
        if th is not None and th.locks_held:
            return False  # Figure 4: in a lock region, access+push are atomic
        return bool(self._rng.random() < self.cfg.delay_probability)

    def emit_read(self, tid: int, addr: int, loc: int, var: int) -> None:
        if self._maybe_delay(tid):
            self._defer(("r", addr, loc, var, tid))
        else:
            self.recorder.read(addr, loc, var, tid)

    def emit_write(self, tid: int, addr: int, loc: int, var: int) -> None:
        if self._maybe_delay(tid):
            self._defer(("w", addr, loc, var, tid))
        else:
            self.recorder.write(addr, loc, var, tid)

    def _defer(self, ev: tuple) -> None:
        ts = self.recorder.next_ts()
        ctx = self.recorder.current_ctx(ev[4])
        flush_at = self._step + int(
            self._rng.integers(self.cfg.delay_min_steps, self.cfg.delay_max_steps + 1)
        )
        heapq.heappush(
            self._pending, (flush_at, self._pending_seq, ev + (ts, ctx))
        )
        self._pending_seq += 1

    def _flush_due(self, everything: bool = False) -> None:
        while self._pending and (
            everything or self._pending[0][0] <= self._step
        ):
            _, _, ev = heapq.heappop(self._pending)
            kind, addr, loc, var, tid, ts, ctx = ev
            if kind == "r":
                self.recorder.read(addr, loc, var, tid, ts=ts, ctx=ctx)
            else:
                self.recorder.write(addr, loc, var, tid, ts=ts, ctx=ctx)

    def emit_alloc(self, tid: int, addr: int, size: int, loc: int, var: int) -> None:
        self.recorder.alloc(addr, size, loc, var, tid)

    def emit_free(self, tid: int, addr: int, size: int, loc: int) -> None:
        self.recorder.free(addr, size, loc, tid)

    def emit_loop_enter(self, tid: int, site: int) -> None:
        self.recorder.loop_enter(site, tid)

    def emit_loop_iter(self, tid: int, site: int) -> None:
        self.recorder.loop_iter(site, tid)

    def emit_loop_exit(self, tid: int, site: int, end_loc: int) -> None:
        self.recorder.loop_exit(site, tid, end_loc=end_loc)

    def emit_func_enter(self, tid: int, func_id: int, loc: int) -> None:
        self.recorder.func_enter(func_id, loc, tid)

    def emit_func_exit(self, tid: int, func_id: int, loc: int) -> None:
        self.recorder.func_exit(func_id, loc, tid)

    def fastpath_allowed(self, tid: int) -> bool:
        """May the interpreter vectorize a whole loop for ``tid`` right now?

        Collapsing per-statement scheduling points must be unobservable in
        the trace, which requires: no delayed-push model (it draws RNG per
        access), no queued deferred events, exactly one live thread (so
        every pick is forced), and — for programs that can spawn — a policy
        whose later choices cannot depend on how many picks happened while
        this thread ran alone (``random`` draws RNG per pick, so it is only
        safe when no second thread can ever appear).
        """
        if self.cfg.delay_probability > 0.0 or self._pending:
            return False
        live = [t for t in self._threads.values() if t.state != "finished"]
        if len(live) != 1 or live[0].tid != tid:
            return False
        if self.cfg.policy == "random":
            if self._has_spawn is None:
                self._has_spawn = program_has_spawn(self.interp.prog)
            if self._has_spawn:
                return False
        return True

    def emit_block(self, tid: int, site: int, n_iters: int, **cols) -> None:
        self.recorder.emit_block(tid, site, n_iters, **cols)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def run(self, args: tuple = ()) -> TraceBatch:
        """Execute ``main(*args)`` to completion and return the trace."""
        main = _Thread(0, self.interp.thread_gen(0, "main", args))
        self._threads[0] = main
        while True:
            self._flush_due()
            th = self._pick()
            if th is None:
                if any(t.state == "blocked" for t in self._threads.values()):
                    blocked = {
                        t.tid: t.blocked_on
                        for t in self._threads.values()
                        if t.state == "blocked"
                    }
                    raise MiniVmError(f"deadlock: all threads blocked: {blocked}")
                break  # everything finished
            for _ in range(self.cfg.quantum):
                if th.state != "runnable":
                    break
                self._advance(th)
                self._step += 1
        self._flush_due(everything=True)
        return self.recorder.build()

    def _runnable(self) -> list[_Thread]:
        return [t for t in self._threads.values() if t.state == "runnable"]

    def _pick(self) -> _Thread | None:
        runnable = sorted(self._runnable(), key=lambda t: t.tid)
        if not runnable:
            return None
        if self.cfg.policy == "serial":
            return runnable[0]
        if self.cfg.policy == "random":
            return runnable[int(self._rng.integers(0, len(runnable)))]
        # roundrobin: next tid strictly after the last one served, cyclic.
        for t in runnable:
            if t.tid >= self._rr_next:
                self._rr_next = t.tid + 1
                return t
        self._rr_next = runnable[0].tid + 1
        return runnable[0]

    def _advance(self, th: _Thread) -> None:
        send, th.resume = th.resume, None
        try:
            action = th.gen.send(send)
        except StopIteration:
            self._finish(th)
            return
        kind = action[0]
        if kind == "step":
            return
        if kind == "spawn":
            _, func, argvals = action
            tid = self._next_tid
            self._next_tid += 1
            self.recorder.thread_start(tid, parent_tid=th.tid)
            child = _Thread(tid, self.interp.thread_gen(tid, func, argvals))
            self._threads[tid] = child
            th.resume = tid
            return
        if kind == "tryacq":
            _, lock_id, loc = action
            if lock_id not in self._locks:
                self._grant(th, lock_id, loc)
            else:
                self._lock_waiters.setdefault(lock_id, []).append(th.tid)
                th.state = "blocked"
                th.blocked_on = ("lock", lock_id)
            return
        if kind == "release":
            _, lock_id, loc = action
            if self._locks.get(lock_id) != th.tid:
                raise MiniVmError(
                    f"thread {th.tid} released lock {lock_id} it does not hold"
                )
            del self._locks[lock_id]
            th.locks_held.discard(lock_id)
            self.recorder.lock_release(lock_id, loc, th.tid)
            waiters = self._lock_waiters.get(lock_id)
            if waiters:
                next_tid = waiters.pop(0)  # FIFO handoff
                waiter = self._threads[next_tid]
                waiter.state = "runnable"
                waiter.blocked_on = None
                self._grant(waiter, lock_id, loc)
            return
        if kind == "barrier":
            _, bar_id, parties, _loc = action
            arrivals = self._barrier_arrivals.setdefault(bar_id, [])
            arrivals.append(th.tid)
            if len(arrivals) >= parties:
                for tid in arrivals:
                    t = self._threads[tid]
                    t.state = "runnable"
                    t.blocked_on = None
                    t.resume = True
                arrivals.clear()
            else:
                th.state = "blocked"
                th.blocked_on = ("barrier", bar_id)
            return
        if kind == "join_all":
            if self._others_finished(th.tid):
                th.resume = True
            else:
                th.state = "blocked"
                th.blocked_on = ("join", None)
            return
        raise MiniVmError(f"unknown scheduler action {action!r}")

    def _grant(self, th: _Thread, lock_id: int, loc: int) -> None:
        self._locks[lock_id] = th.tid
        th.locks_held.add(lock_id)
        self.recorder.lock_acquire(lock_id, loc, th.tid)
        th.resume = True

    def _others_finished(self, tid: int) -> bool:
        return all(
            t.state == "finished" for t in self._threads.values() if t.tid != tid
        )

    def _finish(self, th: _Thread) -> None:
        th.state = "finished"
        if th.locks_held:
            raise MiniVmError(
                f"thread {th.tid} finished still holding locks {th.locks_held}"
            )
        if th.tid != 0:
            self.recorder.thread_end(th.tid)
        # Wake join_all waiters whose condition may now hold.
        for t in self._threads.values():
            if t.state == "blocked" and t.blocked_on == ("join", None):
                if self._others_finished(t.tid):
                    t.state = "runnable"
                    t.blocked_on = None
                    t.resume = True
