"""Bank geometry for sharded signature memory.

The paper's §IV-A redistribution moves *ownership* of hot addresses between
workers but says nothing about the signature state those addresses left
behind — on real traces that state is the difference between a warm
signature and a burst of spurious INIT dependences right after every
rebalance.  Sharding each tracker into per-address-range *banks* gives the
runtime a migration unit that is coarse enough to move cheaply (one slice
per plane) and fine enough to follow the load balancer's decisions.

A :class:`BankGeometry` is the single shared definition of "which bank does
this address belong to": bank ``(addr >> shift) % n_banks``.  The default
shift of 12 makes a bank stripe the address space in 4 KiB ranges — small
enough that one hot array spreads over many banks, large enough that one
cache-line-ish cluster of hot addresses stays together.  Every consumer
(trackers, :class:`~repro.parallel.address_map.AddressMap` bank rules, the
:class:`~repro.parallel.balance.Rebalancer`, heatmap bank occupancy) derives
bank membership from the same object, so routing and state migration can
never disagree about where an address lives.

Bank state travels between trackers as plain payload dicts of numpy arrays
(:func:`records_payload` / slots payloads built by the trackers themselves),
so they cross process boundaries with ordinary pickling and carry no tracker
identity — any tracker of the same family and geometry can import them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

#: Default bank stripe width: 4 KiB address ranges per bank index step.
DEFAULT_BANK_SHIFT = 12


@dataclass(frozen=True, slots=True)
class BankGeometry:
    """Address-range -> bank mapping shared by every banked component."""

    n_banks: int
    shift: int = DEFAULT_BANK_SHIFT

    def __post_init__(self) -> None:
        if self.n_banks < 1:
            raise ValueError("n_banks must be >= 1")
        if not (0 <= self.shift < 63):
            raise ValueError("bank shift must be in [0, 63)")

    def bank_of(self, addr: int) -> int:
        """Bank index of one address."""
        return (int(addr) >> self.shift) % self.n_banks

    def banks_of(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bank_of`."""
        a = np.asarray(addrs, dtype=np.int64)
        return (a >> self.shift) % self.n_banks

    def bank_slots(self, n_slots: int) -> int:
        """Slots per bank when an ``n_slots`` signature is banked."""
        return max(1, int(n_slots) // self.n_banks)

    def round_slots(self, n_slots: int) -> int:
        """Total slot count after banking (whole banks only)."""
        return self.bank_slots(n_slots) * self.n_banks


def records_payload(
    bank: int,
    addrs: np.ndarray,
    loc: np.ndarray,
    var: np.ndarray,
    tid: np.ndarray,
    ts: np.ndarray,
) -> dict[str, Any]:
    """Exact-tracker bank payload: one row per live address."""
    return {
        "format": "records",
        "bank": int(bank),
        "addrs": np.asarray(addrs, dtype=np.int64),
        "loc": np.asarray(loc, dtype=np.int64),
        "var": np.asarray(var, dtype=np.int64),
        "tid": np.asarray(tid, dtype=np.int64),
        "ts": np.asarray(ts, dtype=np.int64),
    }


def slots_payload(
    bank: int,
    bank_slots: int,
    slot: np.ndarray,
    loc: np.ndarray,
    var: np.ndarray,
    tid: np.ndarray,
    ts: np.ndarray,
    addr: np.ndarray | None,
) -> dict[str, Any]:
    """Lossy-tracker bank payload: one row per occupied slot of the bank.

    ``slot`` holds *bank-local* slot indices; the importer rebases them onto
    its own bank origin, so payloads are valid between any two trackers with
    the same ``bank_slots`` and hash salt (which a run's config guarantees).
    ``addr`` carries the owner-address plane when the exporter keeps one.
    """
    return {
        "format": "slots",
        "bank": int(bank),
        "bank_slots": int(bank_slots),
        "slot": np.asarray(slot, dtype=np.int64),
        "loc": np.asarray(loc, dtype=np.int64),
        "var": np.asarray(var, dtype=np.int64),
        "tid": np.asarray(tid, dtype=np.int64),
        "ts": np.asarray(ts, dtype=np.int64),
        "addr": None if addr is None else np.asarray(addr, dtype=np.int64),
    }


def payload_size(payload: dict[str, Any]) -> int:
    """Number of live entries carried by a bank payload (either format)."""
    key = "addrs" if payload["format"] == "records" else "slot"
    return int(len(payload[key]))
