"""Column-plane access trackers for the vectorized worker kernel.

The scalar trackers (:class:`~repro.sigmem.ArraySignature`,
:class:`~repro.sigmem.PerfectSignature`) store one boxed record per entry —
ideal for the event-at-a-time reference engine, hostile to array code.  The
incremental chunk kernel instead keeps the *same* state as parallel numpy
planes (``loc``/``var``/``tid``/``ts`` plus a presence mask) indexed by a
*tracking key*, so a whole chunk can gather its carry-in state and scatter
its carry-out state in a handful of array operations.

Two key spaces mirror the two scalar trackers:

* :class:`SlotPlaneTracker` — keys are hash slots of the paper's array
  signature (same hash, same conflation-on-collision, same removal
  semantics), so a vectorized worker with ``n`` slots is bit-for-bit
  equivalent to a reference worker with an ``ArraySignature`` of ``n`` slots.
* :class:`DensePlaneTracker` — keys are dense indices handed out by a
  :class:`DenseKeySpace` (one per worker, shared by the worker's read and
  write planes so both sides agree on every key), equivalent to the
  collision-free :class:`~repro.sigmem.PerfectSignature`.

Both implement the full :class:`~repro.sigmem.AccessTracker` protocol, so
signature migration during load balancing and the sampler's occupancy/fill
gauges work unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.sigmem.banks import BankGeometry, slots_payload
from repro.sigmem.hashing import hash_address, hash_addresses
from repro.sigmem.signature import SLOT_BYTES, AccessRecord, AccessTracker


class _PlaneStore:
    """The shared plane mechanics: presence mask + four payload columns."""

    def __init__(self, capacity: int) -> None:
        self._present = np.zeros(capacity, dtype=bool)
        self._loc = np.zeros(capacity, dtype=np.int64)
        self._var = np.zeros(capacity, dtype=np.int64)
        self._tid = np.zeros(capacity, dtype=np.int64)
        self._ts = np.zeros(capacity, dtype=np.int64)
        self._filled = 0

    # -- batch ops (the kernel's hot path) --------------------------------
    def gather(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Presence + payload columns for ``keys`` (payload is garbage where
        not present; callers mask)."""
        return (
            self._present[keys],
            self._loc[keys],
            self._var[keys],
            self._tid[keys],
            self._ts[keys],
        )

    def set_rows(
        self,
        keys: np.ndarray,
        loc: np.ndarray,
        var: np.ndarray,
        tid: np.ndarray,
        ts: np.ndarray,
    ) -> None:
        """Scatter records at unique ``keys`` (last-access payload)."""
        if len(keys) == 0:
            return
        self._filled += int(np.count_nonzero(~self._present[keys]))
        self._present[keys] = True
        self._loc[keys] = loc
        self._var[keys] = var
        self._tid[keys] = tid
        self._ts[keys] = ts

    def clear_keys(self, keys: np.ndarray) -> None:
        """Remove records at unique ``keys`` (variable-lifetime kills)."""
        if len(keys) == 0:
            return
        self._filled -= int(np.count_nonzero(self._present[keys]))
        self._present[keys] = False

    # -- scalar ops (migration / lifetime support) ------------------------
    def get(self, key: int) -> AccessRecord | None:
        if not self._present[key]:
            return None
        return AccessRecord(
            int(self._loc[key]),
            int(self._var[key]),
            int(self._tid[key]),
            int(self._ts[key]),
        )

    def put(self, key: int, record: AccessRecord) -> None:
        if not self._present[key]:
            self._filled += 1
            self._present[key] = True
        self._loc[key] = record.loc
        self._var[key] = record.var
        self._tid[key] = record.tid
        self._ts[key] = record.ts

    def drop(self, key: int) -> None:
        if self._present[key]:
            self._filled -= 1
            self._present[key] = False

    def wipe(self) -> None:
        self._present[:] = False
        self._filled = 0

    def grow_to(self, capacity: int) -> None:
        old = len(self._present)
        if capacity <= old:
            return
        cap = max(old * 2, capacity, 16)
        for name in ("_present", "_loc", "_var", "_tid", "_ts"):
            arr = getattr(self, name)
            new = np.zeros(cap, dtype=arr.dtype)
            new[:old] = arr
            setattr(self, name, new)


class SlotPlaneTracker(AccessTracker):
    """Array-signature state as numpy planes (key = hash slot).

    Identical observable behaviour to :class:`~repro.sigmem.ArraySignature`:
    colliding addresses overwrite one another, ``remove`` clears the slot
    regardless of owner, and ``remove_range`` clears the slots of every
    stride-aligned address in the range.  Eviction telemetry
    (``sigmem.evictions`` / conflict tracking) is not maintained — that is a
    per-insert observation the batch kernel cannot afford; runs that need it
    use the reference worker engine.

    With ``track_addrs`` an extra owner-address plane records which address
    last wrote each slot, enabling end-of-run occupancy attribution
    (:meth:`occupied_addrs`) at the cost of one extra scatter per carry-out.

    With a ``geometry`` the slot planes are sharded into per-address-range
    banks exactly as :class:`~repro.sigmem.ArraySignature` banks its slot
    list (``key = bank * bank_slots + h(addr) % bank_slots``), so a bank is
    one contiguous plane slice and :meth:`export_bank`/:meth:`import_bank`
    move it with a handful of array ops.  Banking implies the owner-address
    plane — the payload must carry owners so the importer's attribution
    stays exact.
    """

    def __init__(
        self,
        n_slots: int,
        salt: int = 0,
        track_addrs: bool = False,
        geometry: BankGeometry | None = None,
    ) -> None:
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        self.bank_geometry = geometry
        self.bank_slots = (
            geometry.bank_slots(n_slots) if geometry is not None else 0
        )
        self.n_slots = (
            geometry.round_slots(n_slots) if geometry is not None else int(n_slots)
        )
        self.salt = int(salt)
        self._store = _PlaneStore(self.n_slots)
        if geometry is not None:
            track_addrs = True
        self._addrs: np.ndarray | None = (
            np.zeros(self.n_slots, dtype=np.int64) if track_addrs else None
        )

    @property
    def wants_addrs(self) -> bool:
        """True when the kernel should thread the address column through
        ``set_rows`` (owner-address plane present)."""
        return self._addrs is not None

    # -- key derivation ----------------------------------------------------
    def key_of(self, addr: int) -> int:
        if self.bank_geometry is None:
            return hash_address(addr, self.n_slots, self.salt)
        bank = self.bank_geometry.bank_of(addr)
        return bank * self.bank_slots + hash_address(
            addr, self.bank_slots, self.salt
        )

    def keys_of(self, addrs: np.ndarray) -> np.ndarray:
        if self.bank_geometry is None:
            return hash_addresses(addrs, self.n_slots, self.salt)
        banks = self.bank_geometry.banks_of(addrs)
        return banks * self.bank_slots + hash_addresses(
            addrs, self.bank_slots, self.salt
        )

    # -- batch ops ---------------------------------------------------------
    def gather(self, keys: np.ndarray):
        return self._store.gather(keys)

    def set_rows(self, keys, loc, var, tid, ts, addr=None) -> None:
        self._store.set_rows(keys, loc, var, tid, ts)
        if self._addrs is not None and addr is not None and len(keys):
            self._addrs[keys] = addr

    def clear_keys(self, keys: np.ndarray) -> None:
        self._store.clear_keys(keys)

    # -- AccessTracker protocol --------------------------------------------
    def insert(self, addr: int, record: AccessRecord) -> None:
        key = self.key_of(addr)
        self._store.put(key, record)
        if self._addrs is not None:
            self._addrs[key] = addr

    def lookup(self, addr: int) -> AccessRecord | None:
        return self._store.get(self.key_of(addr))

    def remove(self, addr: int) -> None:
        self._store.drop(self.key_of(addr))

    def remove_range(self, lo: int, hi: int, stride: int = 8) -> None:
        if hi <= lo:
            return
        addrs = np.arange(lo, hi, stride, dtype=np.int64)
        self._store.clear_keys(np.unique(self.keys_of(addrs)))

    def clear(self) -> None:
        self._store.wipe()

    def occupied(self) -> int:
        return self._store._filled

    def fill_ratio(self) -> float:
        return self._store._filled / self.n_slots

    def occupied_addrs(self) -> np.ndarray | None:
        """Owner addresses of the occupied slots (current owner where
        conflated, matching :class:`~repro.sigmem.ArraySignature`).  Needs
        the ``track_addrs`` plane; ``None`` without it."""
        if self._addrs is None:
            return None
        return self._addrs[self._store._present]

    @property
    def memory_bytes(self) -> int:
        # Same accounting as ArraySignature: the configured slot count is the
        # committed footprint whether or not the planes are resident.
        return self.n_slots * SLOT_BYTES

    # -- bank protocol ------------------------------------------------------
    def bank_occupancy(self) -> np.ndarray | None:
        geo = self.bank_geometry
        if geo is None:
            return None
        present = self._store._present[: self.n_slots]
        return present.reshape(geo.n_banks, self.bank_slots).sum(axis=1)

    def export_bank(self, bank: int) -> dict:
        """Extract-and-clear one bank: a contiguous plane slice, vectorized."""
        geo = self._require_geometry()
        if not (0 <= bank < geo.n_banks):
            raise ValueError(f"bank {bank} out of range [0, {geo.n_banks})")
        base = bank * self.bank_slots
        present = self._store._present[base : base + self.bank_slots]
        local = np.flatnonzero(present).astype(np.int64)
        keys = base + local
        owners = self._addrs
        payload = slots_payload(
            bank,
            self.bank_slots,
            local,
            self._store._loc[keys],
            self._store._var[keys],
            self._store._tid[keys],
            self._store._ts[keys],
            None if owners is None else owners[keys],
        )
        self._store.clear_keys(keys)
        return payload

    def import_bank(self, payload: dict) -> None:
        """Merge a bank payload, newest access winning per slot."""
        geo = self._require_geometry()
        if payload["format"] != "slots":
            raise ValueError(
                f"{type(self).__name__} imports slots-format bank payloads, "
                f"got {payload['format']!r}"
            )
        if int(payload["bank_slots"]) != self.bank_slots:
            raise ValueError(
                f"bank payload has {payload['bank_slots']} slots/bank, "
                f"this tracker has {self.bank_slots}"
            )
        bank = int(payload["bank"])
        if not (0 <= bank < geo.n_banks):
            raise ValueError(f"bank {bank} out of range [0, {geo.n_banks})")
        keys = bank * self.bank_slots + payload["slot"]
        present, _, _, _, ts = self._store.gather(keys)
        win = ~present | (ts < payload["ts"])
        if not win.any():
            return
        keep = keys[win]
        self._store.set_rows(
            keep,
            payload["loc"][win],
            payload["var"][win],
            payload["tid"][win],
            payload["ts"][win],
        )
        if self._addrs is not None and payload["addr"] is not None:
            self._addrs[keep] = payload["addr"][win]


class DenseKeySpace:
    """Address -> dense-key mapping shared by one worker's plane pair.

    Keys are handed out on first sight and never recycled: a freed address
    keeps its key so later reuse of the address maps to the same plane row
    (whose presence bit the kill cleared) — matching dict-of-address
    semantics without per-event dict churn in the kernel.
    """

    def __init__(self) -> None:
        self._index: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._index)

    def get(self, addr: int) -> int | None:
        return self._index.get(addr)

    def key_for(self, addr: int) -> int:
        k = self._index.get(addr)
        if k is None:
            k = len(self._index)
            self._index[addr] = k
        return k

    def keys_for(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`key_for`: one dict probe per *unique* address."""
        uniq, inv = np.unique(addrs, return_inverse=True)
        index = self._index
        keys = np.empty(len(uniq), dtype=np.int64)
        for j, a in enumerate(uniq.tolist()):
            k = index.get(a)
            if k is None:
                k = len(index)
                index[a] = k
            keys[j] = k
        return keys[inv]

    def probe_keys(self, lo: int, hi: int, stride: int) -> np.ndarray:
        """Keys of known stride-aligned addresses in ``[lo, hi)``.

        Mirrors ``PerfectSignature.remove_range``: probe the range when it is
        small, scan the index when the range dwarfs it — either way only
        addresses aligned to ``lo`` modulo ``stride`` are affected.
        """
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        index = self._index
        n_range = -(-(hi - lo) // stride)
        if n_range <= len(index):
            keys = [
                k
                for addr in range(lo, hi, stride)
                if (k := index.get(addr)) is not None
            ]
        else:
            keys = [
                k
                for addr, k in index.items()
                if lo <= addr < hi and (addr - lo) % stride == 0
            ]
        return np.asarray(keys, dtype=np.int64)


class DensePlaneTracker(AccessTracker):
    """Collision-free tracking as numpy planes (key = dense address index).

    Equivalent to :class:`~repro.sigmem.PerfectSignature`; memory accounting
    follows the same ~88-bytes-per-live-entry model so cost/memory reports
    stay comparable across worker engines.

    Dense keys have no bank structure, so a ``geometry`` enables the
    *generic* record-format bank protocol from the base class: exports are
    exact per-address payloads recovered through the key space's inverse
    map, imports re-insert newest-wins.
    """

    def __init__(
        self, space: DenseKeySpace, geometry: BankGeometry | None = None
    ) -> None:
        self.space = space
        self.bank_geometry = geometry
        self._store = _PlaneStore(16)

    # -- batch ops ---------------------------------------------------------
    def keys_of(self, addrs: np.ndarray) -> np.ndarray:
        keys = self.space.keys_for(addrs)
        self._store.grow_to(len(self.space))
        return keys

    def gather(self, keys: np.ndarray):
        self._store.grow_to(len(self.space))
        return self._store.gather(keys)

    def set_rows(self, keys, loc, var, tid, ts, addr=None) -> None:
        # ``addr`` accepted for kernel-signature parity; the dense key space
        # already knows every key's owner, so no extra plane is kept.
        self._store.grow_to(len(self.space))
        self._store.set_rows(keys, loc, var, tid, ts)

    def clear_keys(self, keys: np.ndarray) -> None:
        self._store.grow_to(len(self.space))
        self._store.clear_keys(keys)

    # -- AccessTracker protocol --------------------------------------------
    def insert(self, addr: int, record: AccessRecord) -> None:
        key = self.space.key_for(addr)
        self._store.grow_to(len(self.space))
        self._store.put(key, record)

    def lookup(self, addr: int) -> AccessRecord | None:
        key = self.space.get(addr)
        if key is None or key >= len(self._store._present):
            return None
        return self._store.get(key)

    def remove(self, addr: int) -> None:
        key = self.space.get(addr)
        if key is not None and key < len(self._store._present):
            self._store.drop(key)

    def remove_range(self, lo: int, hi: int, stride: int = 8) -> None:
        keys = self.space.probe_keys(lo, hi, stride)
        if len(keys):
            self._store.grow_to(len(self.space))
            self._store.clear_keys(keys)

    def clear(self) -> None:
        self._store.wipe()

    def occupied(self) -> int:
        return self._store._filled

    def occupied_addrs(self) -> np.ndarray:
        """Owner addresses of the live entries, recovered from the key
        space (keys never recycle, so the inverse map is exact)."""
        present = self._store._present
        n = len(present)
        addrs = [
            a for a, k in self.space._index.items() if k < n and present[k]
        ]
        return np.asarray(addrs, dtype=np.int64)

    @property
    def memory_bytes(self) -> int:
        return 64 + self._store._filled * 88
