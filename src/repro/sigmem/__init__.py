"""Signature-based memory-access tracking (Section III-B of the paper).

A *signature* approximates an unbounded set of memory addresses with a
bounded array: one hash function maps an address to a slot, and the slot
stores the payload of the last access (source line, variable, thread,
timestamp).  Collisions conflate addresses — producing the false
positives/negatives quantified in Table I and Eq. 2 — in exchange for a
fixed, configurable memory footprint and O(1) untraversed lookups.

This package provides four interchangeable :class:`AccessTracker`
implementations:

* :class:`ArraySignature` — the paper's data structure (fixed slots, one
  hash function, element removal for variable-lifetime analysis),
* :class:`PerfectSignature` — the collision-free baseline used to measure
  FPR/FNR (Table I),
* :class:`ShadowMemory` — the classic paged shadow-memory scheme the paper
  argues against on space grounds,
* :class:`ChainedHashTable` — the bucket-chained alternative the paper
  measures as 1.5–3.7x slower.

plus the Eq. 2 false-positive model and a signature-sizing helper.
"""

from repro.sigmem.banks import (
    DEFAULT_BANK_SHIFT,
    BankGeometry,
    payload_size,
    records_payload,
    slots_payload,
)
from repro.sigmem.hashing import hash_address, hash_addresses
from repro.sigmem.signature import AccessRecord, AccessTracker, ArraySignature
from repro.sigmem.perfect import PerfectSignature
from repro.sigmem.planes import DenseKeySpace, DensePlaneTracker, SlotPlaneTracker
from repro.sigmem.shadow import ShadowMemory
from repro.sigmem.hashtable import ChainedHashTable
from repro.sigmem.model import (
    expected_fpr,
    expected_occupancy,
    slots_for_target_fpr,
)

__all__ = [
    "AccessRecord",
    "AccessTracker",
    "ArraySignature",
    "BankGeometry",
    "ChainedHashTable",
    "DEFAULT_BANK_SHIFT",
    "DenseKeySpace",
    "DensePlaneTracker",
    "PerfectSignature",
    "ShadowMemory",
    "SlotPlaneTracker",
    "expected_fpr",
    "expected_occupancy",
    "hash_address",
    "hash_addresses",
    "payload_size",
    "records_payload",
    "slots_for_target_fpr",
    "slots_payload",
]
