"""The signature hash function.

The paper uses a *single* hash function (unlike a k-hash Bloom filter) so
that elements can be removed — a requirement of variable-lifetime analysis.
We use Fibonacci multiplicative hashing over the 64-bit address with an
optional salt; it is cheap, vectorizes, and spreads the arithmetic address
sequences that array traversals produce.
"""

from __future__ import annotations

import numpy as np

#: 2**64 / golden ratio, the classic Fibonacci-hash multiplier.
_MULT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def hash_address(addr: int, n_slots: int, salt: int = 0) -> int:
    """Map one address to a slot index in ``[0, n_slots)``."""
    h = ((addr ^ salt) * _MULT) & _MASK64
    # Mix the high bits down; the low bits of a multiplicative hash are weak.
    h ^= h >> 29
    return h % n_slots


def hash_addresses(
    addrs: np.ndarray, n_slots: int, salt: int = 0
) -> np.ndarray:
    """Vectorized :func:`hash_address` for an int64 address column."""
    with np.errstate(over="ignore"):
        h = (addrs.astype(np.uint64) ^ np.uint64(salt & _MASK64)) * np.uint64(_MULT)
        h ^= h >> np.uint64(29)
        return (h % np.uint64(n_slots)).astype(np.int64)
