"""Paged shadow memory — the scheme the paper rejects on space grounds.

Classic dependence profilers shadow the whole address range touched by the
target: the access history of an address is stored at an index derived from
the address itself.  A two-level page table avoids materializing the gap
between the lowest and highest address, but every *touched* page costs a
full page of payload, so sparse address patterns still blow up memory —
the behaviour our memory benchmarks demonstrate against the signature.
"""

from __future__ import annotations

import numpy as np

from repro.sigmem.signature import EMPTY, AccessRecord, AccessTracker

#: Addresses per shadow page.  4096 entries x 8-byte granularity = 32 KiB of
#: target address space per page.
PAGE_ENTRIES = 4096


class _Page:
    __slots__ = ("loc", "var", "tid", "ts")

    def __init__(self) -> None:
        self.loc = np.full(PAGE_ENTRIES, EMPTY, dtype=np.int32)
        self.var = np.full(PAGE_ENTRIES, -1, dtype=np.int32)
        self.tid = np.zeros(PAGE_ENTRIES, dtype=np.int32)
        self.ts = np.zeros(PAGE_ENTRIES, dtype=np.int64)

    @property
    def nbytes(self) -> int:
        return self.loc.nbytes + self.var.nbytes + self.tid.nbytes + self.ts.nbytes


class ShadowMemory(AccessTracker):
    """Two-level shadow memory with 8-byte access granularity."""

    def __init__(self, granularity: int = 8) -> None:
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.granularity = granularity
        self._pages: dict[int, _Page] = {}

    def _locate(self, addr: int) -> tuple[int, int]:
        entry = addr // self.granularity
        return entry // PAGE_ENTRIES, entry % PAGE_ENTRIES

    def insert(self, addr: int, record: AccessRecord) -> None:
        page_no, off = self._locate(addr)
        page = self._pages.get(page_no)
        if page is None:
            page = self._pages[page_no] = _Page()
        page.loc[off] = record.loc
        page.var[off] = record.var
        page.tid[off] = record.tid
        page.ts[off] = record.ts

    def lookup(self, addr: int) -> AccessRecord | None:
        page_no, off = self._locate(addr)
        page = self._pages.get(page_no)
        if page is None or page.loc[off] == EMPTY:
            return None
        return AccessRecord(
            int(page.loc[off]), int(page.var[off]), int(page.tid[off]), int(page.ts[off])
        )

    def remove(self, addr: int) -> None:
        page_no, off = self._locate(addr)
        page = self._pages.get(page_no)
        if page is not None:
            page.loc[off] = EMPTY

    def remove_range(self, lo: int, hi: int, stride: int = 8) -> None:
        for addr in range(lo, hi, stride):
            self.remove(addr)

    def clear(self) -> None:
        self._pages.clear()

    def occupied(self) -> int:
        return sum(
            int(np.count_nonzero(p.loc != EMPTY)) for p in self._pages.values()
        )

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    @property
    def memory_bytes(self) -> int:
        return sum(p.nbytes for p in self._pages.values())
