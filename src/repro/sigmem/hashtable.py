"""Bucket-chained hash table — the paper's time-overhead straw man.

Storing access history in a chained hash table keeps answers exact with
bounded bucket count, but when several addresses land in the same bucket the
chain must be *searched* on every access.  The paper measures this as
1.5–3.7x slower than the signature; ``benchmarks/test_hashtable_vs_signature``
reproduces the comparison with this implementation.
"""

from __future__ import annotations

import numpy as np

from repro.sigmem.banks import BankGeometry
from repro.sigmem.hashing import hash_address
from repro.sigmem.signature import AccessRecord, AccessTracker


class ChainedHashTable(AccessTracker):
    """Fixed bucket array; each bucket is an association list addr->record.

    Chains never conflate, so with a ``geometry`` the generic record-format
    bank protocol of :class:`~repro.sigmem.AccessTracker` applies unchanged.
    """

    def __init__(
        self,
        n_buckets: int,
        salt: int = 0,
        geometry: BankGeometry | None = None,
    ) -> None:
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        self.bank_geometry = geometry
        self.n_buckets = int(n_buckets)
        self.salt = int(salt)
        self._buckets: list[list[tuple[int, AccessRecord]] | None] = (
            [None] * self.n_buckets
        )
        self._n = 0

    def _bucket_of(self, addr: int) -> int:
        return hash_address(addr, self.n_buckets, self.salt)

    def insert(self, addr: int, record: AccessRecord) -> None:
        b = self._bucket_of(addr)
        chain = self._buckets[b]
        if chain is None:
            self._buckets[b] = [(addr, record)]
            self._n += 1
            return
        for i, (a, _) in enumerate(chain):
            if a == addr:
                chain[i] = (addr, record)
                return
        chain.append((addr, record))
        self._n += 1

    def lookup(self, addr: int) -> AccessRecord | None:
        chain = self._buckets[self._bucket_of(addr)]
        if chain is None:
            return None
        for a, r in chain:
            if a == addr:
                return r
        return None

    def remove(self, addr: int) -> None:
        b = self._bucket_of(addr)
        chain = self._buckets[b]
        if chain is None:
            return
        for i, (a, _) in enumerate(chain):
            if a == addr:
                chain.pop(i)
                self._n -= 1
                if not chain:
                    self._buckets[b] = None
                return

    def remove_range(self, lo: int, hi: int, stride: int = 8) -> None:
        for addr in range(lo, hi, stride):
            self.remove(addr)

    def clear(self) -> None:
        self._buckets = [None] * self.n_buckets
        self._n = 0

    def occupied(self) -> int:
        return self._n

    def occupied_addrs(self) -> np.ndarray:
        """Every chained address, exactly (chains never conflate)."""
        addrs = [a for chain in self._buckets if chain for a, _ in chain]
        return np.asarray(addrs, dtype=np.int64)

    def conflicted_addrs(self) -> np.ndarray:
        """Addresses sharing a bucket with another address — the entries
        paying chain-search cost (the signature would conflate these)."""
        addrs = [
            a
            for chain in self._buckets
            if chain is not None and len(chain) > 1
            for a, _ in chain
        ]
        return np.asarray(addrs, dtype=np.int64)

    @property
    def max_chain_length(self) -> int:
        return max((len(c) for c in self._buckets if c), default=0)

    @property
    def memory_bytes(self) -> int:
        # bucket pointer array + (addr, record) pairs; rough but honest.
        return 8 * self.n_buckets + self._n * 120
