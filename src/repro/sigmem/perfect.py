"""The collision-free "perfect signature" baseline (Section VI-A).

Each address has its own entry, so membership answers are exact and
dependences derived from it are ground truth.  The paper uses this to
quantify the FPR/FNR of the real signature (Table I); we additionally use it
as the reference tracker for the exactness-checked vectorized engine.
"""

from __future__ import annotations

import sys
from typing import Iterator

import numpy as np

from repro.sigmem.banks import BankGeometry
from repro.sigmem.signature import AccessRecord, AccessTracker


class PerfectSignature(AccessTracker):
    """Exact per-address tracking backed by a dict.

    With a ``geometry`` the generic record-format bank protocol applies:
    exports carry every live address of the bank with its exact payload, so
    migration is lossless by construction.
    """

    def __init__(self, geometry: BankGeometry | None = None) -> None:
        self.bank_geometry = geometry
        self._table: dict[int, AccessRecord] = {}

    def insert(self, addr: int, record: AccessRecord) -> None:
        self._table[addr] = record

    def lookup(self, addr: int) -> AccessRecord | None:
        return self._table.get(addr)

    def remove(self, addr: int) -> None:
        self._table.pop(addr, None)

    def remove_range(self, lo: int, hi: int, stride: int = 8) -> None:
        if hi <= lo:
            return
        # For small frees, probing the range is cheap; for large frees it is
        # cheaper to scan the table once.  Both paths remove exactly the
        # stride-aligned addresses of the range, so the choice is purely a
        # performance one.
        n_range = -(-(hi - lo) // stride)
        if n_range <= len(self._table):
            for addr in range(lo, hi, stride):
                self._table.pop(addr, None)
        else:
            self._table = {
                a: r
                for a, r in self._table.items()
                if not (lo <= a < hi and (a - lo) % stride == 0)
            }

    def clear(self) -> None:
        self._table.clear()

    def occupied(self) -> int:
        return len(self._table)

    @property
    def memory_bytes(self) -> int:
        # dict overhead + one AccessRecord per entry; close enough for the
        # shadow-vs-signature memory comparison.
        return sys.getsizeof(self._table) + len(self._table) * 88

    def items(self) -> Iterator[tuple[int, AccessRecord]]:
        return iter(self._table.items())

    def occupied_addrs(self) -> np.ndarray:
        """Every tracked address is its own owner — exact attribution."""
        return np.fromiter(self._table.keys(), dtype=np.int64, count=len(self._table))
