"""The fixed-size array signature and the common tracker protocol.

Every memory tracker stores, per address, the payload of the *last* access of
one kind (read or write): source location, variable id, thread id, and access
timestamp.  That payload is exactly what Algorithm 1 needs to build a
dependence when a later access hits the same address.

:class:`ArraySignature` is the paper's structure: ``n_slots`` entries, one
hash function, no chaining.  Two different addresses hashing to the same slot
*overwrite* each other — by design.  The paper stores only the source line
in a 3–4 byte slot; we keep the full record the profiler reports (line,
variable, thread, timestamp), which changes the constant but not the
semantics or the collision behaviour.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Iterator, NamedTuple

import numpy as np

from repro.obs.metrics import Counter
from repro.sigmem.banks import BankGeometry, records_payload, slots_payload
from repro.sigmem.hashing import hash_address, hash_addresses

#: Marks an empty slot in the ``loc`` plane.
EMPTY = -2


class AccessRecord(NamedTuple):
    """Payload remembered for the last access to an address (or slot)."""

    loc: int  # encoded source location
    var: int  # interned variable id (-1 unknown)
    tid: int  # target thread id
    ts: int  # access timestamp


class AccessTracker(abc.ABC):
    """Protocol shared by signatures, shadow memory, and hash tables.

    When constructed with a :class:`~repro.sigmem.banks.BankGeometry` the
    tracker additionally speaks the *bank protocol*: per-bank occupancy
    accounting (:meth:`bank_occupancy`) and bank-granularity state
    migration (:meth:`export_bank` / :meth:`import_bank`), which is what
    lets the load balancer move a hot address range between workers with
    its signature state instead of dropping it.
    """

    #: Bank geometry, or ``None`` for a classic unbanked tracker.  Set by
    #: subclasses that accept a ``geometry`` argument.
    bank_geometry: BankGeometry | None = None

    @abc.abstractmethod
    def insert(self, addr: int, record: AccessRecord) -> None:
        """Remember ``record`` as the last access to ``addr``."""

    @abc.abstractmethod
    def lookup(self, addr: int) -> AccessRecord | None:
        """Membership check + payload: ``None`` means "not present"."""

    @abc.abstractmethod
    def remove(self, addr: int) -> None:
        """Remove one address (variable-lifetime analysis)."""

    @abc.abstractmethod
    def remove_range(self, lo: int, hi: int, stride: int = 8) -> None:
        """Remove every address in ``[lo, hi)`` stepping by ``stride``."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Empty the tracker."""

    @property
    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Actual bytes held by this tracker's state."""

    @abc.abstractmethod
    def occupied(self) -> int:
        """Number of non-empty entries."""

    def contains(self, addr: int) -> bool:
        return self.lookup(addr) is not None

    def occupied_addrs(self) -> np.ndarray | None:
        """Owner addresses of the occupied entries, for address-bucket
        occupancy attribution (:mod:`repro.obs.heatmap`).  ``None`` means
        the tracker does not know its owners (e.g. an array signature
        without the owner-address plane) — attribution is skipped, never
        guessed."""
        return None

    def suspect_source(self, addr: int) -> bool:
        """True when a record looked up for ``addr`` may belong to a
        *different* address (hash-collision conflation) — the Eq. 2
        false-positive mechanism.  Exact trackers can never conflate, so
        the default is ``False``; :class:`ArraySignature` overrides it when
        conflict tracking is on."""
        return False

    # -- bank protocol (sharded signature memory) ---------------------------
    def _require_geometry(self) -> BankGeometry:
        geo = self.bank_geometry
        if geo is None:
            raise ValueError(
                f"{type(self).__name__} was built without a BankGeometry; "
                "bank operations need config.signature_banks > 0"
            )
        return geo

    def bank_occupancy(self) -> np.ndarray | None:
        """Live-entry count per bank (length ``n_banks``).

        ``None`` when the tracker is unbanked or cannot attribute its
        entries to owner addresses.  The generic implementation bins
        :meth:`occupied_addrs`; slot-backed trackers override with a direct
        per-bank slot count.
        """
        geo = self.bank_geometry
        if geo is None:
            return None
        addrs = self.occupied_addrs()
        if addrs is None:
            return None
        a = np.asarray(addrs, dtype=np.int64)
        return np.bincount(geo.banks_of(a), minlength=geo.n_banks)

    def export_bank(self, bank: int) -> dict[str, Any]:
        """Extract *and clear* this tracker's state for one bank.

        Generic record-format implementation for exact trackers (perfect
        signature, dense planes, chained hash table): every live address of
        the bank leaves with its full payload, so migration is lossless.
        Slot-backed lossy trackers override with a slots-format export.
        """
        geo = self._require_geometry()
        addrs = self.occupied_addrs()
        if addrs is None:
            raise ValueError(
                f"{type(self).__name__} cannot export banks: owner addresses "
                "are unknown"
            )
        a = np.asarray(addrs, dtype=np.int64)
        sel = a[geo.banks_of(a) == bank]
        n = len(sel)
        loc = np.empty(n, dtype=np.int64)
        var = np.empty(n, dtype=np.int64)
        tid = np.empty(n, dtype=np.int64)
        ts = np.empty(n, dtype=np.int64)
        for j, addr in enumerate(sel.tolist()):
            rec = self.lookup(addr)
            assert rec is not None  # it came from occupied_addrs
            loc[j], var[j], tid[j], ts[j] = rec
            self.remove(addr)
        return records_payload(bank, sel, loc, var, tid, ts)

    def import_bank(self, payload: dict[str, Any]) -> None:
        """Merge an exported bank into this tracker (newest access wins).

        Several source workers may export the same bank (its addresses were
        modulo-spread before the first bank rule); the per-address
        ts-compare keeps exactly the record Algorithm 1 would have kept had
        the bank lived here all along.
        """
        self._require_geometry()
        if payload["format"] != "records":
            raise ValueError(
                f"{type(self).__name__} imports record-format bank payloads, "
                f"got {payload['format']!r}"
            )
        addrs = payload["addrs"]
        loc, var, tid, ts = (
            payload["loc"], payload["var"], payload["tid"], payload["ts"],
        )
        for j, addr in enumerate(addrs.tolist()):
            mine = self.lookup(addr)
            if mine is None or mine.ts < int(ts[j]):
                self.insert(
                    addr,
                    AccessRecord(
                        int(loc[j]), int(var[j]), int(tid[j]), int(ts[j])
                    ),
                )


#: Accounted bytes per slot: the paper's slots store a packed record (we
#: account the full loc+var+tid+ts payload: 4+4+4+8).
SLOT_BYTES = 20


class ArraySignature(AccessTracker):
    """The paper's signature: fixed-size array + one hash function.

    One fixed-length slot list holds the payload records (``None`` marks a
    free slot); slot storage is a plain Python list because the hot path is
    *scalar* probe/insert — a single index into a list beats four boxed
    numpy scalar reads by a wide margin, which matters for the
    hashtable-vs-signature time comparison the paper makes.  Batch
    operations (``slots_of``, ``remove_range``) still hash vectorized.

    Removal may evict an unrelated address that shares the slot — an
    accepted imprecision of single-hash signatures that variable-lifetime
    analysis tolerates (it only ever *reduces* stale state).

    With a ``geometry`` the slot array is sharded into per-address-range
    banks: an address hashes *within its bank's slot range* (``bank *
    bank_slots + h(addr) % bank_slots``), so a bank's state is exactly one
    contiguous slot slice — exportable and importable wholesale during load
    balancing.  Banking implies the owner-address plane (per-bank fill and
    eviction accounting need it).
    """

    def __init__(
        self,
        n_slots: int,
        salt: int = 0,
        eviction_counter: "Counter | None" = None,
        track_conflicts: bool = False,
        conflict_heat: "Callable[[int], None] | None" = None,
        geometry: BankGeometry | None = None,
    ) -> None:
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        self.bank_geometry = geometry
        self.bank_slots = (
            geometry.bank_slots(n_slots) if geometry is not None else 0
        )
        self.n_slots = (
            geometry.round_slots(n_slots) if geometry is not None else int(n_slots)
        )
        self.salt = int(salt)
        self._slots: list[AccessRecord | None] = [None] * self.n_slots
        # Occupancy is maintained incrementally so fill gauges are O(1) to
        # scrape (a full-slot scan per sample would dwarf the profiling).
        self._filled = 0
        # Optional telemetry: count inserts that *replace a different
        # address* (hash-conflict evictions).  Needs a parallel owner-address
        # plane, so it is only kept when a counter, ``track_conflicts``
        # (dependence-provenance mode), or a ``conflict_heat`` recorder asks
        # for it — the uninstrumented hot path stays exactly as before.
        self.eviction_counter = eviction_counter
        #: Address-bucket attribution of conflicts: called with the
        #: *inserted* address on exactly the events ``eviction_counter``
        #: counts, so heatmap bucket sums reconcile with the eviction total.
        self.conflict_heat = conflict_heat
        track = (
            eviction_counter is not None
            or track_conflicts
            or conflict_heat is not None
            or geometry is not None
        )
        self._slot_addrs: list[int] | None = [0] * self.n_slots if track else None
        #: Slots that ever had a colliding overwrite; provenance consults
        #: this to flag dependences built from a contested slot.
        self._evicted_slots: set[int] | None = set() if track else None
        #: Per-bank hash-conflict eviction counts (banked mode only).
        self._bank_evictions: np.ndarray | None = (
            np.zeros(geometry.n_banks, dtype=np.int64)
            if geometry is not None
            else None
        )

    # -- core ops ---------------------------------------------------------
    def slot_of(self, addr: int) -> int:
        if self.bank_geometry is None:
            return hash_address(addr, self.n_slots, self.salt)
        bank = self.bank_geometry.bank_of(addr)
        return bank * self.bank_slots + hash_address(addr, self.bank_slots, self.salt)

    def slots_of(self, addrs: np.ndarray) -> np.ndarray:
        if self.bank_geometry is None:
            return hash_addresses(addrs, self.n_slots, self.salt)
        banks = self.bank_geometry.banks_of(addrs)
        return banks * self.bank_slots + hash_addresses(
            addrs, self.bank_slots, self.salt
        )

    def insert(self, addr: int, record: AccessRecord) -> None:
        i = self.slot_of(addr)
        slots = self._slots
        if slots[i] is None:
            self._filled += 1
        elif self._slot_addrs is not None and self._slot_addrs[i] != addr:
            self._evicted_slots.add(i)  # type: ignore[union-attr]
            if self.eviction_counter is not None:
                self.eviction_counter.inc()
            if self.conflict_heat is not None:
                self.conflict_heat(addr)
            if self._bank_evictions is not None:
                self._bank_evictions[i // self.bank_slots] += 1
        if self._slot_addrs is not None:
            self._slot_addrs[i] = addr
        slots[i] = record

    def lookup(self, addr: int) -> AccessRecord | None:
        return self._slots[self.slot_of(addr)]

    def remove(self, addr: int) -> None:
        i = self.slot_of(addr)
        if self._slots[i] is not None:
            self._filled -= 1
        self._slots[i] = None

    def remove_range(self, lo: int, hi: int, stride: int = 8) -> None:
        if hi <= lo:
            return
        addrs = np.arange(lo, hi, stride, dtype=np.int64)
        slots = self._slots
        for i in np.unique(self.slots_of(addrs)).tolist():
            if slots[i] is not None:
                self._filled -= 1
            slots[i] = None

    def clear(self) -> None:
        self._slots = [None] * self.n_slots
        self._filled = 0
        if self._slot_addrs is not None:
            self._slot_addrs = [0] * self.n_slots
            self._evicted_slots = set()

    def suspect_source(self, addr: int) -> bool:
        """Is a lookup of ``addr`` possibly answering for another address?

        True when the slot's current owner is a different address (a live
        collision — the looked-up record definitely belongs to someone
        else) or when the slot has a recorded eviction (the record lineage
        passed through a contested slot).  Only meaningful with conflict
        tracking on; otherwise conservatively ``False``.
        """
        if self._slot_addrs is None:
            return False
        i = self.slot_of(addr)
        if self._slots[i] is not None and self._slot_addrs[i] != addr:
            return True
        return i in self._evicted_slots  # type: ignore[operator]

    # -- bank protocol ------------------------------------------------------
    def bank_occupancy(self) -> np.ndarray | None:
        geo = self.bank_geometry
        if geo is None:
            return None
        present = np.fromiter(
            (r is not None for r in self._slots), dtype=bool, count=self.n_slots
        )
        return present.reshape(geo.n_banks, self.bank_slots).sum(axis=1)

    def bank_evictions(self) -> np.ndarray | None:
        """Cumulative hash-conflict evictions per bank (banked mode only)."""
        if self._bank_evictions is None:
            return None
        return self._bank_evictions.copy()

    def export_bank(self, bank: int) -> dict[str, Any]:
        """Extract-and-clear one bank as its contiguous slot slice.

        The payload carries *bank-local* slot indices plus the owner-address
        plane, so any same-geometry signature (scalar or plane-backed) can
        rebase it onto its own bank origin.
        """
        geo = self._require_geometry()
        if not (0 <= bank < geo.n_banks):
            raise ValueError(f"bank {bank} out of range [0, {geo.n_banks})")
        base = bank * self.bank_slots
        slots = self._slots
        owners = self._slot_addrs
        assert owners is not None  # banking implies the owner plane
        local: list[int] = []
        loc: list[int] = []
        var: list[int] = []
        tid: list[int] = []
        ts: list[int] = []
        addr: list[int] = []
        for j in range(self.bank_slots):
            r = slots[base + j]
            if r is None:
                continue
            local.append(j)
            loc.append(r.loc)
            var.append(r.var)
            tid.append(r.tid)
            ts.append(r.ts)
            addr.append(owners[base + j])
            slots[base + j] = None
            self._filled -= 1
        return slots_payload(
            bank,
            self.bank_slots,
            np.asarray(local, dtype=np.int64),
            np.asarray(loc, dtype=np.int64),
            np.asarray(var, dtype=np.int64),
            np.asarray(tid, dtype=np.int64),
            np.asarray(ts, dtype=np.int64),
            np.asarray(addr, dtype=np.int64),
        )

    def import_bank(self, payload: dict[str, Any]) -> None:
        """Merge a bank payload, newest access winning per slot.

        Accepts both formats: slots payloads land on the identical slot of
        this signature (same bank geometry + salt ⇒ same hash), records
        payloads re-insert address by address.
        """
        geo = self._require_geometry()
        if payload["format"] == "records":
            # Bypass insert() so migration merges are never counted as
            # hash-conflict evictions.
            addrs, loc, var, tid, ts = (
                payload["addrs"], payload["loc"], payload["var"],
                payload["tid"], payload["ts"],
            )
            for j, a in enumerate(addrs.tolist()):
                i = self.slot_of(a)
                mine = self._slots[i]
                new_ts = int(ts[j])
                if mine is None or mine.ts < new_ts:
                    if mine is None:
                        self._filled += 1
                    self._slots[i] = AccessRecord(
                        int(loc[j]), int(var[j]), int(tid[j]), new_ts
                    )
                    if self._slot_addrs is not None:
                        self._slot_addrs[i] = a
            return
        if int(payload["bank_slots"]) != self.bank_slots:
            raise ValueError(
                f"bank payload has {payload['bank_slots']} slots/bank, "
                f"this signature has {self.bank_slots}"
            )
        bank = int(payload["bank"])
        if not (0 <= bank < geo.n_banks):
            raise ValueError(f"bank {bank} out of range [0, {geo.n_banks})")
        base = bank * self.bank_slots
        loc, var, tid, ts = (
            payload["loc"], payload["var"], payload["tid"], payload["ts"],
        )
        owners = payload["addr"]
        for j, local in enumerate(payload["slot"].tolist()):
            i = base + local
            mine = self._slots[i]
            new_ts = int(ts[j])
            if mine is None or mine.ts < new_ts:
                if mine is None:
                    self._filled += 1
                self._slots[i] = AccessRecord(
                    int(loc[j]), int(var[j]), int(tid[j]), new_ts
                )
                if self._slot_addrs is not None and owners is not None:
                    self._slot_addrs[i] = int(owners[j])

    # -- slot-level access (used when migrating state between workers) ------
    def get_slot(self, i: int) -> AccessRecord | None:
        return self._slots[i]

    def set_slot(self, i: int, record: AccessRecord | None) -> None:
        old = self._slots[i]
        if old is None and record is not None:
            self._filled += 1
        elif old is not None and record is None:
            self._filled -= 1
        self._slots[i] = record

    # -- set-style ops -------------------------------------------------------
    def occupied(self) -> int:
        return self._filled

    def fill_ratio(self) -> float:
        """Fraction of slots holding a record (the signature fill gauge)."""
        return self._filled / self.n_slots

    def occupied_slots(self) -> np.ndarray:
        """Indices of non-empty slots (the signature's "set" view)."""
        return np.array(
            [i for i, r in enumerate(self._slots) if r is not None],
            dtype=np.int64,
        )

    def occupied_addrs(self) -> np.ndarray | None:
        """Owner addresses of the occupied slots (conflated addresses
        report their *current* owner, matching lookup semantics).  Needs
        the owner-address plane; ``None`` without it."""
        if self._slot_addrs is None:
            return None
        addrs = self._slot_addrs
        return np.array(
            [addrs[i] for i, r in enumerate(self._slots) if r is not None],
            dtype=np.int64,
        )

    def intersect(self, other: "ArraySignature") -> np.ndarray:
        """Disambiguation: slot indices occupied in both signatures.

        If an address was inserted in both signatures it maps to the same
        slot in both (same size/salt required), so it is guaranteed to be in
        the result — the signature-intersection property transactional-memory
        systems rely on.
        """
        if (self.n_slots, self.salt) != (other.n_slots, other.salt):
            raise ValueError("can only intersect signatures of identical shape")
        return np.array(
            [
                i
                for i, (a, b) in enumerate(zip(self._slots, other._slots))
                if a is not None and b is not None
            ],
            dtype=np.int64,
        )

    @property
    def memory_bytes(self) -> int:
        return self.n_slots * SLOT_BYTES

    def iter_occupied(self) -> Iterator[tuple[int, AccessRecord]]:
        for i, r in enumerate(self._slots):
            if r is not None:
                yield i, r
