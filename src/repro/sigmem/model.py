"""Analytical collision model — Equation 2 of the paper.

With a uniform hash over ``m`` slots, the probability that a given slot is
occupied after inserting ``n`` distinct elements is::

    P_fp = 1 - (1 - 1/m)**n                                   (Eq. 2)

``P_fp`` bounds the chance that a membership check for an *absent* address
answers "present", i.e. the per-lookup false-positive probability.  The
paper uses it to size signatures from an estimate of the address count; we
expose that sizing helper and validate the model against measurement in
``benchmarks/test_eq2_fpr_model.py``.
"""

from __future__ import annotations

import math


def expected_fpr(n_addresses: int, n_slots: int) -> float:
    """Eq. 2: probability a given slot is occupied after ``n`` insertions."""
    if n_addresses < 0:
        raise ValueError("n_addresses must be non-negative")
    if n_slots <= 0:
        raise ValueError("n_slots must be positive")
    # log1p keeps precision when 1/m is tiny (m ~ 1e8 in the paper).
    return -math.expm1(n_addresses * math.log1p(-1.0 / n_slots))


def expected_occupancy(n_addresses: int, n_slots: int) -> float:
    """Expected number of occupied slots after inserting ``n`` addresses."""
    return n_slots * expected_fpr(n_addresses, n_slots)


def slots_for_target_fpr(n_addresses: int, target_fpr: float) -> int:
    """Smallest slot count whose Eq.-2 FPR is below ``target_fpr``.

    Solves ``1 - (1 - 1/m)^n <= p`` for ``m``:
    ``m >= 1 / (1 - (1-p)^(1/n))``.
    """
    if not 0.0 < target_fpr < 1.0:
        raise ValueError("target_fpr must be in (0, 1)")
    if n_addresses <= 0:
        return 1
    denom = -math.expm1(math.log1p(-target_fpr) / n_addresses)
    return max(1, math.ceil(1.0 / denom))
