"""Vectorized profiling engine.

Produces the same :class:`~repro.core.deps.DependenceStore` as the reference
engine, but in O(n log n) numpy instead of a Python event loop.  The key
observation: Algorithm 1 is a per-*tracking-key* recurrence (key = address
for the perfect signature, key = hash slot for the array signature), and the
"last read / last write before me on my key" quantities it consults can be
computed for all accesses at once:

1. expand FREE events into per-key *kill* rows (variable-lifetime removal),
2. stable-sort all rows by ``(key, stream position)``,
3. split each key's run into *epochs* at kill rows,
4. compute, per row, the index of the previous read and previous write in
   its (key, epoch) segment via a segmented cumulative maximum,
5. apply Algorithm 1's branch table as boolean masks,
6. classify loop-carried dependences through timestamp indexes
   (:class:`~repro.core.controlflow.LoopIndex`),
7. merge identical records with one ``np.unique`` over the packed columns.

Semantics note: loop-carried classification uses access *timestamps*.  For
multi-threaded targets whose unsynchronized accesses are pushed out of order
(the data-race scenarios of Section V-B), the reference engine classifies
against the loop-frame state at *push* time while this engine classifies
against *access* time; the two agree whenever each thread's pushes preserve
its own program order, which locks guarantee (Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import ProfilerConfig
from repro.common.errors import ProfilerError
from repro.core.controlflow import LoopIndex, LoopStateIndex, extract_loop_info
from repro.core.deps import DepType, Dependence, DependenceStore
from repro.core.result import ProfileResult, ProfileStats
from repro.core.reference import ACCESS_GRANULARITY
from repro.sigmem.hashing import hash_addresses
from repro.sigmem.planes import DensePlaneTracker
from repro.trace import FREE, READ, WRITE, TraceBatch

_MAX_LOOP_DEPTH = 32

_READ_CAT = 0
_WRITE_CAT = 1
_KILL_CAT = 2


def _unique_rows(cols: list[np.ndarray]) -> tuple[list[np.ndarray], np.ndarray]:
    """Row-level ``np.unique(..., return_counts=True)`` over parallel columns.

    ``np.unique(matrix, axis=0)`` sorts 64-byte void records with memcmp —
    an order of magnitude slower than a lexsort over the int64 columns,
    which dominates this engine's runtime on merge-heavy traces.
    """
    n = len(cols[0])
    if n == 0:
        return [c[:0] for c in cols], np.zeros(0, dtype=np.int64)
    order = np.lexsort(cols[::-1])
    sorted_cols = [c[order] for c in cols]
    change = np.zeros(n, dtype=bool)
    change[0] = True
    for c in sorted_cols:
        change[1:] |= c[1:] != c[:-1]
    starts = np.flatnonzero(change)
    counts = np.diff(np.append(starts, n))
    return [c[starts] for c in sorted_cols], counts


class VectorizedEngine:
    """Batch-vectorized Algorithm 1.

    ``signature_slots=None`` selects perfect (per-address) tracking;
    otherwise keys are hash slots of an array signature of that size.
    """

    def __init__(self, config: ProfilerConfig) -> None:
        self.config = config

    # -- key derivation ------------------------------------------------------
    def _keys_for(self, addrs: np.ndarray) -> np.ndarray:
        if self.config.perfect_signature:
            return addrs
        return hash_addresses(
            addrs, self.config.signature_slots, self.config.hash_salt
        )

    def run(self, batch: TraceBatch) -> ProfileResult:
        cfg = self.config
        stats = ProfileStats(n_events=len(batch))
        store = DependenceStore()

        kind = batch.kind
        is_read = kind == READ
        is_write = kind == WRITE
        acc_mask = is_read | is_write
        acc_idx = np.flatnonzero(acc_mask)
        stats.n_reads = int(np.count_nonzero(is_read))
        stats.n_writes = int(np.count_nonzero(is_write))
        stats.n_accesses = stats.n_reads + stats.n_writes
        stats.n_unique_addresses = batch.n_unique_addresses
        stats.tracker_memory_bytes = self._tracker_memory(batch)

        loops = extract_loop_info(batch)
        if stats.n_accesses == 0:
            return ProfileResult(
                store=store,
                loops=loops,
                stats=stats,
                var_names=batch.var_names,
                file_names=batch.file_names,
                multithreaded=batch.n_threads > 1 or cfg.multithreaded_target,
            )

        # ---- assemble rows: accesses + kill rows from FREE events ---------
        pos = acc_idx.astype(np.int64)
        key = self._keys_for(batch.addr[acc_idx])
        cat = np.where(is_write[acc_idx], _WRITE_CAT, _READ_CAT).astype(np.int8)
        loc = batch.loc[acc_idx].astype(np.int64)
        var = batch.var[acc_idx].astype(np.int64)
        tid = batch.tid[acc_idx].astype(np.int64)
        ts = batch.ts[acc_idx].astype(np.int64)
        ctx = batch.ctx[acc_idx].astype(np.int64)

        if cfg.track_lifetime:
            kp, kk = self._kill_rows(batch)
            if len(kp):
                zeros = np.zeros(len(kp), dtype=np.int64)
                pos = np.concatenate([pos, kp])
                key = np.concatenate([key, kk])
                cat = np.concatenate([cat, np.full(len(kp), _KILL_CAT, dtype=np.int8)])
                loc = np.concatenate([loc, zeros - 1])
                var = np.concatenate([var, zeros - 1])
                tid = np.concatenate([tid, zeros])
                ts = np.concatenate([ts, zeros])
                ctx = np.concatenate([ctx, zeros - 1])

        # ---- sort by (key, stream position) -------------------------------
        order = np.lexsort((pos, key))
        key = key[order]
        cat = cat[order]
        pos = pos[order]
        loc = loc[order]
        var = var[order]
        tid = tid[order]
        ts = ts[order]
        ctx = ctx[order]
        n = len(key)

        # ---- segment ids: new key, or kill boundary within a key ----------
        is_kill = cat == _KILL_CAT
        kills_before = np.concatenate(
            [[0], np.cumsum(is_kill[:-1], dtype=np.int64)]
        )
        new_key = np.empty(n, dtype=bool)
        new_key[0] = True
        new_key[1:] = key[1:] != key[:-1]
        # Segment at key starts and after each kill; both signals only ever
        # increase within the sort, so a simple OR of changes suffices.
        seg_boundary = new_key.copy()
        seg_boundary[1:] |= kills_before[1:] != kills_before[:-1]
        seg_id = np.cumsum(seg_boundary, dtype=np.int64)

        # ---- previous read / previous write per segment --------------------
        big = np.int64(n + 2)
        idx = np.arange(n, dtype=np.int64)

        def prev_of(candidate_mask: np.ndarray) -> np.ndarray:
            cand = np.where(candidate_mask, idx, np.int64(-1)) + seg_id * big
            run = np.maximum.accumulate(cand)
            prev = np.empty(n, dtype=np.int64)
            prev[0] = -1
            prev[1:] = run[:-1] - seg_id[1:] * big
            prev[prev < 0] = -1
            return prev

        prev_w = prev_of(cat == _WRITE_CAT)
        prev_r = prev_of(cat == _READ_CAT)

        # ---- Algorithm 1 branch table as masks ------------------------------
        read_rows = cat == _READ_CAT
        write_rows = cat == _WRITE_CAT
        raw_mask = read_rows & (prev_w >= 0)
        init_mask = write_rows & (prev_w < 0)
        waw_mask = write_rows & (prev_w >= 0)
        war_mask = waw_mask & (prev_r >= 0)

        emit_plan = [
            (DepType.RAW, raw_mask, prev_w),
            (DepType.WAR, war_mask, prev_r),
            (DepType.WAW, waw_mask, prev_w),
        ]
        if not cfg.ignore_rar:
            emit_plan.append((DepType.RAR, read_rows & (prev_r >= 0), prev_r))

        loop_index = LoopIndex(batch)
        races_total = 0
        for dep_type, mask, src_of in emit_plan:
            rows = np.flatnonzero(mask)
            stats.dep_instances[dep_type] += len(rows)
            if len(rows) == 0:
                continue
            src = src_of[rows]
            races_total += self._emit(
                store,
                dep_type,
                sink_loc=loc[rows],
                sink_tid=tid[rows],
                sink_ts=ts[rows],
                sink_ctx=ctx[rows],
                src_loc=loc[src],
                src_tid=tid[src],
                src_var=var[src],
                src_ts=ts[src],
                loop_index=loop_index,
                ctx_stacks=batch.ctx_stacks,
            )

        init_rows = np.flatnonzero(init_mask)
        stats.dep_instances[DepType.INIT] += len(init_rows)
        if len(init_rows):
            (u_loc, u_tid), counts = _unique_rows(
                [loc[init_rows], tid[init_rows]]
            )
            for s_loc, s_tid, c in zip(u_loc, u_tid, counts):
                store.add_merged(
                    Dependence(
                        DepType.INIT,
                        sink_loc=int(s_loc),
                        sink_tid=int(s_tid),
                        source_loc=-1,
                        source_tid=-1,
                        var=-1,
                    ),
                    count=int(c),
                )

        stats.races_flagged = races_total
        return ProfileResult(
            store=store,
            loops=loops,
            stats=stats,
            var_names=batch.var_names,
            file_names=batch.file_names,
            multithreaded=batch.n_threads > 1 or cfg.multithreaded_target,
        )

    # -- helpers ---------------------------------------------------------------
    def _kill_rows(self, batch: TraceBatch) -> tuple[np.ndarray, np.ndarray]:
        """Expand FREE events into (stream position, key) kill rows."""
        free_idx = np.flatnonzero(batch.kind == FREE)
        if len(free_idx) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        pos_parts: list[np.ndarray] = []
        key_parts: list[np.ndarray] = []
        for i in free_idx:
            base = int(batch.addr[i])
            size = int(batch.aux[i])
            if size <= 0:
                continue
            addrs = np.arange(base, base + size, ACCESS_GRANULARITY, dtype=np.int64)
            keys = np.unique(self._keys_for(addrs))
            pos_parts.append(np.full(len(keys), int(i), dtype=np.int64))
            key_parts.append(keys)
        if not pos_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(pos_parts), np.concatenate(key_parts)

    def _emit(
        self,
        store: DependenceStore,
        dep_type: DepType,
        sink_loc: np.ndarray,
        sink_tid: np.ndarray,
        sink_ts: np.ndarray,
        sink_ctx: np.ndarray,
        src_loc: np.ndarray,
        src_tid: np.ndarray,
        src_var: np.ndarray,
        src_ts: np.ndarray,
        loop_index: LoopIndex,
        ctx_stacks: tuple[tuple[int, ...], ...],
    ) -> int:
        """Classify carried loops, dedup, and insert one dep type. Returns race count."""
        race = src_ts > sink_ts
        carried_mask = np.zeros(len(sink_loc), dtype=np.int64)
        # Group by (ctx, tid): each group shares a static loop stack and the
        # per-(site, tid) timestamp indexes.
        packed_grp = sink_ctx * (np.max(sink_tid) + 2) + sink_tid
        for grp in np.unique(packed_grp):
            rows = np.flatnonzero(packed_grp == grp)
            c = int(sink_ctx[rows[0]])
            if c < 0:
                continue
            stack = ctx_stacks[c]
            if len(stack) > _MAX_LOOP_DEPTH:
                raise ProfilerError(
                    f"loop nest depth {len(stack)} exceeds supported "
                    f"{_MAX_LOOP_DEPTH}"
                )
            t = int(sink_tid[rows[0]])
            for level, site in enumerate(stack):
                hit = loop_index.carried_many(
                    site, t, src_ts[rows], sink_ts[rows]
                )
                if hit.any():
                    carried_mask[rows[hit]] |= np.int64(1) << level
        uniq_cols, counts = _unique_rows(
            [
                sink_loc,
                sink_tid,
                src_loc,
                src_tid,
                src_var,
                sink_ctx,
                carried_mask,
                race.astype(np.int64),
            ]
        )
        for row, c in zip(zip(*uniq_cols), counts):
            s_loc, s_tid, p_loc, p_tid, p_var, ctx_id, mask, is_race = (
                int(x) for x in row
            )
            carried: frozenset[int] = frozenset()
            if mask and ctx_id >= 0:
                stack = ctx_stacks[ctx_id]
                carried = frozenset(
                    site for lvl, site in enumerate(stack) if mask & (1 << lvl)
                )
            store.add_merged(
                Dependence(
                    dep_type,
                    sink_loc=s_loc,
                    sink_tid=s_tid,
                    source_loc=p_loc,
                    source_tid=p_tid,
                    var=p_var,
                    carried=carried,
                    race=bool(is_race),
                ),
                count=int(c),
            )
        return int(np.count_nonzero(race))

    def _tracker_memory(self, batch: TraceBatch) -> int:
        if self.config.perfect_signature:
            # Matches PerfectSignature's accounting: ~88 bytes/entry, two tables.
            return 2 * batch.n_unique_addresses * 88
        # ArraySignature planes: int32 loc + int32 var + int32 tid + int64 ts.
        return 2 * self.config.signature_slots * (4 + 4 + 4 + 8)


class ChunkKernel:
    """Incremental, signature-state-carrying vectorized Algorithm 1.

    The one-shot :class:`VectorizedEngine` needs the whole trace at once; a
    pipeline worker sees it chunk by chunk.  This kernel keeps the tracker
    state *between* chunks in a pair of plane trackers
    (:mod:`repro.sigmem.planes`) and processes each chunk as array
    operations:

    1. gather the chunk's rows from the full batch (global positions kept),
    2. derive tracking keys (hash slot or dense address index),
    3. expand FREE events into per-key kill rows,
    4. sort by ``(key, position)``, segment at kills, and compute segmented
       previous-read/previous-write indices,
    5. splice the *planes' carry-in state* into each key's first segment —
       the last access before this chunk plays the role of a virtual
       previous row,
    6. apply Algorithm 1's branch masks, classify loop-carried sites against
       push-order loop-frame snapshots (:class:`LoopStateIndex`), dedup, and
       bulk-merge into the store,
    7. scatter each key's final state (last read/write after the last kill)
       back into the planes.

    It reproduces the reference engine bit for bit — same dependences, same
    instance counts, same race flags, same carried sets — because every one
    of those steps mirrors a reference-engine rule, including the push-order
    loop-frame semantics the one-shot engine only approximates.

    The interface matches what :class:`~repro.parallel.worker.Worker` and
    the pipeline expect of an engine: ``store``, ``stats``,
    ``read_tracker``/``write_tracker``, plus :meth:`process_rows` in place
    of the reference engine's ``process``.
    """

    def __init__(
        self,
        config: ProfilerConfig,
        read_tracker,
        write_tracker,
        store: DependenceStore | None = None,
        heat=None,
    ) -> None:
        if type(read_tracker) is not type(write_tracker):
            raise ProfilerError("read/write plane trackers must match")
        self.config = config
        self.read_tracker = read_tracker
        self.write_tracker = write_tracker
        #: Optional address-heat recorder (see :mod:`repro.obs.heatmap`).
        #: Fed inline from the masks the kernel computes anyway, so heat
        #: recording never re-derives the access split per chunk.
        self.heat = heat
        self.store = store if store is not None else DependenceStore()
        self.stats = ProfileStats()
        #: Push-order loop-frame snapshots for the batch being profiled.
        #: The pipeline builds one index per batch and shares it across its
        #: same-process workers; unset, the kernel builds its own lazily.
        self.loop_index: "LoopStateIndex | None" = None
        self._batch_id: int | None = None

    # -- helpers -----------------------------------------------------------
    def bind_loop_index(self, batch: TraceBatch, index: "LoopStateIndex") -> None:
        """Adopt a prebuilt snapshot index for ``batch`` (one per pipeline
        run, shared across this process's workers)."""
        self.loop_index = index
        self._batch_id = id(batch)

    def _loop_index_for(self, batch: TraceBatch) -> "LoopStateIndex":
        if self.loop_index is None or self._batch_id != id(batch):
            self.loop_index = LoopStateIndex(batch)
        self._batch_id = id(batch)
        return self.loop_index

    def _kill_keys(self, base: int, size: int) -> np.ndarray:
        """Keys removed by one FREE, in this kernel's key space."""
        if size <= 0:
            return np.empty(0, dtype=np.int64)
        tracker = self.read_tracker
        if isinstance(tracker, DensePlaneTracker):
            return tracker.space.probe_keys(base, base + size, ACCESS_GRANULARITY)
        addrs = np.arange(base, base + size, ACCESS_GRANULARITY, dtype=np.int64)
        return np.unique(tracker.keys_of(addrs))

    # -- the chunk hot path ------------------------------------------------
    def process_rows(self, batch: TraceBatch, rows: np.ndarray) -> None:
        """Run Algorithm 1 over ``rows`` (ascending global row indices)."""
        cfg = self.config
        stats = self.stats
        stats.n_events += len(rows)
        kind = batch.kind[rows]
        is_read = kind == READ
        is_write = kind == WRITE
        acc = is_read | is_write
        stats.n_reads += int(np.count_nonzero(is_read))
        stats.n_writes += int(np.count_nonzero(is_write))
        stats.n_accesses = stats.n_reads + stats.n_writes

        acc_rows = rows[acc].astype(np.int64)
        if self.heat is not None and len(acc_rows):
            self.heat.record_accesses(batch.addr[acc_rows], is_write[acc])
        free_rows = (
            rows[kind == FREE].astype(np.int64)
            if cfg.track_lifetime
            else np.empty(0, dtype=np.int64)
        )
        if len(acc_rows) == 0 and len(free_rows) == 0:
            self._note_memory()
            return

        pos = acc_rows
        key = self.read_tracker.keys_of(batch.addr[acc_rows])
        cat = np.where(is_write[acc], _WRITE_CAT, _READ_CAT).astype(np.int8)
        loc = batch.loc[acc_rows].astype(np.int64)
        var = batch.var[acc_rows].astype(np.int64)
        tid = batch.tid[acc_rows].astype(np.int64)
        ts = batch.ts[acc_rows].astype(np.int64)

        if len(free_rows):
            kp_parts = [pos]
            kk_parts = [key]
            for i in free_rows.tolist():
                keys = self._kill_keys(int(batch.addr[i]), int(batch.aux[i]))
                if len(keys):
                    kp_parts.append(np.full(len(keys), i, dtype=np.int64))
                    kk_parts.append(keys)
            if len(kp_parts) > 1:
                n_acc = len(pos)
                pos = np.concatenate(kp_parts)
                key = np.concatenate(kk_parts)
                pad = len(pos) - n_acc
                fill = np.zeros(pad, dtype=np.int64)
                cat = np.concatenate([cat, np.full(pad, _KILL_CAT, dtype=np.int8)])
                loc = np.concatenate([loc, fill - 1])
                var = np.concatenate([var, fill - 1])
                tid = np.concatenate([tid, fill])
                ts = np.concatenate([ts, fill])

        if len(pos) == 0:
            # Only FREEs over addresses this worker never tracked.
            self._note_memory()
            return

        order = np.lexsort((pos, key))
        key = key[order]
        cat = cat[order]
        pos = pos[order]
        loc = loc[order]
        var = var[order]
        tid = tid[order]
        ts = ts[order]
        n = len(key)

        # -- segmentation: new key, or kill boundary within a key ----------
        is_kill = cat == _KILL_CAT
        kills_before = np.concatenate([[0], np.cumsum(is_kill[:-1], dtype=np.int64)])
        new_key = np.empty(n, dtype=bool)
        new_key[0] = True
        new_key[1:] = key[1:] != key[:-1]
        seg_boundary = new_key.copy()
        seg_boundary[1:] |= kills_before[1:] != kills_before[:-1]
        seg_id = np.cumsum(seg_boundary, dtype=np.int64)

        big = np.int64(n + 2)
        idx = np.arange(n, dtype=np.int64)

        def prev_of(candidate_mask: np.ndarray) -> np.ndarray:
            cand = np.where(candidate_mask, idx, np.int64(-1)) + seg_id * big
            run = np.maximum.accumulate(cand)
            prev = np.empty(n, dtype=np.int64)
            prev[0] = -1
            prev[1:] = run[:-1] - seg_id[1:] * big
            prev[prev < 0] = -1
            return prev

        read_rows = cat == _READ_CAT
        write_rows = cat == _WRITE_CAT
        prev_w = prev_of(write_rows)
        prev_r = prev_of(read_rows)

        # -- carry-in: planes act as the virtual row before each key's
        # first (pre-kill) segment ----------------------------------------
        starts = np.flatnonzero(new_key)
        grp = np.cumsum(new_key, dtype=np.int64) - 1
        first_seg = kills_before == kills_before[starts][grp]

        rp, rp_loc, rp_var, rp_tid, rp_ts = self.read_tracker.gather(key)
        wp, wp_loc, wp_var, wp_tid, wp_ts = self.write_tracker.gather(key)

        has_w = (prev_w >= 0) | (first_seg & wp)
        has_r = (prev_r >= 0) | (first_seg & rp)
        safe_w = np.maximum(prev_w, 0)
        safe_r = np.maximum(prev_r, 0)
        in_w = prev_w >= 0
        in_r = prev_r >= 0
        src_w_loc = np.where(in_w, loc[safe_w], wp_loc)
        src_w_var = np.where(in_w, var[safe_w], wp_var)
        src_w_tid = np.where(in_w, tid[safe_w], wp_tid)
        src_w_ts = np.where(in_w, ts[safe_w], wp_ts)
        src_r_loc = np.where(in_r, loc[safe_r], rp_loc)
        src_r_var = np.where(in_r, var[safe_r], rp_var)
        src_r_tid = np.where(in_r, tid[safe_r], rp_tid)
        src_r_ts = np.where(in_r, ts[safe_r], rp_ts)

        # -- Algorithm 1 branch table --------------------------------------
        raw_mask = read_rows & has_w
        init_mask = write_rows & ~has_w
        waw_mask = write_rows & has_w
        war_mask = waw_mask & has_r

        loop_index = self._loop_index_for(batch)
        emit_plan = [
            (DepType.RAW, raw_mask, src_w_loc, src_w_var, src_w_tid, src_w_ts),
            (DepType.WAR, war_mask, src_r_loc, src_r_var, src_r_tid, src_r_ts),
            (DepType.WAW, waw_mask, src_w_loc, src_w_var, src_w_tid, src_w_ts),
        ]
        if not cfg.ignore_rar:
            emit_plan.append(
                (
                    DepType.RAR,
                    read_rows & has_r,
                    src_r_loc,
                    src_r_var,
                    src_r_tid,
                    src_r_ts,
                )
            )
        for dep_type, mask, s_loc, s_var, s_tid, s_ts in emit_plan:
            sel = np.flatnonzero(mask)
            stats.dep_instances[dep_type] += len(sel)
            if len(sel) == 0:
                continue
            self._emit(
                dep_type,
                sink_loc=loc[sel],
                sink_tid=tid[sel],
                sink_pos=pos[sel],
                sink_ts=ts[sel],
                src_loc=s_loc[sel],
                src_tid=s_tid[sel],
                src_var=s_var[sel],
                src_ts=s_ts[sel],
                loop_index=loop_index,
            )

        init_rows = np.flatnonzero(init_mask)
        stats.dep_instances[DepType.INIT] += len(init_rows)
        if len(init_rows):
            (u_loc, u_tid), counts = _unique_rows([loc[init_rows], tid[init_rows]])
            for s_loc, s_tid, c in zip(u_loc, u_tid, counts):
                self.store.add_merged(
                    Dependence(
                        DepType.INIT,
                        sink_loc=int(s_loc),
                        sink_tid=int(s_tid),
                        source_loc=-1,
                        source_tid=-1,
                        var=-1,
                    ),
                    count=int(c),
                )

        # -- carry-out: scatter each key's end-of-chunk state --------------
        # The surviving record per key is the last read/write *after the
        # key's last kill* (a kill row itself belongs to the preceding
        # segment, so segment-local maxima would wrongly resurrect a freed
        # record when a group ends with its kill).  Run the cummax over
        # whole key groups and invalidate anything at or before the last
        # kill.
        ends = np.append(starts[1:], n) - 1
        run_r = np.maximum.accumulate(
            np.where(read_rows, idx, np.int64(-1)) + grp * big
        )
        run_w = np.maximum.accumulate(
            np.where(write_rows, idx, np.int64(-1)) + grp * big
        )
        run_k = np.maximum.accumulate(
            np.where(is_kill, idx, np.int64(-1)) + grp * big
        )
        last_kill = run_k[ends] - grp[ends] * big
        last_r = run_r[ends] - grp[ends] * big
        last_w = run_w[ends] - grp[ends] * big
        last_r = np.where(last_r > last_kill, last_r, np.int64(-1))
        last_w = np.where(last_w > last_kill, last_w, np.int64(-1))
        group_killed = last_kill >= 0
        # Owner addresses for the occupancy plane are gathered only for the
        # few carried-out rows (``pos`` still holds each sorted row's batch
        # row index), never for the whole chunk.
        wants_addrs = getattr(self.read_tracker, "wants_addrs", False)
        for tracker, last in (
            (self.read_tracker, last_r),
            (self.write_tracker, last_w),
        ):
            upd = last >= 0
            src = last[upd]
            if wants_addrs:
                adr = batch.addr[pos[src]].astype(np.int64, copy=False)
                tracker.set_rows(
                    key[src], loc[src], var[src], tid[src], ts[src], addr=adr
                )
            else:
                tracker.set_rows(key[src], loc[src], var[src], tid[src], ts[src])
            dead = ~upd & group_killed
            tracker.clear_keys(key[starts[dead]])
        self._note_memory()

    def _emit(
        self,
        dep_type: DepType,
        sink_loc: np.ndarray,
        sink_tid: np.ndarray,
        sink_pos: np.ndarray,
        sink_ts: np.ndarray,
        src_loc: np.ndarray,
        src_tid: np.ndarray,
        src_var: np.ndarray,
        src_ts: np.ndarray,
        loop_index: "LoopStateIndex",
    ) -> None:
        """Carried classification + dedup + bulk store merge for one type."""
        race = src_ts > sink_ts
        self.stats.races_flagged += int(np.count_nonzero(race))
        depth = loop_index.depth
        cols = [sink_loc, sink_tid, src_loc, src_tid, src_var, race.astype(np.int64)]
        if depth:
            carried = np.full((len(sink_loc), depth), -1, dtype=np.int64)
            for t in np.unique(sink_tid):
                m = sink_tid == t
                carried[m] = loop_index.carried_sites(
                    int(t), sink_pos[m], src_ts[m]
                )
            cols.extend(carried[:, lvl] for lvl in range(depth))
        uniq, counts = _unique_rows(cols)
        store = self.store
        for row, c in zip(zip(*uniq), counts):
            s_loc, s_tid, p_loc, p_tid, p_var, is_race = (int(x) for x in row[:6])
            sites = frozenset(int(s) for s in row[6:] if s >= 0)
            store.add_merged(
                Dependence(
                    dep_type,
                    sink_loc=s_loc,
                    sink_tid=s_tid,
                    source_loc=p_loc,
                    source_tid=p_tid,
                    var=p_var,
                    carried=sites,
                    race=bool(is_race),
                ),
                count=int(c),
            )

    def _note_memory(self) -> None:
        self.stats.tracker_memory_bytes = (
            self.read_tracker.memory_bytes + self.write_tracker.memory_bytes
        )
