"""The paper's textual dependence format (Figures 1 and 3).

Sequential targets (Figure 1)::

    1:60 BGN loop
    1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}
    1:67 NOM {RAW 1:65|temp2} {WAR 1:66|temp1}
    1:74 END loop 1200

Multi-threaded targets (Figure 3) add thread ids to sink (``loc|tid``) and
source (``loc|tid|var``)::

    4:58|2 NOM {WAR 4:77|2|iter}

``NOM`` marks a plain sink line; ``BGN``/``END`` bracket control regions,
with the executed iteration count after ``END loop``.  A ``verbose`` mode
appends ``[carried site...]`` and ``[race]`` annotations, which the parser
also understands; the default output is byte-compatible with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.sourceloc import format_location
from repro.core.deps import DepType
from repro.core.result import ProfileResult

_TYPE_NAMES = {t: t.name for t in DepType}
_NAME_TYPES = {t.name: t for t in DepType}


def _format_dep(
    dep_type: DepType,
    source_loc: int,
    source_tid: int,
    var_name: str,
    multithreaded: bool,
    carried: frozenset[int],
    race: bool,
    verbose: bool,
) -> str:
    if dep_type is DepType.INIT:
        body = "INIT *"
    elif multithreaded:
        body = f"{_TYPE_NAMES[dep_type]} {format_location(source_loc)}|{source_tid}|{var_name}"
    else:
        body = f"{_TYPE_NAMES[dep_type]} {format_location(source_loc)}|{var_name}"
    if verbose:
        if carried:
            sites = " ".join(format_location(s) for s in sorted(carried))
            body += f" [carried {sites}]"
        if race:
            body += " [race]"
    return "{" + body + "}"


def format_dependences(
    result: ProfileResult,
    multithreaded: bool | None = None,
    verbose: bool = False,
) -> str:
    """Render a profiling result in the paper's output format."""
    mt = result.multithreaded if multithreaded is None else multithreaded

    # Group dependences per sink for NOM lines.  Without verbose annotations,
    # entries differing only in carried/race collapse into one printed record
    # (race ORed, carried unioned).
    per_sink: dict[tuple[int, int], dict[tuple, tuple[frozenset, bool]]] = {}
    for dep in result.store:
        disp_key = (dep.dep_type, dep.source_loc, dep.source_tid, dep.var)
        bucket = per_sink.setdefault(dep.sink, {})
        carried, race = bucket.get(disp_key, (frozenset(), False))
        bucket[disp_key] = (carried | dep.carried, race or dep.race)

    # Assemble output lines with a sort key: (line loc, phase, tid) where
    # phase orders BGN(0) < NOM(1) < END(2) at the same source line.
    lines: list[tuple[tuple[int, int, int], str]] = []
    for site, info in result.loops.items():
        lines.append(((site, 0, 0), f"{format_location(site)} BGN loop"))
        lines.append(
            (
                (info.end_loc, 2, 0),
                f"{format_location(info.end_loc)} END loop {info.total_iterations}",
            )
        )
    for (sink_loc, sink_tid), bucket in per_sink.items():
        parts = []
        for disp_key in sorted(
            bucket, key=lambda k: (k[0], k[1], k[2], result.var_name(k[3]))
        ):
            dep_type, src_loc, src_tid, var = disp_key
            carried, race = bucket[disp_key]
            parts.append(
                _format_dep(
                    dep_type,
                    src_loc,
                    src_tid,
                    result.var_name(var),
                    mt,
                    carried,
                    race,
                    verbose,
                )
            )
        sink_txt = format_location(sink_loc)
        if mt:
            sink_txt += f"|{sink_tid}"
        lines.append(((sink_loc, 1, sink_tid), f"{sink_txt} NOM " + " ".join(parts)))

    lines.sort(key=lambda item: item[0])
    return "\n".join(text for _, text in lines) + ("\n" if lines else "")


@dataclass
class ParsedOutput:
    """Structured view of a parsed dependence listing (for tests/tools)."""

    #: (sink_loc_str, sink_tid) -> set of (type name, source_loc_str,
    #: source_tid, var name); INIT entries use ("INIT", "*", -1, "*").
    nom: dict[tuple[str, int], set[tuple[str, str, int, str]]] = field(
        default_factory=dict
    )
    #: loop site loc string -> iteration count from its END line.
    loops_begun: list[str] = field(default_factory=list)
    loops_ended: dict[str, int] = field(default_factory=dict)


def parse_dependences(text: str) -> ParsedOutput:
    """Parse the Figure 1/3 format back into a structured object."""
    out = ParsedOutput()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        head, _, rest = line.partition(" ")
        tag, _, tail = rest.partition(" ")
        if tag == "BGN":
            out.loops_begun.append(head)
            continue
        if tag == "END":
            # "END loop <count>"
            count = int(tail.split()[-1])
            out.loops_ended[head] = count
            continue
        if tag != "NOM":
            raise ValueError(f"unparseable line: {raw!r}")
        if "|" in head:
            loc_str, tid_str = head.split("|")
            sink = (loc_str, int(tid_str))
        else:
            sink = (head, 0)
        deps = out.nom.setdefault(sink, set())
        # Records are "{...}" groups; annotations like "[race]" stay inside.
        depth = 0
        token = []
        for ch in tail:
            if ch == "{":
                depth += 1
                token = []
            elif ch == "}":
                depth -= 1
                deps.add(_parse_record("".join(token)))
            elif depth > 0:
                token.append(ch)
    return out


@dataclass
class OutputDiff:
    """Difference between two parsed dependence listings."""

    #: records present only in the first/second listing, as
    #: (sink, record) pairs in the parser's representation.
    only_a: set[tuple] = field(default_factory=set)
    only_b: set[tuple] = field(default_factory=set)
    common: set[tuple] = field(default_factory=set)

    @property
    def identical(self) -> bool:
        return not self.only_a and not self.only_b

    def render(self, a_name: str = "A", b_name: str = "B") -> str:
        if self.identical:
            return f"identical ({len(self.common)} records)\n"
        lines = []
        for sink, rec in sorted(self.only_a):
            lines.append(f"- only {a_name}: {_render_parsed(sink, rec)}")
        for sink, rec in sorted(self.only_b):
            lines.append(f"+ only {b_name}: {_render_parsed(sink, rec)}")
        lines.append(
            f"{len(self.common)} common, {len(self.only_a)} only-{a_name}, "
            f"{len(self.only_b)} only-{b_name}"
        )
        return "\n".join(lines) + "\n"


def _render_parsed(sink: tuple[str, int], rec: tuple[str, str, int, str]) -> str:
    loc, tid = sink
    type_name, src, src_tid, var = rec
    if type_name == "INIT":
        return f"{loc}|{tid} {{INIT *}}"
    return f"{loc}|{tid} {{{type_name} {src}|{src_tid}|{var}}}"


def diff_outputs(text_a: str, text_b: str) -> OutputDiff:
    """Compare two Figure-1/3-format listings record by record.

    The comparison is input-order-insensitive and ignores BGN/END lines
    (iteration counts legitimately differ between inputs); use it to see
    what a different input exercised, before folding runs together with
    :func:`repro.analyses.union_of_results`.
    """

    def flatten(text: str) -> set[tuple]:
        parsed = parse_dependences(text)
        return {(sink, rec) for sink, recs in parsed.nom.items() for rec in recs}

    a, b = flatten(text_a), flatten(text_b)
    return OutputDiff(only_a=a - b, only_b=b - a, common=a & b)


def _parse_record(body: str) -> tuple[str, str, int, str]:
    body = body.split("[")[0].strip()  # drop verbose annotations
    type_name, _, src = body.partition(" ")
    if type_name not in _NAME_TYPES:
        raise ValueError(f"unknown dependence type {type_name!r}")
    if type_name == "INIT":
        return ("INIT", "*", -1, "*")
    parts = src.split("|")
    if len(parts) == 2:  # sequential: loc|var
        return (type_name, parts[0], 0, parts[1])
    if len(parts) == 3:  # multi-threaded: loc|tid|var
        return (type_name, parts[0], int(parts[1]), parts[2])
    raise ValueError(f"unparseable source {src!r}")
