"""The reference profiling engine — Algorithm 1, transcribed.

This is the executable specification: one Python loop over the event stream,
two :class:`~repro.sigmem.AccessTracker` instances (read / write), and the
exact branch structure of the paper's pseudocode:

* write to ``x``: if the write tracker has no entry, the access is an
  *initialization* (INIT); otherwise build a WAR if the read tracker has an
  entry, and always a WAW.  Then the write tracker remembers this access.
* read of ``x``: build a RAW if the write tracker has an entry.  Then the
  read tracker remembers this access.  (Note the pseudocode suppresses the
  WAR a first write would otherwise form with a preceding read — the
  ``INIT`` branch returns early.  We reproduce that faithfully.)
* read-after-read dependences are ignored (configurable, paper default).

Additional per-event duties: FREE events trigger variable-lifetime removal
from both trackers; loop events maintain the per-thread loop-frame stack used
to classify dependences as loop-carried; a source timestamp greater than the
sink's flags the dependence as a potential data race (Section V-B).
"""

from __future__ import annotations

from repro.common.config import ProfilerConfig
from repro.core.controlflow import extract_loop_info
from repro.obs.provenance import ProvenanceCollector
from repro.core.deps import DepType, Dependence, DependenceStore
from repro.core.result import ProfileResult, ProfileStats
from repro.sigmem.signature import AccessRecord, AccessTracker
from repro.trace import (
    FREE,
    LOOP_ENTER,
    LOOP_EXIT,
    LOOP_ITER,
    READ,
    WRITE,
    TraceBatch,
)

#: Address granularity of the MiniVM memory model (one element = 8 bytes);
#: FREE range removal steps at this stride.
ACCESS_GRANULARITY = 8


class _LoopFrame:
    """Live frame of one loop execution on a thread's loop stack."""

    __slots__ = ("site", "entry_ts", "iter_start_ts")

    def __init__(self, site: int, entry_ts: int) -> None:
        self.site = site
        self.entry_ts = entry_ts
        # Until the first loop_iter arrives nothing counts as carried:
        # an "iteration start" equal to entry keeps the test vacuous.
        self.iter_start_ts = entry_ts


class ReferenceEngine:
    """Event-at-a-time Algorithm 1.

    Usable one-shot (:meth:`run`) or incrementally (:meth:`process` called
    per chunk, with trackers, loop frames, store, and stats persisting across
    calls) — the parallel profiler's workers drive it that way.
    """

    def __init__(
        self,
        config: ProfilerConfig,
        read_tracker: AccessTracker,
        write_tracker: AccessTracker,
        store: DependenceStore | None = None,
        provenance: "ProvenanceCollector | None" = None,
    ) -> None:
        self.config = config
        self.read_tracker = read_tracker
        self.write_tracker = write_tracker
        self.store = store if store is not None else DependenceStore()
        self.stats = ProfileStats()
        #: Optional per-dependence attribution collector; when set, every
        #: ``store.add`` is mirrored by a ``provenance.note`` carrying the
        #: sink timestamp and the source tracker's slot-conflict verdict.
        self.provenance = provenance
        self._frames: dict[int, list[_LoopFrame]] = {}

    def run(self, batch: TraceBatch) -> ProfileResult:
        """One-shot profiling of a complete trace."""
        self.process(batch)
        self.stats.n_unique_addresses = batch.n_unique_addresses
        return ProfileResult(
            store=self.store,
            loops=extract_loop_info(batch),
            stats=self.stats,
            var_names=batch.var_names,
            file_names=batch.file_names,
            multithreaded=batch.n_threads > 1 or self.config.multithreaded_target,
            provenance=self.provenance,
        )

    def process(self, batch: TraceBatch) -> None:
        """Feed one (sub-)batch of events through Algorithm 1."""
        cfg = self.config
        store = self.store
        stats = self.stats
        stats.n_events += len(batch)
        frames = self._frames
        prov = self.provenance

        kind_col = batch.kind
        tid_col = batch.tid
        loc_col = batch.loc
        addr_col = batch.addr
        aux_col = batch.aux
        var_col = batch.var
        ts_col = batch.ts

        def carried_sites(tid: int, source_ts: int) -> frozenset[int]:
            stack = frames.get(tid)
            if not stack:
                return frozenset()
            sites = [
                f.site
                for f in stack
                if f.entry_ts <= source_ts < f.iter_start_ts
            ]
            return frozenset(sites) if sites else frozenset()

        for i in range(len(batch)):
            kind = kind_col[i]
            if kind == READ:
                addr = int(addr_col[i])
                loc = int(loc_col[i])
                tid = int(tid_col[i])
                ts = int(ts_col[i])
                stats.n_reads += 1
                if not cfg.ignore_rar:
                    rrec = self.read_tracker.lookup(addr)
                    if rrec is not None:
                        race = rrec.ts > ts
                        if race:
                            stats.races_flagged += 1
                        dep = Dependence(
                            DepType.RAR,
                            sink_loc=loc,
                            sink_tid=tid,
                            source_loc=rrec.loc,
                            source_tid=rrec.tid,
                            var=rrec.var,
                            carried=carried_sites(tid, rrec.ts),
                            race=race,
                        )
                        store.add(dep)
                        stats.dep_instances[DepType.RAR] += 1
                        if prov is not None:
                            prov.note(
                                dep, ts, self.read_tracker.suspect_source(addr)
                            )
                wrec = self.write_tracker.lookup(addr)
                if wrec is not None:
                    race = wrec.ts > ts
                    if race:
                        stats.races_flagged += 1
                    dep = Dependence(
                        DepType.RAW,
                        sink_loc=loc,
                        sink_tid=tid,
                        source_loc=wrec.loc,
                        source_tid=wrec.tid,
                        var=wrec.var,
                        carried=carried_sites(tid, wrec.ts),
                        race=race,
                    )
                    store.add(dep)
                    stats.dep_instances[DepType.RAW] += 1
                    if prov is not None:
                        prov.note(dep, ts, self.write_tracker.suspect_source(addr))
                self.read_tracker.insert(
                    addr, AccessRecord(loc, int(var_col[i]), tid, ts)
                )
            elif kind == WRITE:
                addr = int(addr_col[i])
                loc = int(loc_col[i])
                tid = int(tid_col[i])
                ts = int(ts_col[i])
                stats.n_writes += 1
                wrec = self.write_tracker.lookup(addr)
                if wrec is None:
                    # First write observed at this address: initialization.
                    dep = Dependence(
                        DepType.INIT,
                        sink_loc=loc,
                        sink_tid=tid,
                        source_loc=-1,
                        source_tid=-1,
                        var=-1,
                    )
                    store.add(dep)
                    stats.dep_instances[DepType.INIT] += 1
                    if prov is not None:
                        prov.note(dep, ts)
                else:
                    rrec = self.read_tracker.lookup(addr)
                    if rrec is not None:
                        race = rrec.ts > ts
                        if race:
                            stats.races_flagged += 1
                        dep = Dependence(
                            DepType.WAR,
                            sink_loc=loc,
                            sink_tid=tid,
                            source_loc=rrec.loc,
                            source_tid=rrec.tid,
                            var=rrec.var,
                            carried=carried_sites(tid, rrec.ts),
                            race=race,
                        )
                        store.add(dep)
                        stats.dep_instances[DepType.WAR] += 1
                        if prov is not None:
                            prov.note(
                                dep, ts, self.read_tracker.suspect_source(addr)
                            )
                    race = wrec.ts > ts
                    if race:
                        stats.races_flagged += 1
                    dep = Dependence(
                        DepType.WAW,
                        sink_loc=loc,
                        sink_tid=tid,
                        source_loc=wrec.loc,
                        source_tid=wrec.tid,
                        var=wrec.var,
                        carried=carried_sites(tid, wrec.ts),
                        race=race,
                    )
                    store.add(dep)
                    stats.dep_instances[DepType.WAW] += 1
                    if prov is not None:
                        prov.note(dep, ts, self.write_tracker.suspect_source(addr))
                self.write_tracker.insert(
                    addr, AccessRecord(loc, int(var_col[i]), tid, ts)
                )
            elif kind == FREE:
                if cfg.track_lifetime:
                    base = int(addr_col[i])
                    size = int(aux_col[i])
                    self.read_tracker.remove_range(
                        base, base + size, ACCESS_GRANULARITY
                    )
                    self.write_tracker.remove_range(
                        base, base + size, ACCESS_GRANULARITY
                    )
            elif kind == LOOP_ENTER:
                frames.setdefault(int(tid_col[i]), []).append(
                    _LoopFrame(int(addr_col[i]), int(ts_col[i]))
                )
            elif kind == LOOP_ITER:
                frames[int(tid_col[i])][-1].iter_start_ts = int(ts_col[i])
            elif kind == LOOP_EXIT:
                frames[int(tid_col[i])].pop()
            # ALLOC / LOCK_* / FUNC_* / THREAD_* carry no profiling duty here.

        stats.n_accesses = stats.n_reads + stats.n_writes
        stats.tracker_memory_bytes = (
            self.read_tracker.memory_bytes + self.write_tracker.memory_bytes
        )
