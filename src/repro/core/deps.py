"""Dependence records and the merging dependence store.

A data dependence is the triple ``<sink, type, source>`` (Section III-A):
``sink`` and ``source`` are source-code locations (extended with thread ids
for multi-threaded targets, Section V), ``type`` is RAW/WAR/WAW, and the
special type INIT marks the first write to an address.  We additionally keep

* the variable name (id) involved — part of the paper's detailed records,
* the set of loop sites with respect to which the dependence instance is
  *loop-carried* (source in an earlier iteration than sink) — the
  control-flow detail parallelism discovery needs,
* a *race* flag set when the access timestamps were observed in reverse
  push order (Section V-B: evidence of a potential data race).

The store merges identical dependences as they are added — the optimization
the paper credits with a ~1e5x output-size reduction — while counting raw
instances so the reduction factor itself can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator


class DepType(IntEnum):
    """Dependence types, in the paper's reporting order.

    RAR exists only when the profiler is configured with
    ``ignore_rar=False`` — the paper's default drops read-after-read
    records because most analyses never consult them.
    """

    RAW = 0
    WAR = 1
    WAW = 2
    INIT = 3
    RAR = 4


@dataclass(frozen=True, slots=True)
class Dependence:
    """One merged pair-wise dependence record.

    ``carried`` holds the encoded header locations of every loop (active at
    the sink) whose current iteration started *after* the source access —
    i.e. the loops this dependence crosses iterations of.  ``race`` is True
    if any contributing instance showed a timestamp reversal.
    """

    dep_type: DepType
    sink_loc: int
    sink_tid: int
    source_loc: int  # -1 for INIT
    source_tid: int  # -1 for INIT
    var: int  # interned variable id of the source access; -1 unknown/INIT
    carried: frozenset[int] = frozenset()
    race: bool = False

    @property
    def sink(self) -> tuple[int, int]:
        return (self.sink_loc, self.sink_tid)

    @property
    def source(self) -> tuple[int, int]:
        return (self.source_loc, self.source_tid)

    def is_carried_for(self, loop_site: int) -> bool:
        """True if this dependence crosses iterations of ``loop_site``."""
        return loop_site in self.carried

    def projected(self, with_tids: bool = True, with_carried: bool = True) -> tuple:
        """Reduced tuple used for set comparison at selectable precision."""
        t: tuple = (self.dep_type, self.sink_loc, self.source_loc, self.var)
        if with_tids:
            t += (self.sink_tid, self.source_tid)
        if with_carried:
            t += (self.carried,)
        return t

    def to_dict(self) -> dict:
        """JSON-ready view of the record (provenance rows, run reports)."""
        return {
            "type": self.dep_type.name,
            "sink_loc": self.sink_loc,
            "sink_tid": self.sink_tid,
            "source_loc": self.source_loc,
            "source_tid": self.source_tid,
            "var": self.var,
            "carried": sorted(self.carried),
            "race": self.race,
        }


class DependenceStore:
    """Deduplicating container of :class:`Dependence` records.

    Identical dependences are merged on insertion (set semantics per sink),
    exactly like the thread-local maps of the parallel profiler (Section IV).
    ``instances`` counts every :meth:`add` call, so that
    ``instances / n_entries`` measures the merge reduction factor.
    """

    def __init__(self) -> None:
        # Per sink: merged record -> number of runtime instances it covers.
        self._by_sink: dict[tuple[int, int], dict[Dependence, int]] = {}
        self.instances = 0

    def add(self, dep: Dependence) -> None:
        self.instances += 1
        bucket = self._by_sink.setdefault(dep.sink, {})
        bucket[dep] = bucket.get(dep, 0) + 1

    def add_merged(self, dep: Dependence, count: int = 1) -> None:
        """Insert an already-deduplicated record representing ``count`` instances."""
        self.instances += count
        bucket = self._by_sink.setdefault(dep.sink, {})
        bucket[dep] = bucket.get(dep, 0) + count

    def merge(self, other: "DependenceStore") -> None:
        """Fold another store in (the final merge step of Figure 2)."""
        for sink, deps in other._by_sink.items():
            bucket = self._by_sink.setdefault(sink, {})
            for dep, count in deps.items():
                bucket[dep] = bucket.get(dep, 0) + count
        self.instances += other.instances

    def count(self, dep: Dependence) -> int:
        """Number of runtime instances merged into ``dep`` (0 if absent)."""
        return self._by_sink.get(dep.sink, {}).get(dep, 0)

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(s) for s in self._by_sink.values())

    @property
    def n_entries(self) -> int:
        return len(self)

    @property
    def n_sinks(self) -> int:
        return len(self._by_sink)

    def __iter__(self) -> Iterator[Dependence]:
        for deps in self._by_sink.values():
            yield from deps

    def sinks(self) -> Iterable[tuple[int, int]]:
        return self._by_sink.keys()

    def at_sink(self, sink_loc: int, sink_tid: int = 0) -> set[Dependence]:
        return set(self._by_sink.get((sink_loc, sink_tid), ()))

    def items(self) -> Iterator[tuple[Dependence, int]]:
        """Iterate (merged record, instance count) pairs."""
        for bucket in self._by_sink.values():
            yield from bucket.items()

    def by_type(self, dep_type: DepType) -> list[Dependence]:
        return [d for d in self if d.dep_type == dep_type]

    def count_by_type(self) -> dict[DepType, int]:
        counts = {t: 0 for t in DepType}
        for d in self:
            counts[d.dep_type] += 1
        return counts

    def races(self) -> list[Dependence]:
        """Dependences flagged as potential data races (Section V-B)."""
        return [d for d in self if d.race]

    def as_set(self, with_tids: bool = True, with_carried: bool = True) -> set[tuple]:
        """Projected set view for accuracy comparisons."""
        return {d.projected(with_tids, with_carried) for d in self}

    def sorted_entries(self) -> list[Dependence]:
        """Deterministic global ordering (for output and tests)."""
        return sorted(
            self,
            key=lambda d: (
                d.sink_loc,
                d.sink_tid,
                d.dep_type,
                d.source_loc,
                d.source_tid,
                d.var,
                sorted(d.carried),
                d.race,
            ),
        )

    def __eq__(self, other: object) -> bool:
        """Equality of the *merged dependence sets* (instance counts are
        bookkeeping, not part of the paper's output)."""
        if not isinstance(other, DependenceStore):
            return NotImplemented
        if self._by_sink.keys() != other._by_sink.keys():
            return False
        return all(
            self._by_sink[k].keys() == other._by_sink[k].keys()
            for k in self._by_sink
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DependenceStore {len(self)} entries at {self.n_sinks} sinks, "
            f"{self.instances} instances>"
        )


@dataclass(frozen=True)
class SetRates:
    """False-positive / false-negative rates of a reported set vs. a baseline."""

    fpr: float
    fnr: float
    n_reported: int
    n_baseline: int
    false_positives: int
    false_negatives: int


def set_rates(
    reported: DependenceStore,
    baseline: DependenceStore,
    with_tids: bool = True,
    with_carried: bool = True,
) -> SetRates:
    """Record-level FPR/FNR of ``reported`` against a perfect baseline.

    FPR is the fraction of *merged* reported records absent from the
    baseline; FNR the fraction of baseline records never reported.  This is
    the strictest comparison (one collision can fabricate a whole record).
    """
    r = reported.as_set(with_tids, with_carried)
    g = baseline.as_set(with_tids, with_carried)
    fp = len(r - g)
    fn = len(g - r)
    return SetRates(
        fpr=fp / len(r) if r else 0.0,
        fnr=fn / len(g) if g else 0.0,
        n_reported=len(r),
        n_baseline=len(g),
        false_positives=fp,
        false_negatives=fn,
    )


def instance_rates(
    reported: DependenceStore,
    baseline: DependenceStore,
    with_tids: bool = True,
    with_carried: bool = False,
) -> SetRates:
    """Instance-level FPR/FNR — the Table I metric.

    Each runtime dependence instance counts individually: a reported
    instance is false if the baseline saw fewer instances of its record,
    and a baseline instance is missed if the reported store undercounts it
    (multiset difference).  This is the only reading consistent with the
    paper's numbers: at 1e8 slots a 6.3e6-address program suffers ~2e5
    birthday collisions, which would dominate a 155-record set difference
    but amount to the reported 0.2% of the hundreds of millions of
    dependence instances.
    """

    def project(store: DependenceStore) -> dict[tuple, int]:
        out: dict[tuple, int] = {}
        for dep, count in store.items():
            key = dep.projected(with_tids, with_carried)
            out[key] = out.get(key, 0) + count
        return out

    r = project(reported)
    g = project(baseline)
    n_rep = sum(r.values())
    n_base = sum(g.values())
    fp = sum(max(0, c - g.get(k, 0)) for k, c in r.items())
    fn = sum(max(0, c - r.get(k, 0)) for k, c in g.items())
    return SetRates(
        fpr=fp / n_rep if n_rep else 0.0,
        fnr=fn / n_base if n_base else 0.0,
        n_reported=n_rep,
        n_baseline=n_base,
        false_positives=fp,
        false_negatives=fn,
    )
