"""High-level profiler facade.

Wires a :class:`~repro.common.ProfilerConfig` to trackers and an engine, so
callers profile a trace in one line::

    result = DependenceProfiler(ProfilerConfig(signature_slots=10**7)).profile(batch)

Engines:

* ``"vectorized"`` (default) — the numpy engine; identical output, fast.
* ``"reference"``  — Algorithm 1 event-at-a-time; the executable spec.

Telemetry: pass a :class:`~repro.obs.metrics.MetricsRegistry` to record an
``engine`` span, access/dependence counters, and signature occupancy
gauges for the run; with no registry the engines run uninstrumented.
"""

from __future__ import annotations

from repro.common.config import ProfilerConfig
from repro.common.errors import ProfilerError
from repro.core.reference import ReferenceEngine
from repro.core.result import ProfileResult
from repro.core.vectorized import VectorizedEngine
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import ProvenanceCollector
from repro.sigmem import ArraySignature, PerfectSignature
from repro.sigmem.signature import AccessTracker
from repro.trace import TraceBatch

ENGINES = ("vectorized", "reference")


def make_trackers(
    config: ProfilerConfig,
    registry: MetricsRegistry | None = None,
    track_conflicts: bool = False,
) -> tuple[AccessTracker, AccessTracker]:
    """Build the (read, write) tracker pair a configuration calls for.

    With a registry, array signatures count hash-conflict evictions into
    ``sigmem.evictions{kind=...}`` counters.  ``track_conflicts`` turns on
    the owner-address plane that :meth:`ArraySignature.suspect_source`
    needs — provenance collection asks for it even without a registry.
    """
    if config.perfect_signature:
        return PerfectSignature(), PerfectSignature()
    if registry is not None:
        return (
            ArraySignature(
                config.signature_slots,
                config.hash_salt,
                eviction_counter=registry.counter("sigmem.evictions", kind="read"),
                track_conflicts=track_conflicts,
            ),
            ArraySignature(
                config.signature_slots,
                config.hash_salt,
                eviction_counter=registry.counter("sigmem.evictions", kind="write"),
                track_conflicts=track_conflicts,
            ),
        )
    return (
        ArraySignature(
            config.signature_slots, config.hash_salt, track_conflicts=track_conflicts
        ),
        ArraySignature(
            config.signature_slots, config.hash_salt, track_conflicts=track_conflicts
        ),
    )


class DependenceProfiler:
    """Profile traces under one configuration."""

    def __init__(
        self,
        config: ProfilerConfig | None = None,
        engine: str = "vectorized",
        registry: MetricsRegistry | None = None,
        provenance: ProvenanceCollector | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ProfilerError(f"unknown engine {engine!r}; pick from {ENGINES}")
        self.config = config if config is not None else ProfilerConfig()
        # Per-dependence attribution needs the event-at-a-time engine (the
        # vectorized engine never materialises individual instances), so a
        # collector silently selects "reference".
        self.engine_name = "reference" if provenance is not None else engine
        self.registry = registry
        self.provenance = provenance

    def profile(self, batch: TraceBatch) -> ProfileResult:
        """Run the configured engine over ``batch`` and return the result."""
        reg = self.registry
        prov = self.provenance
        if reg is None:
            # Uninstrumented fast path — identical to the seed behaviour.
            if self.engine_name == "vectorized":
                return VectorizedEngine(self.config).run(batch)
            read_tracker, write_tracker = make_trackers(
                self.config, track_conflicts=prov is not None
            )
            return ReferenceEngine(
                self.config, read_tracker, write_tracker, provenance=prov
            ).run(batch)

        with reg.span("engine", engine=self.engine_name):
            if self.engine_name == "vectorized":
                result = VectorizedEngine(self.config).run(batch)
            else:
                read_tracker, write_tracker = make_trackers(
                    self.config, reg, track_conflicts=prov is not None
                )
                result = ReferenceEngine(
                    self.config, read_tracker, write_tracker, provenance=prov
                ).run(batch)
                reg.gauge_fn("sigmem.occupied", read_tracker.occupied, kind="read")
                reg.gauge_fn(
                    "sigmem.occupied", write_tracker.occupied, kind="write"
                )
                if isinstance(read_tracker, ArraySignature):
                    reg.gauge_fn(
                        "sigmem.fill_ratio", read_tracker.fill_ratio, kind="read"
                    )
                    reg.gauge_fn(
                        "sigmem.fill_ratio",
                        write_tracker.fill_ratio,
                        kind="write",
                    )
        result.stats.publish(reg)
        reg.gauge("engine.unique_addresses").set(result.stats.n_unique_addresses)
        reg.gauge("deps.merged_entries").set(result.store.n_entries)
        return result


def profile_trace(
    batch: TraceBatch,
    config: ProfilerConfig | None = None,
    engine: str = "vectorized",
    registry: MetricsRegistry | None = None,
    provenance: ProvenanceCollector | None = None,
) -> ProfileResult:
    """Convenience one-shot profiling call."""
    return DependenceProfiler(config, engine, registry, provenance).profile(batch)
