"""High-level profiler facade.

Wires a :class:`~repro.common.ProfilerConfig` to trackers and an engine, so
callers profile a trace in one line::

    result = DependenceProfiler(ProfilerConfig(signature_slots=10**7)).profile(batch)

Engines:

* ``"vectorized"`` (default) — the numpy engine; identical output, fast.
* ``"reference"``  — Algorithm 1 event-at-a-time; the executable spec.
"""

from __future__ import annotations

from repro.common.config import ProfilerConfig
from repro.common.errors import ProfilerError
from repro.core.reference import ReferenceEngine
from repro.core.result import ProfileResult
from repro.core.vectorized import VectorizedEngine
from repro.sigmem import ArraySignature, PerfectSignature
from repro.sigmem.signature import AccessTracker
from repro.trace import TraceBatch

ENGINES = ("vectorized", "reference")


def make_trackers(config: ProfilerConfig) -> tuple[AccessTracker, AccessTracker]:
    """Build the (read, write) tracker pair a configuration calls for."""
    if config.perfect_signature:
        return PerfectSignature(), PerfectSignature()
    return (
        ArraySignature(config.signature_slots, config.hash_salt),
        ArraySignature(config.signature_slots, config.hash_salt),
    )


class DependenceProfiler:
    """Profile traces under one configuration."""

    def __init__(
        self, config: ProfilerConfig | None = None, engine: str = "vectorized"
    ) -> None:
        if engine not in ENGINES:
            raise ProfilerError(f"unknown engine {engine!r}; pick from {ENGINES}")
        self.config = config if config is not None else ProfilerConfig()
        self.engine_name = engine

    def profile(self, batch: TraceBatch) -> ProfileResult:
        """Run the configured engine over ``batch`` and return the result."""
        if self.engine_name == "vectorized":
            return VectorizedEngine(self.config).run(batch)
        read_tracker, write_tracker = make_trackers(self.config)
        return ReferenceEngine(self.config, read_tracker, write_tracker).run(batch)


def profile_trace(
    batch: TraceBatch,
    config: ProfilerConfig | None = None,
    engine: str = "vectorized",
) -> ProfileResult:
    """Convenience one-shot profiling call."""
    return DependenceProfiler(config, engine).profile(batch)
