"""The data-dependence profiler core (Sections III and V of the paper).

The profiler consumes a :class:`~repro.trace.TraceBatch` and produces a
:class:`ProfileResult`: merged pair-wise dependences (RAW/WAR/WAW plus INIT
for first writes), runtime control-flow information (loop regions with
iteration counts), and bookkeeping statistics.

Two engines implement identical semantics:

* :class:`ReferenceEngine` — Algorithm 1 transcribed event-at-a-time; the
  executable specification.
* :class:`VectorizedEngine` — a numpy formulation that sorts accesses by
  (tracking key, stream position) and derives each access's previous
  read/write via segmented cumulative maxima; orders of magnitude faster and
  property-tested equal to the reference.

Both are exposed through the :class:`DependenceProfiler` facade, which picks
trackers from a :class:`~repro.common.ProfilerConfig` (array signature or
perfect signature) and renders results in the paper's output format.
"""

from repro.core.deps import (
    DepType,
    Dependence,
    DependenceStore,
    instance_rates,
    set_rates,
)
from repro.core.controlflow import LoopIndex, LoopInfo, extract_loop_info
from repro.core.result import ProfileResult, ProfileStats
from repro.core.reference import ReferenceEngine
from repro.core.vectorized import VectorizedEngine
from repro.core.profiler import DependenceProfiler, profile_trace
from repro.core.output import (
    OutputDiff,
    diff_outputs,
    format_dependences,
    parse_dependences,
)

__all__ = [
    "DepType",
    "Dependence",
    "DependenceProfiler",
    "DependenceStore",
    "LoopIndex",
    "LoopInfo",
    "OutputDiff",
    "ProfileResult",
    "ProfileStats",
    "ReferenceEngine",
    "VectorizedEngine",
    "diff_outputs",
    "extract_loop_info",
    "format_dependences",
    "instance_rates",
    "parse_dependences",
    "profile_trace",
    "set_rates",
]
