"""Profiling results and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.controlflow import LoopInfo
from repro.core.deps import DepType, DependenceStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import ProvenanceCollector


@dataclass
class ProfileStats:
    """Bookkeeping collected during one profiling run.

    The dataclass remains the downstream API, but it doubles as a *view*
    over the telemetry registry: :meth:`publish` pushes one engine's totals
    into registry counters (labelled by worker for the pipeline), and
    :meth:`from_registry` re-derives an aggregate by summing those counter
    families — so the parallel engine no longer hand-sums private fields.
    """

    n_events: int = 0
    n_accesses: int = 0
    n_reads: int = 0
    n_writes: int = 0
    dep_instances: dict[DepType, int] = field(
        default_factory=lambda: {t: 0 for t in DepType}
    )
    races_flagged: int = 0
    tracker_memory_bytes: int = 0
    n_unique_addresses: int = 0

    @property
    def total_instances(self) -> int:
        return sum(self.dep_instances.values())

    # -- registry bridge ----------------------------------------------------
    def publish(self, registry: MetricsRegistry, **labels: object) -> None:
        """Mirror these totals into counters of ``registry``."""
        registry.counter("engine.events", **labels).inc(self.n_events)
        registry.counter("engine.reads", **labels).inc(self.n_reads)
        registry.counter("engine.writes", **labels).inc(self.n_writes)
        registry.counter("engine.races_flagged", **labels).inc(self.races_flagged)
        for t, c in self.dep_instances.items():
            registry.counter("deps.instances", type=t.name, **labels).inc(c)
        registry.gauge("engine.tracker_memory_bytes", **labels).set(
            self.tracker_memory_bytes
        )

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "ProfileStats":
        """Aggregate view: sum each counter family across all label sets."""
        stats = cls(
            n_events=registry.sum_counters("engine.events"),
            n_reads=registry.sum_counters("engine.reads"),
            n_writes=registry.sum_counters("engine.writes"),
            races_flagged=registry.sum_counters("engine.races_flagged"),
        )
        stats.n_accesses = stats.n_reads + stats.n_writes
        by_type = {t.name: t for t in DepType}
        for c in registry.counters():
            if c.name != "deps.instances":
                continue
            tname = dict(c.labels).get("type")
            if tname in by_type:
                stats.dep_instances[by_type[tname]] += c.value
        stats.tracker_memory_bytes = int(
            sum(
                g.value
                for g in registry.gauges()
                if g.name == "engine.tracker_memory_bytes"
            )
        )
        return stats


@dataclass
class ProfileResult:
    """Everything one profiling run delivers.

    ``store`` holds the merged pair-wise dependences; ``loops`` the runtime
    control-flow information; ``var_names``/``file_names`` resolve the
    interned ids in dependence records back to source-level names.
    """

    store: DependenceStore
    loops: dict[int, LoopInfo]
    stats: ProfileStats
    var_names: tuple[str, ...] = ()
    file_names: tuple[str, ...] = ()
    multithreaded: bool = False
    #: Per-dependence attribution (worker/chunk/timestamp window and the
    #: ``suspect_fp`` collision flag) when the run collected provenance.
    provenance: ProvenanceCollector | None = None

    @property
    def merge_reduction_factor(self) -> float:
        """Instances merged per surviving entry (Section III-B, ~1e5 in the paper)."""
        n = self.store.n_entries
        return self.store.instances / n if n else 0.0

    def var_name(self, var_id: int) -> str:
        if 0 <= var_id < len(self.var_names):
            return self.var_names[var_id]
        return "*"
