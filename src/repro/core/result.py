"""Profiling results and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.controlflow import LoopInfo
from repro.core.deps import DepType, DependenceStore


@dataclass
class ProfileStats:
    """Bookkeeping collected during one profiling run."""

    n_events: int = 0
    n_accesses: int = 0
    n_reads: int = 0
    n_writes: int = 0
    dep_instances: dict[DepType, int] = field(
        default_factory=lambda: {t: 0 for t in DepType}
    )
    races_flagged: int = 0
    tracker_memory_bytes: int = 0
    n_unique_addresses: int = 0

    @property
    def total_instances(self) -> int:
        return sum(self.dep_instances.values())


@dataclass
class ProfileResult:
    """Everything one profiling run delivers.

    ``store`` holds the merged pair-wise dependences; ``loops`` the runtime
    control-flow information; ``var_names``/``file_names`` resolve the
    interned ids in dependence records back to source-level names.
    """

    store: DependenceStore
    loops: dict[int, LoopInfo]
    stats: ProfileStats
    var_names: tuple[str, ...] = ()
    file_names: tuple[str, ...] = ()
    multithreaded: bool = False

    @property
    def merge_reduction_factor(self) -> float:
        """Instances merged per surviving entry (Section III-B, ~1e5 in the paper)."""
        n = self.store.n_entries
        return self.store.instances / n if n else 0.0

    def var_name(self, var_id: int) -> str:
        if 0 <= var_id < len(self.var_names):
            return self.var_names[var_id]
        return "*"
