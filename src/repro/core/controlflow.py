"""Runtime control-flow information (loop regions).

The profiler reports, next to the dependences, where control regions begin
and end and how many iterations each loop executed (the ``BGN loop`` /
``END loop 1200`` lines of Figure 1).  This module extracts that view from a
trace, and builds the per-``(loop site, thread)`` timestamp indexes the
vectorized engine uses to decide whether a dependence is loop-carried.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace import LOOP_ENTER, LOOP_EXIT, LOOP_ITER, TraceBatch


@dataclass
class LoopInfo:
    """Aggregated runtime facts about one static loop site."""

    site: int  # encoded header location
    end_loc: int  # encoded location of the loop's exit line
    total_iterations: int = 0  # summed over all dynamic executions
    executions: int = 0  # number of dynamic instances (all threads)
    threads: set[int] = field(default_factory=set)
    parent: int = -1  # enclosing loop site, -1 if top-level

    @property
    def mean_iterations(self) -> float:
        return self.total_iterations / self.executions if self.executions else 0.0


def extract_loop_info(batch: TraceBatch) -> dict[int, LoopInfo]:
    """Collect per-site loop statistics from the trace's loop events."""
    loops: dict[int, LoopInfo] = {}
    # Track the enclosing site per thread to attribute parents.
    stacks: dict[int, list[int]] = {}
    for i in np.flatnonzero(
        (batch.kind == LOOP_ENTER) | (batch.kind == LOOP_EXIT)
    ):
        kind = batch.kind[i]
        site = int(batch.addr[i])
        tid = int(batch.tid[i])
        stack = stacks.setdefault(tid, [])
        if kind == LOOP_ENTER:
            info = loops.get(site)
            if info is None:
                info = loops[site] = LoopInfo(site=site, end_loc=site)
            if stack and info.parent == -1:
                info.parent = stack[-1]
            info.executions += 1
            info.threads.add(tid)
            stack.append(site)
        else:  # LOOP_EXIT
            info = loops[site]
            info.total_iterations += int(batch.aux[i])
            end_loc = int(batch.loc[i])
            if end_loc >= 0:
                info.end_loc = end_loc
            if stack and stack[-1] == site:
                stack.pop()
    return loops


class LoopIndex:
    """Timestamp indexes answering "is this dependence loop-carried?".

    For every ``(site, tid)`` pair we keep two sorted timestamp arrays:
    loop-entry timestamps and iteration-start timestamps.  A dependence whose
    sink executed at ``sink_ts`` inside that loop is carried iff the source
    timestamp falls inside the same dynamic loop execution but *before* the
    start of the sink's current iteration::

        entry_ts <= source_ts < current_iteration_start_ts

    which is exactly the test the reference engine performs against its live
    loop-frame stack.
    """

    def __init__(self, batch: TraceBatch) -> None:
        entries: dict[tuple[int, int], list[int]] = {}
        iters: dict[tuple[int, int], list[int]] = {}
        mask = (batch.kind == LOOP_ENTER) | (batch.kind == LOOP_ITER)
        for i in np.flatnonzero(mask):
            key = (int(batch.addr[i]), int(batch.tid[i]))
            ts = int(batch.ts[i])
            if batch.kind[i] == LOOP_ENTER:
                entries.setdefault(key, []).append(ts)
            else:
                iters.setdefault(key, []).append(ts)
        # Loop events are pushed in increasing-ts order per thread; sort to be
        # safe against interleaved multi-thread reordering of pushes.
        self._entries = {k: np.array(sorted(v), dtype=np.int64) for k, v in entries.items()}
        self._iters = {k: np.array(sorted(v), dtype=np.int64) for k, v in iters.items()}

    def carried(self, site: int, tid: int, source_ts: int, sink_ts: int) -> bool:
        """Scalar carried test (reference/spot checks)."""
        key = (site, tid)
        ent = self._entries.get(key)
        its = self._iters.get(key)
        if ent is None or its is None or len(its) == 0:
            return False
        ei = int(np.searchsorted(ent, sink_ts, side="right")) - 1
        if ei < 0:
            return False
        ii = int(np.searchsorted(its, sink_ts, side="right")) - 1
        if ii < 0:
            return False
        entry_ts = int(ent[ei])
        iter_start = int(its[ii])
        return entry_ts <= source_ts < iter_start

    def carried_many(
        self,
        site: int,
        tid: int,
        source_ts: np.ndarray,
        sink_ts: np.ndarray,
    ) -> np.ndarray:
        """Vectorized carried test for aligned source/sink timestamp arrays."""
        key = (site, tid)
        ent = self._entries.get(key)
        its = self._iters.get(key)
        out = np.zeros(len(sink_ts), dtype=bool)
        if ent is None or its is None or len(its) == 0:
            return out
        ei = np.searchsorted(ent, sink_ts, side="right") - 1
        ii = np.searchsorted(its, sink_ts, side="right") - 1
        ok = (ei >= 0) & (ii >= 0)
        if not ok.any():
            return out
        entry_ts = ent[np.clip(ei, 0, None)]
        iter_start = its[np.clip(ii, 0, None)]
        out[ok] = (entry_ts[ok] <= source_ts[ok]) & (source_ts[ok] < iter_start[ok])
        return out
