"""Runtime control-flow information (loop regions).

The profiler reports, next to the dependences, where control regions begin
and end and how many iterations each loop executed (the ``BGN loop`` /
``END loop 1200`` lines of Figure 1).  This module extracts that view from a
trace, and builds the per-``(loop site, thread)`` timestamp indexes the
vectorized engine uses to decide whether a dependence is loop-carried.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ProfilerError
from repro.trace import LOOP_ENTER, LOOP_EXIT, LOOP_ITER, TraceBatch

#: Loop-nest depth cap for the snapshot index (one int64 column per level).
MAX_SNAPSHOT_DEPTH = 63

#: Rows per window when scanning ``batch.kind`` for loop events.
_SCAN_WINDOW = 1 << 22


def loop_event_rows(batch: TraceBatch, *kinds: int) -> np.ndarray:
    """Global row indices of the requested loop-event kinds, in order.

    Scans ``batch.kind`` window-by-window instead of building one
    full-trace boolean mask: on an mmap-spilled batch both the transient
    mask and the resident ``kind`` pages stay bounded by the window
    (consumed windows are released immediately), so loop-index builds no
    longer spike peak RSS proportionally to trace length.
    """
    kind = batch.kind
    n = len(kind)
    release = getattr(batch, "release_window", None)
    found: list[np.ndarray] = []
    for s in range(0, n, _SCAN_WINDOW):
        e = min(n, s + _SCAN_WINDOW)
        kw = np.asarray(kind[s:e])
        mask = kw == kinds[0]
        for k in kinds[1:]:
            mask |= kw == k
        hits = np.flatnonzero(mask)
        if len(hits):
            found.append(hits.astype(np.int64, copy=False) + s)
        if release is not None:
            release(s, e)
    if not found:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(found)


@dataclass
class LoopInfo:
    """Aggregated runtime facts about one static loop site."""

    site: int  # encoded header location
    end_loc: int  # encoded location of the loop's exit line
    total_iterations: int = 0  # summed over all dynamic executions
    executions: int = 0  # number of dynamic instances (all threads)
    threads: set[int] = field(default_factory=set)
    parent: int = -1  # enclosing loop site, -1 if top-level

    @property
    def mean_iterations(self) -> float:
        return self.total_iterations / self.executions if self.executions else 0.0


def extract_loop_info(batch: TraceBatch) -> dict[int, LoopInfo]:
    """Collect per-site loop statistics from the trace's loop events."""
    loops: dict[int, LoopInfo] = {}
    # Track the enclosing site per thread to attribute parents.
    stacks: dict[int, list[int]] = {}
    for i in loop_event_rows(batch, LOOP_ENTER, LOOP_EXIT):
        kind = batch.kind[i]
        site = int(batch.addr[i])
        tid = int(batch.tid[i])
        stack = stacks.setdefault(tid, [])
        if kind == LOOP_ENTER:
            info = loops.get(site)
            if info is None:
                info = loops[site] = LoopInfo(site=site, end_loc=site)
            if stack and info.parent == -1:
                info.parent = stack[-1]
            info.executions += 1
            info.threads.add(tid)
            stack.append(site)
        else:  # LOOP_EXIT
            info = loops[site]
            info.total_iterations += int(batch.aux[i])
            end_loc = int(batch.loc[i])
            if end_loc >= 0:
                info.end_loc = end_loc
            if stack and stack[-1] == site:
                stack.pop()
    return loops


class LoopIndex:
    """Timestamp indexes answering "is this dependence loop-carried?".

    For every ``(site, tid)`` pair we keep two sorted timestamp arrays:
    loop-entry timestamps and iteration-start timestamps.  A dependence whose
    sink executed at ``sink_ts`` inside that loop is carried iff the source
    timestamp falls inside the same dynamic loop execution but *before* the
    start of the sink's current iteration::

        entry_ts <= source_ts < current_iteration_start_ts

    which is exactly the test the reference engine performs against its live
    loop-frame stack.
    """

    def __init__(self, batch: TraceBatch) -> None:
        entries: dict[tuple[int, int], list[int]] = {}
        iters: dict[tuple[int, int], list[int]] = {}
        for i in loop_event_rows(batch, LOOP_ENTER, LOOP_ITER):
            key = (int(batch.addr[i]), int(batch.tid[i]))
            ts = int(batch.ts[i])
            if batch.kind[i] == LOOP_ENTER:
                entries.setdefault(key, []).append(ts)
            else:
                iters.setdefault(key, []).append(ts)
        # Loop events are pushed in increasing-ts order per thread; sort to be
        # safe against interleaved multi-thread reordering of pushes.
        self._entries = {k: np.array(sorted(v), dtype=np.int64) for k, v in entries.items()}
        self._iters = {k: np.array(sorted(v), dtype=np.int64) for k, v in iters.items()}

    def carried(self, site: int, tid: int, source_ts: int, sink_ts: int) -> bool:
        """Scalar carried test (reference/spot checks)."""
        key = (site, tid)
        ent = self._entries.get(key)
        its = self._iters.get(key)
        if ent is None or its is None or len(its) == 0:
            return False
        ei = int(np.searchsorted(ent, sink_ts, side="right")) - 1
        if ei < 0:
            return False
        ii = int(np.searchsorted(its, sink_ts, side="right")) - 1
        if ii < 0:
            return False
        entry_ts = int(ent[ei])
        iter_start = int(its[ii])
        return entry_ts <= source_ts < iter_start

    def carried_many(
        self,
        site: int,
        tid: int,
        source_ts: np.ndarray,
        sink_ts: np.ndarray,
    ) -> np.ndarray:
        """Vectorized carried test for aligned source/sink timestamp arrays."""
        key = (site, tid)
        ent = self._entries.get(key)
        its = self._iters.get(key)
        out = np.zeros(len(sink_ts), dtype=bool)
        if ent is None or its is None or len(its) == 0:
            return out
        ei = np.searchsorted(ent, sink_ts, side="right") - 1
        ii = np.searchsorted(its, sink_ts, side="right") - 1
        ok = (ei >= 0) & (ii >= 0)
        if not ok.any():
            return out
        entry_ts = ent[np.clip(ei, 0, None)]
        iter_start = its[np.clip(ii, 0, None)]
        out[ok] = (entry_ts[ok] <= source_ts[ok]) & (source_ts[ok] < iter_start[ok])
        return out


class _TidLoopStates:
    """Per-thread loop-frame snapshots, one row per loop event of the thread."""

    __slots__ = ("rows", "depth", "site", "entry", "iterts")

    def __init__(
        self,
        rows: np.ndarray,
        depth: np.ndarray,
        site: np.ndarray,
        entry: np.ndarray,
        iterts: np.ndarray,
    ) -> None:
        self.rows = rows  # global row index of each loop event (ascending)
        self.depth = depth  # (n_states,) stack depth after k loop events
        self.site = site  # (n_states, D) loop site per level, -1 above depth
        self.entry = entry  # (n_states, D) entry_ts per level
        self.iterts = iterts  # (n_states, D) iter_start_ts per level


class LoopStateIndex:
    """Loop-frame stack snapshots addressed by *stream position*.

    The reference engine classifies a dependence as loop-carried against the
    thread's live loop-frame stack at the moment the *sink* event is
    processed — i.e. the stack produced by all loop events preceding the
    sink in the event stream.  :class:`LoopIndex` approximates that with
    access timestamps, which agrees only when pushes preserve per-thread
    program order.  This index replays the loop events once in global row
    order, snapshots each thread's stack after every one of its loop events,
    and answers the carried test for a sink at global row ``i`` with the
    exact stack the reference engine would have held — which is what the
    incremental chunk kernel needs to match it bit for bit.
    """

    def __init__(self, batch: TraceBatch) -> None:
        kinds = batch.kind
        loop_rows = loop_event_rows(batch, LOOP_ENTER, LOOP_ITER, LOOP_EXIT)
        # Bulk-extract once; per-element fancy indexing in the replay loop
        # would dominate the build for loop-dense traces.
        l_kind = np.asarray(kinds[loop_rows]).tolist()
        l_tid = batch.tid[loop_rows].tolist()
        l_ts = batch.ts[loop_rows].tolist()
        l_addr = batch.addr[loop_rows].tolist()
        l_row = loop_rows.tolist()
        # Per-tid state: the live stack as three parallel scalar lists, plus
        # append-only snapshot *columns* per stack level.  Appending the
        # current frame values per event snapshots them without copying the
        # stack — an O(max depth) bound per event instead of O(depth) list
        # allocations.
        stacks: dict[int, tuple[list[int], list[int], list[int]]] = {}
        per_tid_rows: dict[int, list[int]] = {}
        per_tid_dep: dict[int, list[int]] = {}
        # levels[tid][lvl] = (site_col, entry_col, iter_col)
        levels: dict[int, list[tuple[list[int], list[int], list[int]]]] = {}
        depth = 0
        for kind, tid, ts, addr, row in zip(l_kind, l_tid, l_ts, l_addr, l_row):
            st = stacks.get(tid)
            if st is None:
                st = ([], [], [])
                stacks[tid] = st
                per_tid_rows[tid] = []
                per_tid_dep[tid] = []
                levels[tid] = []
            s_site, s_entry, s_iter = st
            if kind == LOOP_ENTER:
                s_site.append(addr)
                s_entry.append(ts)
                s_iter.append(ts)
                if len(s_site) > depth:
                    depth = len(s_site)
                    if depth > MAX_SNAPSHOT_DEPTH:
                        raise ProfilerError(
                            f"loop nest depth {depth} exceeds supported "
                            f"{MAX_SNAPSHOT_DEPTH}"
                        )
            elif kind == LOOP_ITER:
                if s_site:
                    s_iter[-1] = ts
            elif s_site:  # LOOP_EXIT
                s_site.pop()
                s_entry.pop()
                s_iter.pop()
            rows_t = per_tid_rows[tid]
            rows_t.append(row)
            d = len(s_site)
            per_tid_dep[tid].append(d)
            lvls = levels[tid]
            while len(lvls) < d:
                # New deepest level for this tid: back-fill the snapshots
                # that predate this event (its own values are appended by
                # the per-level loop below).
                pad = len(rows_t) - 1
                lvls.append(
                    ([-1] * pad, [0] * pad, [0] * pad)
                )
            for lvl, (c_site, c_entry, c_iter) in enumerate(lvls):
                if lvl < d:
                    c_site.append(s_site[lvl])
                    c_entry.append(s_entry[lvl])
                    c_iter.append(s_iter[lvl])
                else:
                    c_site.append(-1)
                    c_entry.append(0)
                    c_iter.append(0)
        #: Deepest stack observed across all threads; the carried-site matrix
        #: returned by :meth:`carried_sites` has this many columns.
        self.depth = depth
        self._tids: dict[int, _TidLoopStates] = {}
        for tid, rows in per_tid_rows.items():
            n_states = len(rows) + 1  # state 0 = empty stack
            dep = np.zeros(n_states, dtype=np.int64)
            dep[1:] = per_tid_dep[tid]
            site = np.full((n_states, max(depth, 1)), -1, dtype=np.int64)
            entry = np.zeros((n_states, max(depth, 1)), dtype=np.int64)
            iterts = np.zeros((n_states, max(depth, 1)), dtype=np.int64)
            for lvl, (c_site, c_entry, c_iter) in enumerate(levels[tid]):
                site[1:, lvl] = c_site
                entry[1:, lvl] = c_entry
                iterts[1:, lvl] = c_iter
            self._tids[tid] = _TidLoopStates(
                np.asarray(rows, dtype=np.int64), dep, site, entry, iterts
            )

    def carried_sites(
        self, tid: int, sink_rows: np.ndarray, source_ts: np.ndarray
    ) -> np.ndarray:
        """Carried loop sites per (sink row, source ts) pair on one thread.

        Returns an ``(n, depth)`` int64 matrix holding the loop site at each
        stack level for which ``entry_ts <= source_ts < iter_start_ts`` held
        in the sink's snapshot, and ``-1`` elsewhere — a fixed-width encoding
        of the reference engine's ``carried_sites`` frozenset that dedups as
        plain integer columns.
        """
        n = len(sink_rows)
        if self.depth == 0:
            return np.full((n, 0), -1, dtype=np.int64)
        st = self._tids.get(tid)
        if st is None:
            return np.full((n, self.depth), -1, dtype=np.int64)
        k = np.searchsorted(st.rows, sink_rows, side="left")
        dep = st.depth[k]
        sites = st.site[k, : self.depth]
        entry = st.entry[k, : self.depth]
        iterts = st.iterts[k, : self.depth]
        lvl = np.arange(self.depth, dtype=np.int64)
        src = source_ts[:, None]
        hit = (lvl[None, :] < dep[:, None]) & (entry <= src) & (src < iterts)
        return np.where(hit, sites, np.int64(-1))
