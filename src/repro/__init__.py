"""repro — a generic data-dependence profiler.

Reproduction of "An Efficient Data-Dependence Profiler for Sequential and
Parallel Programs" (Li, Jannesari, Wolf — IPDPS Workshops 2015).

The one-line entry points:

>>> from repro import ProfilerConfig, profile_trace, run_program
>>> trace = run_program(program)                       # instrumented execution
>>> result = profile_trace(trace, ProfilerConfig())    # Algorithm 1

See README.md for the architecture and examples/ for runnable walkthroughs.
Subpackage map: :mod:`repro.trace` (event substrate), :mod:`repro.minivm`
(target programs), :mod:`repro.sigmem` (signatures), :mod:`repro.core`
(the profiler), :mod:`repro.parallel` (the lock-free pipeline),
:mod:`repro.analyses` (parallelism / communication / races),
:mod:`repro.workloads` (benchmark analogs), :mod:`repro.costmodel`
(timing/memory models).
"""

from repro.common.config import ProfilerConfig
from repro.common.sourceloc import SourceLocation, format_location
from repro.core import (
    DependenceProfiler,
    DependenceStore,
    DepType,
    Dependence,
    ProfileResult,
    format_dependences,
    instance_rates,
    parse_dependences,
    profile_trace,
    set_rates,
)
from repro.minivm import ProgramBuilder, ScheduleConfig, run_program
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    RunReport,
    Sampler,
    prometheus_text,
)
from repro.parallel import ParallelProfiler
from repro.trace import TraceBatch, TraceRecorder, load_trace, save_trace

__version__ = "1.0.0"

__all__ = [
    "DepType",
    "Dependence",
    "DependenceProfiler",
    "DependenceStore",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "ParallelProfiler",
    "ProfileResult",
    "ProfilerConfig",
    "ProgramBuilder",
    "RunReport",
    "Sampler",
    "ScheduleConfig",
    "SourceLocation",
    "TraceBatch",
    "TraceRecorder",
    "__version__",
    "format_dependences",
    "format_location",
    "instance_rates",
    "load_trace",
    "parse_dependences",
    "profile_trace",
    "prometheus_text",
    "run_program",
    "save_trace",
    "set_rates",
]
