"""Trace amplifier: replay bundled workload traces at 10⁷–10⁸ events.

The paper's scalability results come from benchmark inputs far larger than
the MiniVM analogs can execute in reasonable time.  The amplifier closes
that gap at the *trace* level: it tiles a bundled base trace ``factor``
times, shifting every tile into a disjoint address window and a later
timestamp epoch.  Each tile therefore replays the base program verbatim on
private memory, which gives the scaled trace a known ground truth:

* tiles never alias, so no cross-tile dependence can exist, and
* dependences are keyed by source location — identical in every tile — so
  the merged dependence set of the amplified trace **equals the base
  trace's dependence set** (for an exact profiler; lossy signatures add
  only their usual aliasing FPs).

Address shifting applies only to rows whose ``addr`` is a memory address
(READ/WRITE/ALLOC/FREE); loop markers carry encoded loop *sites* in
``addr`` and locks/functions/threads carry ids, none of which may move.
Timestamps shift on every row so the amplified stream stays globally
monotone.

At 10⁷⁺ events the loop-snapshot indexes (O(loop events) resident state)
and per-site loop bookkeeping would dominate memory, so scale runs strip
the loop markers first (``keep_loops=False``) — dependences then carry no
loop annotations, on both sides of any differential comparison.

:func:`amplify_to_spill` streams tiles straight into an mmap-backed spill
directory (:mod:`repro.trace.spill`), so building a 10⁸-event trace needs
only one tile in memory, and profiling it reads back through windowed
memmaps.  The distinct-address count is known exactly
(``factor × base unique``) and recorded as the spill's unique hint — the
exact scan would be O(trace) memory.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common.errors import WorkloadError
from repro.trace import ALLOC, FREE, LOOP_ENTER, LOOP_EXIT, LOOP_ITER, READ, WRITE
from repro.trace.batch import _COLUMNS, TraceBatch
from repro.trace.spill import SpilledTraceBatch, TraceSpillWriter, is_spill, open_spill
from repro.workloads.base import Workload, WorkloadMeta, get_trace, register

#: Kinds whose ``addr`` column holds a memory address (and must shift).
_ADDR_KINDS = (READ, WRITE, ALLOC, FREE)
#: Loop markers (``addr`` = encoded site; stripped for scale runs).
_LOOP_KINDS = (LOOP_ENTER, LOOP_ITER, LOOP_EXIT)

#: Tile address windows start on this alignment (one signature-bank stripe).
_ADDR_ALIGN = 1 << 12


def strip_loops(batch: TraceBatch) -> TraceBatch:
    """Drop the loop marker rows (scale runs profile without loop state)."""
    kind = np.asarray(batch.kind)
    mask = np.ones(len(kind), dtype=bool)
    for k in _LOOP_KINDS:
        mask &= kind != k
    if mask.all():
        return batch
    return batch.select(np.flatnonzero(mask))


def _strides(batch: TraceBatch) -> tuple[int, int]:
    """Per-tile (address, timestamp) offsets keeping tiles fully disjoint."""
    if len(batch) == 0:
        return _ADDR_ALIGN, 1
    kind = np.asarray(batch.kind)
    addr = np.asarray(batch.addr)
    shift = kind == _ADDR_KINDS[0]
    for k in _ADDR_KINDS[1:]:
        shift |= kind == k
    max_addr = int(addr[shift].max()) if shift.any() else 0
    addr_stride = ((max_addr // _ADDR_ALIGN) + 2) * _ADDR_ALIGN
    ts_stride = int(np.asarray(batch.ts).max()) + 1
    return addr_stride, ts_stride


def _shift_mask(kind: np.ndarray) -> np.ndarray:
    shift = kind == _ADDR_KINDS[0]
    for k in _ADDR_KINDS[1:]:
        shift |= kind == k
    return shift


def _tile_columns(
    base: dict[str, np.ndarray],
    shift: np.ndarray,
    tile: int,
    addr_stride: int,
    ts_stride: int,
) -> dict[str, np.ndarray]:
    cols = dict(base)
    cols["addr"] = base["addr"] + np.where(
        shift, np.int64(tile) * addr_stride, np.int64(0)
    )
    cols["ts"] = base["ts"] + np.int64(tile) * ts_stride
    return cols


def amplify_batch(
    batch: TraceBatch, factor: int, keep_loops: bool = True
) -> TraceBatch:
    """Tile ``batch`` ``factor`` times in memory (small/medium scales)."""
    if factor < 1:
        raise WorkloadError(f"amplification factor must be >= 1, got {factor}")
    if not keep_loops:
        batch = strip_loops(batch)
    if factor == 1:
        return batch
    addr_stride, ts_stride = _strides(batch)
    base = {
        name: np.ascontiguousarray(getattr(batch, name)) for name, _ in _COLUMNS
    }
    shift = _shift_mask(base["kind"])
    tiles = [
        _tile_columns(base, shift, t, addr_stride, ts_stride)
        for t in range(factor)
    ]
    return TraceBatch(
        **{
            name: np.concatenate([t[name] for t in tiles])
            for name, _ in _COLUMNS
        },
        var_names=batch.var_names,
        file_names=batch.file_names,
        ctx_stacks=batch.ctx_stacks,
    )


def amplify_to_spill(
    batch: TraceBatch,
    factor: int,
    path: str | Path,
    keep_loops: bool = False,
) -> SpilledTraceBatch:
    """Stream ``factor`` tiles into a spill directory, one tile resident.

    Records the exact distinct READ/WRITE address count
    (``factor × base``) as the spill's unique hint; tiles are
    address-disjoint by construction, so the product is not an estimate.
    """
    if factor < 1:
        raise WorkloadError(f"amplification factor must be >= 1, got {factor}")
    if not keep_loops:
        batch = strip_loops(batch)
    addr_stride, ts_stride = _strides(batch)
    base = {
        name: np.ascontiguousarray(getattr(batch, name)) for name, _ in _COLUMNS
    }
    shift = _shift_mask(base["kind"])
    with TraceSpillWriter(path) as w:
        w.set_intern_tables(batch.var_names, batch.file_names, batch.ctx_stacks)
        w.set_unique_hint(factor * batch.n_unique_addresses)
        for t in range(factor):
            w.append_columns(
                **_tile_columns(base, shift, t, addr_stride, ts_stride)
            )
    return open_spill(path)


def amplify_cached(
    batch: TraceBatch,
    factor: int,
    cache_dir: str | Path,
    tag: str,
    keep_loops: bool = False,
) -> SpilledTraceBatch:
    """Spill-amplify with on-disk reuse keyed by ``tag`` and ``factor``."""
    path = Path(cache_dir) / f"{tag}-x{factor}.trace.spill"
    if is_spill(path):
        import os

        os.utime(path)  # LRU freshness, mirroring the npz disk cache
        return open_spill(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return amplify_to_spill(batch, factor, path, keep_loops=keep_loops)


# ---------------------------------------------------------------------------
# Registered amplified workloads: scale = target events in millions.
# ---------------------------------------------------------------------------

#: Amplified targets at or above this size are spilled to disk (when a
#: cache directory is available) instead of materialized in memory.
SPILL_THRESHOLD_EVENTS = 2_000_000

#: ``scale`` unit for amplified workloads.
EVENTS_PER_SCALE = 1_000_000


def _register_amplified(base_name: str) -> None:
    def build(
        scale: int, cache_dir: str | Path | None = None
    ) -> tuple[TraceBatch, WorkloadMeta]:
        target = scale * EVENTS_PER_SCALE
        base = get_trace(base_name)
        stripped = strip_loops(base)
        factor = max(1, -(-target // len(stripped)))
        # Loop annotations left with the stripped markers; amplified truth
        # is the stripped base's dependence set, not per-loop metadata.
        truth = WorkloadMeta()
        if cache_dir is not None and target >= SPILL_THRESHOLD_EVENTS:
            return (
                amplify_cached(
                    stripped, factor, cache_dir, f"amp-{base_name}"
                ),
                truth,
            )
        return amplify_batch(stripped, factor), truth

    register(
        Workload(
            name=f"amp-{base_name}",
            suite="amplified",
            build_trace=build,
            default_scale=1,
            description=(
                f"{base_name} trace tiled into disjoint address windows; "
                f"scale = millions of events"
            ),
        )
    )


_register_amplified("cg")
_register_amplified("rgbyuv")
